//! Quickstart: build an XSEDE-compatible cluster two ways in ~60 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::collections::BTreeMap;
use xcbc::cluster::specs::{limulus_hpc200, littlefe_modified};
use xcbc::core::deploy::{deploy_from_scratch, deploy_xnit_overlay, limulus_factory_image};
use xcbc::core::XnitSetupMethod;

fn main() {
    // Path 1 — XCBC from scratch: Rocks + the XSEDE roll on bare metal.
    // The modified LittleFe (Celeron G1840, mSATA drives) is the paper's
    // reference hardware for this path.
    let littlefe = littlefe_modified();
    println!(
        "Building {} from scratch with the XCBC Rocks roll...",
        littlefe.name
    );
    let report = deploy_from_scratch(&littlefe).expect("LittleFe is Rocks-installable");
    println!(
        "  {} nodes installed in {:.0} simulated seconds; XSEDE compatibility {:.1}%",
        report.nodes_reinstalled,
        report.timeline.total_seconds(),
        report.compat.score * 100.0
    );

    // Path 2 — XNIT overlay: add XSEDE compatibility to an existing,
    // operating cluster (a factory-imaged Limulus HPC200) without
    // changing its pre-existing setup.
    let limulus = limulus_hpc200();
    println!(
        "\nOverlaying XNIT onto {} (factory image preserved)...",
        limulus.name
    );
    let existing: BTreeMap<_, _> = limulus
        .nodes
        .iter()
        .map(|n| (n.hostname.clone(), limulus_factory_image()))
        .collect();
    let overlay =
        deploy_xnit_overlay(&existing, XnitSetupMethod::RepoRpm).expect("overlay succeeds");
    println!(
        "  0 reinstalls; pre-existing setup preserved: {}; compatibility {:.1}%",
        overlay.preexisting_preserved,
        overlay.compat.score * 100.0
    );

    // Either way, the result runs software the same way Stampede does.
    let node = overlay.node_dbs.values().next().unwrap();
    println!(
        "\nSpot checks on a Limulus node: gromacs installed: {}, torque installed: {}, \
         factory slurm still present: {}",
        node.is_installed("gromacs"),
        node.is_installed("torque"),
        node.is_installed("slurm"),
    );
}
