//! A week in the life of a deskside XCBC cluster: the batch system and
//! the HTCondor roll share the machine, usage is accounted per user, a
//! maintenance reservation protects the update window, and results move
//! to XSEDE through the Globus endpoint.
//!
//! ```sh
//! cargo run --example deskside_operations
//! ```

use xcbc::cluster::specs::littlefe_modified;
use xcbc::core::bridging::{setup_endpoint, transfer, Endpoint, TransferFile};
use xcbc::core::deploy::deploy_from_scratch;
use xcbc::sched::{submit_array, usage_report, ClusterSim, CondorPool, JobRequest, SchedPolicy};

fn main() {
    // Monday: the cluster (already built with XCBC) takes the week's work.
    let mut sim = ClusterSim::new(6, 2, SchedPolicy::maui_default());

    // Friday 18:00–22:00 is the staged-update maintenance window.
    let friday_start = 4.0 * 86_400.0 + 18.0 * 3600.0;
    sim.add_reservation(
        "yum update window",
        (0..6).collect(),
        friday_start,
        friday_start + 4.0 * 3600.0,
    );

    // alice runs MPI chemistry, bob runs a 30-task parameter sweep.
    for day in 0..5u32 {
        let t = day as f64 * 86_400.0 + 9.0 * 3600.0;
        sim.submit_at(
            t,
            JobRequest::new("gromacs-md", 6, 2, 6.0 * 3600.0, 5.5 * 3600.0).by("alice"),
        );
    }
    sim.run_until(86_400.0);
    let array = submit_array(
        &mut sim,
        &JobRequest::new("bwa-sweep", 1, 1, 2.0 * 3600.0, 1.5 * 3600.0).by("bob"),
        0..=29,
    );
    sim.run_to_completion();

    println!("== weekly usage report ==");
    print!("{}", usage_report(&sim).render());
    let (done, total) = array.progress(&sim);
    println!("bob's array: {done}/{total} tasks finished\n");

    // The htcondor roll scavenges whatever the week left idle.
    println!("== htcondor scavenging ==");
    let mut condor = CondorPool::new(12);
    for i in 0..40 {
        condor.submit(&format!("autodock-{i}"), 3600.0, true);
    }
    // the owner takes the cores back during working hours each day
    for _day in 0..5 {
        condor.owner_claims(12);
        condor.advance(8.0 * 3600.0); // working hours: nothing scavenged
        condor.owner_releases(12);
        condor.advance(16.0 * 3600.0); // nights: condor eats the queue
    }
    println!(
        "  {} of 40 docking jobs finished overnight; goodput {:.0} core-h, badput {:.0} core-h",
        condor.completed(),
        condor.goodput_s / 3600.0,
        condor.badput_s / 3600.0
    );

    // Ship the week's results to Stampede through the XSEDE tools.
    println!("\n== results to XSEDE ==");
    let report = deploy_from_scratch(&littlefe_modified()).expect("cluster exists");
    let campus = setup_endpoint("campus#littlefe", &report.node_dbs["littlefe"], 80.0)
        .expect("globus-connect-server came with the XSEDE roll");
    let stampede = Endpoint {
        name: "xsede#stampede".to_string(),
        wan_mb_s: 1000.0,
    };
    let xfer = transfer(
        &campus,
        &stampede,
        &[TransferFile {
            path: "/export/data/week27-results.tar".to_string(),
            bytes: 12 << 30,
        }],
        &[],
    );
    println!(
        "  {} -> {}: {:.1} GB in {:.0} s, verified = {}",
        xfer.source,
        xfer.destination,
        xfer.bytes as f64 / (1 << 30) as f64,
        xfer.seconds,
        xfer.verified
    );
}
