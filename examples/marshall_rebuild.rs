//! The §4 Marshall University story: a 264-core production cluster
//! running another management system is torn down and rebuilt from
//! scratch with XCBC ("XSEDE campus bridging staff spent a week on site
//! working with the Marshall University IT staff").
//!
//! ```sh
//! cargo run --example marshall_rebuild
//! ```

use xcbc::cluster::topology::{ClusterSpec, NetworkSpec};
use xcbc::cluster::{gpu_peak_gflops, hw, NodeRole, NodeSpec};
use xcbc::core::deploy::deploy_from_scratch;
use xcbc::rocks::cluster_fork;

/// Marshall's cluster per Table 3: 22 nodes, 264 cores (12/node), 8 GPU
/// nodes with 3584 CUDA cores total.
fn marshall_cluster() -> ClusterSpec {
    // 12-core Westmere-class nodes (2 × 6 cores at 2.8 GHz, 4 DP
    // flops/cycle => ~134 GF/node; 22 nodes ≈ 3 TF CPU-side + ~10 TF of
    // single-precision GPU gets the site to its published "6.0 TF" class)
    let westmere: hw::CpuModel = hw::CpuModel {
        name: "Intel Xeon X5660",
        clock_ghz: 2.8,
        cores: 6,
        flops_per_cycle: 4,
        tdp_watts: 95.0,
        measured_watts: 95.0,
        hyperthreading: true,
        socket: "LGA-1366",
    };
    let server_board = hw::Motherboard {
        name: "dual-socket server board",
        form_factor: hw::FormFactor::Atx,
        socket: "LGA-1366",
        msata_slot: false,
        nic_count: 2,
    };
    let mut c = ClusterSpec::new(
        "Marshall BigGreen (rebuilt)",
        NetworkSpec::gigabit_ethernet(48),
    );
    c.weight_lbs = 2200.0; // a real rack, not a luggable
    for i in 0..22 {
        let role = if i == 0 {
            NodeRole::Frontend
        } else {
            NodeRole::Compute
        };
        let mut b = NodeSpec::new(
            if i == 0 {
                "biggreen".to_string()
            } else {
                format!("compute-0-{}", i - 1)
            },
            role,
        )
        .board(server_board.clone())
        .cpu(westmere.clone())
        .sockets(2)
        .ram_gb(48)
        .disk(hw::LAPTOP_HDD_500GB)
        .cooler(hw::INTEL_STOCK_COOLER)
        .psu(hw::Psu {
            name: "server 750W",
            watts: 750.0,
        });
        if i == 0 {
            b = b.nic(hw::GBE_NIC);
        }
        c.nodes.push(b.build());
    }
    c
}

fn main() {
    let cluster = marshall_cluster();
    println!(
        "Marshall University rebuild: {} nodes, {} cores, {:.2} TF CPU Rpeak",
        cluster.node_count(),
        cluster.compute_cores(),
        cluster.rpeak_gflops() / 1000.0
    );
    assert_eq!(cluster.compute_cores(), 264, "Table 3: 264 cores");
    println!(
        "GPU side: 8 nodes host 3584 CUDA cores ≈ {:.1} TF single-precision",
        gpu_peak_gflops(3584, 1.4, 2) / 1000.0
    );

    println!("\nTearing down the prior management system and rebuilding with XCBC...");
    let report = deploy_from_scratch(&cluster).expect("diskful rack installs");
    println!(
        "  {} nodes reinstalled; wall-clock {:.1} hours of install time",
        report.nodes_reinstalled,
        report.timeline.total_seconds() / 3600.0
    );
    println!(
        "  XSEDE compatibility after rebuild: {:.1}%",
        report.compat.score * 100.0
    );

    // the campus-bridging verification pass: cluster-fork across nodes
    let mut rocks_cli = xcbc::rocks::RocksCli::new("biggreen");
    rocks_cli.db.add_frontend("ff:ff", 12).unwrap();
    for i in 0..21 {
        rocks_cli
            .db
            .add_host(
                xcbc::rocks::Appliance::Compute,
                0,
                &format!("aa:{i:02x}"),
                12,
            )
            .unwrap();
    }
    let fork = cluster_fork(&rocks_cli.db, "rpm -q gromacs", |_, _| {
        (0, "  gromacs-4.6.5-1.el6.x86_64\n".to_string())
    });
    println!(
        "\ncluster-fork verification across {} computes: all succeeded = {}",
        fork.results.len(),
        fork.all_succeeded()
    );
    println!("\n\"...to the significant satisfaction of the professor responsible for it.\"");
}
