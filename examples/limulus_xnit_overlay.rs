//! The §5.2/§8 Limulus workflow: take a running, factory-imaged Limulus
//! HPC200, enable the XNIT repository, add the XCBC software piecemeal,
//! swap the scheduler, and keep it updated — all without reinstalling a
//! single node.
//!
//! ```sh
//! cargo run --example limulus_xnit_overlay
//! ```

use xcbc::cluster::specs::limulus_hpc200;
use xcbc::cluster::{PowerManager, PowerPolicy};
use xcbc::core::compat::check_compatibility;
use xcbc::core::deploy::limulus_factory_image;
use xcbc::core::xnit::{enable_xnit, XnitSetupMethod};
use xcbc::rpm::TransactionSet;
use xcbc::sched::{ClusterSim, JobRequest, SchedPolicy};
use xcbc::yum::{UpdateNotifier, UpdatePolicy, Yum, YumConfig};

fn main() {
    let cluster = limulus_hpc200();
    let mut head_db = limulus_factory_image();

    // The Limulus cannot take the Rocks path (diskless blades):
    let (ok, reasons) = cluster.rocks_installable();
    println!("Rocks-installable: {ok} — {}", reasons.join("; "));

    // 1. Enable XNIT via the repo RPM.
    println!("\n== 1. enable the XSEDE yum repository ==");
    let mut yum = Yum::new(YumConfig::default());
    enable_xnit(&mut yum, &mut head_db, XnitSetupMethod::RepoRpm).unwrap();
    println!(
        "  repo 'xsede' enabled, priority {}",
        yum.repository("xsede").unwrap().priority
    );

    // 2. One-time install of particular capabilities.
    println!("\n== 2. piecemeal installs ==");
    for pkg in ["gromacs", "R", "globus-connect-server"] {
        let report = yum.install(&mut head_db, &[pkg]).unwrap();
        println!(
            "  yum install {pkg}: {} packages (deps resolved)",
            report.installed.len()
        );
    }

    // 3. "with XNIT add software, change the schedulers" — swap the
    //    factory SLURM for Torque+Maui in one transaction, then prove the
    //    behavioral difference on the simulator.
    println!("\n== 3. scheduler swap ==");
    let torque_pkg = yum.solver().best_by_name("torque").unwrap().clone();
    let maui_pkg = yum.solver().best_by_name("maui").unwrap().clone();
    let mut tx = TransactionSet::new();
    tx.add_erase("slurm");
    tx.add_install(torque_pkg);
    tx.add_install(maui_pkg);
    tx.run(&mut head_db).unwrap();
    println!(
        "  slurm out, torque+maui in; factory limulus-tools still present: {}",
        head_db.is_installed("limulus-tools")
    );

    let mut sim = ClusterSim::new(3, 4, SchedPolicy::Fifo);
    sim.submit_at(0.0, JobRequest::new("wide-running", 3, 2, 1000.0, 1000.0));
    sim.submit_at(1.0, JobRequest::new("wide-blocked", 3, 4, 1000.0, 1000.0));
    let tiny = sim.submit_at(2.0, JobRequest::new("tiny", 1, 1, 30.0, 30.0));
    sim.run_until(5.0);
    println!(
        "  under FIFO the tiny job waits: started = {}",
        sim.job(tiny).unwrap().wait_s().is_some()
    );
    sim.set_policy(SchedPolicy::maui_default());
    sim.run_until(6.0);
    println!(
        "  after the Maui swap it backfills: started = {}",
        sim.job(tiny).unwrap().wait_s().is_some()
    );

    // 4. Full compatibility via the overlay.
    println!("\n== 4. complete the overlay ==");
    let missing: Vec<String> = check_compatibility(&head_db)
        .missing()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let refs: Vec<&str> = missing.iter().map(String::as_str).collect();
    yum.install(&mut head_db, &refs).unwrap();
    let compat = check_compatibility(&head_db);
    println!("  {}", compat.render().lines().next().unwrap());

    // 5. Stay current with a staged-test notifier (the paper's "more
    //    prudent action") and keep the power bill down.
    println!("\n== 5. operations ==");
    let notifier = UpdateNotifier::new(UpdatePolicy::StagedTest);
    let mut test_db = head_db.clone();
    let report = notifier
        .run_check(&mut yum, &mut head_db, Some(&mut test_db))
        .unwrap();
    println!(
        "  update check: {} pending, {} staged",
        report.pending.len(),
        report.applied.len()
    );

    let demand: Vec<u32> = (0..24)
        .map(|h| if (9..17).contains(&h) { 3 } else { 0 })
        .collect();
    let always = PowerManager::new(PowerPolicy::AlwaysOn).simulate(&cluster, &demand, 24 * 30);
    let on_demand =
        PowerManager::new(PowerPolicy::on_demand(90.0)).simulate(&cluster, &demand, 24 * 30);
    println!(
        "  power management: {:.1} kWh/month always-on vs {:.1} kWh/month on-demand ({:.0}% saved)",
        always.energy_kwh,
        on_demand.energy_kwh,
        (1.0 - on_demand.energy_kwh / always.energy_kwh) * 100.0
    );
}
