//! The full §5.1 LittleFe build, step by step: hardware assembly checks,
//! Rocks frontend install with the XSEDE roll, insert-ethers discovery,
//! a test MPI job through Torque/Maui, Ganglia monitoring, and the final
//! compatibility verification.
//!
//! ```sh
//! cargo run --example littlefe_xcbc_build
//! ```

use xcbc::cluster::specs::littlefe_modified;
use xcbc::cluster::thermal::LITTLEFE_BAY_CLEARANCE_MM;
use xcbc::cluster::{check_node_thermals, ClusterMonitor, MetricKind};
use xcbc::core::compat::check_compatibility;
use xcbc::core::roll::xsede_roll;
use xcbc::modules::{generate_from_rpmdb, ModuleSystem};
use xcbc::rocks::{standard_rolls, ClusterInstall, RocksCli};
use xcbc::sched::{JobRequest, ResourceManager, TorqueServer};
use xcbc::sim::SimTime;

fn main() {
    let cluster = littlefe_modified();

    // 1. Hardware sanity: the §5.1 modifications must hold together.
    println!("== 1. hardware checks ==");
    for node in &cluster.nodes {
        let issues = check_node_thermals(node, LITTLEFE_BAY_CLEARANCE_MM);
        assert!(issues.is_empty(), "{}: {:?}", node.hostname, issues);
    }
    println!(
        "  6x {} with {} — thermals ok, power budget ok: {}",
        cluster.nodes[0].cpu.name,
        cluster.nodes[0].cooler.name,
        cluster.power_budget_ok()
    );

    // 2. Bare-metal install: Rocks 6.1.1 + the XSEDE roll.
    println!("\n== 2. Rocks install with XSEDE roll ==");
    let mut rolls = standard_rolls();
    rolls.push(xsede_roll());
    let install = ClusterInstall::new(cluster.clone(), rolls);
    let report = install.run().expect("diskful LittleFe installs");
    println!("{}", report.timeline.render());

    // 3. The cluster database insert-ethers built.
    println!("== 3. cluster database ==");
    let mut cli = RocksCli::with_db(report.rocks_db);
    println!("{}", cli.run("rocks list host").unwrap());

    // 4. Submit an MPI job across all 12 cores.
    println!("== 4. test job through Torque + Maui ==");
    let mut torque = TorqueServer::with_maui("littlefe", 5, 2);
    let id = torque.qsub(JobRequest::new("hpl-smoke", 5, 2, 600.0, 300.0));
    torque.drain();
    println!("  job {id}: {}", torque.metrics().render_row());

    // 5. Ganglia-style monitoring.
    println!("\n== 5. monitoring ==");
    let monitor = ClusterMonitor::new(16);
    for (i, node) in cluster.nodes.iter().enumerate() {
        monitor.publish(
            &node.hostname,
            MetricKind::LoadOne,
            SimTime::from_secs(60),
            1.5 + i as f64 * 0.1,
        );
        monitor.publish(
            &node.hostname,
            MetricKind::CpuPercent,
            SimTime::from_secs(60),
            85.0,
        );
    }
    println!(
        "  {} nodes reporting; cluster mean load {:.2}",
        monitor.node_count(),
        monitor.cluster_mean(MetricKind::LoadOne).unwrap()
    );

    // 6. Environment modules generated from the installed software
    //    (the Montana State integration).
    println!("\n== 6. environment modules ==");
    let compute_db = &report.node_dbs["compute-0-0"];
    let mut modules = ModuleSystem::new();
    let generated = generate_from_rpmdb(compute_db);
    let count = generated.len();
    for m in generated {
        modules.add(m);
    }
    println!("  {count} modulefiles generated from the node's RPM database");

    // 7. Final verification: the node runs-alike with Stampede.
    println!("\n== 7. XSEDE compatibility ==");
    let compat = check_compatibility(compute_db);
    println!("  {}", compat.render().lines().next().unwrap());
    assert!(compat.is_compatible());
    println!("\nLittleFe is an XSEDE-compatible basic cluster.");
}
