//! Run the real Linpack implementation on this machine and compare the
//! *shape* against Table 5: GFLOPS grow with problem size and threads,
//! every run passes the residual check, and the analytic model maps the
//! two deskside clusters' Rpeak to their paper Rmax values.
//!
//! ```sh
//! cargo run --release --example linpack
//! ```

use xcbc::hpl::{run_hpl, sweep_block_size, EfficiencyModel, HplConfig};

fn main() {
    println!("HPL on this host (shape check — not 2015 hardware):\n");
    println!(
        "{:<10} {:>6} {:>8} {:>12} {:>10}",
        "N", "NB", "threads", "seconds", "GFLOPS"
    );
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    for n in [256usize, 512, 1024] {
        for t in [1usize, threads] {
            let r = run_hpl(&HplConfig {
                n,
                nb: 64,
                threads: t,
                seed: 7,
            });
            assert!(r.passed, "residual {} at N={n}", r.residual);
            println!(
                "{:<10} {:>6} {:>8} {:>12.3} {:>10.3}",
                n, 64, t, r.seconds, r.gflops
            );
        }
    }

    println!("\nBlock-size sweep at N=512 (HPL.dat tuning):");
    let (points, best) = sweep_block_size(512, &[8, 16, 32, 64, 128], 1, 11);
    for p in &points {
        println!(
            "  NB={:<4} {:>8.3} GFLOPS {}",
            p.nb,
            p.gflops,
            if p.nb == best { "<= best" } else { "" }
        );
    }

    println!("\nAnalytic Rmax model vs Table 5:");
    let m = EfficiencyModel::gigabit_deskside();
    let rows = [
        (
            "LittleFe (6 nodes)",
            537.6,
            6u32,
            40_000usize,
            403.2,
            "estimated at 75% in-paper",
        ),
        (
            "Limulus HPC200 (4 nodes)",
            793.6,
            4,
            64_000,
            498.3,
            "measured by Basement Supercomputing",
        ),
    ];
    for (name, rpeak, nodes, n, paper, note) in rows {
        let rmax = m.rmax_gflops(rpeak, nodes, n);
        println!(
            "  {:<26} Rpeak {:>6.1}  model Rmax {:>6.1}  paper {:>6.1}  ({note})",
            name, rpeak, rmax, paper
        );
    }
}
