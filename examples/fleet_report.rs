//! The §4 adoption story: regenerate Table 3, check the fleet totals,
//! and project the half-petaflop 2020 goal.
//!
//! ```sh
//! cargo run --example fleet_report
//! ```

use xcbc::core::report::render_table3;
use xcbc::core::sites::{deployed_sites, fleet_totals, years_to_half_petaflops, AdoptionPath};

fn main() {
    print!("{}", render_table3());

    let totals = fleet_totals();
    println!(
        "\n\"Clusters making use of XCBC or XNIT total almost 50 TFLOPS\": {:.2} TF across {} sites",
        totals.rpeak_tflops, totals.sites
    );

    let from_scratch = deployed_sites()
        .iter()
        .filter(|s| s.path == AdoptionPath::XcbcFromScratch)
        .count();
    println!(
        "Adoption split: {} from-scratch XCBC builds, {} XNIT repository sites",
        from_scratch,
        totals.sites - from_scratch
    );

    let msi = deployed_sites().iter().filter(|s| s.msi_or_epscor).count();
    println!(
        "MSI/EPSCoR institutions: {}/{} (the paper: 'all but one')",
        msi, totals.sites
    );

    println!("\nProjection to the half-petaflop goal (end of 2020):");
    for growth_pct in [30u32, 50, 80] {
        let growth = 1.0 + growth_pct as f64 / 100.0;
        match years_to_half_petaflops(totals.rpeak_tflops, growth) {
            Some(years) => println!(
                "  at {growth_pct:>3}% annual growth: {years} years ({})",
                if years <= 5 {
                    "goal met by 2020"
                } else {
                    "misses 2020"
                }
            ),
            None => println!("  at {growth_pct:>3}% annual growth: never"),
        }
    }
}
