//! The §6 training scenario: a class of students each works through the
//! "Building and administering a Beowulf-style cluster with LittleFe and
//! the XCBC" curriculum — one on the modified LittleFe, one on the stock
//! v4 (to see why it fails), one on the Limulus.
//!
//! ```sh
//! cargo run --example training_lab
//! ```

use xcbc::cluster::specs::{limulus_hpc200, littlefe_modified, littlefe_v4};
use xcbc::core::training::{littlefe_curriculum, LabSession};

fn main() {
    let curriculum = littlefe_curriculum();
    println!("Curriculum: {}\n", curriculum.title);

    let stations = [
        ("ada", littlefe_modified()),
        ("grace", littlefe_v4()),
        ("linus", limulus_hpc200()),
    ];

    let mut grades = Vec::new();
    for (student, cluster) in stations {
        let mut lab = LabSession::new(student, cluster);
        lab.run(&curriculum);
        print!("{}", lab.render());
        println!();
        grades.push((student, lab.grade()));
    }

    println!("Class summary:");
    for (student, grade) in &grades {
        println!("  {:<8} {:>5.0}%", student, grade * 100.0);
    }
    println!(
        "\nThe station with the §5.1 hardware modifications (mSATA disks, Haswell\n\
         Celerons, low-profile coolers, per-node PSUs) is the only one that can\n\
         complete the full XCBC bare-metal curriculum — exactly the paper's point."
    );
}
