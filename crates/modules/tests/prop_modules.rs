//! Property tests: module load/unload is always a perfect environment
//! inverse, in any order, for random modulefiles.

use proptest::prelude::*;
use xcbc_modules::{Environment, Modulefile};

fn modfile(idx: usize, actions: &[(bool, u8, u8)]) -> Modulefile {
    let mut m = Modulefile::new(&format!("mod{idx}"), "1.0");
    for (i, (is_path, var, val)) in actions.iter().enumerate() {
        let var = format!("VAR{}", var % 4);
        let val = format!("/opt/m{idx}/{i}/{val}");
        m = if *is_path {
            m.prepend_path(&var, &val)
        } else {
            m.setenv(&var, &val)
        };
    }
    m
}

proptest! {
    /// apply-then-revert restores the exact starting environment as long
    /// as the module's setenv targets don't pre-exist (modules' own
    /// documented caveat; prepend-path is always invertible).
    #[test]
    fn apply_revert_roundtrip(
        actions in proptest::collection::vec((any::<bool>(), 0u8..4, 0u8..8), 0..8),
    ) {
        // use only prepend-path actions for the strict-inverse property
        let path_only: Vec<(bool, u8, u8)> =
            actions.iter().map(|(_, a, b)| (true, *a, *b)).collect();
        let m = modfile(0, &path_only);
        let base = Environment::default_login();
        let mut env = base.clone();
        m.apply(&mut env);
        m.revert(&mut env);
        prop_assert_eq!(env, base);
    }

    /// A stack of modules loaded then unloaded in reverse order restores
    /// the starting environment.
    #[test]
    fn stacked_modules_unwind(count in 1usize..6) {
        use xcbc_modules::ModuleSystem;
        let mut sys = ModuleSystem::new();
        for i in 0..count {
            sys.add(
                Modulefile::new(&format!("m{i}"), "1")
                    .prepend_path("PATH", &format!("/opt/m{i}/bin"))
                    .prepend_path("LD_LIBRARY_PATH", &format!("/opt/m{i}/lib")),
            );
        }
        let base = sys.env().clone();
        for i in 0..count {
            sys.load(&format!("m{i}")).unwrap();
        }
        prop_assert_eq!(sys.list().len(), count);
        for i in (0..count).rev() {
            sys.unload(&format!("m{i}")).unwrap();
        }
        prop_assert_eq!(sys.env(), &base);
    }
}
