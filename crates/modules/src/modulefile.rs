//! Modulefiles: named, versioned bundles of environment actions.

use crate::env::Environment;

/// One action a modulefile performs on load (reversed on unload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleAction {
    PrependPath { var: String, value: String },
    Setenv { var: String, value: String },
}

/// A modulefile, addressed as `name/version`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Modulefile {
    pub name: String,
    pub version: String,
    pub actions: Vec<ModuleAction>,
    /// Modules that may not be loaded at the same time
    /// (`conflict openmpi` in an mpich modulefile).
    pub conflicts: Vec<String>,
    /// Module names that must already be loaded (`prereq`).
    pub prereqs: Vec<String>,
    /// Help text.
    pub whatis: String,
}

impl Modulefile {
    pub fn new(name: &str, version: &str) -> Self {
        Modulefile {
            name: name.to_string(),
            version: version.to_string(),
            actions: Vec::new(),
            conflicts: Vec::new(),
            prereqs: Vec::new(),
            whatis: String::new(),
        }
    }

    /// Full `name/version` key.
    pub fn key(&self) -> String {
        format!("{}/{}", self.name, self.version)
    }

    pub fn prepend_path(mut self, var: &str, value: &str) -> Self {
        self.actions.push(ModuleAction::PrependPath {
            var: var.to_string(),
            value: value.to_string(),
        });
        self
    }

    pub fn setenv(mut self, var: &str, value: &str) -> Self {
        self.actions.push(ModuleAction::Setenv {
            var: var.to_string(),
            value: value.to_string(),
        });
        self
    }

    pub fn conflict(mut self, name: &str) -> Self {
        self.conflicts.push(name.to_string());
        self
    }

    pub fn prereq(mut self, name: &str) -> Self {
        self.prereqs.push(name.to_string());
        self
    }

    pub fn whatis(mut self, text: &str) -> Self {
        self.whatis = text.to_string();
        self
    }

    /// Apply the load actions to an environment.
    pub fn apply(&self, env: &mut Environment) {
        for a in &self.actions {
            match a {
                ModuleAction::PrependPath { var, value } => env.prepend_path(var, value),
                ModuleAction::Setenv { var, value } => env.set(var, value),
            }
        }
    }

    /// Reverse the load actions.
    pub fn revert(&self, env: &mut Environment) {
        for a in &self.actions {
            match a {
                ModuleAction::PrependPath { var, value } => env.remove_path(var, value),
                ModuleAction::Setenv { var, .. } => {
                    env.unset(var);
                }
            }
        }
    }

    /// Render in Tcl modulefile syntax.
    pub fn render(&self) -> String {
        let mut out = String::from("#%Module1.0\n");
        if !self.whatis.is_empty() {
            out.push_str(&format!("module-whatis \"{}\"\n", self.whatis));
        }
        for c in &self.conflicts {
            out.push_str(&format!("conflict {c}\n"));
        }
        for p in &self.prereqs {
            out.push_str(&format!("prereq {p}\n"));
        }
        for a in &self.actions {
            match a {
                ModuleAction::PrependPath { var, value } => {
                    out.push_str(&format!("prepend-path {var} {value}\n"))
                }
                ModuleAction::Setenv { var, value } => {
                    out.push_str(&format!("setenv {var} {value}\n"))
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn openmpi() -> Modulefile {
        Modulefile::new("openmpi", "1.6.5")
            .whatis("Open MPI message passing library")
            .prepend_path("PATH", "/usr/lib64/openmpi/bin")
            .prepend_path("LD_LIBRARY_PATH", "/usr/lib64/openmpi/lib")
            .setenv("MPI_HOME", "/usr/lib64/openmpi")
            .conflict("mpich2")
    }

    #[test]
    fn apply_then_revert_roundtrips() {
        let m = openmpi();
        let base = Environment::default_login();
        let mut env = base.clone();
        m.apply(&mut env);
        assert!(env.path_contains("PATH", "/usr/lib64/openmpi/bin"));
        assert_eq!(env.get("MPI_HOME"), Some("/usr/lib64/openmpi"));
        m.revert(&mut env);
        assert_eq!(env, base, "revert must be a perfect inverse");
    }

    #[test]
    fn key_format() {
        assert_eq!(openmpi().key(), "openmpi/1.6.5");
    }

    #[test]
    fn render_tcl_syntax() {
        let text = openmpi().render();
        assert!(text.starts_with("#%Module1.0"));
        assert!(text.contains("prepend-path PATH /usr/lib64/openmpi/bin"));
        assert!(text.contains("setenv MPI_HOME /usr/lib64/openmpi"));
        assert!(text.contains("conflict mpich2"));
        assert!(text.contains("module-whatis"));
    }
}
