//! The module command: avail/load/unload/list over a modulefile tree.

use crate::env::Environment;
use crate::modulefile::Modulefile;
use std::collections::BTreeMap;
use xcbc_rpm::RpmDb;

/// Errors from module operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleError {
    /// No modulefile matches the request.
    NotFound(String),
    /// Already loaded.
    AlreadyLoaded(String),
    /// Not currently loaded.
    NotLoaded(String),
    /// A loaded module conflicts with the request.
    Conflict { requested: String, with: String },
    /// A prereq is not loaded.
    MissingPrereq { requested: String, needs: String },
}

impl std::fmt::Display for ModuleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModuleError::NotFound(m) => write!(f, "module {m} not found"),
            ModuleError::AlreadyLoaded(m) => write!(f, "module {m} is already loaded"),
            ModuleError::NotLoaded(m) => write!(f, "module {m} is not loaded"),
            ModuleError::Conflict { requested, with } => {
                write!(f, "{requested} conflicts with loaded module {with}")
            }
            ModuleError::MissingPrereq { requested, needs } => {
                write!(f, "{requested} requires module {needs} to be loaded first")
            }
        }
    }
}

impl std::error::Error for ModuleError {}

/// The module system: available modulefiles plus the session state.
#[derive(Debug, Default)]
pub struct ModuleSystem {
    available: BTreeMap<String, Modulefile>,
    loaded: Vec<String>,
    env: Environment,
}

impl ModuleSystem {
    pub fn new() -> Self {
        ModuleSystem {
            available: BTreeMap::new(),
            loaded: Vec::new(),
            env: Environment::default_login(),
        }
    }

    /// Register a modulefile.
    pub fn add(&mut self, m: Modulefile) {
        self.available.insert(m.key(), m);
    }

    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// `module avail` — sorted keys, optionally filtered by prefix.
    pub fn avail(&self, prefix: Option<&str>) -> Vec<&str> {
        self.available
            .keys()
            .filter(|k| prefix.map(|p| k.starts_with(p)).unwrap_or(true))
            .map(String::as_str)
            .collect()
    }

    /// `module list` — loaded modules in load order.
    pub fn list(&self) -> &[String] {
        &self.loaded
    }

    /// Resolve a request: exact `name/version`, or bare `name` → highest
    /// version (lexicographic, as Tcl modules defaults to).
    fn resolve(&self, request: &str) -> Result<&Modulefile, ModuleError> {
        if let Some(m) = self.available.get(request) {
            return Ok(m);
        }
        self.available
            .values()
            .filter(|m| m.name == request)
            .max_by(|a, b| a.version.cmp(&b.version))
            .ok_or_else(|| ModuleError::NotFound(request.to_string()))
    }

    /// `module load <name[/version]>`.
    pub fn load(&mut self, request: &str) -> Result<String, ModuleError> {
        let m = self.resolve(request)?.clone();
        let key = m.key();
        if self.loaded.contains(&key) {
            return Err(ModuleError::AlreadyLoaded(key));
        }
        // same-name different-version is an implicit conflict
        if let Some(other) = self
            .loaded
            .iter()
            .find(|k| k.split('/').next() == Some(&m.name))
        {
            return Err(ModuleError::Conflict {
                requested: key,
                with: other.clone(),
            });
        }
        for c in &m.conflicts {
            if let Some(other) = self
                .loaded
                .iter()
                .find(|k| k.split('/').next() == Some(c.as_str()))
            {
                return Err(ModuleError::Conflict {
                    requested: key,
                    with: other.clone(),
                });
            }
        }
        for p in &m.prereqs {
            let satisfied = self
                .loaded
                .iter()
                .any(|k| k.split('/').next() == Some(p.as_str()) || k == p);
            if !satisfied {
                return Err(ModuleError::MissingPrereq {
                    requested: key,
                    needs: p.clone(),
                });
            }
        }
        m.apply(&mut self.env);
        self.loaded.push(key.clone());
        Ok(key)
    }

    /// `module unload <name[/version]>`.
    pub fn unload(&mut self, request: &str) -> Result<String, ModuleError> {
        let key = self
            .loaded
            .iter()
            .find(|k| *k == request || k.split('/').next() == Some(request))
            .cloned()
            .ok_or_else(|| ModuleError::NotLoaded(request.to_string()))?;
        let m = self
            .available
            .get(&key)
            .expect("loaded implies available")
            .clone();
        m.revert(&mut self.env);
        self.loaded.retain(|k| *k != key);
        Ok(key)
    }

    /// `module purge`.
    pub fn purge(&mut self) {
        let loaded = self.loaded.clone();
        for key in loaded.into_iter().rev() {
            let _ = self.unload(&key);
        }
    }
}

/// The Montana State integration: generate a modulefile for every
/// installed package that drops files under `/opt` or `/usr/lib64/<pkg>`
/// (the XSEDE library-path convention).
pub fn generate_from_rpmdb(db: &RpmDb) -> Vec<Modulefile> {
    let mut out = Vec::new();
    for ip in db.iter() {
        let p = &ip.package;
        let bin_dirs: Vec<&String> = p
            .files
            .iter()
            .filter(|f| f.ends_with("/bin") || f.contains("/bin/"))
            .collect();
        if bin_dirs.is_empty() {
            continue;
        }
        let mut m = Modulefile::new(p.name(), &p.evr().version).whatis(&p.summary);
        for f in bin_dirs {
            let dir = if f.ends_with("/bin") {
                f.clone()
            } else {
                // strip the binary file name
                match f.rfind('/') {
                    Some(idx) => f[..idx].to_string(),
                    None => continue,
                }
            };
            m = m.prepend_path("PATH", &dir);
        }
        out.push(m);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_rpm::PackageBuilder;

    fn system() -> ModuleSystem {
        let mut s = ModuleSystem::new();
        s.add(
            Modulefile::new("openmpi", "1.6.5")
                .prepend_path("PATH", "/usr/lib64/openmpi/bin")
                .conflict("mpich2"),
        );
        s.add(Modulefile::new("openmpi", "1.8.1").prepend_path("PATH", "/opt/openmpi-1.8/bin"));
        s.add(
            Modulefile::new("mpich2", "1.4.1")
                .prepend_path("PATH", "/usr/lib64/mpich2/bin")
                .conflict("openmpi"),
        );
        s.add(Modulefile::new("gromacs", "4.6.5").prereq("openmpi"));
        s
    }

    #[test]
    fn avail_sorted_and_filtered() {
        let s = system();
        assert_eq!(s.avail(None).len(), 4);
        assert_eq!(
            s.avail(Some("openmpi")),
            vec!["openmpi/1.6.5", "openmpi/1.8.1"]
        );
    }

    #[test]
    fn load_exact_and_default_version() {
        let mut s = system();
        assert_eq!(s.load("openmpi/1.6.5").unwrap(), "openmpi/1.6.5");
        s.unload("openmpi").unwrap();
        // bare name resolves to highest version
        assert_eq!(s.load("openmpi").unwrap(), "openmpi/1.8.1");
    }

    #[test]
    fn double_load_rejected() {
        let mut s = system();
        s.load("openmpi/1.6.5").unwrap();
        assert_eq!(
            s.load("openmpi/1.6.5"),
            Err(ModuleError::AlreadyLoaded("openmpi/1.6.5".into()))
        );
        // another version of the same name is a conflict
        assert!(matches!(
            s.load("openmpi/1.8.1"),
            Err(ModuleError::Conflict { .. })
        ));
    }

    #[test]
    fn conflicts_enforced_both_ways() {
        let mut s = system();
        s.load("openmpi/1.6.5").unwrap();
        assert!(matches!(
            s.load("mpich2"),
            Err(ModuleError::Conflict { .. })
        ));
        s.unload("openmpi").unwrap();
        s.load("mpich2").unwrap();
        assert!(matches!(
            s.load("openmpi/1.6.5"),
            Err(ModuleError::Conflict { .. })
        ));
    }

    #[test]
    fn prereq_enforced() {
        let mut s = system();
        assert_eq!(
            s.load("gromacs"),
            Err(ModuleError::MissingPrereq {
                requested: "gromacs/4.6.5".into(),
                needs: "openmpi".into()
            })
        );
        s.load("openmpi/1.6.5").unwrap();
        assert!(s.load("gromacs").is_ok());
    }

    #[test]
    fn unload_restores_env_and_purge_clears() {
        let mut s = system();
        let base = s.env().clone();
        s.load("openmpi/1.6.5").unwrap();
        s.load("gromacs").unwrap();
        assert_eq!(s.list().len(), 2);
        s.purge();
        assert!(s.list().is_empty());
        assert_eq!(s.env(), &base);
    }

    #[test]
    fn unload_not_loaded_errors() {
        let mut s = system();
        assert_eq!(
            s.unload("openmpi"),
            Err(ModuleError::NotLoaded("openmpi".into()))
        );
    }

    #[test]
    fn load_unknown_errors() {
        let mut s = system();
        assert_eq!(
            s.load("matlab"),
            Err(ModuleError::NotFound("matlab".into()))
        );
    }

    #[test]
    fn generation_from_rpmdb() {
        let mut db = RpmDb::new();
        db.install(
            PackageBuilder::new("gromacs", "4.6.5", "2.el6")
                .summary("GROMACS molecular dynamics")
                .file("/usr/lib64/gromacs/bin")
                .build(),
        );
        db.install(
            PackageBuilder::new("libonly", "1.0", "1")
                .file("/usr/lib64/libx.so")
                .build(),
        );
        let mods = generate_from_rpmdb(&db);
        assert_eq!(mods.len(), 1, "only packages with bin dirs get modules");
        assert_eq!(mods[0].name, "gromacs");
        let mut s = ModuleSystem::new();
        s.add(mods[0].clone());
        s.load("gromacs").unwrap();
        assert!(s.env().path_contains("PATH", "/usr/lib64/gromacs/bin"));
    }
}
