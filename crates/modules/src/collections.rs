//! Module collections (`module save` / `module restore`) and
//! `module show` — the workflow bits users carry between clusters.
//!
//! The paper's portability argument ("A user's knowledge of software,
//! system commands, etc., becomes portable from one cluster built with
//! XCBC to another") is strongest when a user can save their module set
//! on a campus cluster and restore it on an XSEDE machine.

use crate::modulefile::Modulefile;
use crate::system::{ModuleError, ModuleSystem};
use std::collections::BTreeMap;

/// A named, saved set of loaded modules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Collection {
    pub name: String,
    /// Module keys in load order.
    pub modules: Vec<String>,
}

/// Storage for collections (`~/.module/` equivalent).
#[derive(Debug, Default)]
pub struct CollectionStore {
    collections: BTreeMap<String, Collection>,
}

impl CollectionStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// `module save <name>`: snapshot the currently loaded set.
    pub fn save(&mut self, name: &str, system: &ModuleSystem) -> &Collection {
        let c = Collection {
            name: name.to_string(),
            modules: system.list().to_vec(),
        };
        self.collections.insert(name.to_string(), c);
        &self.collections[name]
    }

    /// `module restore <name>`: purge, then load the saved set in order.
    /// Returns the keys loaded. Fails on the first module the target
    /// system lacks — the portability check.
    pub fn restore(
        &self,
        name: &str,
        system: &mut ModuleSystem,
    ) -> Result<Vec<String>, ModuleError> {
        let c = self
            .collections
            .get(name)
            .ok_or_else(|| ModuleError::NotFound(format!("collection {name}")))?;
        system.purge();
        let mut loaded = Vec::new();
        for key in &c.modules {
            loaded.push(system.load(key)?);
        }
        Ok(loaded)
    }

    pub fn list(&self) -> Vec<&str> {
        self.collections.keys().map(String::as_str).collect()
    }
}

/// `module show <name>`: render what loading would do.
pub fn module_show(m: &Modulefile) -> String {
    let mut out = format!(
        "-------------------------------------------------------------------\n{}:\n\n",
        m.key()
    );
    if !m.whatis.is_empty() {
        out.push_str(&format!("module-whatis\t{}\n", m.whatis));
    }
    for c in &m.conflicts {
        out.push_str(&format!("conflict\t{c}\n"));
    }
    for p in &m.prereqs {
        out.push_str(&format!("prereq\t\t{p}\n"));
    }
    for a in &m.actions {
        match a {
            crate::modulefile::ModuleAction::PrependPath { var, value } => {
                out.push_str(&format!("prepend-path\t{var}\t{value}\n"))
            }
            crate::modulefile::ModuleAction::Setenv { var, value } => {
                out.push_str(&format!("setenv\t\t{var}\t{value}\n"))
            }
        }
    }
    out.push_str("-------------------------------------------------------------------\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campus_cluster() -> ModuleSystem {
        let mut s = ModuleSystem::new();
        s.add(Modulefile::new("openmpi", "1.6.5").prepend_path("PATH", "/usr/lib64/openmpi/bin"));
        s.add(Modulefile::new("gromacs", "4.6.5").prereq("openmpi"));
        s.add(Modulefile::new("R", "3.0.2").prepend_path("PATH", "/usr/lib64/R/bin"));
        s
    }

    #[test]
    fn save_restore_roundtrip() {
        let mut campus = campus_cluster();
        campus.load("openmpi").unwrap();
        campus.load("gromacs").unwrap();
        let mut store = CollectionStore::new();
        store.save("md-work", &campus);

        // restore on a *different* XCBC cluster with the same software
        let mut xsede = campus_cluster();
        let loaded = store.restore("md-work", &mut xsede).unwrap();
        assert_eq!(loaded, vec!["openmpi/1.6.5", "gromacs/4.6.5"]);
        assert_eq!(xsede.list(), campus.list());
    }

    #[test]
    fn restore_purges_first() {
        let mut s = campus_cluster();
        s.load("R").unwrap();
        let mut store = CollectionStore::new();
        let mut donor = campus_cluster();
        donor.load("openmpi").unwrap();
        store.save("mpi-only", &donor);
        store.restore("mpi-only", &mut s).unwrap();
        assert_eq!(s.list(), &["openmpi/1.6.5"]);
    }

    #[test]
    fn restore_fails_on_incompatible_cluster() {
        // the anti-portability case: a cluster NOT built with XCBC lacks
        // the software
        let mut campus = campus_cluster();
        campus.load("R").unwrap();
        let mut store = CollectionStore::new();
        store.save("stats", &campus);

        let mut bare = ModuleSystem::new(); // nothing installed
        assert!(matches!(
            store.restore("stats", &mut bare),
            Err(ModuleError::NotFound(_))
        ));
    }

    #[test]
    fn unknown_collection() {
        let store = CollectionStore::new();
        let mut s = campus_cluster();
        assert!(store.restore("nope", &mut s).is_err());
        assert!(store.list().is_empty());
    }

    #[test]
    fn show_renders_all_parts() {
        let m = Modulefile::new("openmpi", "1.6.5")
            .whatis("Open MPI")
            .prepend_path("PATH", "/usr/lib64/openmpi/bin")
            .setenv("MPI_HOME", "/usr/lib64/openmpi")
            .conflict("mpich2")
            .prereq("gcc");
        let text = module_show(&m);
        assert!(text.contains("openmpi/1.6.5"));
        assert!(text.contains("module-whatis\tOpen MPI"));
        assert!(text.contains("conflict\tmpich2"));
        assert!(text.contains("prereq\t\tgcc"));
        assert!(text.contains("prepend-path\tPATH"));
        assert!(text.contains("setenv\t\tMPI_HOME"));
    }
}
