//! # xcbc-modules — environment modules substrate
//!
//! Table 1 lists `modules` among the basics, and §4 credits the Montana
//! State administrators with "investigating how to implement software
//! from XCBC in environment modules". This crate reimplements the core
//! of Tcl environment-modules: modulefiles that mutate an environment
//! (prepend-path/setenv), `module avail/load/unload/list` semantics with
//! conflict/prereq checking, and generation of modulefiles from installed
//! RPM packages — the Montana State integration path.
//!
//! ```
//! use xcbc_modules::{Modulefile, ModuleSystem};
//!
//! let mut sys = ModuleSystem::new();
//! sys.add(Modulefile::new("openmpi", "1.6.5")
//!     .prepend_path("PATH", "/usr/lib64/openmpi/bin")
//!     .setenv("MPI_HOME", "/usr/lib64/openmpi"));
//! sys.load("openmpi/1.6.5").unwrap();
//! assert!(sys.env().get("PATH").unwrap().contains("openmpi"));
//! ```

pub mod collections;
pub mod env;
pub mod modulefile;
pub mod system;

pub use collections::{module_show, Collection, CollectionStore};
pub use env::Environment;
pub use modulefile::{ModuleAction, Modulefile};
pub use system::{generate_from_rpmdb, ModuleError, ModuleSystem};
