//! A shell environment: ordered path-list variables and scalars.

use std::collections::BTreeMap;

/// A process environment as modules sees it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Environment {
    vars: BTreeMap<String, String>,
}

impl Environment {
    pub fn new() -> Self {
        Self::default()
    }

    /// A CentOS-ish starting environment.
    pub fn default_login() -> Self {
        let mut e = Self::new();
        e.set("PATH", "/usr/local/bin:/usr/bin:/bin");
        e.set("MANPATH", "/usr/share/man");
        e
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.vars.get(key).map(String::as_str)
    }

    pub fn set(&mut self, key: &str, value: &str) {
        self.vars.insert(key.to_string(), value.to_string());
    }

    pub fn unset(&mut self, key: &str) -> bool {
        self.vars.remove(key).is_some()
    }

    /// Prepend a path element to a `:`-separated variable (no-op if the
    /// element is already the head; duplicates elsewhere are removed).
    pub fn prepend_path(&mut self, key: &str, element: &str) {
        let current = self.vars.get(key).cloned().unwrap_or_default();
        let mut parts: Vec<&str> = current
            .split(':')
            .filter(|p| !p.is_empty() && *p != element)
            .collect();
        parts.insert(0, element);
        self.vars.insert(key.to_string(), parts.join(":"));
    }

    /// Remove a path element from a `:`-separated variable. A variable
    /// left empty is unset, so `prepend_path` followed by `remove_path`
    /// is a strict inverse even when the prepend created the variable.
    pub fn remove_path(&mut self, key: &str, element: &str) {
        if let Some(current) = self.vars.get(key) {
            let parts: Vec<&str> = current
                .split(':')
                .filter(|p| !p.is_empty() && *p != element)
                .collect();
            if parts.is_empty() {
                self.vars.remove(key);
            } else {
                self.vars.insert(key.to_string(), parts.join(":"));
            }
        }
    }

    /// Does a `:`-separated variable contain an element?
    pub fn path_contains(&self, key: &str, element: &str) -> bool {
        self.vars
            .get(key)
            .map(|v| v.split(':').any(|p| p == element))
            .unwrap_or(false)
    }

    /// Variables that differ between `self` and `other`.
    pub fn diff(&self, other: &Environment) -> Vec<String> {
        let mut keys: Vec<&String> = self.vars.keys().chain(other.vars.keys()).collect();
        keys.sort();
        keys.dedup();
        keys.into_iter()
            .filter(|k| self.vars.get(*k) != other.vars.get(*k))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepend_puts_element_first() {
        let mut e = Environment::default_login();
        e.prepend_path("PATH", "/opt/gromacs/bin");
        assert!(e.get("PATH").unwrap().starts_with("/opt/gromacs/bin:"));
    }

    #[test]
    fn prepend_dedupes() {
        let mut e = Environment::new();
        e.set("PATH", "/a:/b");
        e.prepend_path("PATH", "/b");
        assert_eq!(e.get("PATH"), Some("/b:/a"));
        e.prepend_path("PATH", "/b");
        assert_eq!(e.get("PATH"), Some("/b:/a"));
    }

    #[test]
    fn prepend_to_missing_var_creates_it() {
        let mut e = Environment::new();
        e.prepend_path("LD_LIBRARY_PATH", "/usr/lib64/openmpi/lib");
        assert_eq!(e.get("LD_LIBRARY_PATH"), Some("/usr/lib64/openmpi/lib"));
    }

    #[test]
    fn remove_path_element() {
        let mut e = Environment::new();
        e.set("PATH", "/a:/b:/c");
        e.remove_path("PATH", "/b");
        assert_eq!(e.get("PATH"), Some("/a:/c"));
        e.remove_path("PATH", "/zzz"); // absent: no-op
        assert_eq!(e.get("PATH"), Some("/a:/c"));
    }

    #[test]
    fn path_contains() {
        let mut e = Environment::new();
        e.set("PATH", "/a:/bb");
        assert!(e.path_contains("PATH", "/bb"));
        assert!(!e.path_contains("PATH", "/b"));
        assert!(!e.path_contains("NOPE", "/b"));
    }

    #[test]
    fn diff_lists_changed_keys() {
        let a = Environment::default_login();
        let mut b = a.clone();
        b.set("MPI_HOME", "/usr/lib64/openmpi");
        b.prepend_path("PATH", "/x");
        let d = a.diff(&b);
        assert_eq!(d, vec!["MPI_HOME".to_string(), "PATH".to_string()]);
        assert!(a.diff(&a).is_empty());
    }
}
