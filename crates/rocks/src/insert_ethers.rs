//! `insert-ethers` — Rocks' node discovery tool.
//!
//! During a bare-metal build the administrator runs `insert-ethers` on the
//! frontend, picks an appliance type, and powers nodes on one at a time;
//! each DHCP request from an unknown MAC becomes a new host record. This
//! is the step a training lab has every student perform by hand.

use crate::database::{DbError, RocksDb};
use crate::graph::Appliance;

/// A DHCP discover as the frontend sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhcpRequest {
    pub mac: String,
    /// CPU count reported post-boot (stored in the DB on registration).
    pub cpus: u32,
}

/// An interactive insert-ethers session.
#[derive(Debug)]
pub struct InsertEthers<'a> {
    db: &'a mut RocksDb,
    appliance: Appliance,
    rack: u32,
    /// Hostnames registered during this session.
    registered: Vec<String>,
    /// MACs seen but ignored (already known).
    ignored: Vec<String>,
}

impl<'a> InsertEthers<'a> {
    /// Start a session registering nodes of `appliance` into `rack`.
    pub fn start(db: &'a mut RocksDb, appliance: Appliance, rack: u32) -> Self {
        InsertEthers {
            db,
            appliance,
            rack,
            registered: Vec::new(),
            ignored: Vec::new(),
        }
    }

    /// Handle one DHCP request: unknown MACs are registered with the next
    /// name in sequence; known MACs are ignored (the node is just
    /// rebooting).
    pub fn on_dhcp(&mut self, req: &DhcpRequest) -> Result<Option<String>, DbError> {
        if self.db.host_by_mac(&req.mac).is_some() {
            self.ignored.push(req.mac.clone());
            return Ok(None);
        }
        let record = self
            .db
            .add_host(self.appliance, self.rack, &req.mac, req.cpus)?;
        let name = record.name.clone();
        self.registered.push(name.clone());
        Ok(Some(name))
    }

    /// Names registered so far, in discovery order.
    pub fn registered(&self) -> &[String] {
        &self.registered
    }

    /// Known MACs re-seen during the session.
    pub fn ignored(&self) -> &[String] {
        &self.ignored
    }

    /// End the session, returning the registration summary.
    pub fn finish(self) -> (Vec<String>, Vec<String>) {
        (self.registered, self.ignored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> RocksDb {
        let mut db = RocksDb::new("littlefe");
        db.add_frontend("ff:ff:ff:ff:ff:ff", 2).unwrap();
        db
    }

    #[test]
    fn discovery_assigns_sequential_names() {
        let mut db = db();
        let mut session = InsertEthers::start(&mut db, Appliance::Compute, 0);
        for i in 0..5 {
            let name = session
                .on_dhcp(&DhcpRequest {
                    mac: format!("aa:bb:cc:dd:ee:{i:02x}"),
                    cpus: 2,
                })
                .unwrap();
            assert_eq!(name.as_deref(), Some(format!("compute-0-{i}").as_str()));
        }
        let (registered, ignored) = session.finish();
        assert_eq!(registered.len(), 5);
        assert!(ignored.is_empty());
        assert_eq!(db.host_count(), 6);
    }

    #[test]
    fn rebooting_known_node_ignored() {
        let mut db = db();
        let mut session = InsertEthers::start(&mut db, Appliance::Compute, 0);
        let req = DhcpRequest {
            mac: "aa:00".to_string(),
            cpus: 2,
        };
        assert!(session.on_dhcp(&req).unwrap().is_some());
        assert!(session.on_dhcp(&req).unwrap().is_none());
        assert_eq!(session.ignored().len(), 1);
        assert_eq!(session.registered().len(), 1);
    }

    #[test]
    fn frontend_mac_is_known() {
        let mut db = db();
        let mut session = InsertEthers::start(&mut db, Appliance::Compute, 0);
        let none = session
            .on_dhcp(&DhcpRequest {
                mac: "ff:ff:ff:ff:ff:ff".to_string(),
                cpus: 2,
            })
            .unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn nas_appliance_names() {
        let mut db = db();
        let mut session = InsertEthers::start(&mut db, Appliance::Nas, 2);
        let name = session
            .on_dhcp(&DhcpRequest {
                mac: "11:22".to_string(),
                cpus: 4,
            })
            .unwrap();
        assert_eq!(name.as_deref(), Some("nas-2-0"));
    }

    #[test]
    fn littlefe_lab_discovers_all_five_computes() {
        // the full §5.1 LittleFe: frontend + 5 computes
        let mut db = db();
        let mut session = InsertEthers::start(&mut db, Appliance::Compute, 0);
        for i in 0..5 {
            session
                .on_dhcp(&DhcpRequest {
                    mac: format!("littlefe-node-{i}"),
                    cpus: 2,
                })
                .unwrap();
        }
        drop(session);
        assert_eq!(db.hosts_of(Appliance::Compute).len(), 5);
        let total_cpus: u32 = db.hosts().map(|h| h.cpus).sum();
        assert_eq!(total_cpus, 12, "Table 4: LittleFe has 12 cores");
    }
}
