//! The Rocks 411 secure information service.
//!
//! 411 distributes login files (`/etc/passwd`, `/etc/group`,
//! `/etc/shadow`, auto.home maps) from the frontend to compute nodes —
//! how a user created on the frontend can log in everywhere. Table 1's
//! base roll ships it (`rocks-411`); the training curriculum's "add a
//! user" lab exercises it.

use serde::Serialize;
use std::collections::BTreeMap;

/// One distributed file with a version stamp.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SyncedFile {
    pub path: String,
    pub content: String,
    pub serial: u64,
}

/// The frontend's 411 master.
#[derive(Debug, Default)]
pub struct Master411 {
    files: BTreeMap<String, SyncedFile>,
    serial: u64,
}

/// A compute node's 411 client state.
#[derive(Debug, Clone, Default)]
pub struct Client411 {
    files: BTreeMap<String, SyncedFile>,
}

impl Master411 {
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish (or update) a file; bumps the global serial.
    pub fn publish(&mut self, path: &str, content: &str) {
        self.serial += 1;
        self.files.insert(
            path.to_string(),
            SyncedFile {
                path: path.to_string(),
                content: content.to_string(),
                serial: self.serial,
            },
        );
    }

    pub fn serial(&self) -> u64 {
        self.serial
    }

    pub fn get(&self, path: &str) -> Option<&SyncedFile> {
        self.files.get(path)
    }

    /// Files newer than a client's view (the poll a client makes).
    fn newer_than(&self, since: u64) -> Vec<&SyncedFile> {
        self.files.values().filter(|f| f.serial > since).collect()
    }
}

impl Client411 {
    pub fn new() -> Self {
        Self::default()
    }

    /// The client's highest seen serial.
    pub fn serial(&self) -> u64 {
        self.files.values().map(|f| f.serial).max().unwrap_or(0)
    }

    /// Poll the master; returns how many files were refreshed.
    pub fn poll(&mut self, master: &Master411) -> usize {
        let updates: Vec<SyncedFile> = master
            .newer_than(self.serial())
            .into_iter()
            .cloned()
            .collect();
        let n = updates.len();
        for f in updates {
            self.files.insert(f.path.clone(), f);
        }
        n
    }

    pub fn get(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(|f| f.content.as_str())
    }

    /// Is this client fully synchronized?
    pub fn in_sync(&self, master: &Master411) -> bool {
        master.newer_than(self.serial()).is_empty()
    }
}

/// The curriculum lab: add a user on the frontend and verify login data
/// reaches every node. Returns the nodes now carrying the user.
pub fn add_user_lab(
    master: &mut Master411,
    clients: &mut BTreeMap<String, Client411>,
    username: &str,
    uid: u32,
) -> Vec<String> {
    let passwd_line = format!("{username}:x:{uid}:{uid}::/export/home/{username}:/bin/bash\n");
    let current = master
        .get("/etc/passwd")
        .map(|f| f.content.clone())
        .unwrap_or_default();
    master.publish("/etc/passwd", &(current + &passwd_line));
    let mut reached = Vec::new();
    for (host, client) in clients.iter_mut() {
        client.poll(master);
        if client
            .get("/etc/passwd")
            .map(|c| c.contains(username))
            .unwrap_or(false)
        {
            reached.push(host.clone());
        }
    }
    reached
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_poll() {
        let mut master = Master411::new();
        master.publish("/etc/passwd", "root:x:0:0::/root:/bin/bash\n");
        let mut client = Client411::new();
        assert!(!client.in_sync(&master));
        assert_eq!(client.poll(&master), 1);
        assert!(client.in_sync(&master));
        assert!(client.get("/etc/passwd").unwrap().contains("root"));
        // idle poll transfers nothing
        assert_eq!(client.poll(&master), 0);
    }

    #[test]
    fn updates_propagate_incrementally() {
        let mut master = Master411::new();
        master.publish("/etc/passwd", "root\n");
        master.publish("/etc/group", "wheel\n");
        let mut client = Client411::new();
        client.poll(&master);
        master.publish("/etc/passwd", "root\nalice\n");
        assert_eq!(client.poll(&master), 1, "only the changed file refetches");
        assert!(client.get("/etc/passwd").unwrap().contains("alice"));
    }

    #[test]
    fn add_user_reaches_all_nodes() {
        let mut master = Master411::new();
        master.publish("/etc/passwd", "root:x:0:0::/root:/bin/bash\n");
        let mut clients: BTreeMap<String, Client411> = (0..5)
            .map(|i| (format!("compute-0-{i}"), Client411::new()))
            .collect();
        let reached = add_user_lab(&mut master, &mut clients, "student1", 500);
        assert_eq!(reached.len(), 5);
        for c in clients.values() {
            assert!(c.get("/etc/passwd").unwrap().contains("student1:x:500"));
            assert!(
                c.get("/etc/passwd").unwrap().contains("root"),
                "old entries kept"
            );
        }
    }

    #[test]
    fn stale_client_catches_up_on_everything() {
        let mut master = Master411::new();
        for i in 0..4 {
            master.publish(&format!("/etc/file{i}"), "x");
        }
        let mut late = Client411::new();
        assert_eq!(late.poll(&master), 4);
        assert_eq!(late.serial(), master.serial());
    }
}
