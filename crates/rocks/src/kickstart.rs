//! Kickstart profile generation.
//!
//! Rocks turns the graph traversal for a host into an anaconda kickstart:
//! partitioning, package list, %post scripts. The hard constraint the
//! paper leans on: **"Rocks does not support diskless installation"** —
//! profile generation fails for a diskless node, which is exactly why the
//! modified LittleFe adds a Crucial mSATA drive per node.

use crate::graph::{Appliance, GraphError, KickstartGraph};
use serde::Serialize;
use xcbc_cluster::NodeSpec;

/// One partition line.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Partition {
    pub mount: String,
    pub size_mb: u64,
    pub grow: bool,
}

/// A generated kickstart profile for one node.
#[derive(Debug, Clone, Serialize)]
pub struct KickstartProfile {
    pub hostname: String,
    pub appliance: Appliance,
    pub partitions: Vec<Partition>,
    pub packages: Vec<String>,
    pub post_scripts: Vec<String>,
    /// Estimated install payload in bytes.
    pub payload_bytes: u64,
}

/// Why profile generation failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KickstartError {
    /// Rocks cannot install a diskless node.
    DisklessUnsupported { hostname: String },
    /// The node's disk cannot hold the payload plus the standard layout.
    InsufficientDisk {
        hostname: String,
        need_gb: f64,
        have_gb: u32,
    },
    /// Graph traversal failed.
    Graph(GraphError),
}

impl std::fmt::Display for KickstartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KickstartError::DisklessUnsupported { hostname } => write!(
                f,
                "{hostname}: Rocks does not support diskless installation"
            ),
            KickstartError::InsufficientDisk {
                hostname,
                need_gb,
                have_gb,
            } => write!(
                f,
                "{hostname}: needs {need_gb:.1} GB but only {have_gb} GB of disk present"
            ),
            KickstartError::Graph(e) => write!(f, "graph traversal failed: {e}"),
        }
    }
}

impl std::error::Error for KickstartError {}

impl From<GraphError> for KickstartError {
    fn from(e: GraphError) -> Self {
        KickstartError::Graph(e)
    }
}

/// Bytes-per-package estimate when the graph only carries names
/// (25 MB — the CentOS 6 mean).
const EST_PACKAGE_BYTES: u64 = 25 << 20;

/// Disk layout Rocks uses: /boot, swap, /, /var, rest to /export
/// (frontend) or /state/partition1 (compute).
fn standard_partitions(appliance: Appliance) -> Vec<Partition> {
    let mut parts = vec![
        Partition {
            mount: "/boot".into(),
            size_mb: 500,
            grow: false,
        },
        Partition {
            mount: "swap".into(),
            size_mb: 1024,
            grow: false,
        },
        Partition {
            mount: "/".into(),
            size_mb: 16 << 10,
            grow: false,
        },
        Partition {
            mount: "/var".into(),
            size_mb: 4 << 10,
            grow: false,
        },
    ];
    parts.push(match appliance {
        Appliance::Frontend => Partition {
            mount: "/export".into(),
            size_mb: 0,
            grow: true,
        },
        _ => Partition {
            mount: "/state/partition1".into(),
            size_mb: 0,
            grow: true,
        },
    });
    parts
}

/// Generate the kickstart for one node.
pub fn generate(
    graph: &KickstartGraph,
    node: &NodeSpec,
    appliance: Appliance,
) -> Result<KickstartProfile, KickstartError> {
    if node.is_diskless() {
        return Err(KickstartError::DisklessUnsupported {
            hostname: node.hostname.clone(),
        });
    }
    let packages = graph.packages_for(appliance)?;
    let post_scripts = graph.post_scripts_for(appliance)?;
    let partitions = standard_partitions(appliance);
    let payload_bytes = packages.len() as u64 * EST_PACKAGE_BYTES;

    let fixed_mb: u64 = partitions.iter().map(|p| p.size_mb).sum();
    let need_gb = fixed_mb as f64 / 1024.0 + payload_bytes as f64 / (1 << 30) as f64;
    let have_gb = node.disk_capacity_gb();
    if need_gb > have_gb as f64 {
        return Err(KickstartError::InsufficientDisk {
            hostname: node.hostname.clone(),
            need_gb,
            have_gb,
        });
    }

    Ok(KickstartProfile {
        hostname: node.hostname.clone(),
        appliance,
        partitions,
        packages,
        post_scripts,
        payload_bytes,
    })
}

impl KickstartProfile {
    /// Render in kickstart syntax (abridged).
    pub fn render(&self) -> String {
        let mut out = format!(
            "# kickstart for {} ({})\n",
            self.hostname,
            self.appliance.label()
        );
        out.push_str("install\ntext\nreboot\n\n# partitioning\nclearpart --all\n");
        for p in &self.partitions {
            if p.grow {
                out.push_str(&format!("part {} --size=1 --grow\n", p.mount));
            } else {
                out.push_str(&format!("part {} --size={}\n", p.mount, p.size_mb));
            }
        }
        out.push_str("\n%packages\n");
        for pkg in &self.packages {
            out.push_str(&format!("{pkg}\n"));
        }
        out.push_str("%end\n\n%post\n");
        for s in &self.post_scripts {
            out.push_str(&format!("# {s}\n"));
        }
        out.push_str("%end\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_cluster::specs::{limulus_hpc200, littlefe_modified, littlefe_v4};

    #[test]
    fn modified_littlefe_nodes_generate() {
        let g = KickstartGraph::standard();
        let c = littlefe_modified();
        for (i, n) in c.nodes.iter().enumerate() {
            let appliance = if i == 0 {
                Appliance::Frontend
            } else {
                Appliance::Compute
            };
            let ks = generate(&g, n, appliance).unwrap();
            assert!(!ks.packages.is_empty());
            assert_eq!(ks.partitions.len(), 5);
        }
    }

    #[test]
    fn diskless_limulus_blade_rejected() {
        let g = KickstartGraph::standard();
        let c = limulus_hpc200();
        let blade = c.compute_nodes().next().unwrap();
        let err = generate(&g, blade, Appliance::Compute).unwrap_err();
        assert!(matches!(err, KickstartError::DisklessUnsupported { .. }));
        assert!(err.to_string().contains("diskless"));
    }

    #[test]
    fn diskless_v4_littlefe_rejected() {
        let g = KickstartGraph::standard();
        let c = littlefe_v4();
        let node = c.compute_nodes().next().unwrap();
        assert!(generate(&g, node, Appliance::Compute).is_err());
    }

    #[test]
    fn frontend_partitions_export_computes_state() {
        let g = KickstartGraph::standard();
        let c = littlefe_modified();
        let fe = generate(&g, c.frontend().unwrap(), Appliance::Frontend).unwrap();
        assert!(fe.partitions.iter().any(|p| p.mount == "/export" && p.grow));
        let co = generate(&g, c.compute_nodes().next().unwrap(), Appliance::Compute).unwrap();
        assert!(co
            .partitions
            .iter()
            .any(|p| p.mount == "/state/partition1" && p.grow));
    }

    #[test]
    fn insufficient_disk_detected() {
        let g = KickstartGraph::standard();
        let tiny_disk = xcbc_cluster::hw::DiskDrive {
            name: "tiny",
            kind: xcbc_cluster::hw::DiskKind::MSata,
            capacity_gb: 8,
            watts: 1.0,
            needs_bay: false,
        };
        let node = xcbc_cluster::NodeSpec::new("n0", xcbc_cluster::NodeRole::Compute)
            .disk(tiny_disk)
            .build();
        let err = generate(&g, &node, Appliance::Compute).unwrap_err();
        assert!(matches!(err, KickstartError::InsufficientDisk { .. }));
    }

    #[test]
    fn render_contains_sections() {
        let g = KickstartGraph::standard();
        let c = littlefe_modified();
        let ks = generate(&g, c.frontend().unwrap(), Appliance::Frontend).unwrap();
        let text = ks.render();
        assert!(text.contains("%packages"));
        assert!(text.contains("%post"));
        assert!(text.contains("part /export --size=1 --grow"));
        assert!(text.contains("rocks-base"));
    }
}
