//! The bare-metal cluster install workflow.
//!
//! §3: "Using the XSEDE roll during the Rocks cluster install will add
//! the packages necessary for an XSEDE-compatible basic cluster." This
//! module runs the whole "all at once, from scratch" flow on a simulated
//! cluster: installability checks, frontend install, insert-ethers
//! discovery, per-node kickstart, package installation into per-node RPM
//! databases, and a wall-clock [`Timeline`].

use crate::database::RocksDb;
use crate::graph::{Appliance, KickstartGraph};
use crate::insert_ethers::{DhcpRequest, InsertEthers};
use crate::kickstart::{self, KickstartError};
use crate::roll::Roll;
use std::collections::BTreeMap;
use xcbc_cluster::{timeline_from_recorder, ClusterSpec, NodeRole, Timeline};
use xcbc_fault::{
    retry_with, FaultInjector, FaultKind, InjectionPoint, InstallCheckpoint, NodeStage, PostMortem,
    RetryPolicy,
};
use xcbc_rpm::{Package, RpmDb, TransactionError, TransactionSet};
use xcbc_sim::{SimTime, SpanRecorder, TraceEvent};

/// `source` tag carried by every trace event this module records.
pub const TRACE_SOURCE: &str = "rocks.install";

/// How far the install had gotten when an error aborted it. Attached to
/// every [`InstallError`] so callers can tell committed nodes from
/// wasted work — and, for a power loss, resume from the checkpoint
/// instead of rewiping healthy nodes.
#[derive(Debug, Clone, Default)]
pub struct InstallProgress {
    /// Hostnames whose package transactions had committed.
    pub completed: Vec<String>,
    /// The host being provisioned when the install aborted, if any.
    pub aborted_on: Option<String>,
    /// Full per-node stage checkpoint at abort time.
    pub checkpoint: InstallCheckpoint,
}

impl InstallProgress {
    fn from_checkpoint(checkpoint: &InstallCheckpoint, aborted_on: Option<&str>) -> Self {
        InstallProgress {
            completed: checkpoint
                .committed_nodes()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            aborted_on: aborted_on.map(str::to_string),
            checkpoint: checkpoint.clone(),
        }
    }
}

/// Why an install could not proceed.
///
/// Marked `#[non_exhaustive]`: new failure modes may appear as the
/// fault model grows, so downstream matches need a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum InstallErrorKind {
    /// The hardware cannot host Rocks (diskless nodes, missing frontend).
    NotInstallable(Vec<String>),
    /// Kickstart generation failed for a node.
    Kickstart(KickstartError),
    /// The graph references a package no selected roll carries.
    MissingPackage { node: String, package: String },
    /// The package transaction failed on a node.
    Transaction {
        node: String,
        error: TransactionError,
    },
    /// A `power.loss` fault cut the install short; the progress
    /// checkpoint says what survives for a resumed run.
    PowerLoss,
}

/// An install failure plus the per-node progress made before it.
/// (Progress is boxed to keep the `Err` variant small on the hot
/// `Result` paths.)
#[derive(Debug)]
pub struct InstallError {
    pub kind: InstallErrorKind,
    pub progress: Box<InstallProgress>,
}

impl InstallError {
    pub fn new(kind: InstallErrorKind) -> Self {
        InstallError {
            kind,
            progress: Box::default(),
        }
    }

    fn with_progress(mut self, progress: InstallProgress) -> Self {
        self.progress = Box::new(progress);
        self
    }

    /// Nodes whose package sets had committed before the abort.
    pub fn completed_nodes(&self) -> &[String] {
        &self.progress.completed
    }
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            InstallErrorKind::NotInstallable(reasons) => write!(
                f,
                "cluster is not Rocks-installable: {}",
                reasons.join("; ")
            )?,
            InstallErrorKind::Kickstart(e) => write!(f, "kickstart generation failed: {e}")?,
            InstallErrorKind::MissingPackage { node, package } => write!(
                f,
                "{node}: package {package} not found in any selected roll"
            )?,
            InstallErrorKind::Transaction { node, error } => write!(f, "{node}: {error}")?,
            InstallErrorKind::PowerLoss => write!(f, "power lost mid-install")?,
        }
        if !self.progress.completed.is_empty() || self.progress.aborted_on.is_some() {
            write!(f, " [{} node(s) committed", self.progress.completed.len())?;
            if let Some(on) = &self.progress.aborted_on {
                write!(f, ", aborted on {on}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

impl std::error::Error for InstallError {}

impl From<KickstartError> for InstallError {
    fn from(e: KickstartError) -> Self {
        InstallError::new(InstallErrorKind::Kickstart(e))
    }
}

/// Result of a completed install.
#[derive(Debug)]
pub struct InstallReport {
    /// The cluster database after discovery.
    pub rocks_db: RocksDb,
    /// Per-host installed-package databases.
    pub node_dbs: BTreeMap<String, RpmDb>,
    /// Wall-clock timeline of the whole build (a view over [`trace`]).
    ///
    /// [`trace`]: InstallReport::trace
    pub timeline: Timeline,
    /// Every span the install recorded, tagged [`TRACE_SOURCE`] on the
    /// shared simulation timebase; the `timeline` is derived from it.
    pub trace: Vec<TraceEvent>,
    /// Names of the rolls that were installed.
    pub rolls_installed: Vec<String>,
}

impl InstallReport {
    /// Packages installed on a given host.
    pub fn package_count(&self, host: &str) -> usize {
        self.node_dbs.get(host).map(RpmDb::len).unwrap_or(0)
    }
}

/// Install throughput assumption: anaconda lays down ~20 MB/s from the
/// frontend's HTTP tree over GbE.
const INSTALL_MBPS: f64 = 20.0;
/// Fixed overheads (seconds).
const FRONTEND_SCREENS_S: f64 = 600.0; // answering the installer screens
const NODE_PXE_S: f64 = 90.0; // BIOS + PXE + anaconda start
const FRONTEND_POST_S: f64 = 300.0; // db init, dhcpd, tree build
/// Cost of one failed DHCP discovery exchange (insert-ethers waits this
/// long before giving the node another chance).
const DHCP_TIMEOUT_S: f64 = 30.0;
/// Cost of one hung node boot before the operator power-cycles it.
const BOOT_HANG_S: f64 = 180.0;

/// Per-operation retry policies for [`ClusterInstall::run_resilient`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// insert-ethers DHCP discovery (`dhcp.discover` faults).
    pub dhcp_retry: RetryPolicy,
    /// Node PXE/BIOS boot (`node.boot` faults).
    pub boot_retry: RetryPolicy,
    /// Kickstart generation (`kickstart.generate` faults).
    pub kickstart_retry: RetryPolicy,
    /// Per-node RPM transactions (`rpm.scriptlet` faults).
    pub transaction_retry: RetryPolicy,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            dhcp_retry: RetryPolicy::default(),
            boot_retry: RetryPolicy::patient(),
            kickstart_retry: RetryPolicy::default(),
            transaction_retry: RetryPolicy::default(),
        }
    }
}

/// Result of a resilient install: the ordinary report plus the
/// checkpoint (for a later resume), the post-mortem, and the fault
/// kinds that quarantined nodes (for degraded-cluster mapping).
#[derive(Debug)]
pub struct ResilientReport {
    pub report: InstallReport,
    /// Final per-node progress; feed back into
    /// [`ClusterInstall::run_resilient`] to resume after an abort.
    pub checkpoint: InstallCheckpoint,
    pub post_mortem: PostMortem,
    /// Nodes pulled from the install, with the fault kind that
    /// exhausted their retry budget.
    pub quarantined: Vec<(String, FaultKind)>,
}

impl ResilientReport {
    pub fn fully_provisioned(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// Pull `node` from the install, recording the reason everywhere it
/// matters: the checkpoint (so a resume skips it), the post-mortem, and
/// the kind list (for hardware-failure mapping).
fn quarantine_node(
    node: &str,
    at: SimTime,
    kind: FaultKind,
    point: InjectionPoint,
    checkpoint: &mut InstallCheckpoint,
    pm: &mut PostMortem,
    kinds: &mut Vec<(String, FaultKind)>,
) {
    let reason = format!(
        "{} at {}: retry budget exhausted",
        kind.as_str(),
        point.as_str()
    );
    checkpoint.quarantine(node, &reason);
    pm.record_quarantine(node, &reason);
    pm.record_moment(at, format!("quarantined {node} ({reason})"));
    kinds.push((node.to_string(), kind));
}

/// Recover the fault kind from a quarantine reason written by
/// [`quarantine_node`] (used when resuming from a parsed checkpoint).
fn quarantine_kind(reason: &str) -> FaultKind {
    reason
        .split(' ')
        .next()
        .and_then(FaultKind::parse)
        .unwrap_or(FaultKind::Transient)
}

/// The full from-scratch install driver.
#[derive(Debug)]
pub struct ClusterInstall {
    cluster: ClusterSpec,
    rolls: Vec<Roll>,
    graph: KickstartGraph,
}

impl ClusterInstall {
    /// Prepare an install of `cluster` with the given roll set. Roll
    /// graph fragments are merged into the standard graph and attached to
    /// both frontend and compute appliances.
    pub fn new(cluster: ClusterSpec, rolls: Vec<Roll>) -> Self {
        let mut graph = KickstartGraph::standard();
        for roll in &rolls {
            graph
                .merge_roll_nodes(
                    &roll.graph_nodes,
                    &[Appliance::Frontend, Appliance::Compute],
                )
                .expect("standard graph has both roots");
        }
        ClusterInstall {
            cluster,
            rolls,
            graph,
        }
    }

    pub fn graph(&self) -> &KickstartGraph {
        &self.graph
    }

    /// All packages across the selected rolls.
    fn roll_packages(&self) -> BTreeMap<&str, &Package> {
        let mut map = BTreeMap::new();
        for roll in &self.rolls {
            for p in &roll.packages {
                map.insert(p.name(), p);
            }
        }
        map
    }

    /// Run the install.
    pub fn run(&self) -> Result<InstallReport, InstallError> {
        let (ok, reasons) = self.cluster.rocks_installable();
        if !ok {
            return Err(InstallError::new(InstallErrorKind::NotInstallable(reasons)));
        }
        let catalog = self.roll_packages();
        let mut rec = SpanRecorder::new(TRACE_SOURCE);
        let mut node_dbs: BTreeMap<String, RpmDb> = BTreeMap::new();
        let mut checkpoint = InstallCheckpoint::new();

        // --- frontend install ---
        let fe = self.cluster.frontend().expect("checked above");
        let fe_ks = kickstart::generate(&self.graph, fe, Appliance::Frontend)
            .map_err(InstallError::from)
            .map_err(|e| {
                let p = InstallProgress::from_checkpoint(&checkpoint, Some(&fe.hostname));
                e.with_progress(p)
            })?;
        let fe_db = self
            .install_packages(&fe.hostname, &fe_ks.packages, &catalog)
            .map_err(|e| {
                let p = InstallProgress::from_checkpoint(&checkpoint, Some(&fe.hostname));
                e.with_progress(p)
            })?;
        let fe_payload: u64 = fe_db.installed_size_bytes();
        rec.record(
            "frontend: installer screens & roll selection",
            FRONTEND_SCREENS_S,
        );
        rec.with_field("node", fe.hostname.clone());
        rec.record(
            "frontend: package installation",
            fe_payload as f64 / (INSTALL_MBPS * 1024.0 * 1024.0),
        );
        rec.with_field("node", fe.hostname.clone())
            .with_field("bytes", fe_payload);
        rec.record(
            "frontend: post-install (db, dhcpd, central tree)",
            FRONTEND_POST_S,
        );
        rec.with_field("node", fe.hostname.clone());
        node_dbs.insert(fe.hostname.clone(), fe_db);
        checkpoint.mark_frontend_committed();
        checkpoint.record(&fe.hostname, NodeStage::PackagesCommitted);

        // --- insert-ethers discovery + compute installs (parallel) ---
        let mut rocks_db = RocksDb::new(&fe.hostname);
        rocks_db
            .add_frontend(&synth_mac(&fe.hostname), fe.cores())
            .expect("fresh database");
        {
            let mut session = InsertEthers::start(&mut rocks_db, Appliance::Compute, 0);
            for n in self
                .cluster
                .nodes
                .iter()
                .filter(|n| n.role == NodeRole::Compute)
            {
                session
                    .on_dhcp(&DhcpRequest {
                        mac: synth_mac(&n.hostname),
                        cpus: n.cores(),
                    })
                    .expect("unique synthetic MACs");
                checkpoint.record(&n.hostname, NodeStage::Discovered);
            }
        }

        let computes: Vec<_> = self
            .cluster
            .nodes
            .iter()
            .filter(|n| n.role == NodeRole::Compute)
            .collect();
        let mut first = true;
        for n in &computes {
            let ks = kickstart::generate(&self.graph, n, Appliance::Compute)
                .map_err(InstallError::from)
                .map_err(|e| {
                    let p = InstallProgress::from_checkpoint(&checkpoint, Some(&n.hostname));
                    e.with_progress(p)
                })?;
            checkpoint.record(&n.hostname, NodeStage::Kickstarted);
            let db = self
                .install_packages(&n.hostname, &ks.packages, &catalog)
                .map_err(|e| {
                    let p = InstallProgress::from_checkpoint(&checkpoint, Some(&n.hostname));
                    e.with_progress(p)
                })?;
            let payload = db.installed_size_bytes();
            let secs = NODE_PXE_S + payload as f64 / (INSTALL_MBPS * 1024.0 * 1024.0);
            let label = format!("{}: pxe + kickstart install", n.hostname);
            if first {
                rec.record(label, secs);
                first = false;
            } else {
                // computes install concurrently from the frontend tree
                rec.record_parallel(label, secs);
            }
            rec.with_field("node", n.hostname.clone())
                .with_field("bytes", payload);
            node_dbs.insert(n.hostname.clone(), db);
            checkpoint.record(&n.hostname, NodeStage::PackagesCommitted);
        }

        Ok(InstallReport {
            rocks_db,
            node_dbs,
            timeline: timeline_from_recorder(&rec),
            trace: rec.into_events(),
            rolls_installed: self.rolls.iter().map(|r| r.name.clone()).collect(),
        })
    }

    fn build_transaction(
        &self,
        node: &str,
        names: &[String],
        catalog: &BTreeMap<&str, &Package>,
    ) -> Result<TransactionSet, InstallError> {
        let mut tx = TransactionSet::new();
        for name in names {
            let pkg = catalog.get(name.as_str()).ok_or_else(|| {
                InstallError::new(InstallErrorKind::MissingPackage {
                    node: node.to_string(),
                    package: name.clone(),
                })
            })?;
            tx.add_install((*pkg).clone());
        }
        Ok(tx)
    }

    fn install_packages(
        &self,
        node: &str,
        names: &[String],
        catalog: &BTreeMap<&str, &Package>,
    ) -> Result<RpmDb, InstallError> {
        let tx = self.build_transaction(node, names, catalog)?;
        let mut db = RpmDb::new();
        tx.run(&mut db).map_err(|error| {
            InstallError::new(InstallErrorKind::Transaction {
                node: node.to_string(),
                error,
            })
        })?;
        Ok(db)
    }

    /// Run the install under fault injection, with retry/backoff,
    /// checkpointing, and graceful degradation.
    ///
    /// Differences from [`run`](Self::run):
    ///
    /// * Faults from `injector` fire at `dhcp.discover`, `node.boot`,
    ///   `kickstart.generate`, `rpm.scriptlet`, and `power.loss`; each
    ///   is retried under the matching [`ResilienceConfig`] policy, with
    ///   backoff charged to the timeline as `backoff:` phases.
    /// * A node that exhausts its retry budget is **quarantined** — the
    ///   install continues on the survivors instead of aborting.
    /// * Progress is tracked in an [`InstallCheckpoint`]. A `power.loss`
    ///   fault aborts with [`InstallErrorKind::PowerLoss`] carrying that
    ///   checkpoint; pass it back as `resume_from` to skip
    ///   already-committed nodes on the next run (pass
    ///   `InstallCheckpoint::new()` for a fresh install).
    pub fn run_resilient(
        &self,
        injector: &mut FaultInjector,
        config: &ResilienceConfig,
        resume_from: InstallCheckpoint,
    ) -> Result<ResilientReport, InstallError> {
        let (ok, reasons) = self.cluster.rocks_installable();
        if !ok {
            return Err(InstallError::new(InstallErrorKind::NotInstallable(reasons)));
        }
        let catalog = self.roll_packages();
        let mut rec = SpanRecorder::new(TRACE_SOURCE);
        let mut node_dbs: BTreeMap<String, RpmDb> = BTreeMap::new();
        let mut checkpoint = resume_from;
        let mut pm = PostMortem::new(Some(injector.plan().seed));
        let mut quarantined: Vec<(String, FaultKind)> = Vec::new();

        // Nodes quarantined by a previous (aborted) run stay quarantined.
        for (node, reason) in checkpoint.quarantined() {
            pm.record_quarantine(node, reason);
            pm.record_moment(
                SimTime::ZERO,
                format!("carried quarantine of {node} from previous run"),
            );
            quarantined.push((node.to_string(), quarantine_kind(reason)));
        }

        // --- frontend ---
        let fe = self.cluster.frontend().expect("checked above");
        let fe_ks = kickstart::generate(&self.graph, fe, Appliance::Frontend)
            .map_err(InstallError::from)
            .map_err(|e| {
                let p = InstallProgress::from_checkpoint(&checkpoint, Some(&fe.hostname));
                e.with_progress(p)
            })?;
        if checkpoint.is_committed(&fe.hostname) {
            // Resume: the frontend survived the abort; rebuild its view
            // of the package set without charging install time.
            let fe_db = self.install_packages(&fe.hostname, &fe_ks.packages, &catalog)?;
            node_dbs.insert(fe.hostname.clone(), fe_db);
            pm.record_resumed(&fe.hostname);
            pm.record_moment(
                rec.cursor(),
                format!("resumed {} from checkpoint", fe.hostname),
            );
        } else {
            let fe_db = match self.install_packages_resilient(
                &fe.hostname,
                &fe_ks.packages,
                &catalog,
                injector,
                &config.transaction_retry,
                &mut rec,
                &mut pm,
            )? {
                Ok(db) => db,
                Err(error) => {
                    // No frontend, no cluster: transaction failure that
                    // survives all retries is fatal, not quarantinable.
                    let p = InstallProgress::from_checkpoint(&checkpoint, Some(&fe.hostname));
                    return Err(InstallError::new(InstallErrorKind::Transaction {
                        node: fe.hostname.clone(),
                        error,
                    })
                    .with_progress(p));
                }
            };
            let fe_payload: u64 = fe_db.installed_size_bytes();
            rec.record(
                "frontend: installer screens & roll selection",
                FRONTEND_SCREENS_S,
            );
            rec.with_field("node", fe.hostname.clone());
            rec.record(
                "frontend: package installation",
                fe_payload as f64 / (INSTALL_MBPS * 1024.0 * 1024.0),
            );
            rec.with_field("node", fe.hostname.clone())
                .with_field("bytes", fe_payload);
            rec.record(
                "frontend: post-install (db, dhcpd, central tree)",
                FRONTEND_POST_S,
            );
            rec.with_field("node", fe.hostname.clone());
            node_dbs.insert(fe.hostname.clone(), fe_db);
            checkpoint.mark_frontend_committed();
            checkpoint.record(&fe.hostname, NodeStage::PackagesCommitted);
            if injector
                .should_fault(InjectionPoint::PowerLoss, &fe.hostname)
                .is_some()
            {
                let p = InstallProgress::from_checkpoint(&checkpoint, Some(&fe.hostname));
                return Err(InstallError::new(InstallErrorKind::PowerLoss).with_progress(p));
            }
        }

        // --- insert-ethers discovery (with DHCP retry) ---
        let mut rocks_db = RocksDb::new(&fe.hostname);
        rocks_db
            .add_frontend(&synth_mac(&fe.hostname), fe.cores())
            .expect("fresh database");
        let computes: Vec<_> = self
            .cluster
            .nodes
            .iter()
            .filter(|n| n.role == NodeRole::Compute)
            .collect();
        let mut dhcp_timeout_s = 0.0;
        let mut dhcp_backoff_s = 0.0;
        {
            let mut session = InsertEthers::start(&mut rocks_db, Appliance::Compute, 0);
            for n in &computes {
                if checkpoint.is_quarantined(&n.hostname) {
                    continue;
                }
                if checkpoint.stage(&n.hostname) >= NodeStage::Discovered {
                    // Resume: the frontend database already knows this
                    // node; re-register it without injection or cost.
                    session
                        .on_dhcp(&DhcpRequest {
                            mac: synth_mac(&n.hostname),
                            cpus: n.cores(),
                        })
                        .expect("unique synthetic MACs");
                    continue;
                }
                let mut rng = injector.rng_for(&format!("dhcp.{}", n.hostname));
                let outcome = retry_with(&config.dhcp_retry, &mut rng, |_| {
                    match injector.should_fault(InjectionPoint::DhcpDiscover, &n.hostname) {
                        Some(kind) => Err(kind),
                        None => Ok(()),
                    }
                });
                pm.charge_retries(outcome.retries(), outcome.backoff_s);
                dhcp_backoff_s += outcome.backoff_s;
                let failures = if outcome.succeeded() {
                    outcome.retries()
                } else {
                    outcome.attempts
                };
                dhcp_timeout_s += failures as f64 * DHCP_TIMEOUT_S;
                if outcome.succeeded() && outcome.retries() > 0 {
                    pm.record_moment(
                        rec.cursor(),
                        format!(
                            "{}: dhcp.discover absorbed {} retry(ies)",
                            n.hostname,
                            outcome.retries()
                        ),
                    );
                }
                match outcome.result {
                    Ok(()) => {
                        session
                            .on_dhcp(&DhcpRequest {
                                mac: synth_mac(&n.hostname),
                                cpus: n.cores(),
                            })
                            .expect("unique synthetic MACs");
                        checkpoint.record(&n.hostname, NodeStage::Discovered);
                    }
                    Err(kind) => quarantine_node(
                        &n.hostname,
                        rec.cursor(),
                        kind,
                        InjectionPoint::DhcpDiscover,
                        &mut checkpoint,
                        &mut pm,
                        &mut quarantined,
                    ),
                }
            }
        }
        if dhcp_timeout_s > 0.0 {
            rec.record("insert-ethers: dhcp timeouts", dhcp_timeout_s);
        }
        rec.record_backoff("insert-ethers retries", dhcp_backoff_s);

        // --- per-node provisioning (boot, kickstart, packages) ---
        let mut first = true;
        for n in &computes {
            if checkpoint.is_quarantined(&n.hostname) {
                continue;
            }
            if checkpoint.is_committed(&n.hostname) {
                // Resume: committed nodes are not rewiped; rebuild their
                // package view without charging install time.
                let ks = kickstart::generate(&self.graph, n, Appliance::Compute)
                    .map_err(InstallError::from)?;
                let db = self.install_packages(&n.hostname, &ks.packages, &catalog)?;
                node_dbs.insert(n.hostname.clone(), db);
                pm.record_resumed(&n.hostname);
                pm.record_moment(
                    rec.cursor(),
                    format!("resumed {} from checkpoint", n.hostname),
                );
                continue;
            }

            // Boot the node into the installer.
            let mut rng = injector.rng_for(&format!("boot.{}", n.hostname));
            let boot = retry_with(&config.boot_retry, &mut rng, |_| {
                match injector.should_fault(InjectionPoint::NodeBoot, &n.hostname) {
                    Some(kind) => Err(kind),
                    None => Ok(()),
                }
            });
            pm.charge_retries(boot.retries(), boot.backoff_s);
            let hangs = if boot.succeeded() {
                boot.retries()
            } else {
                boot.attempts
            };
            if hangs > 0 {
                rec.record(
                    format!("{}: hung boots", n.hostname),
                    hangs as f64 * BOOT_HANG_S,
                );
            }
            rec.record_backoff(format!("{}: boot retries", n.hostname), boot.backoff_s);
            if boot.succeeded() && boot.retries() > 0 {
                pm.record_moment(
                    rec.cursor(),
                    format!(
                        "{}: node.boot absorbed {} retry(ies)",
                        n.hostname,
                        boot.retries()
                    ),
                );
            }
            if let Err(kind) = boot.result {
                quarantine_node(
                    &n.hostname,
                    rec.cursor(),
                    kind,
                    InjectionPoint::NodeBoot,
                    &mut checkpoint,
                    &mut pm,
                    &mut quarantined,
                );
                continue;
            }

            // Generate its kickstart (genuine graph errors are fatal;
            // injected generation faults are retried).
            let ks = kickstart::generate(&self.graph, n, Appliance::Compute)
                .map_err(InstallError::from)
                .map_err(|e| {
                    let p = InstallProgress::from_checkpoint(&checkpoint, Some(&n.hostname));
                    e.with_progress(p)
                })?;
            let mut rng = injector.rng_for(&format!("ks.{}", n.hostname));
            let gen = retry_with(&config.kickstart_retry, &mut rng, |_| {
                match injector.should_fault(InjectionPoint::KickstartGenerate, &n.hostname) {
                    Some(kind) => Err(kind),
                    None => Ok(()),
                }
            });
            pm.charge_retries(gen.retries(), gen.backoff_s);
            rec.record_backoff(format!("{}: kickstart retries", n.hostname), gen.backoff_s);
            if gen.succeeded() && gen.retries() > 0 {
                pm.record_moment(
                    rec.cursor(),
                    format!(
                        "{}: kickstart.generate absorbed {} retry(ies)",
                        n.hostname,
                        gen.retries()
                    ),
                );
            }
            if let Err(kind) = gen.result {
                quarantine_node(
                    &n.hostname,
                    rec.cursor(),
                    kind,
                    InjectionPoint::KickstartGenerate,
                    &mut checkpoint,
                    &mut pm,
                    &mut quarantined,
                );
                continue;
            }
            checkpoint.record(&n.hostname, NodeStage::Kickstarted);

            // Install its packages (scriptlet faults roll back and retry).
            let db = match self.install_packages_resilient(
                &n.hostname,
                &ks.packages,
                &catalog,
                injector,
                &config.transaction_retry,
                &mut rec,
                &mut pm,
            )? {
                Ok(db) => db,
                Err(TransactionError::ScriptletFailed { .. }) => {
                    quarantine_node(
                        &n.hostname,
                        rec.cursor(),
                        FaultKind::ScriptletError,
                        InjectionPoint::RpmScriptlet,
                        &mut checkpoint,
                        &mut pm,
                        &mut quarantined,
                    );
                    continue;
                }
                Err(error) => {
                    let p = InstallProgress::from_checkpoint(&checkpoint, Some(&n.hostname));
                    return Err(InstallError::new(InstallErrorKind::Transaction {
                        node: n.hostname.clone(),
                        error,
                    })
                    .with_progress(p));
                }
            };
            let payload = db.installed_size_bytes();
            let secs = NODE_PXE_S + payload as f64 / (INSTALL_MBPS * 1024.0 * 1024.0);
            let label = format!("{}: pxe + kickstart install", n.hostname);
            if first {
                rec.record(label, secs);
                first = false;
            } else {
                rec.record_parallel(label, secs);
            }
            rec.with_field("node", n.hostname.clone())
                .with_field("bytes", payload);
            node_dbs.insert(n.hostname.clone(), db);
            checkpoint.record(&n.hostname, NodeStage::PackagesCommitted);
            if injector
                .should_fault(InjectionPoint::PowerLoss, &n.hostname)
                .is_some()
            {
                let p = InstallProgress::from_checkpoint(&checkpoint, Some(&n.hostname));
                return Err(InstallError::new(InstallErrorKind::PowerLoss).with_progress(p));
            }
        }

        pm.faults = injector.events().to_vec();
        Ok(ResilientReport {
            report: InstallReport {
                rocks_db,
                node_dbs,
                timeline: timeline_from_recorder(&rec),
                trace: rec.into_events(),
                rolls_installed: self.rolls.iter().map(|r| r.name.clone()).collect(),
            },
            checkpoint,
            post_mortem: pm,
            quarantined,
        })
    }

    /// Build and run one node's transaction under scriptlet fault
    /// injection, retrying (the rollback in
    /// [`TransactionSet::run_injected`] makes each attempt start from a
    /// clean database). Outer `Err` is a hard install error
    /// (missing package); inner `Err` is the transaction error left
    /// after the retry budget ran out.
    #[allow(clippy::too_many_arguments)]
    fn install_packages_resilient(
        &self,
        node: &str,
        names: &[String],
        catalog: &BTreeMap<&str, &Package>,
        injector: &mut FaultInjector,
        policy: &RetryPolicy,
        rec: &mut SpanRecorder,
        pm: &mut PostMortem,
    ) -> Result<Result<RpmDb, TransactionError>, InstallError> {
        let tx = self.build_transaction(node, names, catalog)?;
        let mut rng = injector.rng_for(&format!("tx.{node}"));
        let outcome = retry_with(policy, &mut rng, |_| {
            let mut db = RpmDb::new();
            tx.run_injected(&mut db, injector).map(|_| db)
        });
        pm.charge_retries(outcome.retries(), outcome.backoff_s);
        rec.record_backoff(
            format!("{node}: rpm transaction retries"),
            outcome.backoff_s,
        );
        if outcome.succeeded() && outcome.retries() > 0 {
            pm.record_moment(
                rec.cursor(),
                format!(
                    "{node}: rpm.scriptlet absorbed {} retry(ies)",
                    outcome.retries()
                ),
            );
        }
        Ok(outcome.result)
    }
}

/// Deterministic MAC derived from a hostname (simulation stand-in for
/// real hardware addresses).
fn synth_mac(hostname: &str) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in hostname.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!(
        "02:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
        (h >> 32) as u8,
        (h >> 24) as u8,
        (h >> 16) as u8,
        (h >> 8) as u8,
        h as u8
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roll::standard_rolls;
    use xcbc_cluster::specs::{limulus_hpc200, littlefe_modified};

    fn required_rolls() -> Vec<Roll> {
        standard_rolls()
            .into_iter()
            .filter(|r| r.required)
            .collect()
    }

    #[test]
    fn install_state_is_send() {
        // Fleet workers move whole installs (and their outcomes) across
        // threads; a non-Send field sneaking into any of these types
        // should fail here, at compile time, not in the orchestrator.
        fn assert_send<T: Send>() {}
        assert_send::<ClusterInstall>();
        assert_send::<InstallReport>();
        assert_send::<ResilientReport>();
        assert_send::<InstallError>();
        assert_send::<InstallProgress>();
    }

    #[test]
    fn littlefe_full_install_succeeds() {
        let install = ClusterInstall::new(littlefe_modified(), standard_rolls());
        let report = install.run().unwrap();
        assert_eq!(report.node_dbs.len(), 6);
        assert_eq!(report.rocks_db.host_count(), 6);
        assert!(report.rocks_db.host("compute-0-4").is_some());
        // every node got the base packages
        for (host, db) in &report.node_dbs {
            assert!(db.is_installed("rocks-base"), "{host} missing rocks-base");
            assert!(db.verify().is_empty(), "{host} db inconsistent");
        }
        // frontend has the web server, computes do not
        assert!(report.node_dbs["littlefe"].is_installed("httpd"));
        assert!(!report.node_dbs["compute-0-0"].is_installed("httpd"));
    }

    #[test]
    fn timeline_has_frontend_then_parallel_computes() {
        let install = ClusterInstall::new(littlefe_modified(), required_rolls());
        let report = install.run().unwrap();
        let phases = report.timeline.phases();
        assert!(phases[0].label.contains("frontend"));
        // the five compute installs share a start time
        let compute_phases: Vec<_> = phases
            .iter()
            .filter(|p| p.label.contains("compute-0-"))
            .collect();
        assert_eq!(compute_phases.len(), 5);
        let starts: Vec<_> = compute_phases.iter().map(|p| p.start_s()).collect();
        assert!(
            starts.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9),
            "parallel: {starts:?}"
        );
        // total time is dominated by frontend + one compute wave
        assert!(
            report.timeline.total_seconds() < 3.0 * 3600.0,
            "a LittleFe builds in an afternoon"
        );
    }

    #[test]
    fn install_trace_mirrors_timeline() {
        let install = ClusterInstall::new(littlefe_modified(), standard_rolls());
        let report = install.run().unwrap();
        assert!(!report.trace.is_empty());
        assert!(report.trace.iter().all(|e| e.source == TRACE_SOURCE));
        let rebuilt = Timeline::from_spans(&report.trace);
        assert_eq!(
            rebuilt, report.timeline,
            "timeline must be a pure view over the trace"
        );
    }

    #[test]
    fn resilient_moments_carry_real_timestamps() {
        use xcbc_fault::{FaultPlan, FaultWindow, InjectionPoint};
        let plan = FaultPlan::new(3).fail(
            InjectionPoint::NodeBoot,
            Some("compute-0-3"),
            FaultWindow::Always,
        );
        let mut inj = plan.injector();
        let install = ClusterInstall::new(littlefe_modified(), standard_rolls());
        let res = install
            .run_resilient(
                &mut inj,
                &ResilienceConfig::default(),
                InstallCheckpoint::new(),
            )
            .unwrap();
        // the quarantine moment is stamped after the frontend install and
        // the hung boots it sat through, not at t = 0
        let (t, what) = res
            .post_mortem
            .moments
            .iter()
            .find(|(_, what)| what.contains("quarantined compute-0-3"))
            .expect("quarantine recorded as a moment");
        assert!(
            *t > SimTime::ZERO,
            "moment at {t} should be after frontend install"
        );
        assert!(what.contains("hang at node.boot"));
        assert!(res.post_mortem.render().contains("moments:"));
        // the resilient trace carries the extra fault-cost spans too
        assert!(res
            .report
            .trace
            .iter()
            .any(|e| e.label.contains("hung boots")));
        assert_eq!(Timeline::from_spans(&res.report.trace), res.report.timeline);
    }

    #[test]
    fn limulus_cannot_be_rocks_installed() {
        let install = ClusterInstall::new(limulus_hpc200(), standard_rolls());
        match install.run().map_err(|e| e.kind) {
            Err(InstallErrorKind::NotInstallable(reasons)) => {
                assert!(reasons.iter().any(|r| r.contains("diskless")))
            }
            other => panic!("expected NotInstallable, got {other:?}"),
        }
    }

    #[test]
    fn missing_roll_package_is_reported() {
        // graph wants bash & friends, but we only supply the base roll
        let only_base: Vec<Roll> = standard_rolls()
            .into_iter()
            .filter(|r| r.name == "base")
            .collect();
        let install = ClusterInstall::new(littlefe_modified(), only_base);
        match install.run().map_err(|e| e.kind) {
            Err(InstallErrorKind::MissingPackage { package, .. }) => {
                assert!(!package.is_empty());
            }
            other => panic!("expected MissingPackage, got {other:?}"),
        }
    }

    #[test]
    fn resilient_clean_plan_matches_plain_run() {
        use xcbc_fault::FaultPlan;
        let install = ClusterInstall::new(littlefe_modified(), standard_rolls());
        let plain = install.run().unwrap();
        let mut inj = FaultPlan::new(1).injector();
        let res = install
            .run_resilient(
                &mut inj,
                &ResilienceConfig::default(),
                InstallCheckpoint::new(),
            )
            .unwrap();
        assert!(res.fully_provisioned());
        assert!(res.post_mortem.is_clean());
        assert_eq!(res.report.node_dbs.len(), plain.node_dbs.len());
        for (host, db) in &plain.node_dbs {
            assert_eq!(&res.report.node_dbs[host], db, "{host} package set differs");
        }
        assert!(
            (res.report.timeline.total_seconds() - plain.timeline.total_seconds()).abs() < 1e-6,
            "no faults means no extra time"
        );
    }

    #[test]
    fn transient_faults_absorbed_by_retries() {
        use xcbc_fault::{FaultPlan, FaultWindow, InjectionPoint};
        // Every node's first DHCP exchange and first boot fail once.
        let plan = FaultPlan::new(2)
            .fail(InjectionPoint::DhcpDiscover, None, FaultWindow::Nth(0))
            .fail(InjectionPoint::NodeBoot, None, FaultWindow::Nth(0));
        let mut inj = plan.injector();
        let install = ClusterInstall::new(littlefe_modified(), standard_rolls());
        let res = install
            .run_resilient(
                &mut inj,
                &ResilienceConfig::default(),
                InstallCheckpoint::new(),
            )
            .unwrap();
        assert!(
            res.fully_provisioned(),
            "single transient faults must not quarantine"
        );
        assert_eq!(res.report.node_dbs.len(), 6);
        assert!(
            res.post_mortem.retries_spent >= 10,
            "5 dhcp + 5 boot retries"
        );
        assert!(res.post_mortem.backoff_s > 0.0);
        assert!(res.report.timeline.backoff_seconds() > 0.0);
        // faults cost real install time too (timeouts + hung boots)
        let plain = install.run().unwrap();
        assert!(res.report.timeline.total_seconds() > plain.timeline.total_seconds());
    }

    #[test]
    fn persistent_node_fault_quarantines_and_degrades() {
        use xcbc_fault::{FaultPlan, FaultWindow, InjectionPoint};
        let plan = FaultPlan::new(3).fail(
            InjectionPoint::NodeBoot,
            Some("compute-0-3"),
            FaultWindow::Always,
        );
        let mut inj = plan.injector();
        let install = ClusterInstall::new(littlefe_modified(), standard_rolls());
        let res = install
            .run_resilient(
                &mut inj,
                &ResilienceConfig::default(),
                InstallCheckpoint::new(),
            )
            .unwrap();
        assert_eq!(res.quarantined.len(), 1);
        assert_eq!(res.quarantined[0].0, "compute-0-3");
        assert_eq!(res.quarantined[0].1, xcbc_fault::FaultKind::Hang);
        // the rest of the cluster still installed
        assert_eq!(res.report.node_dbs.len(), 5);
        assert!(!res.report.node_dbs.contains_key("compute-0-3"));
        assert!(res.checkpoint.is_quarantined("compute-0-3"));
        assert!(res.post_mortem.render().contains("quarantined compute-0-3"));
    }

    #[test]
    fn scriptlet_fault_quarantines_only_that_node() {
        use xcbc_fault::{FaultPlan, FaultWindow, InjectionPoint};
        // Each transaction consults `rpm.scriptlet` keyed by package name;
        // hit counters are per (point, key) stream, so "rocks-base" hits
        // accumulate across attempts. Fail its first 2 hits: the
        // frontend's transaction fails twice and succeeds on attempt 3,
        // inside the default 3-attempt budget.
        let plan = FaultPlan::new(4).fail(
            InjectionPoint::RpmScriptlet,
            Some("rocks-base"),
            FaultWindow::Range { start: 0, end: 2 },
        );
        let mut inj = plan.injector();
        let install = ClusterInstall::new(littlefe_modified(), standard_rolls());
        let res = install
            .run_resilient(
                &mut inj,
                &ResilienceConfig::default(),
                InstallCheckpoint::new(),
            )
            .unwrap();
        assert!(
            res.fully_provisioned(),
            "2 scriptlet faults fit in the 3-attempt budget"
        );
        assert!(res.post_mortem.retries_spent >= 2);
        assert_eq!(res.report.node_dbs.len(), 6);
    }

    #[test]
    fn power_loss_aborts_with_checkpoint_then_resume_completes() {
        use xcbc_fault::{FaultPlan, FaultWindow, InjectionPoint};
        let install = ClusterInstall::new(littlefe_modified(), standard_rolls());
        let fault_free = install.run().unwrap();

        // Power fails right after compute-0-1 commits its packages.
        let plan = FaultPlan::new(5).fail(
            InjectionPoint::PowerLoss,
            Some("compute-0-1"),
            FaultWindow::Nth(0),
        );
        let mut inj = plan.injector();
        let err = install
            .run_resilient(
                &mut inj,
                &ResilienceConfig::default(),
                InstallCheckpoint::new(),
            )
            .unwrap_err();
        assert!(matches!(err.kind, InstallErrorKind::PowerLoss));
        assert_eq!(err.progress.aborted_on.as_deref(), Some("compute-0-1"));
        // the frontend and the committed computes survive in the checkpoint
        let cp = err.progress.checkpoint.clone();
        assert!(cp.frontend_committed());
        assert!(cp.is_committed("littlefe"));
        assert!(cp.is_committed("compute-0-1"));
        assert!(!cp.is_committed("compute-0-4"));
        assert!(err.completed_nodes().contains(&"compute-0-1".to_string()));

        // The checkpoint round-trips through its state-file form.
        let cp = InstallCheckpoint::parse(&cp.to_text()).unwrap();

        // Resume under the same plan: committed nodes are skipped (their
        // power.loss window is never consulted again), the rest install.
        let mut inj2 = plan.injector();
        let resumed = install
            .run_resilient(&mut inj2, &ResilienceConfig::default(), cp)
            .unwrap();
        assert!(resumed.fully_provisioned());
        assert!(
            resumed
                .post_mortem
                .resumed_nodes
                .contains(&"compute-0-1".to_string()),
            "committed node must be resumed, not reinstalled: {:?}",
            resumed.post_mortem.resumed_nodes
        );
        // Final package sets equal the fault-free install, everywhere.
        assert_eq!(resumed.report.node_dbs.len(), fault_free.node_dbs.len());
        for (host, db) in &fault_free.node_dbs {
            assert_eq!(
                &resumed.report.node_dbs[host], db,
                "{host} diverged from fault-free"
            );
        }
        // Resumed nodes are not re-timed: no pxe+install phase for them.
        let resumed_labels: Vec<_> = resumed
            .report
            .timeline
            .phases()
            .iter()
            .map(|p| p.label.as_str())
            .collect();
        assert!(
            !resumed_labels.iter().any(|l| l.starts_with("compute-0-1:")),
            "compute-0-1 was reinstalled: {resumed_labels:?}"
        );
    }

    #[test]
    fn identical_seeds_identical_resilient_outcomes() {
        use xcbc_fault::FaultPlan;
        let run = |seed: u64| {
            let plan = FaultPlan::new(seed)
                .with_rate(xcbc_fault::InjectionPoint::DhcpDiscover, 0.3)
                .with_rate(xcbc_fault::InjectionPoint::NodeBoot, 0.2);
            let mut inj = plan.injector();
            let install = ClusterInstall::new(littlefe_modified(), standard_rolls());
            install
                .run_resilient(
                    &mut inj,
                    &ResilienceConfig::default(),
                    InstallCheckpoint::new(),
                )
                .map(|r| (r.post_mortem.render(), r.checkpoint.to_text()))
                .map_err(|e| e.to_string())
        };
        assert_eq!(run(77), run(77), "same seed must replay identically");
        assert_ne!(run(77), run(78), "different seeds should diverge");
    }

    #[test]
    fn synthetic_macs_unique_and_stable() {
        let a = synth_mac("compute-0-0");
        let b = synth_mac("compute-0-1");
        assert_ne!(a, b);
        assert_eq!(a, synth_mac("compute-0-0"));
        assert!(a.starts_with("02:"));
    }

    #[test]
    fn optional_rolls_add_packages() {
        let base_report = ClusterInstall::new(littlefe_modified(), required_rolls())
            .run()
            .unwrap();
        let full_report = ClusterInstall::new(littlefe_modified(), standard_rolls())
            .run()
            .unwrap();
        // with the full roll set the graph is the same but the catalog is
        // bigger; packages only land if the graph references them, so
        // counts are equal here — the XSEDE roll in xcbc-core adds graph
        // nodes and therefore packages.
        assert_eq!(
            base_report.package_count("compute-0-0"),
            full_report.package_count("compute-0-0")
        );
        assert_eq!(full_report.rolls_installed.len(), standard_rolls().len());
    }
}
