//! The bare-metal cluster install workflow.
//!
//! §3: "Using the XSEDE roll during the Rocks cluster install will add
//! the packages necessary for an XSEDE-compatible basic cluster." This
//! module runs the whole "all at once, from scratch" flow on a simulated
//! cluster: installability checks, frontend install, insert-ethers
//! discovery, per-node kickstart, package installation into per-node RPM
//! databases, and a wall-clock [`Timeline`].

use crate::database::RocksDb;
use crate::graph::{Appliance, KickstartGraph};
use crate::insert_ethers::{DhcpRequest, InsertEthers};
use crate::kickstart::{self, KickstartError};
use crate::roll::Roll;
use std::collections::BTreeMap;
use xcbc_cluster::{ClusterSpec, NodeRole, Timeline};
use xcbc_rpm::{Package, RpmDb, TransactionSet};

/// Why an install could not proceed.
#[derive(Debug)]
pub enum InstallError {
    /// The hardware cannot host Rocks (diskless nodes, missing frontend).
    NotInstallable(Vec<String>),
    /// Kickstart generation failed for a node.
    Kickstart(KickstartError),
    /// The graph references a package no selected roll carries.
    MissingPackage { node: String, package: String },
    /// The package transaction failed on a node.
    Transaction { node: String, error: xcbc_rpm::TransactionError },
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstallError::NotInstallable(reasons) => {
                write!(f, "cluster is not Rocks-installable: {}", reasons.join("; "))
            }
            InstallError::Kickstart(e) => write!(f, "{e}"),
            InstallError::MissingPackage { node, package } => {
                write!(f, "{node}: package {package} not found in any selected roll")
            }
            InstallError::Transaction { node, error } => write!(f, "{node}: {error}"),
        }
    }
}

impl std::error::Error for InstallError {}

impl From<KickstartError> for InstallError {
    fn from(e: KickstartError) -> Self {
        InstallError::Kickstart(e)
    }
}

/// Result of a completed install.
#[derive(Debug)]
pub struct InstallReport {
    /// The cluster database after discovery.
    pub rocks_db: RocksDb,
    /// Per-host installed-package databases.
    pub node_dbs: BTreeMap<String, RpmDb>,
    /// Wall-clock timeline of the whole build.
    pub timeline: Timeline,
    /// Names of the rolls that were installed.
    pub rolls_installed: Vec<String>,
}

impl InstallReport {
    /// Packages installed on a given host.
    pub fn package_count(&self, host: &str) -> usize {
        self.node_dbs.get(host).map(RpmDb::len).unwrap_or(0)
    }
}

/// Install throughput assumption: anaconda lays down ~20 MB/s from the
/// frontend's HTTP tree over GbE.
const INSTALL_MBPS: f64 = 20.0;
/// Fixed overheads (seconds).
const FRONTEND_SCREENS_S: f64 = 600.0; // answering the installer screens
const NODE_PXE_S: f64 = 90.0; // BIOS + PXE + anaconda start
const FRONTEND_POST_S: f64 = 300.0; // db init, dhcpd, tree build

/// The full from-scratch install driver.
#[derive(Debug)]
pub struct ClusterInstall {
    cluster: ClusterSpec,
    rolls: Vec<Roll>,
    graph: KickstartGraph,
}

impl ClusterInstall {
    /// Prepare an install of `cluster` with the given roll set. Roll
    /// graph fragments are merged into the standard graph and attached to
    /// both frontend and compute appliances.
    pub fn new(cluster: ClusterSpec, rolls: Vec<Roll>) -> Self {
        let mut graph = KickstartGraph::standard();
        for roll in &rolls {
            graph
                .merge_roll_nodes(&roll.graph_nodes, &[Appliance::Frontend, Appliance::Compute])
                .expect("standard graph has both roots");
        }
        ClusterInstall { cluster, rolls, graph }
    }

    pub fn graph(&self) -> &KickstartGraph {
        &self.graph
    }

    /// All packages across the selected rolls.
    fn roll_packages(&self) -> BTreeMap<&str, &Package> {
        let mut map = BTreeMap::new();
        for roll in &self.rolls {
            for p in &roll.packages {
                map.insert(p.name(), p);
            }
        }
        map
    }

    /// Run the install.
    pub fn run(&self) -> Result<InstallReport, InstallError> {
        let (ok, reasons) = self.cluster.rocks_installable();
        if !ok {
            return Err(InstallError::NotInstallable(reasons));
        }
        let catalog = self.roll_packages();
        let mut timeline = Timeline::new();
        let mut node_dbs: BTreeMap<String, RpmDb> = BTreeMap::new();

        // --- frontend install ---
        let fe = self.cluster.frontend().expect("checked above");
        let fe_ks = kickstart::generate(&self.graph, fe, Appliance::Frontend)?;
        let fe_db = self.install_packages(&fe.hostname, &fe_ks.packages, &catalog)?;
        let fe_payload: u64 = fe_db.installed_size_bytes();
        timeline.push("frontend: installer screens & roll selection", FRONTEND_SCREENS_S);
        timeline.push(
            "frontend: package installation",
            fe_payload as f64 / (INSTALL_MBPS * 1024.0 * 1024.0),
        );
        timeline.push("frontend: post-install (db, dhcpd, central tree)", FRONTEND_POST_S);
        node_dbs.insert(fe.hostname.clone(), fe_db);

        // --- insert-ethers discovery + compute installs (parallel) ---
        let mut rocks_db = RocksDb::new(&fe.hostname);
        rocks_db
            .add_frontend(&synth_mac(&fe.hostname), fe.cores())
            .expect("fresh database");
        {
            let mut session = InsertEthers::start(&mut rocks_db, Appliance::Compute, 0);
            for n in self.cluster.nodes.iter().filter(|n| n.role == NodeRole::Compute) {
                session
                    .on_dhcp(&DhcpRequest { mac: synth_mac(&n.hostname), cpus: n.cores() })
                    .expect("unique synthetic MACs");
            }
        }

        let computes: Vec<_> =
            self.cluster.nodes.iter().filter(|n| n.role == NodeRole::Compute).collect();
        let mut first = true;
        for n in &computes {
            let ks = kickstart::generate(&self.graph, n, Appliance::Compute)?;
            let db = self.install_packages(&n.hostname, &ks.packages, &catalog)?;
            let secs = NODE_PXE_S
                + db.installed_size_bytes() as f64 / (INSTALL_MBPS * 1024.0 * 1024.0);
            let label = format!("{}: pxe + kickstart install", n.hostname);
            if first {
                timeline.push(label, secs);
                first = false;
            } else {
                // computes install concurrently from the frontend tree
                timeline.push_parallel(label, secs);
            }
            node_dbs.insert(n.hostname.clone(), db);
        }

        Ok(InstallReport {
            rocks_db,
            node_dbs,
            timeline,
            rolls_installed: self.rolls.iter().map(|r| r.name.clone()).collect(),
        })
    }

    fn install_packages(
        &self,
        node: &str,
        names: &[String],
        catalog: &BTreeMap<&str, &Package>,
    ) -> Result<RpmDb, InstallError> {
        let mut tx = TransactionSet::new();
        for name in names {
            let pkg = catalog.get(name.as_str()).ok_or_else(|| InstallError::MissingPackage {
                node: node.to_string(),
                package: name.clone(),
            })?;
            tx.add_install((*pkg).clone());
        }
        let mut db = RpmDb::new();
        tx.run(&mut db)
            .map_err(|error| InstallError::Transaction { node: node.to_string(), error })?;
        Ok(db)
    }
}

/// Deterministic MAC derived from a hostname (simulation stand-in for
/// real hardware addresses).
fn synth_mac(hostname: &str) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in hostname.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!(
        "02:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
        (h >> 32) as u8,
        (h >> 24) as u8,
        (h >> 16) as u8,
        (h >> 8) as u8,
        h as u8
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roll::standard_rolls;
    use xcbc_cluster::specs::{limulus_hpc200, littlefe_modified};

    fn required_rolls() -> Vec<Roll> {
        standard_rolls().into_iter().filter(|r| r.required).collect()
    }

    #[test]
    fn littlefe_full_install_succeeds() {
        let install = ClusterInstall::new(littlefe_modified(), standard_rolls());
        let report = install.run().unwrap();
        assert_eq!(report.node_dbs.len(), 6);
        assert_eq!(report.rocks_db.host_count(), 6);
        assert!(report.rocks_db.host("compute-0-4").is_some());
        // every node got the base packages
        for (host, db) in &report.node_dbs {
            assert!(db.is_installed("rocks-base"), "{host} missing rocks-base");
            assert!(db.verify().is_empty(), "{host} db inconsistent");
        }
        // frontend has the web server, computes do not
        assert!(report.node_dbs["littlefe"].is_installed("httpd"));
        assert!(!report.node_dbs["compute-0-0"].is_installed("httpd"));
    }

    #[test]
    fn timeline_has_frontend_then_parallel_computes() {
        let install = ClusterInstall::new(littlefe_modified(), required_rolls());
        let report = install.run().unwrap();
        let phases = report.timeline.phases();
        assert!(phases[0].label.contains("frontend"));
        // the five compute installs share a start time
        let compute_phases: Vec<_> =
            phases.iter().filter(|p| p.label.contains("compute-0-")).collect();
        assert_eq!(compute_phases.len(), 5);
        let starts: Vec<_> = compute_phases.iter().map(|p| p.start_s).collect();
        assert!(starts.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9), "parallel: {starts:?}");
        // total time is dominated by frontend + one compute wave
        assert!(report.timeline.total_seconds() < 3.0 * 3600.0, "a LittleFe builds in an afternoon");
    }

    #[test]
    fn limulus_cannot_be_rocks_installed() {
        let install = ClusterInstall::new(limulus_hpc200(), standard_rolls());
        match install.run() {
            Err(InstallError::NotInstallable(reasons)) => {
                assert!(reasons.iter().any(|r| r.contains("diskless")))
            }
            other => panic!("expected NotInstallable, got {other:?}"),
        }
    }

    #[test]
    fn missing_roll_package_is_reported() {
        // graph wants bash & friends, but we only supply the base roll
        let only_base: Vec<Roll> =
            standard_rolls().into_iter().filter(|r| r.name == "base").collect();
        let install = ClusterInstall::new(littlefe_modified(), only_base);
        match install.run() {
            Err(InstallError::MissingPackage { package, .. }) => {
                assert!(!package.is_empty());
            }
            other => panic!("expected MissingPackage, got {other:?}"),
        }
    }

    #[test]
    fn synthetic_macs_unique_and_stable() {
        let a = synth_mac("compute-0-0");
        let b = synth_mac("compute-0-1");
        assert_ne!(a, b);
        assert_eq!(a, synth_mac("compute-0-0"));
        assert!(a.starts_with("02:"));
    }

    #[test]
    fn optional_rolls_add_packages() {
        let base_report =
            ClusterInstall::new(littlefe_modified(), required_rolls()).run().unwrap();
        let full_report =
            ClusterInstall::new(littlefe_modified(), standard_rolls()).run().unwrap();
        // with the full roll set the graph is the same but the catalog is
        // bigger; packages only land if the graph references them, so
        // counts are equal here — the XSEDE roll in xcbc-core adds graph
        // nodes and therefore packages.
        assert_eq!(
            base_report.package_count("compute-0-0"),
            full_report.package_count("compute-0-0")
        );
        assert_eq!(full_report.rolls_installed.len(), standard_rolls().len());
    }
}
