//! # xcbc-rocks — Rocks cluster-distribution substrate
//!
//! Reimplements the Rocks mechanics XCBC builds on (§3: "XCBC builds on
//! and currently depends on the very successful Rocks project"): Rolls
//! (package collections with kickstart-graph fragments), the kickstart
//! graph itself, appliance types, the cluster host database, insert-ethers
//! node discovery, attribute resolution, kickstart profile generation
//! (with the *diskful-only* constraint that forced the LittleFe mSATA
//! modification), and the bare-metal install workflow with timing.
//!
//! ```
//! use xcbc_rocks::{KickstartGraph, Appliance};
//!
//! let graph = KickstartGraph::standard();
//! let pkgs = graph.packages_for(Appliance::Compute).unwrap();
//! assert!(pkgs.iter().any(|p| p == "rocks-base"));
//! ```

pub mod attrs;
pub mod cluster_fork;
pub mod commands;
pub mod database;
pub mod distribution;
pub mod graph;
pub mod insert_ethers;
pub mod install;
pub mod kickstart;
pub mod netconfig;
pub mod pxe;
pub mod roll;
pub mod service411;

pub use attrs::{AttrScope, AttrStore};
pub use cluster_fork::{cluster_fork, ForkReport, ForkResult};
pub use commands::RocksCli;
pub use database::{HostRecord, Membership, RocksDb};
pub use distribution::{build_update_roll, Distribution};
pub use graph::{Appliance, GraphError, GraphNode, KickstartGraph};
pub use insert_ethers::{DhcpRequest, InsertEthers};
pub use install::{
    ClusterInstall, InstallError, InstallErrorKind, InstallProgress, InstallReport,
    ResilienceConfig, ResilientReport, TRACE_SOURCE,
};
pub use kickstart::{KickstartError, KickstartProfile, Partition};
pub use netconfig::{generate_etc_hosts, validate_nics, NetworkDef, NetworkTable};
pub use pxe::{boot_node, diagnose, PxeOutcome, PxeStage};
pub use roll::{standard_rolls, Roll};
pub use service411::{add_user_lab, Client411, Master411, SyncedFile};
