//! Cluster network configuration: the Rocks networks table, `/etc/hosts`
//! generation, and the dual-homed frontend's interface layout.
//!
//! Rocks manages two networks — `private` (eth0, the cluster switch) and
//! `public` (eth1, campus) — and regenerates `/etc/hosts` on every node
//! from its database. The §5.1 build narrative ("a hard-wired connection
//! using a dual-homed headnode ... only one of the two network
//! interfaces will be used on compute nodes") is this layout.

use crate::database::RocksDb;
use serde::Serialize;

/// One of the cluster's networks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct NetworkDef {
    pub name: String,
    pub subnet: String,
    pub netmask: String,
    /// Interface used for this network on member hosts.
    pub device: String,
}

/// The Rocks networks table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct NetworkTable {
    pub private: NetworkDef,
    pub public: NetworkDef,
}

impl NetworkTable {
    /// The stock Rocks layout.
    pub fn standard(public_subnet: &str) -> Self {
        NetworkTable {
            private: NetworkDef {
                name: "private".to_string(),
                subnet: "10.1.0.0".to_string(),
                netmask: "255.255.0.0".to_string(),
                device: "eth0".to_string(),
            },
            public: NetworkDef {
                name: "public".to_string(),
                subnet: public_subnet.to_string(),
                netmask: "255.255.255.0".to_string(),
                device: "eth1".to_string(),
            },
        }
    }

    /// Interfaces a host needs: the frontend joins both networks.
    pub fn interfaces_for(&self, is_frontend: bool) -> Vec<&NetworkDef> {
        if is_frontend {
            vec![&self.private, &self.public]
        } else {
            vec![&self.private]
        }
    }
}

/// Generate `/etc/hosts` from the cluster database (what `rocks report
/// host` feeds to every node via 411).
pub fn generate_etc_hosts(db: &RocksDb, table: &NetworkTable) -> String {
    let mut out = String::from("127.0.0.1\tlocalhost.localdomain localhost\n");
    out.push_str(&format!(
        "# Rocks private network ({})\n",
        table.private.subnet
    ));
    for h in db.hosts() {
        out.push_str(&format!("{}\t{}.local {}\n", h.ip, h.name, h.name));
    }
    out
}

/// Validate that a cluster's NIC inventory supports the network table:
/// frontend needs an interface per network, computes need one.
pub fn validate_nics(
    cluster: &xcbc_cluster::ClusterSpec,
    table: &NetworkTable,
) -> Result<(), String> {
    for node in &cluster.nodes {
        let needed = table
            .interfaces_for(node.role == xcbc_cluster::NodeRole::Frontend)
            .len();
        if node.nics.len() < needed {
            return Err(format!(
                "{} has {} NIC(s) but needs {} for its networks",
                node.hostname,
                node.nics.len(),
                needed
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Appliance;
    use xcbc_cluster::specs::{limulus_hpc200, littlefe_modified};

    fn db() -> RocksDb {
        let mut db = RocksDb::new("littlefe");
        db.add_frontend("ff:ff", 2).unwrap();
        for i in 0..2 {
            db.add_host(Appliance::Compute, 0, &format!("aa:{i:02x}"), 2)
                .unwrap();
        }
        db
    }

    #[test]
    fn standard_layout() {
        let t = NetworkTable::standard("156.56.1.0");
        assert_eq!(t.private.device, "eth0");
        assert_eq!(t.public.device, "eth1");
        assert_eq!(t.interfaces_for(true).len(), 2);
        assert_eq!(t.interfaces_for(false).len(), 1);
    }

    #[test]
    fn etc_hosts_lists_every_host() {
        let hosts = generate_etc_hosts(&db(), &NetworkTable::standard("156.56.1.0"));
        assert!(hosts.contains("localhost"));
        assert!(hosts.contains("littlefe.local littlefe"));
        assert!(hosts.contains("compute-0-0.local"));
        assert!(hosts.contains("compute-0-1.local"));
        assert_eq!(hosts.matches("10.1.255.").count(), 3);
    }

    #[test]
    fn modified_littlefe_nics_validate() {
        let t = NetworkTable::standard("156.56.1.0");
        assert!(validate_nics(&littlefe_modified(), &t).is_ok());
        assert!(validate_nics(&limulus_hpc200(), &t).is_ok());
    }

    #[test]
    fn single_homed_frontend_fails_validation() {
        let mut cluster = littlefe_modified();
        cluster.nodes[0].nics.truncate(1);
        let t = NetworkTable::standard("156.56.1.0");
        let err = validate_nics(&cluster, &t).unwrap_err();
        assert!(err.contains("littlefe"));
        assert!(err.contains("needs 2"));
    }
}
