//! The Rocks distribution tree (`rocks create distro`).
//!
//! The frontend serves installs from a local tree built out of the rolls
//! it carries. §3's update discussion hinges on this: after adding a roll
//! (e.g. an XSEDE update roll) the administrator must *rebuild the
//! distribution* and set nodes to reinstall — the laborious path the
//! paper contrasts with `yum update`.

use crate::roll::Roll;
use std::collections::BTreeMap;
use xcbc_rpm::{Evr, Package};

/// The frontend's install tree.
#[derive(Debug, Clone, Default)]
pub struct Distribution {
    /// Rolls incorporated, by name → version.
    rolls: BTreeMap<String, String>,
    /// name → best package available in the tree.
    packages: BTreeMap<String, Package>,
    /// Times the tree has been rebuilt (each rebuild is admin effort).
    pub rebuild_count: u32,
}

impl Distribution {
    pub fn new() -> Self {
        Self::default()
    }

    /// `rocks add roll` + `rocks enable roll` + `rocks create distro`:
    /// incorporate a roll and rebuild. Newer EVRs win (an *update roll*
    /// shadows the original packages).
    pub fn add_roll_and_rebuild(&mut self, roll: &Roll) {
        self.rolls.insert(roll.name.clone(), roll.version.clone());
        for p in &roll.packages {
            match self.packages.get(p.name()) {
                Some(existing) if existing.nevra.evr >= p.nevra.evr => {}
                _ => {
                    self.packages.insert(p.name().to_string(), p.clone());
                }
            }
        }
        self.rebuild_count += 1;
    }

    pub fn has_roll(&self, name: &str) -> bool {
        self.rolls.contains_key(name)
    }

    pub fn roll_count(&self) -> usize {
        self.rolls.len()
    }

    pub fn package_count(&self) -> usize {
        self.packages.len()
    }

    /// The version of `name` the next kickstart will install.
    pub fn version_of(&self, name: &str) -> Option<&Evr> {
        self.packages.get(name).map(|p| &p.nevra.evr)
    }

    /// Everything in the tree.
    pub fn packages(&self) -> impl Iterator<Item = &Package> {
        self.packages.values()
    }

    /// Total tree size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.packages.values().map(|p| p.size_bytes).sum()
    }
}

/// Build an *update roll*: given the current distribution and a newer
/// package set (e.g. the XSEDE yum repo contents), produce a roll holding
/// exactly the packages that are newer than what the tree carries — the
/// Rocks-documented "preferred method" for updates.
pub fn build_update_roll(distro: &Distribution, newer: &[Package], version: &str) -> Roll {
    let updates: Vec<Package> = newer
        .iter()
        .filter(|p| match distro.version_of(p.name()) {
            Some(current) => &p.nevra.evr > current,
            None => false, // update rolls only update, never introduce
        })
        .cloned()
        .collect();
    Roll::new(
        "updates",
        version,
        false,
        "site update roll (rocks create mirror)",
    )
    .with_packages(updates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roll::standard_rolls;
    use xcbc_rpm::PackageBuilder;

    fn base_distro() -> Distribution {
        let mut d = Distribution::new();
        for roll in standard_rolls() {
            d.add_roll_and_rebuild(&roll);
        }
        d
    }

    #[test]
    fn incorporates_all_rolls() {
        let d = base_distro();
        assert_eq!(d.roll_count(), standard_rolls().len());
        assert!(d.has_roll("base"));
        assert!(d.package_count() > 20);
        assert!(d.size_bytes() > 0);
    }

    #[test]
    fn update_roll_contains_only_newer() {
        let d = base_distro();
        let newer = vec![
            PackageBuilder::new("bash", "4.1.2", "29.el6").build(), // newer release
            PackageBuilder::new("glibc", "2.12", "1.el6").build(),  // older/equal → excluded
            PackageBuilder::new("brandnew", "1.0", "1").build(),    // not in tree → excluded
        ];
        let roll = build_update_roll(&d, &newer, "2015.03");
        let names: Vec<_> = roll.packages.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["bash"]);
    }

    #[test]
    fn applying_update_roll_bumps_versions() {
        let mut d = base_distro();
        let rebuilds_before = d.rebuild_count;
        let newer = vec![PackageBuilder::new("bash", "4.1.2", "29.el6").build()];
        let roll = build_update_roll(&d, &newer, "2015.03");
        d.add_roll_and_rebuild(&roll);
        assert_eq!(d.version_of("bash").unwrap().release, "29.el6");
        assert_eq!(
            d.rebuild_count,
            rebuilds_before + 1,
            "every update costs a rebuild"
        );
    }

    #[test]
    fn older_roll_does_not_downgrade() {
        let mut d = base_distro();
        let old = Roll::new("stale", "0.1", false, "old packages")
            .with_packages(vec![PackageBuilder::new("bash", "3.2", "1").build()]);
        d.add_roll_and_rebuild(&old);
        assert_eq!(d.version_of("bash").unwrap().version, "4.1.2");
    }

    #[test]
    fn empty_update_roll_when_current() {
        let d = base_distro();
        let same: Vec<Package> = d.packages().cloned().collect();
        let roll = build_update_roll(&d, &same, "x");
        assert!(roll.packages.is_empty());
    }
}
