//! The kickstart graph.
//!
//! Rocks expresses "what gets installed on which appliance" as a directed
//! graph of XML node files; traversing the graph from an appliance's root
//! node collects its package set and %post scripts. We reproduce the
//! structure: named nodes carrying packages/scripts, directed edges, and
//! a per-appliance traversal with cycle detection.

use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Appliance types (Rocks "memberships" bind hosts to these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum Appliance {
    Frontend,
    Compute,
    Nas,
}

impl Appliance {
    /// The graph root node for this appliance.
    pub fn root_node(self) -> &'static str {
        match self {
            Appliance::Frontend => "frontend",
            Appliance::Compute => "compute",
            Appliance::Nas => "nas",
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Appliance::Frontend => "Frontend",
            Appliance::Compute => "Compute",
            Appliance::Nas => "NAS Appliance",
        }
    }
}

/// One node file in the graph.
#[derive(Debug, Clone, Default, Serialize)]
pub struct GraphNode {
    pub name: String,
    /// Package *names* this node pulls in.
    pub packages: Vec<String>,
    /// %post script descriptions.
    pub post_scripts: Vec<String>,
}

impl GraphNode {
    pub fn new(name: &str) -> Self {
        GraphNode {
            name: name.to_string(),
            ..Default::default()
        }
    }

    pub fn package(mut self, p: &str) -> Self {
        self.packages.push(p.to_string());
        self
    }

    pub fn post(mut self, script: &str) -> Self {
        self.post_scripts.push(script.to_string());
        self
    }
}

/// Errors from graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Edge references a node that does not exist.
    UnknownNode(String),
    /// The appliance root is missing.
    MissingRoot(&'static str),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "edge references unknown node {n}"),
            GraphError::MissingRoot(r) => write!(f, "appliance root node {r} missing"),
        }
    }
}

impl std::error::Error for GraphError {}

/// The kickstart graph: nodes plus directed edges (`from` includes `to`).
#[derive(Debug, Clone, Default)]
pub struct KickstartGraph {
    nodes: BTreeMap<String, GraphNode>,
    edges: BTreeMap<String, BTreeSet<String>>,
}

impl KickstartGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// The stock Rocks 6.1.1 graph skeleton: frontend and compute both
    /// include `base`; the frontend additionally includes server-side
    /// services (database, web server, dhcp, installer tree).
    pub fn standard() -> Self {
        let mut g = KickstartGraph::new();
        g.add_node(
            GraphNode::new("base")
                .package("rocks-base")
                .package("rocks-command")
                .package("bash")
                .package("coreutils")
                .package("glibc")
                .package("openssh-server")
                .post("configure 411 client"),
        );
        g.add_node(
            GraphNode::new("frontend")
                .package("rocks-411")
                .package("httpd")
                .package("rocks-webserver")
                .post("initialize cluster database")
                .post("start dhcpd on private interface")
                .post("build central installer tree"),
        );
        g.add_node(GraphNode::new("compute").post("configure pxe re-install flag"));
        g.add_node(
            GraphNode::new("nas")
                .package("rsync")
                .post("export /export via nfs"),
        );
        g.add_node(
            GraphNode::new("client")
                .package("rsync")
                .post("point 411 at frontend"),
        );
        g.add_edge("frontend", "base").unwrap();
        g.add_edge("compute", "base").unwrap();
        g.add_edge("compute", "client").unwrap();
        g.add_edge("nas", "base").unwrap();
        g.add_edge("nas", "client").unwrap();
        g
    }

    pub fn add_node(&mut self, node: GraphNode) {
        self.edges.entry(node.name.clone()).or_default();
        self.nodes.insert(node.name.clone(), node);
    }

    pub fn has_node(&self, name: &str) -> bool {
        self.nodes.contains_key(name)
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Add an edge `from → to` ("from includes to").
    pub fn add_edge(&mut self, from: &str, to: &str) -> Result<(), GraphError> {
        if !self.nodes.contains_key(from) {
            return Err(GraphError::UnknownNode(from.to_string()));
        }
        if !self.nodes.contains_key(to) {
            return Err(GraphError::UnknownNode(to.to_string()));
        }
        self.edges
            .get_mut(from)
            .expect("entry exists")
            .insert(to.to_string());
        Ok(())
    }

    /// Merge a roll's graph fragments into the distribution graph and
    /// attach each fragment to the given appliance roots (what `rocks add
    /// roll` + `rocks enable roll` accomplish).
    pub fn merge_roll_nodes(
        &mut self,
        nodes: &[GraphNode],
        attach_to: &[Appliance],
    ) -> Result<(), GraphError> {
        for n in nodes {
            self.add_node(n.clone());
        }
        for n in nodes {
            for a in attach_to {
                if !self.nodes.contains_key(a.root_node()) {
                    return Err(GraphError::MissingRoot(a.root_node()));
                }
                self.add_edge(a.root_node(), &n.name)?;
            }
        }
        Ok(())
    }

    /// BFS from the appliance root, collecting reachable nodes (each once,
    /// even through diamonds/cycles).
    fn reachable(&self, appliance: Appliance) -> Result<Vec<&GraphNode>, GraphError> {
        let root = appliance.root_node();
        if !self.nodes.contains_key(root) {
            return Err(GraphError::MissingRoot(root));
        }
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        let mut order = Vec::new();
        seen.insert(root.to_string());
        queue.push_back(root.to_string());
        while let Some(name) = queue.pop_front() {
            order.push(&self.nodes[&name]);
            if let Some(nexts) = self.edges.get(&name) {
                for next in nexts {
                    if seen.insert(next.clone()) {
                        queue.push_back(next.clone());
                    }
                }
            }
        }
        Ok(order)
    }

    /// Deduplicated, sorted package list for an appliance.
    pub fn packages_for(&self, appliance: Appliance) -> Result<Vec<String>, GraphError> {
        let mut pkgs: BTreeSet<String> = BTreeSet::new();
        for node in self.reachable(appliance)? {
            pkgs.extend(node.packages.iter().cloned());
        }
        Ok(pkgs.into_iter().collect())
    }

    /// %post scripts for an appliance, in BFS order.
    pub fn post_scripts_for(&self, appliance: Appliance) -> Result<Vec<String>, GraphError> {
        let mut out = Vec::new();
        for node in self.reachable(appliance)? {
            out.extend(node.post_scripts.iter().cloned());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_graph_roots_exist() {
        let g = KickstartGraph::standard();
        for a in [Appliance::Frontend, Appliance::Compute, Appliance::Nas] {
            assert!(g.has_node(a.root_node()));
        }
    }

    #[test]
    fn frontend_and_compute_share_base() {
        let g = KickstartGraph::standard();
        let fe = g.packages_for(Appliance::Frontend).unwrap();
        let co = g.packages_for(Appliance::Compute).unwrap();
        assert!(fe.contains(&"rocks-base".to_string()));
        assert!(co.contains(&"rocks-base".to_string()));
        // frontend-only bits
        assert!(fe.contains(&"httpd".to_string()));
        assert!(!co.contains(&"httpd".to_string()));
    }

    #[test]
    fn compute_gets_client_config() {
        let g = KickstartGraph::standard();
        let posts = g.post_scripts_for(Appliance::Compute).unwrap();
        assert!(posts.iter().any(|s| s.contains("411")));
        assert!(posts.iter().any(|s| s.contains("pxe")));
    }

    #[test]
    fn edge_to_unknown_node_rejected() {
        let mut g = KickstartGraph::standard();
        assert_eq!(
            g.add_edge("frontend", "nonexistent"),
            Err(GraphError::UnknownNode("nonexistent".to_string()))
        );
        assert_eq!(
            g.add_edge("ghost", "base"),
            Err(GraphError::UnknownNode("ghost".to_string()))
        );
    }

    #[test]
    fn missing_root_detected() {
        let g = KickstartGraph::new();
        assert_eq!(
            g.packages_for(Appliance::Compute),
            Err(GraphError::MissingRoot("compute"))
        );
    }

    #[test]
    fn merge_roll_attaches_to_appliances() {
        let mut g = KickstartGraph::standard();
        let nodes = vec![GraphNode::new("xsede-sci")
            .package("gromacs")
            .package("lammps")];
        g.merge_roll_nodes(&nodes, &[Appliance::Frontend, Appliance::Compute])
            .unwrap();
        assert!(g
            .packages_for(Appliance::Frontend)
            .unwrap()
            .contains(&"gromacs".to_string()));
        assert!(g
            .packages_for(Appliance::Compute)
            .unwrap()
            .contains(&"lammps".to_string()));
        assert!(!g
            .packages_for(Appliance::Nas)
            .unwrap()
            .contains(&"gromacs".to_string()));
    }

    #[test]
    fn cycles_do_not_hang_traversal() {
        let mut g = KickstartGraph::standard();
        g.add_node(GraphNode::new("a").package("pa"));
        g.add_node(GraphNode::new("b").package("pb"));
        g.add_edge("a", "b").unwrap();
        g.add_edge("b", "a").unwrap();
        g.add_edge("compute", "a").unwrap();
        let pkgs = g.packages_for(Appliance::Compute).unwrap();
        assert!(pkgs.contains(&"pa".to_string()));
        assert!(pkgs.contains(&"pb".to_string()));
    }

    #[test]
    fn packages_deduplicated() {
        let mut g = KickstartGraph::standard();
        g.add_node(GraphNode::new("dup1").package("same"));
        g.add_node(GraphNode::new("dup2").package("same"));
        g.add_edge("compute", "dup1").unwrap();
        g.add_edge("compute", "dup2").unwrap();
        let pkgs = g.packages_for(Appliance::Compute).unwrap();
        assert_eq!(pkgs.iter().filter(|p| *p == "same").count(), 1);
    }
}
