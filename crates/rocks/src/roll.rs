//! Rolls: Rocks' unit of software distribution.
//!
//! A Roll bundles packages with kickstart-graph fragments. Table 1 of the
//! paper lists the optional rolls the XCBC 0.9 build draws on; the
//! XSEDE-specific roll itself is defined in `xcbc-core::roll` on top of
//! this type.

use crate::graph::GraphNode;
use xcbc_rpm::{Package, PackageBuilder, PackageGroup};

/// A Rocks Roll.
#[derive(Debug, Clone)]
pub struct Roll {
    pub name: String,
    pub version: String,
    pub arch: String,
    /// Required rolls must be present for any install (base/kernel/os).
    pub required: bool,
    /// One-line description (the Table 1 "Specific packages" column).
    pub description: String,
    pub packages: Vec<Package>,
    /// Kickstart graph fragments this roll contributes.
    pub graph_nodes: Vec<GraphNode>,
}

impl Roll {
    pub fn new(name: &str, version: &str, required: bool, description: &str) -> Self {
        Roll {
            name: name.to_string(),
            version: version.to_string(),
            arch: "x86_64".to_string(),
            required,
            description: description.to_string(),
            packages: Vec::new(),
            graph_nodes: Vec::new(),
        }
    }

    pub fn with_packages(mut self, pkgs: Vec<Package>) -> Self {
        self.packages = pkgs;
        self
    }

    pub fn with_graph_nodes(mut self, nodes: Vec<GraphNode>) -> Self {
        self.graph_nodes = nodes;
        self
    }

    /// Total payload bytes.
    pub fn size_bytes(&self) -> u64 {
        self.packages.iter().map(|p| p.size_bytes).sum()
    }
}

fn pkg(name: &str, version: &str, group: PackageGroup, mb: u64) -> Package {
    PackageBuilder::new(name, version, "1.el6")
        .group(group)
        .size_mb(mb)
        .build()
}

/// The Rocks 6.1.1 roll set the paper's Table 1 draws on: the required
/// base/kernel/os rolls plus the optional rolls XCBC includes.
pub fn standard_rolls() -> Vec<Roll> {
    use PackageGroup::*;
    vec![
        Roll::new(
            "base",
            "6.1.1",
            true,
            "Rocks core: command line, insert-ethers, 411",
        )
        .with_packages(vec![
            pkg("rocks-base", "6.1.1", Basics, 50),
            pkg("rocks-command", "6.1.1", Basics, 10),
            pkg("rocks-411", "6.1.1", Basics, 5),
        ]),
        Roll::new(
            "kernel",
            "6.1.1",
            true,
            "Installer kernel and anaconda hooks",
        )
        .with_packages(vec![pkg("rocks-installer-kernel", "2.6.32", Basics, 120)]),
        Roll::new("os", "6.1.1", true, "CentOS 6.5 base operating system").with_packages(vec![
            pkg("centos-release", "6.5", Basics, 1),
            pkg("bash", "4.1.2", Basics, 3),
            pkg("coreutils", "8.4", Basics, 12),
            pkg("glibc", "2.12", Basics, 25),
            pkg("openssh-server", "5.3p1", Basics, 2),
            pkg("rsync", "3.0.6", Basics, 1),
            pkg("modules", "3.2.10", Basics, 2),
            pkg("apache-ant", "1.7.1", Basics, 15),
            pkg("gmake", "3.81", Basics, 2),
            pkg("scons", "2.0.1", Basics, 3),
        ]),
        Roll::new(
            "area51",
            "6.1.1",
            false,
            "Security-related packages for analyzing the integrity of files and the kernel",
        )
        .with_packages(vec![
            pkg("tripwire", "2.4.2", Security, 5),
            pkg("chkrootkit", "0.49", Security, 1),
        ]),
        Roll::new("bio", "6.1.1", false, "Bioinformatics utilities").with_packages(vec![
            pkg("hmmer-rocks", "3.0", ScientificApplications, 20),
            pkg("ncbi-blast-rocks", "2.2.22", ScientificApplications, 80),
        ]),
        Roll::new(
            "fingerprint",
            "6.1.1",
            false,
            "Fingerprint application dependencies",
        )
        .with_packages(vec![pkg("fingerprint", "1.0", Other, 3)]),
        Roll::new(
            "htcondor",
            "6.1.1",
            false,
            "HTCondor high-throughput computing workload management system",
        )
        .with_packages(vec![pkg("condor", "8.0.6", SchedulerResourceManager, 90)]),
        Roll::new("ganglia", "6.1.1", false, "Cluster monitoring system").with_packages(vec![
            pkg("ganglia-gmond", "3.6.0", Monitoring, 2),
            pkg("ganglia-gmetad", "3.6.0", Monitoring, 3),
            pkg("ganglia-web", "3.5.12", Monitoring, 8),
        ]),
        Roll::new(
            "hpc",
            "6.1.1",
            false,
            "Tools for running parallel applications",
        )
        .with_packages(vec![
            pkg("rocks-openmpi", "1.6.2", CompilersLibraries, 40),
            pkg("mpich2-rocks", "1.4.1", CompilersLibraries, 35),
            pkg("benchmarks-hpc", "6.1.1", Other, 15),
        ]),
        Roll::new(
            "kvm",
            "6.1.1",
            false,
            "Support for building KVM virtual machines on cluster nodes",
        )
        .with_packages(vec![pkg("qemu-kvm", "0.12.1.2", Other, 25)]),
        Roll::new(
            "perl",
            "6.1.1",
            false,
            "Perl RPM, CPAN support utilities, and various CPAN modules",
        )
        .with_packages(vec![
            pkg("rocks-perl", "5.10.1", CompilersLibraries, 30),
            pkg("perl-CPAN", "1.9402", CompilersLibraries, 5),
        ]),
        Roll::new("python", "6.1.1", false, "Python 2.7 and Python 3.x").with_packages(vec![
            pkg("python27", "2.7.2", CompilersLibraries, 60),
            pkg("python3", "3.2.3", CompilersLibraries, 65),
        ]),
        Roll::new(
            "web-server",
            "6.1.1",
            true,
            "Rocks web server roll (required for the frontend installer tree)",
        )
        .with_packages(vec![
            pkg("httpd", "2.2.15", Other, 4),
            pkg("rocks-webserver", "6.1.1", Other, 6),
        ]),
        Roll::new(
            "zfs-linux",
            "6.1.1",
            false,
            "Zetabyte File System (ZFS) drivers for Linux",
        )
        .with_packages(vec![pkg("zfs", "0.6.2", Other, 30)]),
    ]
}

/// Names of the optional rolls from Table 1, for coverage checks.
pub const TABLE1_OPTIONAL_ROLLS: [&str; 10] = [
    "area51",
    "bio",
    "fingerprint",
    "htcondor",
    "ganglia",
    "hpc",
    "kvm",
    "perl",
    "python",
    "zfs-linux",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_set_contains_required_rolls() {
        let rolls = standard_rolls();
        let required: Vec<_> = rolls
            .iter()
            .filter(|r| r.required)
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(required, vec!["base", "kernel", "os", "web-server"]);
    }

    #[test]
    fn all_table1_optional_rolls_present() {
        let rolls = standard_rolls();
        for name in TABLE1_OPTIONAL_ROLLS {
            let roll = rolls.iter().find(|r| r.name == name);
            assert!(roll.is_some(), "missing roll {name}");
            assert!(!roll.unwrap().required);
            assert!(
                !roll.unwrap().packages.is_empty(),
                "roll {name} must carry packages"
            );
        }
        // web-server is in Table 1 but required for the frontend tree
        assert!(rolls.iter().any(|r| r.name == "web-server" && r.required));
    }

    #[test]
    fn roll_sizes_positive() {
        for r in standard_rolls() {
            assert!(r.size_bytes() > 0, "{} has zero size", r.name);
        }
    }

    #[test]
    fn version_matches_rocks_611() {
        // "Basics: Rocks 6.1.1, Centos 6.5"
        for r in standard_rolls() {
            assert_eq!(r.version, "6.1.1");
        }
        let os = standard_rolls()
            .into_iter()
            .find(|r| r.name == "os")
            .unwrap();
        assert!(os
            .packages
            .iter()
            .any(|p| p.name() == "centos-release" && p.evr().version == "6.5"));
    }
}
