//! The `rocks` command-line surface.
//!
//! A thin textual facade over [`RocksDb`] and [`AttrStore`] implementing
//! the handful of commands the paper's training curriculum has students
//! run: `rocks list host`, `rocks set attr`, `rocks add host`, `rocks set
//! host boot`. Commands return their output text or an error string, so
//! lab-grading code can assert on them.

use crate::attrs::{AttrScope, AttrStore};
use crate::database::RocksDb;
use crate::graph::Appliance;

/// A stateful `rocks` CLI bound to one cluster.
#[derive(Debug)]
pub struct RocksCli {
    pub db: RocksDb,
    pub attrs: AttrStore,
    /// Every command line executed (for lab grading).
    pub history: Vec<String>,
}

impl RocksCli {
    pub fn new(cluster_name: &str) -> Self {
        RocksCli {
            db: RocksDb::new(cluster_name),
            attrs: AttrStore::with_defaults(cluster_name),
            history: Vec::new(),
        }
    }

    /// Wrap an existing database (e.g. the one an install produced).
    pub fn with_db(db: RocksDb) -> Self {
        let attrs = AttrStore::with_defaults(&db.cluster_name.clone());
        RocksCli {
            db,
            attrs,
            history: Vec::new(),
        }
    }

    /// Execute one command line.
    pub fn run(&mut self, line: &str) -> Result<String, String> {
        self.history.push(line.to_string());
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            ["rocks", "list", "host"] => Ok(self.db.render_host_list()),
            ["rocks", "list", "host", "attr", host] => {
                let appliance = self.appliance_of(host)?;
                let attrs = self.attrs.all_for(host, appliance);
                let mut out = String::new();
                for (k, v) in attrs {
                    out.push_str(&format!("{host}: {k} = {v}\n"));
                }
                Ok(out)
            }
            ["rocks", "set", "attr", key, value] => {
                self.attrs.set(AttrScope::Global, key, value);
                Ok(String::new())
            }
            ["rocks", "set", "host", "attr", host, key, value] => {
                self.appliance_of(host)?;
                self.attrs
                    .set(AttrScope::Host(host.to_string()), key, value);
                Ok(String::new())
            }
            ["rocks", "add", "host", appliance, rest @ ..] => {
                let appliance = parse_appliance(appliance)?;
                let mut rack = 0u32;
                let mut mac = None;
                let mut cpus = 1u32;
                for kv in rest {
                    match kv.split_once('=') {
                        Some(("rack", v)) => {
                            rack = v.parse().map_err(|_| format!("bad rack: {v}"))?
                        }
                        Some(("mac", v)) => mac = Some(v.to_string()),
                        Some(("cpus", v)) => {
                            cpus = v.parse().map_err(|_| format!("bad cpus: {v}"))?
                        }
                        _ => return Err(format!("unknown argument: {kv}")),
                    }
                }
                let mac = mac.ok_or("mac= is required")?;
                let rec = self
                    .db
                    .add_host(appliance, rack, &mac, cpus)
                    .map_err(|e| e.to_string())?;
                Ok(format!("added {}\n", rec.name))
            }
            ["rocks", "remove", "host", host] => {
                self.db.remove_host(host).map_err(|e| e.to_string())?;
                Ok(format!("removed {host}\n"))
            }
            ["rocks", "set", "host", "boot", host, action] => {
                let reinstall = match *action {
                    "action=install" => true,
                    "action=os" => false,
                    other => return Err(format!("unknown boot action: {other}")),
                };
                self.db
                    .set_install_action(host, reinstall)
                    .map_err(|e| e.to_string())?;
                Ok(String::new())
            }
            ["rocks", "report", "host"] => Ok(format!(
                "{} hosts in cluster {}\n",
                self.db.host_count(),
                self.db.cluster_name
            )),
            _ => Err(format!("unknown command: {line}")),
        }
    }

    fn appliance_of(&self, host: &str) -> Result<Appliance, String> {
        self.db
            .host(host)
            .map(|h| h.membership.appliance)
            .ok_or_else(|| format!("unknown host {host}"))
    }
}

fn parse_appliance(s: &str) -> Result<Appliance, String> {
    match s {
        "compute" => Ok(Appliance::Compute),
        "nas" => Ok(Appliance::Nas),
        "frontend" => Ok(Appliance::Frontend),
        other => Err(format!("unknown appliance: {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli() -> RocksCli {
        let mut cli = RocksCli::new("littlefe");
        cli.db.add_frontend("ff:ff", 2).unwrap();
        cli
    }

    #[test]
    fn add_and_list_hosts() {
        let mut c = cli();
        let out = c
            .run("rocks add host compute rack=0 mac=aa:00 cpus=2")
            .unwrap();
        assert_eq!(out, "added compute-0-0\n");
        let listing = c.run("rocks list host").unwrap();
        assert!(listing.contains("compute-0-0"));
        assert!(listing.contains("littlefe"));
    }

    #[test]
    fn add_requires_mac() {
        let mut c = cli();
        assert!(c.run("rocks add host compute rack=0").is_err());
    }

    #[test]
    fn set_and_list_attrs() {
        let mut c = cli();
        c.run("rocks add host compute rack=0 mac=aa:00 cpus=2")
            .unwrap();
        c.run("rocks set attr Kickstart_Lang en_US").unwrap();
        c.run("rocks set host attr compute-0-0 x11 true").unwrap();
        let out = c.run("rocks list host attr compute-0-0").unwrap();
        assert!(out.contains("Kickstart_Lang = en_US"));
        assert!(out.contains("x11 = true"), "host override wins: {out}");
    }

    #[test]
    fn boot_action() {
        let mut c = cli();
        c.run("rocks add host compute rack=0 mac=aa:00 cpus=2")
            .unwrap();
        c.run("rocks set host boot compute-0-0 action=os").unwrap();
        assert!(!c.db.host("compute-0-0").unwrap().install_action);
        c.run("rocks set host boot compute-0-0 action=install")
            .unwrap();
        assert!(c.db.host("compute-0-0").unwrap().install_action);
        assert!(c
            .run("rocks set host boot compute-0-0 action=nonsense")
            .is_err());
    }

    #[test]
    fn remove_host() {
        let mut c = cli();
        c.run("rocks add host compute rack=0 mac=aa:00 cpus=2")
            .unwrap();
        c.run("rocks remove host compute-0-0").unwrap();
        assert!(c.run("rocks remove host compute-0-0").is_err());
    }

    #[test]
    fn unknown_command_errors() {
        let mut c = cli();
        assert!(c.run("rocks frobnicate").is_err());
        assert!(c.run("yum install gromacs").is_err());
    }

    #[test]
    fn history_records_everything() {
        let mut c = cli();
        let _ = c.run("rocks list host");
        let _ = c.run("rocks bogus");
        assert_eq!(c.history.len(), 2);
    }

    #[test]
    fn report_host_counts() {
        let mut c = cli();
        let out = c.run("rocks report host").unwrap();
        assert!(out.contains("1 hosts in cluster littlefe"));
    }
}
