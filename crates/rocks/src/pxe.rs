//! The PXE boot chain — how a compute node actually reinstalls.
//!
//! `insert-ethers` only works because every Rocks compute node network-
//! boots: DHCP → TFTP (pxelinux) → installer kernel → kickstart fetch →
//! anaconda → local boot. This module walks that state machine with
//! per-stage failure injection, producing the timelines the install
//! workflow accounts and the diagnostics a training lab teaches.

use serde::Serialize;
use xcbc_cluster::Timeline;

/// Stages of the chain, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum PxeStage {
    Dhcp,
    Tftp,
    KernelBoot,
    KickstartFetch,
    Anaconda,
    LocalBoot,
}

impl PxeStage {
    pub const ALL: [PxeStage; 6] = [
        PxeStage::Dhcp,
        PxeStage::Tftp,
        PxeStage::KernelBoot,
        PxeStage::KickstartFetch,
        PxeStage::Anaconda,
        PxeStage::LocalBoot,
    ];

    /// Nominal duration of the stage, seconds (anaconda's duration is
    /// payload-dependent and passed separately).
    pub fn nominal_seconds(self) -> f64 {
        match self {
            PxeStage::Dhcp => 5.0,
            PxeStage::Tftp => 10.0,
            PxeStage::KernelBoot => 30.0,
            PxeStage::KickstartFetch => 5.0,
            PxeStage::Anaconda => 0.0, // payload-driven
            PxeStage::LocalBoot => 60.0,
        }
    }

    /// The diagnostic an admin sees when this stage fails.
    pub fn failure_symptom(self) -> &'static str {
        match self {
            PxeStage::Dhcp => "node sits at 'PXE-E51: No DHCP or proxyDHCP offers received'",
            PxeStage::Tftp => "PXE-E32: TFTP open timeout",
            PxeStage::KernelBoot => "installer kernel panic / wrong console",
            PxeStage::KickstartFetch => "anaconda asks for install source interactively",
            PxeStage::Anaconda => "package installation error mid-install",
            PxeStage::LocalBoot => "node loops back into the installer",
        }
    }
}

/// Outcome of a boot attempt.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PxeOutcome {
    pub hostname: String,
    /// Stage reached; `None` in `failed_at` means full success.
    pub failed_at: Option<PxeStage>,
    pub timeline: Timeline,
}

impl PxeOutcome {
    pub fn succeeded(&self) -> bool {
        self.failed_at.is_none()
    }
}

/// Walk the chain for one node. `payload_bytes` sizes the anaconda
/// stage (at 20 MB/s, as the install workflow assumes); `fails_at`
/// injects a failure at one stage.
pub fn boot_node(hostname: &str, payload_bytes: u64, fails_at: Option<PxeStage>) -> PxeOutcome {
    let mut timeline = Timeline::new();
    for stage in PxeStage::ALL {
        let secs = if stage == PxeStage::Anaconda {
            payload_bytes as f64 / (20.0 * 1024.0 * 1024.0)
        } else {
            stage.nominal_seconds()
        };
        if fails_at == Some(stage) {
            // a failed stage burns its timeout (3x nominal, min 30 s)
            timeline.push(
                format!(
                    "{hostname}: {:?} FAILED — {}",
                    stage,
                    stage.failure_symptom()
                ),
                (secs * 3.0).max(30.0),
            );
            return PxeOutcome {
                hostname: hostname.to_string(),
                failed_at: Some(stage),
                timeline,
            };
        }
        timeline.push(format!("{hostname}: {stage:?}"), secs);
    }
    PxeOutcome {
        hostname: hostname.to_string(),
        failed_at: None,
        timeline,
    }
}

/// Triage helper for the curriculum: from the observed symptom, which
/// stage failed?
pub fn diagnose(symptom: &str) -> Option<PxeStage> {
    PxeStage::ALL
        .into_iter()
        .find(|s| symptom.contains(s.failure_symptom()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_boot_walks_all_stages() {
        let out = boot_node("compute-0-0", 500 << 20, None);
        assert!(out.succeeded());
        assert_eq!(out.timeline.len(), 6);
        // anaconda dominates: 500 MB / 20 MBps = 25 s plus fixed stages
        assert!(
            (out.timeline.total_seconds() - (5.0 + 10.0 + 30.0 + 5.0 + 25.0 + 60.0)).abs() < 1e-9
        );
    }

    #[test]
    fn failure_stops_the_chain() {
        let out = boot_node("compute-0-1", 500 << 20, Some(PxeStage::Dhcp));
        assert!(!out.succeeded());
        assert_eq!(out.failed_at, Some(PxeStage::Dhcp));
        assert_eq!(out.timeline.len(), 1, "nothing after the failed stage");
        assert!(out.timeline.phases()[0].label.contains("PXE-E51"));
    }

    #[test]
    fn late_failure_includes_earlier_stages() {
        let out = boot_node("compute-0-2", 100 << 20, Some(PxeStage::Anaconda));
        assert_eq!(out.timeline.len(), 5, "4 good stages + the failure");
        assert_eq!(out.failed_at, Some(PxeStage::Anaconda));
    }

    #[test]
    fn diagnose_maps_symptoms_back() {
        for stage in PxeStage::ALL {
            let symptom = format!("console shows: {}", stage.failure_symptom());
            assert_eq!(diagnose(&symptom), Some(stage));
        }
        assert_eq!(diagnose("node is fine"), None);
    }

    #[test]
    fn failed_stage_costs_a_timeout() {
        let ok = boot_node("n", 0, None);
        let failed = boot_node("n", 0, Some(PxeStage::Tftp));
        // failed TFTP costs 30s (3 × 10); success costs 10s at that stage
        let tftp_ok = ok.timeline.phases()[1].duration_s();
        let tftp_bad = failed.timeline.phases().last().unwrap().duration_s();
        assert_eq!(tftp_ok, 10.0);
        assert_eq!(tftp_bad, 30.0);
    }
}
