//! `cluster-fork` — Rocks' parallel remote execution across nodes.
//!
//! The from-scratch verification step ("verify with cluster-fork + qsub
//! test job") runs a command on every compute node. We model per-node
//! command handlers, partial failures, and the aggregated output an
//! administrator reads.

use crate::database::RocksDb;
use crate::graph::Appliance;
use serde::Serialize;

/// The result of one node's execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ForkResult {
    pub host: String,
    pub exit_code: i32,
    pub stdout: String,
}

/// Aggregated run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ForkReport {
    pub command: String,
    pub results: Vec<ForkResult>,
}

impl ForkReport {
    pub fn all_succeeded(&self) -> bool {
        self.results.iter().all(|r| r.exit_code == 0)
    }

    pub fn failed_hosts(&self) -> Vec<&str> {
        self.results
            .iter()
            .filter(|r| r.exit_code != 0)
            .map(|r| r.host.as_str())
            .collect()
    }

    /// The interleaved output cluster-fork prints.
    pub fn render(&self) -> String {
        let mut out = format!("$ cluster-fork '{}'\n", self.command);
        for r in &self.results {
            out.push_str(&format!("{}:\n{}", r.host, r.stdout));
            if r.exit_code != 0 {
                out.push_str(&format!("  (exit {})\n", r.exit_code));
            }
        }
        out
    }
}

/// Run `command` on every compute node of the cluster database, using
/// `exec` to produce each node's result (the simulation's stand-in for
/// ssh). `exec` receives the hostname and the command.
pub fn cluster_fork<F>(db: &RocksDb, command: &str, mut exec: F) -> ForkReport
where
    F: FnMut(&str, &str) -> (i32, String),
{
    let mut results = Vec::new();
    for host in db.hosts_of(Appliance::Compute) {
        let (exit_code, stdout) = exec(&host.name, command);
        results.push(ForkResult {
            host: host.name.clone(),
            exit_code,
            stdout,
        });
    }
    ForkReport {
        command: command.to_string(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> RocksDb {
        let mut db = RocksDb::new("littlefe");
        db.add_frontend("ff:ff", 2).unwrap();
        for i in 0..5 {
            db.add_host(Appliance::Compute, 0, &format!("aa:{i:02x}"), 2)
                .unwrap();
        }
        db
    }

    #[test]
    fn runs_on_all_computes_not_frontend() {
        let report = cluster_fork(&db(), "uptime", |host, _| {
            (0, format!("  {host} up 3 days\n"))
        });
        assert_eq!(report.results.len(), 5);
        assert!(report.all_succeeded());
        assert!(
            !report.render().contains("littlefe:"),
            "frontend not targeted"
        );
        assert!(report.render().contains("compute-0-4"));
    }

    #[test]
    fn partial_failure_reported() {
        let report = cluster_fork(&db(), "rpm -q gromacs", |host, _| {
            if host == "compute-0-2" {
                (1, "  package gromacs is not installed\n".to_string())
            } else {
                (0, "  gromacs-4.6.5-1.el6.x86_64\n".to_string())
            }
        });
        assert!(!report.all_succeeded());
        assert_eq!(report.failed_hosts(), vec!["compute-0-2"]);
        assert!(report.render().contains("(exit 1)"));
    }

    #[test]
    fn empty_cluster_empty_report() {
        let mut db = RocksDb::new("lonely");
        db.add_frontend("ff", 2).unwrap();
        let report = cluster_fork(&db, "true", |_, _| (0, String::new()));
        assert!(report.results.is_empty());
        assert!(report.all_succeeded());
    }
}
