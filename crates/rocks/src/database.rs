//! The Rocks cluster database.
//!
//! §3: "Using an internal database, Rocks can manage many compute nodes.
//! This allows an administrator to easily add, remove, and upgrade
//! software across nodes and to maintain a uniform environment." We keep
//! the host table with the Rocks naming convention
//! (`compute-<rack>-<rank>`), MAC/IP assignments, memberships, and the
//! private network allocation.

use crate::graph::Appliance;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// Membership binds a host to an appliance (Rocks also distinguishes
/// sub-memberships; we keep the appliance plus the distribution name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Membership {
    pub appliance: Appliance,
}

/// One row of the hosts table.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HostRecord {
    pub name: String,
    pub membership: Membership,
    pub rack: u32,
    pub rank: u32,
    pub mac: String,
    pub ip: String,
    /// CPU count as the DB records it.
    pub cpus: u32,
    /// Run a full reinstall on next PXE boot?
    pub install_action: bool,
}

/// Errors from database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    DuplicateHost(String),
    DuplicateMac(String),
    UnknownHost(String),
    /// The private network ran out of addresses.
    NetworkExhausted,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateHost(h) => write!(f, "host {h} already exists"),
            DbError::DuplicateMac(m) => write!(f, "MAC {m} already registered"),
            DbError::UnknownHost(h) => write!(f, "unknown host {h}"),
            DbError::NetworkExhausted => write!(f, "private network exhausted"),
        }
    }
}

impl std::error::Error for DbError {}

/// The cluster database.
#[derive(Debug, Clone)]
pub struct RocksDb {
    /// Cluster (frontend) name.
    pub cluster_name: String,
    /// Private network base, e.g. 10.1.x.y.
    net_prefix: (u8, u8),
    hosts: BTreeMap<String, HostRecord>,
    next_host_octet: u8,
}

impl RocksDb {
    pub fn new(cluster_name: impl Into<String>) -> Self {
        RocksDb {
            cluster_name: cluster_name.into(),
            net_prefix: (10, 1),
            hosts: BTreeMap::new(),
            next_host_octet: 1,
        }
    }

    fn next_ip(&mut self) -> Result<String, DbError> {
        if self.next_host_octet == 255 {
            return Err(DbError::NetworkExhausted);
        }
        let ip = format!(
            "{}.{}.255.{}",
            self.net_prefix.0, self.net_prefix.1, self.next_host_octet
        );
        self.next_host_octet += 1;
        Ok(ip)
    }

    /// Add the frontend itself (Rocks does this during the frontend
    /// install).
    pub fn add_frontend(&mut self, mac: &str, cpus: u32) -> Result<&HostRecord, DbError> {
        let name = self.cluster_name.clone();
        self.add_host_named(&name, Appliance::Frontend, 0, 0, mac, cpus)
    }

    /// Add a host with the Rocks naming convention for its appliance:
    /// `compute-<rack>-<rank>` / `nas-<rack>-<rank>`. Rank is the next
    /// free rank in the rack.
    pub fn add_host(
        &mut self,
        appliance: Appliance,
        rack: u32,
        mac: &str,
        cpus: u32,
    ) -> Result<&HostRecord, DbError> {
        let rank = self
            .hosts
            .values()
            .filter(|h| h.membership.appliance == appliance && h.rack == rack)
            .map(|h| h.rank + 1)
            .max()
            .unwrap_or(0);
        let prefix = match appliance {
            Appliance::Compute => "compute",
            Appliance::Nas => "nas",
            Appliance::Frontend => {
                let name = self.cluster_name.clone();
                return self.add_host_named(&name, appliance, rack, rank, mac, cpus);
            }
        };
        let name = format!("{prefix}-{rack}-{rank}");
        self.add_host_named(&name, appliance, rack, rank, mac, cpus)
    }

    fn add_host_named(
        &mut self,
        name: &str,
        appliance: Appliance,
        rack: u32,
        rank: u32,
        mac: &str,
        cpus: u32,
    ) -> Result<&HostRecord, DbError> {
        if self.hosts.contains_key(name) {
            return Err(DbError::DuplicateHost(name.to_string()));
        }
        if self.hosts.values().any(|h| h.mac == mac) {
            return Err(DbError::DuplicateMac(mac.to_string()));
        }
        let ip = self.next_ip()?;
        self.hosts.insert(
            name.to_string(),
            HostRecord {
                name: name.to_string(),
                membership: Membership { appliance },
                rack,
                rank,
                mac: mac.to_string(),
                ip,
                cpus,
                install_action: true,
            },
        );
        Ok(&self.hosts[name])
    }

    /// Remove a host (`rocks remove host`).
    pub fn remove_host(&mut self, name: &str) -> Result<HostRecord, DbError> {
        self.hosts
            .remove(name)
            .ok_or_else(|| DbError::UnknownHost(name.to_string()))
    }

    pub fn host(&self, name: &str) -> Option<&HostRecord> {
        self.hosts.get(name)
    }

    pub fn host_mut(&mut self, name: &str) -> Option<&mut HostRecord> {
        self.hosts.get_mut(name)
    }

    /// All hosts, name-sorted (`rocks list host`).
    pub fn hosts(&self) -> impl Iterator<Item = &HostRecord> {
        self.hosts.values()
    }

    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Hosts of one appliance type.
    pub fn hosts_of(&self, appliance: Appliance) -> Vec<&HostRecord> {
        self.hosts
            .values()
            .filter(|h| h.membership.appliance == appliance)
            .collect()
    }

    /// Look a host up by the MAC its DHCP request carries.
    pub fn host_by_mac(&self, mac: &str) -> Option<&HostRecord> {
        self.hosts.values().find(|h| h.mac == mac)
    }

    /// `rocks set host boot <host> action=install|os`.
    pub fn set_install_action(&mut self, name: &str, reinstall: bool) -> Result<(), DbError> {
        self.host_mut(name)
            .map(|h| h.install_action = reinstall)
            .ok_or_else(|| DbError::UnknownHost(name.to_string()))
    }

    /// Render `rocks list host` output.
    pub fn render_host_list(&self) -> String {
        let mut out = String::from("HOST            MEMBERSHIP  RACK RANK CPUS IP\n");
        for h in self.hosts.values() {
            out.push_str(&format!(
                "{:<15} {:<11} {:>4} {:>4} {:>4} {}\n",
                h.name,
                h.membership.appliance.label(),
                h.rack,
                h.rank,
                h.cpus,
                h.ip
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_nodes(n: u32) -> RocksDb {
        let mut db = RocksDb::new("littlefe");
        db.add_frontend("00:00:00:00:00:ff", 2).unwrap();
        for i in 0..n {
            db.add_host(Appliance::Compute, 0, &format!("00:00:00:00:00:{i:02x}"), 2)
                .unwrap();
        }
        db
    }

    #[test]
    fn naming_convention() {
        let db = db_with_nodes(3);
        assert!(db.host("littlefe").is_some());
        assert!(db.host("compute-0-0").is_some());
        assert!(db.host("compute-0-2").is_some());
        assert!(db.host("compute-0-3").is_none());
    }

    #[test]
    fn ranks_per_rack_independent() {
        let mut db = RocksDb::new("c");
        db.add_host(Appliance::Compute, 0, "aa:00", 2).unwrap();
        db.add_host(Appliance::Compute, 1, "aa:01", 2).unwrap();
        db.add_host(Appliance::Compute, 0, "aa:02", 2).unwrap();
        assert!(db.host("compute-0-0").is_some());
        assert!(db.host("compute-1-0").is_some());
        assert!(db.host("compute-0-1").is_some());
    }

    #[test]
    fn unique_ips_assigned() {
        let db = db_with_nodes(5);
        let mut ips: Vec<_> = db.hosts().map(|h| h.ip.clone()).collect();
        let total = ips.len();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), total);
        assert!(ips.iter().all(|ip| ip.starts_with("10.1.255.")));
    }

    #[test]
    fn duplicate_mac_rejected() {
        let mut db = db_with_nodes(1);
        let err = db
            .add_host(Appliance::Compute, 0, "00:00:00:00:00:00", 2)
            .unwrap_err();
        assert_eq!(err, DbError::DuplicateMac("00:00:00:00:00:00".to_string()));
    }

    #[test]
    fn duplicate_frontend_rejected() {
        let mut db = db_with_nodes(0);
        let err = db.add_frontend("bb:bb", 2).unwrap_err();
        assert_eq!(err, DbError::DuplicateHost("littlefe".to_string()));
    }

    #[test]
    fn remove_and_unknown_host() {
        let mut db = db_with_nodes(1);
        assert!(db.remove_host("compute-0-0").is_ok());
        assert_eq!(
            db.remove_host("compute-0-0"),
            Err(DbError::UnknownHost("compute-0-0".into()))
        );
        assert_eq!(db.host_count(), 1);
    }

    #[test]
    fn lookup_by_mac() {
        let db = db_with_nodes(2);
        assert_eq!(
            db.host_by_mac("00:00:00:00:00:01").unwrap().name,
            "compute-0-1"
        );
        assert!(db.host_by_mac("ff:ff").is_none());
    }

    #[test]
    fn install_action_toggles() {
        let mut db = db_with_nodes(1);
        assert!(db.host("compute-0-0").unwrap().install_action);
        db.set_install_action("compute-0-0", false).unwrap();
        assert!(!db.host("compute-0-0").unwrap().install_action);
        assert!(db.set_install_action("ghost", true).is_err());
    }

    #[test]
    fn hosts_of_filters() {
        let db = db_with_nodes(4);
        assert_eq!(db.hosts_of(Appliance::Compute).len(), 4);
        assert_eq!(db.hosts_of(Appliance::Frontend).len(), 1);
        assert!(db.hosts_of(Appliance::Nas).is_empty());
    }

    #[test]
    fn render_lists_all() {
        let db = db_with_nodes(2);
        let out = db.render_host_list();
        assert!(out.contains("littlefe"));
        assert!(out.contains("compute-0-1"));
        assert!(out.contains("Frontend"));
    }

    #[test]
    fn network_exhaustion() {
        let mut db = RocksDb::new("big");
        for i in 0..254u32 {
            db.add_host(Appliance::Compute, 0, &format!("m{i}"), 1)
                .unwrap();
        }
        let err = db.add_host(Appliance::Compute, 0, "mlast", 1).unwrap_err();
        assert_eq!(err, DbError::NetworkExhausted);
    }
}
