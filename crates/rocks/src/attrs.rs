//! Rocks attributes.
//!
//! Rocks resolves configuration keys through a precedence chain:
//! host-level overrides appliance-level overrides global. Admins drive
//! cluster-wide behavior with `rocks set attr` and per-node exceptions
//! with `rocks set host attr`.

use crate::graph::Appliance;
use std::collections::BTreeMap;

/// Where an attribute is attached.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum AttrScope {
    Global,
    Appliance(Appliance),
    Host(String),
}

/// The attribute store with Rocks resolution semantics.
#[derive(Debug, Clone, Default)]
pub struct AttrStore {
    global: BTreeMap<String, String>,
    appliance: BTreeMap<(Appliance, String), String>,
    host: BTreeMap<(String, String), String>,
}

impl AttrStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// The attrs a stock Rocks frontend starts with.
    pub fn with_defaults(cluster_name: &str) -> Self {
        let mut s = Self::new();
        s.set(AttrScope::Global, "Kickstart_PublicHostname", cluster_name);
        s.set(AttrScope::Global, "Kickstart_PrivateNetwork", "10.1.0.0");
        s.set(AttrScope::Global, "rocks_version", "6.1.1");
        s.set(AttrScope::Global, "os", "CentOS 6.5");
        s.set(AttrScope::Appliance(Appliance::Compute), "x11", "false");
        s.set(AttrScope::Appliance(Appliance::Frontend), "x11", "true");
        s
    }

    /// Set an attribute at a scope.
    pub fn set(&mut self, scope: AttrScope, key: &str, value: &str) {
        match scope {
            AttrScope::Global => {
                self.global.insert(key.to_string(), value.to_string());
            }
            AttrScope::Appliance(a) => {
                self.appliance
                    .insert((a, key.to_string()), value.to_string());
            }
            AttrScope::Host(h) => {
                self.host.insert((h, key.to_string()), value.to_string());
            }
        }
    }

    /// Remove an attribute at a scope; returns whether it existed.
    pub fn unset(&mut self, scope: AttrScope, key: &str) -> bool {
        match scope {
            AttrScope::Global => self.global.remove(key).is_some(),
            AttrScope::Appliance(a) => self.appliance.remove(&(a, key.to_string())).is_some(),
            AttrScope::Host(h) => self.host.remove(&(h, key.to_string())).is_some(),
        }
    }

    /// Resolve `key` for a host of a given appliance:
    /// host > appliance > global.
    pub fn resolve(&self, host: &str, appliance: Appliance, key: &str) -> Option<&str> {
        self.host
            .get(&(host.to_string(), key.to_string()))
            .or_else(|| self.appliance.get(&(appliance, key.to_string())))
            .or_else(|| self.global.get(key))
            .map(String::as_str)
    }

    /// Every key visible to a host, resolved (`rocks list host attr`).
    pub fn all_for(&self, host: &str, appliance: Appliance) -> BTreeMap<String, String> {
        let mut out: BTreeMap<String, String> = self.global.clone();
        for ((a, k), v) in &self.appliance {
            if *a == appliance {
                out.insert(k.clone(), v.clone());
            }
        }
        for ((h, k), v) in &self.host {
            if h == host {
                out.insert(k.clone(), v.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_host_over_appliance_over_global() {
        let mut s = AttrStore::new();
        s.set(AttrScope::Global, "ssh_key", "global-key");
        assert_eq!(
            s.resolve("compute-0-0", Appliance::Compute, "ssh_key"),
            Some("global-key")
        );
        s.set(
            AttrScope::Appliance(Appliance::Compute),
            "ssh_key",
            "compute-key",
        );
        assert_eq!(
            s.resolve("compute-0-0", Appliance::Compute, "ssh_key"),
            Some("compute-key")
        );
        s.set(AttrScope::Host("compute-0-0".into()), "ssh_key", "host-key");
        assert_eq!(
            s.resolve("compute-0-0", Appliance::Compute, "ssh_key"),
            Some("host-key")
        );
        // other hosts unaffected by the host-level override
        assert_eq!(
            s.resolve("compute-0-1", Appliance::Compute, "ssh_key"),
            Some("compute-key")
        );
        // other appliances fall back to global
        assert_eq!(
            s.resolve("nas-0-0", Appliance::Nas, "ssh_key"),
            Some("global-key")
        );
    }

    #[test]
    fn unknown_key_is_none() {
        let s = AttrStore::new();
        assert_eq!(s.resolve("h", Appliance::Compute, "nope"), None);
    }

    #[test]
    fn unset_restores_lower_scope() {
        let mut s = AttrStore::new();
        s.set(AttrScope::Global, "k", "g");
        s.set(AttrScope::Host("h".into()), "k", "h");
        assert_eq!(s.resolve("h", Appliance::Compute, "k"), Some("h"));
        assert!(s.unset(AttrScope::Host("h".into()), "k"));
        assert_eq!(s.resolve("h", Appliance::Compute, "k"), Some("g"));
        assert!(!s.unset(AttrScope::Host("h".into()), "k"));
    }

    #[test]
    fn defaults_sensible() {
        let s = AttrStore::with_defaults("littlefe");
        assert_eq!(
            s.resolve("littlefe", Appliance::Frontend, "rocks_version"),
            Some("6.1.1")
        );
        assert_eq!(
            s.resolve("compute-0-0", Appliance::Compute, "x11"),
            Some("false")
        );
        assert_eq!(
            s.resolve("littlefe", Appliance::Frontend, "x11"),
            Some("true")
        );
    }

    #[test]
    fn all_for_merges_scopes() {
        let s = AttrStore::with_defaults("c");
        let attrs = s.all_for("compute-0-0", Appliance::Compute);
        assert_eq!(attrs["x11"], "false");
        assert_eq!(attrs["os"], "CentOS 6.5");
    }
}
