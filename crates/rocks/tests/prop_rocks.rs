//! Property tests for the Rocks substrate: kickstart-graph invariants and
//! insert-ethers discovery under randomized inputs.

use proptest::prelude::*;
use xcbc_rocks::{Appliance, DhcpRequest, GraphNode, InsertEthers, KickstartGraph, RocksDb};

proptest! {
    /// Merging roll fragments never removes packages an appliance already
    /// had, and every fragment package becomes reachable on the appliances
    /// it was attached to.
    #[test]
    fn merge_is_monotone(
        pkg_lists in proptest::collection::vec(
            proptest::collection::vec("[a-z]{3,8}", 1..4),
            1..5,
        ),
    ) {
        let mut graph = KickstartGraph::standard();
        let before = graph.packages_for(Appliance::Compute).unwrap();
        let nodes: Vec<GraphNode> = pkg_lists
            .iter()
            .enumerate()
            .map(|(i, pkgs)| {
                let mut n = GraphNode::new(&format!("frag{i}"));
                n.packages = pkgs.clone();
                n
            })
            .collect();
        graph.merge_roll_nodes(&nodes, &[Appliance::Compute]).unwrap();
        let after = graph.packages_for(Appliance::Compute).unwrap();
        for p in &before {
            prop_assert!(after.contains(p), "lost package {p}");
        }
        for pkgs in &pkg_lists {
            for p in pkgs {
                prop_assert!(after.contains(p), "fragment package {p} unreachable");
            }
        }
        // frontend untouched by compute-only attachment (modulo shared names)
        let fe = graph.packages_for(Appliance::Frontend).unwrap();
        let fe_before = KickstartGraph::standard().packages_for(Appliance::Frontend).unwrap();
        for p in &fe_before {
            prop_assert!(fe.contains(p));
        }
    }

    /// Insert-ethers over any stream of DHCP requests (with repeats)
    /// assigns unique names/IPs and registers each MAC exactly once.
    #[test]
    fn discovery_unique_under_repeats(
        macs in proptest::collection::vec(0u8..16, 1..40),
    ) {
        let mut db = RocksDb::new("head");
        db.add_frontend("ff:ff", 2).unwrap();
        let mut session = InsertEthers::start(&mut db, Appliance::Compute, 0);
        for m in &macs {
            session
                .on_dhcp(&DhcpRequest { mac: format!("aa:{m:02x}"), cpus: 2 })
                .unwrap();
        }
        let (registered, ignored) = session.finish();
        let distinct: std::collections::BTreeSet<u8> = macs.iter().copied().collect();
        prop_assert_eq!(registered.len(), distinct.len());
        prop_assert_eq!(ignored.len(), macs.len() - distinct.len());
        // names and IPs are unique
        let mut names: Vec<&str> = db.hosts().map(|h| h.name.as_str()).collect();
        let total = names.len();
        names.sort();
        names.dedup();
        prop_assert_eq!(names.len(), total);
        let mut ips: Vec<&str> = db.hosts().map(|h| h.ip.as_str()).collect();
        ips.sort();
        ips.dedup();
        prop_assert_eq!(ips.len(), total);
    }
}
