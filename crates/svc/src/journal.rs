//! The deterministic request journal — `xcbcd`'s audit log and replay
//! input.
//!
//! Every *accepted* request is journaled at admission time with its
//! sequence number, tenant, normalized request digest, generator seed,
//! and the canonical text form of the operation. Rejected requests
//! leave no trace here (the admission invariant checks exactly that).
//! A footer records the body digest of every response and the final
//! cache-counter totals, which is what makes the file self-verifying:
//! `xcbcd --replay LOG` re-executes the entries single-threaded and
//! must land on byte-identical bodies and identical totals, regardless
//! of the worker count that originally served the stream.
//!
//! The rendered text is itself part of the determinism contract: two
//! runs of the same seeded stream at different worker counts must
//! produce byte-identical journals (the CI quick-gate diffs them), so
//! nothing scheduling-dependent — wall clock, worker ids, interleaving
//! — may appear in it.

use crate::api::SvcOp;
use xcbc_yum::CacheStats;

/// One accepted request, as journaled at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Dense 0-based sequence number (admission order).
    pub seq: u64,
    /// The tenant the request belongs to.
    pub tenant: String,
    /// Normalized request digest ([`SvcOp::digest`]).
    pub digest: u64,
    /// The workload-generator seed the request was drawn under.
    pub seed: u64,
    /// The operation, parseable via [`SvcOp::parse`].
    pub op: SvcOp,
}

/// A parsed (or freshly written) journal: header, entries, and the
/// self-verification footer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Journal {
    /// The stream seed from the header.
    pub seed: u64,
    /// Cache shard count the run used.
    pub shards: usize,
    /// The quota table, rendered line-by-line in the header
    /// (round-trips through [`QuotaTable::parse`](crate::QuotaTable::parse)).
    pub quota_lines: Vec<String>,
    /// Accepted requests in sequence order.
    pub entries: Vec<JournalEntry>,
    /// `(seq, body digest)` for every accepted response.
    pub response_digests: Vec<(u64, u64)>,
    /// Final bank-wide cache totals `(hits, misses, entries)`.
    pub cache_totals: (u64, u64, usize),
}

/// Parse failure, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JournalError {}

const MAGIC: &str = "xcbcd-journal v1";

impl Journal {
    /// Render the canonical text form. Byte-deterministic: a pure
    /// function of this struct's fields.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("shards {}\n", self.shards));
        for line in &self.quota_lines {
            out.push_str(&format!("quota {line}\n"));
        }
        for e in &self.entries {
            out.push_str(&format!(
                "entry {} {} {} {} {}\n",
                e.seq,
                e.tenant,
                e.digest,
                e.seed,
                e.op.render()
            ));
        }
        out.push_str(&format!("end entries {}\n", self.entries.len()));
        for (seq, digest) in &self.response_digests {
            out.push_str(&format!("response {seq} {digest}\n"));
        }
        let (hits, misses, entries) = self.cache_totals;
        out.push_str(&format!(
            "cache hits {hits} misses {misses} entries {entries}\n"
        ));
        out
    }

    /// Parse the text form back ([`render`](Self::render) round-trips).
    pub fn parse(text: &str) -> Result<Journal, JournalError> {
        let err = |line: usize, message: String| JournalError { line, message };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first == MAGIC => {}
            other => {
                return Err(err(
                    1,
                    format!("expected {MAGIC:?}, got {:?}", other.map(|(_, l)| l)),
                ))
            }
        }
        let mut journal = Journal::default();
        let mut saw_end = false;
        let mut saw_cache = false;
        for (idx, line) in lines {
            let lineno = idx + 1;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
            match tag {
                "seed" => {
                    journal.seed = rest
                        .parse()
                        .map_err(|e| err(lineno, format!("seed: {e}")))?;
                }
                "shards" => {
                    journal.shards = rest
                        .parse()
                        .map_err(|e| err(lineno, format!("shards: {e}")))?;
                }
                "quota" => journal.quota_lines.push(rest.to_string()),
                "entry" => {
                    let mut fields = rest.splitn(4, ' ');
                    let seq: u64 = fields
                        .next()
                        .ok_or_else(|| err(lineno, "entry: missing seq".into()))?
                        .parse()
                        .map_err(|e| err(lineno, format!("entry seq: {e}")))?;
                    let tenant = fields
                        .next()
                        .ok_or_else(|| err(lineno, "entry: missing tenant".into()))?
                        .to_string();
                    let digest: u64 = fields
                        .next()
                        .ok_or_else(|| err(lineno, "entry: missing digest".into()))?
                        .parse()
                        .map_err(|e| err(lineno, format!("entry digest: {e}")))?;
                    let tail = fields
                        .next()
                        .ok_or_else(|| err(lineno, "entry: missing seed/op".into()))?;
                    let (seed_text, op_text) = tail
                        .split_once(' ')
                        .ok_or_else(|| err(lineno, "entry: missing op".into()))?;
                    let seed: u64 = seed_text
                        .parse()
                        .map_err(|e| err(lineno, format!("entry seed: {e}")))?;
                    let op = SvcOp::parse(op_text).map_err(|e| err(lineno, e))?;
                    journal.entries.push(JournalEntry {
                        seq,
                        tenant,
                        digest,
                        seed,
                        op,
                    });
                }
                "end" => {
                    saw_end = true;
                    let declared: usize = rest
                        .strip_prefix("entries ")
                        .and_then(|n| n.parse().ok())
                        .ok_or_else(|| err(lineno, format!("malformed end line {line:?}")))?;
                    if declared != journal.entries.len() {
                        return Err(err(
                            lineno,
                            format!(
                                "end declares {declared} entries, journal carries {}",
                                journal.entries.len()
                            ),
                        ));
                    }
                }
                "response" => {
                    let (seq, digest) = rest
                        .split_once(' ')
                        .ok_or_else(|| err(lineno, format!("malformed response line {line:?}")))?;
                    journal.response_digests.push((
                        seq.parse()
                            .map_err(|e| err(lineno, format!("response seq: {e}")))?,
                        digest
                            .parse()
                            .map_err(|e| err(lineno, format!("response digest: {e}")))?,
                    ));
                }
                "cache" => {
                    saw_cache = true;
                    let fields: Vec<&str> = rest.split(' ').collect();
                    match fields.as_slice() {
                        ["hits", h, "misses", m, "entries", n] => {
                            journal.cache_totals = (
                                h.parse()
                                    .map_err(|e| err(lineno, format!("cache hits: {e}")))?,
                                m.parse()
                                    .map_err(|e| err(lineno, format!("cache misses: {e}")))?,
                                n.parse()
                                    .map_err(|e| err(lineno, format!("cache entries: {e}")))?,
                            );
                        }
                        _ => return Err(err(lineno, format!("malformed cache line {line:?}"))),
                    }
                }
                other => return Err(err(lineno, format!("unknown journal tag {other:?}"))),
            }
        }
        if !saw_end || !saw_cache {
            return Err(err(
                text.lines().count(),
                "journal is truncated (missing end/cache footer)".into(),
            ));
        }
        Ok(journal)
    }

    /// Fill the footer's cache totals from a bank-wide aggregate.
    pub fn set_cache_totals(&mut self, stats: &CacheStats) {
        self.cache_totals = (stats.hits, stats.misses, stats.entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_yum::SolveRequest;

    fn sample() -> Journal {
        Journal {
            seed: 42,
            shards: 4,
            quota_lines: vec![
                "tenant=campus-a rate=2 burst=4".into(),
                "tenant=campus-b rate=1 burst=2".into(),
            ],
            entries: vec![
                JournalEntry {
                    seq: 0,
                    tenant: "campus-a".into(),
                    digest: SvcOp::Solve(SolveRequest::install(["gromacs"])).digest(),
                    seed: 7,
                    op: SvcOp::Solve(SolveRequest::install(["gromacs"])),
                },
                JournalEntry {
                    seq: 1,
                    tenant: "campus-b".into(),
                    digest: SvcOp::Deploy.digest(),
                    seed: 9,
                    op: SvcOp::Deploy,
                },
            ],
            response_digests: vec![(0, 111), (1, 222)],
            cache_totals: (3, 2, 2),
        }
    }

    #[test]
    fn journal_text_round_trips() {
        let j = sample();
        let text = j.render();
        let parsed = Journal::parse(&text).unwrap();
        assert_eq!(parsed, j);
        assert_eq!(parsed.render(), text, "render ∘ parse is the identity");
    }

    #[test]
    fn truncated_and_corrupt_journals_are_rejected() {
        let text = sample().render();
        // chop the footer off
        let truncated: String = text.lines().take(4).map(|l| format!("{l}\n")).collect();
        assert!(Journal::parse(&truncated).is_err());
        // wrong magic
        assert!(Journal::parse("xcbcd-journal v9\nend entries 0\n").is_err());
        // entry-count mismatch
        let lied = text.replace("end entries 2", "end entries 3");
        let e = Journal::parse(&lied).unwrap_err();
        assert!(e.message.contains("declares 3"), "{e}");
    }
}
