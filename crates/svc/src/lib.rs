//! `xcbcd` — a concurrent multi-tenant depsolve/deploy service over
//! the XCBC stack.
//!
//! The paper's XCBC/XNIT tooling manages one campus cluster at a time;
//! this crate is the "cluster-building as a service" axis: many campus
//! tenants share one daemon that depsolves against tenant repo views,
//! runs XNIT overlay deploys on tenant node databases, and answers
//! monitoring/trace reads — all behind admission control so one noisy
//! tenant cannot starve the rest.
//!
//! The crate is organized as four planes:
//!
//! - [`api`]: the typed surface — [`SvcOp`] / [`SvcRequest`] /
//!   [`SvcResponse`], with canonical text forms that round-trip
//!   through the journal.
//! - [`admission`]: per-tenant token buckets ([`QuotaTable`]) plus a
//!   tick-windowed global queue limit, decided serially in arrival
//!   order so the accept/reject stream is scheduling-independent.
//!   Rejections are typed ([`RejectReason`]): `quota-exceeded` wins
//!   over `backpressure`, and backpressure consumes no token.
//! - the cache plane: a [`ShardedSolveCache`](xcbc_yum::ShardedSolveCache)
//!   bank with tenant-salted keys — tenants share shards but can never
//!   share entries, so cache counters are per-shard *and* per-run
//!   deterministic.
//! - [`journal`] + [`service`]: every accepted request is journaled at
//!   admission; the footer records response-body digests and cache
//!   totals, and [`replay`] re-executes the file single-threaded to
//!   byte-identical bodies regardless of the original worker count.
//!
//! ```
//! use xcbc_svc::{serve, replay, SvcWorkload};
//!
//! let workload = SvcWorkload { tenants: 3, requests: 12, seed: 7, ..Default::default() };
//! let report = serve(&workload.generate(), &workload.config(4));
//! let replayed = replay(&report.journal_text).unwrap();
//! assert!(replayed.is_clean());
//! ```

pub mod admission;
pub mod api;
pub mod journal;
pub mod service;
pub mod workload;

pub use admission::{AdmissionController, QuotaTable, SvcMutation, TenantQuota};
pub use api::{body_digest, Disposition, RejectReason, SvcOp, SvcRequest, SvcResponse};
pub use journal::{Journal, JournalEntry, JournalError};
pub use service::{replay, serve, ReplayReport, SvcConfig, SvcReport};
pub use workload::{tenant_names, SvcWorkload};
