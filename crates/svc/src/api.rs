//! The typed request/response surface of `xcbcd`.
//!
//! Every operation a tenant can ask of the service is an [`SvcOp`];
//! an [`SvcRequest`] wraps one with the tenant identity, its arrival
//! tick (the admission clock), and the seed the workload generator
//! drew it under (journaled for audit). Responses are [`SvcResponse`]:
//! either `Accepted` with an assigned journal sequence number and a
//! deterministic text body, or typed `Rejected` with the admission
//! controller's reason.

use xcbc_yum::{Fnv64, SolveKind, SolveRequest};

/// One operation a tenant can request of the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvcOp {
    /// Depsolve a typed request against the tenant's repo view and
    /// current frontend database (no state change).
    Solve(SolveRequest),
    /// Run the XNIT overlay deploy across the tenant's node databases
    /// (installs everything compatibility still misses; incremental —
    /// a second deploy is a fast no-op).
    Deploy,
    /// A monitoring snapshot of the request ledger as of this request's
    /// admission (accepted totals, tenant's own count).
    MonSnapshot,
    /// The tenant's own journaled history (seq numbers + digest of the
    /// latest entry) as of this request's admission.
    TraceFetch,
}

impl SvcOp {
    /// Stable digest of the normalized operation — the `digest` column
    /// of a journal entry. Tenant identity is *not* mixed in (it is its
    /// own journal column); for solves this is the normalized
    /// [`SolveRequest::digest`].
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        match self {
            SvcOp::Solve(req) => h.write_u64(1).write_u64(req.digest()),
            SvcOp::Deploy => h.write_u64(2),
            SvcOp::MonSnapshot => h.write_u64(3),
            SvcOp::TraceFetch => h.write_u64(4),
        };
        h.finish()
    }

    /// Canonical single-line text form; [`SvcOp::parse`] round-trips
    /// it. Target names must be comma/space-free (package names are).
    pub fn render(&self) -> String {
        match self {
            SvcOp::Solve(req) => {
                let norm = req.normalized();
                match norm.kind() {
                    SolveKind::UpdateAll => "solve update-all".to_string(),
                    kind => {
                        let verb = if kind == SolveKind::Install {
                            "install"
                        } else {
                            "update"
                        };
                        format!("solve {verb}:{}", norm.targets().join(","))
                    }
                }
            }
            SvcOp::Deploy => "deploy".to_string(),
            SvcOp::MonSnapshot => "mon".to_string(),
            SvcOp::TraceFetch => "trace".to_string(),
        }
    }

    /// Parse the canonical text form back into an op.
    pub fn parse(text: &str) -> Result<SvcOp, String> {
        match text.trim() {
            "deploy" => return Ok(SvcOp::Deploy),
            "mon" => return Ok(SvcOp::MonSnapshot),
            "trace" => return Ok(SvcOp::TraceFetch),
            "solve update-all" => return Ok(SvcOp::Solve(SolveRequest::update_all())),
            _ => {}
        }
        let rest = text
            .trim()
            .strip_prefix("solve ")
            .ok_or_else(|| format!("unrecognized op: {text:?}"))?;
        if let Some(targets) = rest.strip_prefix("install:") {
            Ok(SvcOp::Solve(SolveRequest::install(
                targets.split(',').filter(|t| !t.is_empty()),
            )))
        } else if let Some(targets) = rest.strip_prefix("update:") {
            Ok(SvcOp::Solve(SolveRequest::update(
                targets.split(',').filter(|t| !t.is_empty()),
            )))
        } else {
            Err(format!("unrecognized solve op: {text:?}"))
        }
    }
}

/// One tenant request presented to the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SvcRequest {
    /// Which tenant is asking.
    pub tenant: String,
    /// Arrival tick on the admission clock (drives token-bucket refill
    /// and the queue-depth window). Non-decreasing across a stream.
    pub tick: u64,
    /// The seed the workload generator drew this request under —
    /// journaled so an audited stream can be traced back to its
    /// generator state.
    pub seed: u64,
    /// What is being asked.
    pub op: SvcOp,
}

/// Why the admission controller refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's token bucket was empty. Checked *before* the global
    /// queue, so a throttled tenant always learns about its own quota
    /// even when the service is also saturated.
    QuotaExceeded,
    /// The global admission window was full (queue-depth limit).
    Backpressure,
}

impl RejectReason {
    /// Stable label (metrics + response bodies).
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QuotaExceeded => "quota-exceeded",
            RejectReason::Backpressure => "backpressure",
        }
    }
}

/// What happened to a request at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Journaled under the given sequence number and executed.
    Accepted {
        /// The journal sequence number (dense, 0-based).
        seq: u64,
    },
    /// Refused; never journaled, never touches a cache shard.
    Rejected(RejectReason),
}

/// The service's answer to one request, in submission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SvcResponse {
    /// The requesting tenant.
    pub tenant: String,
    /// Admission outcome.
    pub disposition: Disposition,
    /// Deterministic text body: for accepted requests a pure function
    /// of the journal prefix and the tenant's serial state, so replay
    /// reproduces it byte-identically at any original worker count.
    pub body: String,
}

impl SvcResponse {
    /// Stable digest of the response body (the `response` column of the
    /// journal footer).
    pub fn body_digest(&self) -> u64 {
        body_digest(&self.body)
    }
}

/// Digest of a response body (see [`SvcResponse::body_digest`]).
pub fn body_digest(body: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write(body.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_text_round_trips() {
        let ops = [
            SvcOp::Solve(SolveRequest::install(["gromacs", "R"])),
            SvcOp::Solve(SolveRequest::update(["hdf5"])),
            SvcOp::Solve(SolveRequest::update_all()),
            SvcOp::Deploy,
            SvcOp::MonSnapshot,
            SvcOp::TraceFetch,
        ];
        for op in ops {
            let text = op.render();
            let parsed = SvcOp::parse(&text).unwrap();
            assert_eq!(parsed.render(), text);
            assert_eq!(parsed.digest(), op.digest(), "{text}");
        }
        assert!(SvcOp::parse("destroy everything").is_err());
        assert!(SvcOp::parse("solve erase:gromacs").is_err());
    }

    #[test]
    fn op_digest_normalizes_targets() {
        let a = SvcOp::Solve(SolveRequest::install(["gromacs", "gromacs"]));
        let b = SvcOp::Solve(SolveRequest::install(["gromacs"]));
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.render(), b.render(), "render is normalized too");
    }
}
