//! Admission control: per-tenant token buckets plus a global
//! queue-depth window, decided serially in arrival order.
//!
//! Determinism is the design constraint everything here serves. A real
//! server would gate on live queue occupancy — which depends on worker
//! scheduling — and its reject set would then differ run to run. `xcbcd`
//! instead models queue depth on the *arrival clock*: the admission
//! window counts requests accepted in the current tick, so the full
//! accept/reject stream is a pure function of the submitted requests
//! and the quota table, independent of how many workers later execute
//! the accepted ones. That is what lets the CI quick-gate diff journals
//! from 1-worker and 4-worker runs for byte identity.
//!
//! Rejection-reason precedence: the tenant bucket is checked *before*
//! the global window, so a tenant that is out of tokens hears
//! `quota-exceeded` even at a moment the service is also saturated —
//! its own quota is the thing it can act on. Backpressure rejections
//! consume no tokens (the request never entered the system).

use crate::api::RejectReason;
use std::collections::BTreeMap;
use std::fmt;

/// One tenant's token-bucket parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Tokens refilled per elapsed admission tick.
    pub rate: u32,
    /// Bucket capacity (burst size). A zero-capacity tenant is valid
    /// and is rejected `quota-exceeded` on every request.
    pub burst: u32,
}

impl TenantQuota {
    /// A quota of `rate` tokens/tick with burst capacity `burst`.
    pub fn new(rate: u32, burst: u32) -> TenantQuota {
        TenantQuota { rate, burst }
    }
}

/// The per-tenant quota configuration, text round-trippable so the
/// journal header carries the exact admission policy of a run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuotaTable {
    quotas: BTreeMap<String, TenantQuota>,
}

impl QuotaTable {
    /// An empty table.
    pub fn new() -> QuotaTable {
        QuotaTable::default()
    }

    /// Set a tenant's quota (replacing any previous one).
    pub fn set(&mut self, tenant: impl Into<String>, quota: TenantQuota) {
        self.quotas.insert(tenant.into(), quota);
    }

    /// A tenant's quota. Unknown tenants get a zero quota: the service
    /// only serves tenants it was configured for.
    pub fn get(&self, tenant: &str) -> TenantQuota {
        self.quotas
            .get(tenant)
            .copied()
            .unwrap_or(TenantQuota { rate: 0, burst: 0 })
    }

    /// Configured tenants, in name order.
    pub fn tenants(&self) -> impl Iterator<Item = (&str, TenantQuota)> {
        self.quotas.iter().map(|(t, q)| (t.as_str(), *q))
    }

    /// Number of configured tenants.
    pub fn len(&self) -> usize {
        self.quotas.len()
    }

    /// True when no tenant is configured.
    pub fn is_empty(&self) -> bool {
        self.quotas.is_empty()
    }

    /// Parse one `tenant=<name> rate=<r> burst=<b>` line (the form the
    /// table's `Display` impl emits, one line per tenant).
    pub fn parse_line(line: &str) -> Result<(String, TenantQuota), String> {
        let mut tenant = None;
        let mut rate = None;
        let mut burst = None;
        for field in line.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("malformed quota field {field:?}"))?;
            match key {
                "tenant" => tenant = Some(value.to_string()),
                "rate" => {
                    rate = Some(value.parse::<u32>().map_err(|e| format!("rate: {e}"))?);
                }
                "burst" => {
                    burst = Some(value.parse::<u32>().map_err(|e| format!("burst: {e}"))?);
                }
                other => return Err(format!("unknown quota field {other:?}")),
            }
        }
        match (tenant, rate, burst) {
            (Some(t), Some(r), Some(b)) => Ok((t, TenantQuota { rate: r, burst: b })),
            _ => Err(format!("incomplete quota line {line:?}")),
        }
    }

    /// Parse a whole table (one line per tenant, blank lines ignored).
    pub fn parse(text: &str) -> Result<QuotaTable, String> {
        let mut table = QuotaTable::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let (tenant, quota) = Self::parse_line(line)?;
            table.set(tenant, quota);
        }
        Ok(table)
    }
}

impl fmt::Display for QuotaTable {
    /// One `tenant=<name> rate=<r> burst=<b>` line per tenant, in name
    /// order; [`QuotaTable::parse`] round-trips it.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (tenant, quota) in &self.quotas {
            writeln!(
                f,
                "tenant={tenant} rate={} burst={}",
                quota.rate, quota.burst
            )?;
        }
        Ok(())
    }
}

/// A deliberately planted admission/journal defect, for proving the
/// soak invariants catch real bugs (`--svc-mutation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvcMutation {
    /// Drop one accepted entry from the rendered journal (the replay
    /// invariant must notice the response stream no longer matches).
    DropJournalEntry,
    /// Admit the first request that should have been rejected
    /// `quota-exceeded` (the admission invariant must notice a tenant
    /// exceeded its bucket).
    LeakQuota,
}

impl SvcMutation {
    /// The CLI flag value (`--svc-mutation <this>`).
    pub fn as_str(self) -> &'static str {
        match self {
            SvcMutation::DropJournalEntry => "drop-journal-entry",
            SvcMutation::LeakQuota => "leak-quota",
        }
    }

    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Result<SvcMutation, String> {
        match s {
            "drop-journal-entry" => Ok(SvcMutation::DropJournalEntry),
            "leak-quota" => Ok(SvcMutation::LeakQuota),
            other => Err(format!(
                "unknown svc mutation {other:?} (expected drop-journal-entry|leak-quota)"
            )),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: u32,
    last_tick: u64,
}

/// The serial admission controller. Feed it every request in arrival
/// order; it answers accept/reject deterministically.
#[derive(Debug)]
pub struct AdmissionController {
    quotas: QuotaTable,
    queue_limit: usize,
    buckets: BTreeMap<String, Bucket>,
    window_tick: u64,
    window_accepted: usize,
    mutation: Option<SvcMutation>,
    leaked: bool,
}

impl AdmissionController {
    /// A controller over `quotas` with a global per-tick admission
    /// window of `queue_limit` requests (clamped to at least 1).
    /// Buckets start full (a tenant can burst immediately).
    pub fn new(quotas: QuotaTable, queue_limit: usize) -> AdmissionController {
        let buckets = quotas
            .tenants()
            .map(|(t, q)| {
                (
                    t.to_string(),
                    Bucket {
                        tokens: q.burst,
                        last_tick: 0,
                    },
                )
            })
            .collect();
        AdmissionController {
            quotas,
            queue_limit: queue_limit.max(1),
            buckets,
            window_tick: 0,
            window_accepted: 0,
            mutation: None,
            leaked: false,
        }
    }

    /// Plant a [`SvcMutation::LeakQuota`] defect (no-op for the journal
    /// mutation, which lives in the engine).
    pub fn with_mutation(mut self, mutation: Option<SvcMutation>) -> AdmissionController {
        self.mutation = mutation;
        self
    }

    /// The global per-tick admission window.
    pub fn queue_limit(&self) -> usize {
        self.queue_limit
    }

    /// Decide one request. `tick` values must be non-decreasing across
    /// calls (arrival order).
    pub fn admit(&mut self, tenant: &str, tick: u64) -> Result<(), RejectReason> {
        if tick != self.window_tick {
            self.window_tick = tick;
            self.window_accepted = 0;
        }
        let quota = self.quotas.get(tenant);
        let bucket = self.buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: quota.burst,
            last_tick: 0,
        });
        // refill exactly at tick boundaries: `elapsed` whole ticks have
        // passed since the last refill, each worth `rate` tokens
        let elapsed = tick.saturating_sub(bucket.last_tick);
        bucket.tokens = bucket
            .tokens
            .saturating_add((elapsed.min(u64::from(u32::MAX)) as u32).saturating_mul(quota.rate))
            .min(quota.burst);
        bucket.last_tick = tick;

        if bucket.tokens == 0 {
            if self.mutation == Some(SvcMutation::LeakQuota) && !self.leaked {
                // the planted defect: wave the first starved request
                // through without a token
                self.leaked = true;
                self.window_accepted += 1;
                return Ok(());
            }
            return Err(RejectReason::QuotaExceeded);
        }
        if self.window_accepted >= self.queue_limit {
            // no token consumed: the request never entered the system
            return Err(RejectReason::Backpressure);
        }
        bucket.tokens -= 1;
        self.window_accepted += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(entries: &[(&str, u32, u32)]) -> QuotaTable {
        let mut t = QuotaTable::new();
        for &(name, rate, burst) in entries {
            t.set(name, TenantQuota::new(rate, burst));
        }
        t
    }

    #[test]
    fn quota_table_round_trips() {
        let t = table(&[("campus-a", 3, 6), ("campus-b", 1, 2), ("idle", 0, 0)]);
        let text = t.to_string();
        let parsed = QuotaTable::parse(&text).unwrap();
        assert_eq!(parsed, t);
        assert_eq!(parsed.to_string(), text);
        assert_eq!(parsed.get("campus-a"), TenantQuota::new(3, 6));
        assert_eq!(parsed.get("nobody"), TenantQuota::new(0, 0));
        assert!(QuotaTable::parse("tenant=x rate=1").is_err());
        assert!(QuotaTable::parse("tenant=x rate=1 burst=zzz").is_err());
        assert!(QuotaTable::parse("tenant=x rate=1 burst=2 color=red").is_err());
    }

    #[test]
    fn zero_capacity_tenant_is_always_quota_rejected() {
        let mut ac = AdmissionController::new(table(&[("dead", 0, 0)]), 8);
        for tick in 0..5 {
            assert_eq!(ac.admit("dead", tick), Err(RejectReason::QuotaExceeded));
        }
        // unknown tenants behave the same (zero default quota)
        assert_eq!(ac.admit("ghost", 5), Err(RejectReason::QuotaExceeded));
    }

    #[test]
    fn bucket_refills_exactly_at_tick_boundary() {
        let mut ac = AdmissionController::new(table(&[("a", 1, 1)]), 8);
        assert_eq!(ac.admit("a", 0), Ok(()), "burst token");
        assert_eq!(
            ac.admit("a", 0),
            Err(RejectReason::QuotaExceeded),
            "same tick: nothing refilled yet"
        );
        assert_eq!(
            ac.admit("a", 1),
            Ok(()),
            "one elapsed tick refills one token"
        );
        assert_eq!(ac.admit("a", 1), Err(RejectReason::QuotaExceeded));
        // a long gap refills at most `burst`
        assert_eq!(ac.admit("a", 100), Ok(()));
        assert_eq!(ac.admit("a", 100), Err(RejectReason::QuotaExceeded));
    }

    #[test]
    fn quota_precedes_backpressure_when_both_apply() {
        let mut ac = AdmissionController::new(table(&[("fat", 8, 8), ("thin", 1, 1)]), 2);
        // fill the tick-0 window with the fat tenant
        assert_eq!(ac.admit("fat", 0), Ok(()));
        assert_eq!(ac.admit("fat", 0), Ok(()));
        assert_eq!(
            ac.admit("fat", 0),
            Err(RejectReason::Backpressure),
            "window full, tokens available"
        );
        // drain thin's only token... it still has one, so it must hear
        // backpressure first; drain it at tick 1 then check precedence
        assert_eq!(ac.admit("thin", 1), Ok(()));
        assert_eq!(ac.admit("fat", 1), Ok(()));
        assert_eq!(ac.admit("fat", 1), Err(RejectReason::Backpressure));
        // window full AND thin's bucket empty: the tenant-level reason wins
        assert_eq!(
            ac.admit("thin", 1),
            Err(RejectReason::QuotaExceeded),
            "quota is checked before the global window"
        );
    }

    #[test]
    fn backpressure_consumes_no_token() {
        let mut ac = AdmissionController::new(table(&[("a", 0, 1), ("b", 8, 8)]), 1);
        assert_eq!(ac.admit("b", 0), Ok(()));
        // window now full; a's only (burst) token must survive the rejection
        assert_eq!(ac.admit("a", 0), Err(RejectReason::Backpressure));
        assert_eq!(ac.admit("a", 1), Ok(()), "token was not consumed");
        assert_eq!(
            ac.admit("a", 2),
            Err(RejectReason::QuotaExceeded),
            "rate 0: gone now"
        );
    }

    #[test]
    fn leak_quota_mutation_admits_exactly_one_starved_request() {
        let mut ac = AdmissionController::new(table(&[("dead", 0, 0)]), 8)
            .with_mutation(Some(SvcMutation::LeakQuota));
        assert_eq!(ac.admit("dead", 0), Ok(()), "the planted leak");
        assert_eq!(ac.admit("dead", 0), Err(RejectReason::QuotaExceeded));
    }

    #[test]
    fn mutation_flags_round_trip() {
        for m in [SvcMutation::DropJournalEntry, SvcMutation::LeakQuota] {
            assert_eq!(SvcMutation::parse(m.as_str()), Ok(m));
        }
        assert!(SvcMutation::parse("set-fire").is_err());
    }
}
