//! Seeded synthetic multi-tenant workload for `xcbc svc` and the
//! determinism tests.
//!
//! Traffic is heavy-tailed across tenants (tenant *i* carries weight
//! `1/(i+1)`, so `campus-a` is always the hot one), the op mix is
//! solve-dominated with occasional deploys and monitoring reads, and
//! arrival ticks advance by a configurable inter-arrival distribution
//! from [`xcbc_sched::dist`](xcbc_sched::Dist). Everything is drawn
//! from one seeded [`StdRng`], so a `(seed, tenants, requests)` triple
//! names a stream exactly — the same triple always generates the same
//! byte-identical request sequence, which is what lets the soak harness
//! and CI quick-gate compare runs at different worker counts.

use crate::admission::{QuotaTable, TenantQuota};
use crate::api::{SvcOp, SvcRequest};
use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};
use xcbc_core::xnit_repository;
use xcbc_sched::{sample_weighted, Dist};
use xcbc_yum::SolveRequest;

/// A parameterized synthetic request stream.
#[derive(Debug, Clone)]
pub struct SvcWorkload {
    /// Number of tenants (clamped to at least 1).
    pub tenants: usize,
    /// Stream length in requests.
    pub requests: usize,
    /// Generator seed; names the stream.
    pub seed: u64,
    /// Inter-arrival gap on the admission clock, truncated to whole
    /// ticks — means below 1.0 bunch arrivals into shared ticks, which
    /// is what exercises the backpressure window.
    pub arrival: Dist,
}

impl Default for SvcWorkload {
    fn default() -> Self {
        SvcWorkload {
            tenants: 3,
            requests: 24,
            seed: 0,
            arrival: Dist::Exponential { mean: 0.6 },
        }
    }
}

/// Deterministic tenant names: `campus-a`, `campus-b`, … then
/// `campus-x27`, `campus-x28`, … past the alphabet.
pub fn tenant_names(tenants: usize) -> Vec<String> {
    (0..tenants.max(1))
        .map(|i| {
            if i < 26 {
                format!("campus-{}", (b'a' + i as u8) as char)
            } else {
                format!("campus-x{}", i + 1)
            }
        })
        .collect()
}

impl SvcWorkload {
    /// The quota table the stream is meant to run under: modest rates
    /// cycling 1–3/tick so the heavy-tailed hot tenant genuinely gets
    /// `quota-exceeded` rejections.
    pub fn quotas(&self) -> QuotaTable {
        let mut table = QuotaTable::new();
        for (i, name) in tenant_names(self.tenants).iter().enumerate() {
            let rate = 1 + (i as u32 % 3);
            table.set(name, TenantQuota::new(rate, rate * 2));
        }
        table
    }

    /// A ready-to-serve [`SvcConfig`](crate::SvcConfig) for this stream.
    pub fn config(&self, workers: usize) -> crate::SvcConfig {
        crate::SvcConfig {
            workers,
            shards: 4,
            queue_limit: 4,
            quotas: self.quotas(),
            seed: self.seed,
            mutation: None,
        }
    }

    /// Generate the stream. Pure function of the workload parameters.
    pub fn generate(&self) -> Vec<SvcRequest> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xc0ff_ee00_5eed);
        let names = tenant_names(self.tenants);
        let weights: Vec<f64> = (0..names.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let pool: Vec<String> = xnit_repository()
            .packages()
            .iter()
            .map(|p| p.nevra.name.clone())
            .collect();
        let mut tick = 0u64;
        let mut out = Vec::with_capacity(self.requests);
        for _ in 0..self.requests {
            tick += self.arrival.sample(&mut rng).max(0.0) as u64;
            let tenant = names[sample_weighted(&mut rng, &weights)].clone();
            let seed = rng.next_u64();
            // solve-dominated mix: install, update, update-all, deploy,
            // mon, trace
            let op = match sample_weighted(&mut rng, &[5.0, 1.5, 0.5, 1.0, 1.5, 1.0]) {
                0 => {
                    let mut targets = vec![pick(&mut rng, &pool)];
                    if rng.gen_bool(0.3) {
                        targets.push(pick(&mut rng, &pool));
                    }
                    SvcOp::Solve(SolveRequest::install(targets))
                }
                1 => SvcOp::Solve(SolveRequest::update([pick(&mut rng, &pool)])),
                2 => SvcOp::Solve(SolveRequest::update_all()),
                3 => SvcOp::Deploy,
                4 => SvcOp::MonSnapshot,
                _ => SvcOp::TraceFetch,
            };
            out.push(SvcRequest {
                tenant,
                tick,
                seed,
                op,
            });
        }
        out
    }
}

/// Draw one target: usually a real XNIT package, sometimes a name no
/// repo provides, to keep the solver's error path in the stream.
fn pick(rng: &mut StdRng, pool: &[String]) -> String {
    if rng.gen_bool(0.08) {
        "unobtainium-ml".to_string()
    } else {
        pool[rng.gen_range(0..pool.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_names_the_same_stream() {
        let w = SvcWorkload {
            tenants: 4,
            requests: 40,
            seed: 7,
            ..SvcWorkload::default()
        };
        assert_eq!(w.generate(), w.generate());
        let other = SvcWorkload {
            seed: 8,
            ..w.clone()
        };
        assert_ne!(w.generate(), other.generate());
    }

    #[test]
    fn streams_are_well_formed() {
        let w = SvcWorkload {
            tenants: 30,
            requests: 200,
            seed: 11,
            ..SvcWorkload::default()
        };
        let names = tenant_names(30);
        assert_eq!(names.len(), 30);
        assert!(names.contains(&"campus-x28".to_string()), "{names:?}");
        let quotas = w.quotas();
        let stream = w.generate();
        assert_eq!(stream.len(), 200);
        let mut last_tick = 0;
        for req in &stream {
            assert!(req.tick >= last_tick, "ticks are non-decreasing");
            last_tick = req.tick;
            assert!(names.contains(&req.tenant));
            assert!(quotas.get(&req.tenant).rate > 0, "every tenant has quota");
            // every generated op survives the journal text round-trip
            assert_eq!(
                SvcOp::parse(&req.op.render()).unwrap().render(),
                req.op.render()
            );
        }
        // the hot tenant really is hot: far above the 200/30 ≈ 7
        // uniform share
        let hot = stream.iter().filter(|r| r.tenant == "campus-a").count();
        assert!(
            hot * 5 > stream.len(),
            "campus-a carries the head: {hot}/200"
        );
    }
}
