//! The `xcbcd` engine: serial admission, a bounded worker pool, and
//! the single-threaded replayer.
//!
//! ## The determinism contract
//!
//! A served stream must be reproducible after the fact from its journal
//! alone, byte for byte, no matter how many workers originally ran it.
//! Three design rules deliver that:
//!
//! 1. **Admission is serial.** Requests are decided in arrival order
//!    against token buckets and a tick-windowed queue limit (see
//!    [`crate::admission`]); sequence numbers, the reject stream, and
//!    the journal are fixed before any worker touches anything.
//! 2. **Execution is serial *per tenant*.** Tenants are partitioned
//!    across workers (stable name-order assignment), and one tenant's
//!    requests run in sequence order on one worker. Tenant state (node
//!    databases) is only ever touched by its own serial stream.
//! 3. **Cache keys are tenant-salted.** Shard counters move only under
//!    a tenant's own keys, and a tenant's hit/miss outcomes depend only
//!    on its own serial history — so even bank-wide counter totals are
//!    scheduling-independent and belong in the journal footer.
//!
//! Ledger-derived operations (mon snapshots, trace fetches) are pure
//! functions of the journal prefix before the request's own entry,
//! which is exactly the information the replayer has when it reaches
//! the same sequence number.

use crate::admission::{AdmissionController, QuotaTable, SvcMutation};
use crate::api::{body_digest, Disposition, RejectReason, SvcOp, SvcRequest, SvcResponse};
use crate::journal::{Journal, JournalEntry, JournalError};
use std::collections::BTreeMap;
use std::sync::Arc;
use xcbc_core::deploy::deploy_xnit_overlay_salted;
use xcbc_core::deploy::limulus_factory_image;
use xcbc_core::xnit::{xnit_repository, XnitSetupMethod};
use xcbc_rpm::RpmDb;
use xcbc_sim::{self_profiler, MetricRegistry, SECTION_SVC_SERVE};
use xcbc_yum::{CacheStats, Repository, ShardedSolveCache, SolveRequest, YumConfig};

/// How the service is shaped for one run.
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Worker-pool width (clamped to at least 1). Changes wall clock,
    /// never output.
    pub workers: usize,
    /// Cache shard count (clamped to at least 1).
    pub shards: usize,
    /// Global admission window: max requests accepted per arrival tick.
    pub queue_limit: usize,
    /// Per-tenant token buckets.
    pub quotas: QuotaTable,
    /// The stream seed, journaled in the header.
    pub seed: u64,
    /// A deliberately planted defect for invariant self-tests.
    pub mutation: Option<SvcMutation>,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            workers: 1,
            shards: 4,
            queue_limit: 8,
            quotas: QuotaTable::new(),
            seed: 0,
            mutation: None,
        }
    }
}

/// Everything one served stream produced.
#[derive(Debug)]
pub struct SvcReport {
    /// One response per submitted request, in submission order.
    pub responses: Vec<SvcResponse>,
    /// The rendered journal (post-mutation, when one was planted).
    pub journal_text: String,
    /// Requests accepted (== journal entries, absent mutations).
    pub accepted: usize,
    /// Requests rejected `quota-exceeded`.
    pub rejected_quota: usize,
    /// Requests rejected `backpressure`.
    pub rejected_backpressure: usize,
    /// Per-tenant `(accepted, quota-rejected, backpressure-rejected)`.
    pub tenant_dispositions: BTreeMap<String, (u64, u64, u64)>,
    /// Per-shard cache counters after the run.
    pub shard_stats: Vec<CacheStats>,
    /// Worker-pool width that served the run.
    pub workers: usize,
}

/// The tenant's repo view: every tenant currently sees the XNIT
/// repository (per-tenant overlays would slot in here).
fn tenant_repos() -> Vec<Repository> {
    vec![xnit_repository()]
}

/// A tenant's mutable service-side state: its little cluster.
struct TenantState {
    salt: u64,
    nodes: BTreeMap<String, RpmDb>,
}

impl TenantState {
    fn new(tenant: &str) -> TenantState {
        let mut nodes = BTreeMap::new();
        nodes.insert(format!("{tenant}-fe"), limulus_factory_image());
        nodes.insert(format!("{tenant}-c0"), limulus_factory_image());
        TenantState {
            salt: ShardedSolveCache::tenant_salt(tenant),
            nodes,
        }
    }

    /// Execute one state-touching op serially; returns the body.
    fn execute(
        &mut self,
        op: &SvcOp,
        bank: &ShardedSolveCache,
        repos: &[Repository],
        config: &YumConfig,
    ) -> String {
        match op {
            SvcOp::Solve(req) => self.solve(req, bank, repos, config),
            SvcOp::Deploy => self.deploy(bank),
            // ledger ops are precomputed at admission / replayed from
            // the journal prefix; they never reach here
            SvcOp::MonSnapshot | SvcOp::TraceFetch => unreachable!("ledger op routed to a worker"),
        }
    }

    fn solve(
        &self,
        req: &SolveRequest,
        bank: &ShardedSolveCache,
        repos: &[Repository],
        config: &YumConfig,
    ) -> String {
        let frontend = self.nodes.values().next().expect("tenant has a frontend");
        match bank.get_or_solve(self.salt, repos, config, frontend, req) {
            Ok(sol) => {
                let mut nevras: Vec<String> = sol
                    .installs
                    .iter()
                    .chain(sol.upgrades.iter())
                    .map(|p| p.nevra.to_string())
                    .collect();
                let total = nevras.len();
                if total > 12 {
                    nevras.truncate(12);
                    nevras.push(format!("+{}", total - 12));
                }
                format!(
                    "solve ok installs={} upgrades={} [{}]",
                    sol.installs.len(),
                    sol.upgrades.len(),
                    nevras.join(",")
                )
            }
            Err(e) => format!("solve err {e}"),
        }
    }

    fn deploy(&mut self, bank: &ShardedSolveCache) -> String {
        let before: usize = self.nodes.values().map(|db| db.len()).sum();
        let shard = Arc::clone(bank.home_shard(self.salt));
        match deploy_xnit_overlay_salted(
            &self.nodes,
            XnitSetupMethod::RepoRpm,
            Some(shard),
            self.salt,
        ) {
            Ok(report) => {
                self.nodes = report.node_dbs;
                let after: usize = self.nodes.values().map(|db| db.len()).sum();
                format!(
                    "deploy ok nodes={} installed={} compat={:.1} preserved={}",
                    self.nodes.len(),
                    after - before,
                    report.compat.score * 100.0,
                    report.preexisting_preserved
                )
            }
            Err(e) => format!("deploy err {e}"),
        }
    }
}

/// The accepted-request ledger both the admission pass and the replayer
/// maintain — the state mon/trace bodies are derived from.
#[derive(Debug, Default)]
struct Ledger {
    total: u64,
    per_tenant: BTreeMap<String, Vec<u64>>,
}

impl Ledger {
    fn record(&mut self, tenant: &str, seq: u64) {
        self.total += 1;
        self.per_tenant
            .entry(tenant.to_string())
            .or_default()
            .push(seq);
    }

    fn mon_body(&self, tenant: &str) -> String {
        let mine = self.per_tenant.get(tenant).map_or(0, Vec::len);
        format!(
            "mon ok accepted={} tenants={} mine={mine}",
            self.total,
            self.per_tenant.len()
        )
    }

    fn trace_body(&self, tenant: &str) -> String {
        match self.per_tenant.get(tenant) {
            None => "trace ok n=0 seqs=-".to_string(),
            Some(seqs) => {
                let tail: Vec<String> = seqs
                    .iter()
                    .rev()
                    .take(8)
                    .rev()
                    .map(u64::to_string)
                    .collect();
                format!("trace ok n={} seqs={}", seqs.len(), tail.join(","))
            }
        }
    }
}

/// What a worker executes for one accepted request.
enum Work {
    /// Solve/deploy, executed against tenant state.
    Op(SvcOp),
    /// Ledger-derived body, fixed at admission.
    Ready(String),
}

/// Serve a request stream: serial admission, tenant-partitioned
/// concurrent execution, journaled outcome. See the module docs for
/// the determinism contract.
pub fn serve(requests: &[SvcRequest], config: &SvcConfig) -> SvcReport {
    self_profiler().time(SECTION_SVC_SERVE, || serve_inner(requests, config))
}

fn serve_inner(requests: &[SvcRequest], config: &SvcConfig) -> SvcReport {
    let workers = config.workers.max(1);
    let shards = config.shards.max(1);
    let mut admission = AdmissionController::new(config.quotas.clone(), config.queue_limit)
        .with_mutation(config.mutation);
    let mut ledger = Ledger::default();
    let mut journal = Journal {
        seed: config.seed,
        shards,
        quota_lines: config
            .quotas
            .to_string()
            .lines()
            .map(str::to_string)
            .collect(),
        ..Journal::default()
    };

    let mut responses: Vec<SvcResponse> = Vec::with_capacity(requests.len());
    // per-tenant serial work queues, already in seq order
    let mut work: BTreeMap<String, Vec<(u64, Work)>> = BTreeMap::new();
    // seq → index into `responses`
    let mut seq_slot: Vec<usize> = Vec::new();
    let mut tenant_dispositions: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    let (mut rejected_quota, mut rejected_backpressure) = (0usize, 0usize);

    for req in requests {
        let slot = tenant_dispositions.entry(req.tenant.clone()).or_default();
        match admission.admit(&req.tenant, req.tick) {
            Err(reason) => {
                match reason {
                    RejectReason::QuotaExceeded => {
                        rejected_quota += 1;
                        slot.1 += 1;
                    }
                    RejectReason::Backpressure => {
                        rejected_backpressure += 1;
                        slot.2 += 1;
                    }
                }
                responses.push(SvcResponse {
                    tenant: req.tenant.clone(),
                    disposition: Disposition::Rejected(reason),
                    body: format!("rejected {}", reason.as_str()),
                });
            }
            Ok(()) => {
                let seq = journal.entries.len() as u64;
                slot.0 += 1;
                journal.entries.push(JournalEntry {
                    seq,
                    tenant: req.tenant.clone(),
                    digest: req.op.digest(),
                    seed: req.seed,
                    op: req.op.clone(),
                });
                let item = match &req.op {
                    SvcOp::MonSnapshot => Work::Ready(ledger.mon_body(&req.tenant)),
                    SvcOp::TraceFetch => Work::Ready(ledger.trace_body(&req.tenant)),
                    op => Work::Op(op.clone()),
                };
                ledger.record(&req.tenant, seq);
                work.entry(req.tenant.clone())
                    .or_default()
                    .push((seq, item));
                seq_slot.push(responses.len());
                responses.push(SvcResponse {
                    tenant: req.tenant.clone(),
                    disposition: Disposition::Accepted { seq },
                    body: String::new(),
                });
            }
        }
    }
    let accepted = journal.entries.len();

    // ---- execution: tenants partitioned across the worker pool ----
    let bank = ShardedSolveCache::new(shards);
    let repos = tenant_repos();
    let yum_config = YumConfig::default();
    let tenant_names: Vec<&String> = work.keys().collect();
    let mut executed: Vec<(u64, String)> = Vec::with_capacity(accepted);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers.min(tenant_names.len().max(1)) {
            let mine: Vec<&String> = tenant_names
                .iter()
                .enumerate()
                .filter(|(i, _)| i % workers == w)
                .map(|(_, t)| *t)
                .collect();
            if mine.is_empty() {
                continue;
            }
            let work = &work;
            let bank = &bank;
            let repos = &repos;
            let yum_config = &yum_config;
            handles.push(scope.spawn(move || {
                let mut out: Vec<(u64, String)> = Vec::new();
                for tenant in mine {
                    let mut state = TenantState::new(tenant);
                    for (seq, item) in &work[tenant] {
                        let body = match item {
                            Work::Ready(body) => body.clone(),
                            Work::Op(op) => state.execute(op, bank, repos, yum_config),
                        };
                        out.push((*seq, body));
                    }
                }
                out
            }));
        }
        for handle in handles {
            executed.extend(handle.join().expect("svc worker panicked"));
        }
    });
    for (seq, body) in executed {
        responses[seq_slot[seq as usize]].body = body;
    }

    // ---- footer + mutations ----
    for (i, entry) in journal.entries.iter().enumerate() {
        debug_assert_eq!(entry.seq, i as u64);
        journal
            .response_digests
            .push((entry.seq, responses[seq_slot[i]].body_digest()));
    }
    journal.set_cache_totals(&bank.stats());
    if config.mutation == Some(SvcMutation::DropJournalEntry) && !journal.entries.is_empty() {
        let victim = journal.entries.len() / 2;
        journal.entries.remove(victim);
        // the dropped entry's `end entries` count must still agree with
        // what the (mutated) journal carries, or parsing would reject
        // it before the replay invariant ever ran
    }

    SvcReport {
        responses,
        journal_text: journal.render(),
        accepted,
        rejected_quota,
        rejected_backpressure,
        tenant_dispositions,
        shard_stats: bank.shard_stats(),
        workers,
    }
}

impl SvcReport {
    /// Total submitted requests.
    pub fn submitted(&self) -> usize {
        self.responses.len()
    }

    /// Bank-wide cache totals.
    pub fn cache_totals(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shard_stats {
            total.hits += s.hits;
            total.misses += s.misses;
            total.entries += s.entries;
        }
        total
    }

    /// The accepted responses keyed by journal sequence number.
    pub fn accepted_bodies(&self) -> BTreeMap<u64, &SvcResponse> {
        self.responses
            .iter()
            .filter_map(|r| match r.disposition {
                Disposition::Accepted { seq } => Some((seq, r)),
                Disposition::Rejected(_) => None,
            })
            .collect()
    }

    /// Export the run's counters as `xcbc_svc_*` families.
    pub fn register_metrics(&self, registry: &mut MetricRegistry) {
        for (tenant, (acc, quota, bp)) in &self.tenant_dispositions {
            for (disposition, value) in [
                ("accepted", *acc),
                ("quota-exceeded", *quota),
                ("backpressure", *bp),
            ] {
                registry.set_counter(
                    "xcbc_svc_requests_total",
                    "Requests presented to the multi-tenant service",
                    &[("tenant", tenant), ("disposition", disposition)],
                    value,
                );
            }
        }
        registry.set_gauge(
            "xcbc_svc_journal_entries",
            "Accepted requests journaled this run",
            &[],
            self.accepted as f64,
        );
        for (i, stats) in self.shard_stats.iter().enumerate() {
            let shard = i.to_string();
            registry.set_counter(
                "xcbc_svc_cache_hits_total",
                "Tenant-salted depsolve lookups answered from a service cache shard",
                &[("shard", &shard)],
                stats.hits,
            );
            registry.set_counter(
                "xcbc_svc_cache_misses_total",
                "Tenant-salted depsolve lookups that fell through to a real solve",
                &[("shard", &shard)],
                stats.misses,
            );
            registry.set_gauge(
                "xcbc_svc_shard_entries",
                "Distinct solutions currently stored in a service cache shard",
                &[("shard", &shard)],
                stats.entries as f64,
            );
        }
    }

    /// Human-readable run summary (the `xcbc svc` transcript body).
    pub fn summary(&self) -> String {
        let cache = self.cache_totals();
        let mut out = format!(
            "xcbcd: {} requests, {} tenants, {} workers\n\
             admission: accepted={} rejected: quota={} backpressure={}\n\
             cache: hits={} misses={} entries={} hit-rate={:.0}%\n",
            self.submitted(),
            self.tenant_dispositions.len(),
            self.workers,
            self.accepted,
            self.rejected_quota,
            self.rejected_backpressure,
            cache.hits,
            cache.misses,
            cache.entries,
            cache.hit_rate() * 100.0,
        );
        let occupancy: Vec<String> = self
            .shard_stats
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{i}:{}", s.entries))
            .collect();
        out.push_str(&format!("shard occupancy: {}\n", occupancy.join(" ")));
        for (tenant, (acc, quota, bp)) in &self.tenant_dispositions {
            out.push_str(&format!(
                "tenant {tenant}: accepted={acc} quota-rejected={quota} backpressured={bp}\n"
            ));
        }
        out
    }
}

/// The single-threaded replayer's verdict on one journal.
#[derive(Debug)]
pub struct ReplayReport {
    /// `(seq, tenant, body)` for every replayed entry, in order.
    pub responses: Vec<(u64, String, String)>,
    /// Per-shard cache counters after the replay.
    pub shard_stats: Vec<CacheStats>,
    /// Every discrepancy between the replay and the journal's footer;
    /// empty means the journal is self-consistent.
    pub mismatches: Vec<String>,
}

impl ReplayReport {
    /// Did the replay reproduce the journal exactly?
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Bank-wide cache totals of the replay.
    pub fn cache_totals(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shard_stats {
            total.hits += s.hits;
            total.misses += s.misses;
            total.entries += s.entries;
        }
        total
    }

    /// One-line verdict plus mismatches, for `xcbcd --replay`.
    pub fn render(&self) -> String {
        if self.is_clean() {
            let cache = self.cache_totals();
            format!(
                "replay ok: {} responses reproduced, cache hits={} misses={} entries={}\n",
                self.responses.len(),
                cache.hits,
                cache.misses,
                cache.entries
            )
        } else {
            let mut out = format!("replay FAILED: {} mismatch(es)\n", self.mismatches.len());
            for m in &self.mismatches {
                out.push_str(&format!("  {m}\n"));
            }
            out
        }
    }
}

/// Re-execute a journal single-threaded and verify it against its own
/// footer: every response body must digest to what the original run
/// recorded, and the final cache-counter totals must match. This is
/// `xcbcd --replay LOG`.
pub fn replay(journal_text: &str) -> Result<ReplayReport, JournalError> {
    let journal = Journal::parse(journal_text)?;
    let bank = ShardedSolveCache::new(journal.shards.max(1));
    let repos = tenant_repos();
    let yum_config = YumConfig::default();
    let mut ledger = Ledger::default();
    let mut states: BTreeMap<String, TenantState> = BTreeMap::new();
    let mut responses: Vec<(u64, String, String)> = Vec::with_capacity(journal.entries.len());

    for entry in &journal.entries {
        let body = match &entry.op {
            SvcOp::MonSnapshot => ledger.mon_body(&entry.tenant),
            SvcOp::TraceFetch => ledger.trace_body(&entry.tenant),
            op => states
                .entry(entry.tenant.clone())
                .or_insert_with(|| TenantState::new(&entry.tenant))
                .execute(op, &bank, &repos, &yum_config),
        };
        ledger.record(&entry.tenant, entry.seq);
        responses.push((entry.seq, entry.tenant.clone(), body));
    }

    let mut mismatches = Vec::new();
    if journal.entries.len() != journal.response_digests.len() {
        mismatches.push(format!(
            "journal carries {} entries but {} response digests",
            journal.entries.len(),
            journal.response_digests.len()
        ));
    }
    let replayed: BTreeMap<u64, &str> = responses
        .iter()
        .map(|(seq, _, body)| (*seq, body.as_str()))
        .collect();
    for (seq, recorded) in &journal.response_digests {
        match replayed.get(seq) {
            None => mismatches.push(format!("seq {seq}: recorded response has no journal entry")),
            Some(body) => {
                let digest = body_digest(body);
                if digest != *recorded {
                    mismatches.push(format!(
                        "seq {seq}: replayed body digest {digest} != recorded {recorded}"
                    ));
                }
            }
        }
    }
    let totals = {
        let mut total = CacheStats::default();
        for s in bank.shard_stats() {
            total.hits += s.hits;
            total.misses += s.misses;
            total.entries += s.entries;
        }
        total
    };
    let recorded = journal.cache_totals;
    if (totals.hits, totals.misses, totals.entries) != recorded {
        mismatches.push(format!(
            "cache totals: replay (hits={} misses={} entries={}) != recorded (hits={} misses={} entries={})",
            totals.hits, totals.misses, totals.entries, recorded.0, recorded.1, recorded.2
        ));
    }

    Ok(ReplayReport {
        responses,
        shard_stats: bank.shard_stats(),
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::TenantQuota;

    fn quotas() -> QuotaTable {
        let mut q = QuotaTable::new();
        q.set("campus-a", TenantQuota::new(4, 8));
        q.set("campus-b", TenantQuota::new(4, 8));
        q
    }

    fn stream() -> Vec<SvcRequest> {
        let mut reqs = Vec::new();
        for (i, tenant) in ["campus-a", "campus-b", "campus-a", "campus-b"]
            .iter()
            .enumerate()
        {
            reqs.push(SvcRequest {
                tenant: tenant.to_string(),
                tick: i as u64,
                seed: 100 + i as u64,
                op: SvcOp::Solve(SolveRequest::install(["gromacs"])),
            });
            reqs.push(SvcRequest {
                tenant: tenant.to_string(),
                tick: i as u64,
                seed: 200 + i as u64,
                op: SvcOp::MonSnapshot,
            });
        }
        reqs.push(SvcRequest {
            tenant: "campus-a".into(),
            tick: 4,
            seed: 300,
            op: SvcOp::TraceFetch,
        });
        reqs
    }

    fn config(workers: usize) -> SvcConfig {
        SvcConfig {
            workers,
            shards: 3,
            queue_limit: 8,
            quotas: quotas(),
            seed: 42,
            mutation: None,
        }
    }

    #[test]
    fn worker_count_never_changes_output() {
        let reqs = stream();
        let base = serve(&reqs, &config(1));
        for workers in [2, 4] {
            let other = serve(&reqs, &config(workers));
            assert_eq!(other.journal_text, base.journal_text, "workers={workers}");
            assert_eq!(other.responses, base.responses, "workers={workers}");
            assert_eq!(
                other.cache_totals(),
                base.cache_totals(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn replay_reproduces_bodies_and_totals() {
        let reqs = stream();
        let report = serve(&reqs, &config(2));
        let replayed = replay(&report.journal_text).unwrap();
        assert!(replayed.is_clean(), "{}", replayed.render());
        // byte-identical bodies, not just digests
        let bodies = report.accepted_bodies();
        for (seq, _tenant, body) in &replayed.responses {
            assert_eq!(bodies[seq].body, *body, "seq {seq}");
        }
        assert_eq!(replayed.cache_totals(), report.cache_totals());
    }

    #[test]
    fn second_identical_solve_hits_the_tenant_shard() {
        let reqs = stream();
        let report = serve(&reqs, &config(2));
        let cache = report.cache_totals();
        // campus-a and campus-b each solve gromacs twice: second is a
        // per-tenant hit, never a cross-tenant one
        assert_eq!(cache.misses, 2, "{cache:?}");
        assert_eq!(cache.hits, 2, "{cache:?}");
        assert_eq!(cache.entries, 2, "one entry per tenant");
    }

    #[test]
    fn rejected_requests_leave_no_residue() {
        let mut q = QuotaTable::new();
        q.set("campus-a", TenantQuota::new(0, 1));
        let reqs: Vec<SvcRequest> = (0..4)
            .map(|i| SvcRequest {
                tenant: "campus-a".into(),
                tick: i,
                seed: i,
                op: SvcOp::Solve(SolveRequest::install(["gromacs"])),
            })
            .collect();
        let report = serve(
            &reqs,
            &SvcConfig {
                quotas: q,
                ..SvcConfig::default()
            },
        );
        assert_eq!(report.accepted, 1, "one burst token");
        assert_eq!(report.rejected_quota, 3);
        let journal = Journal::parse(&report.journal_text).unwrap();
        assert_eq!(journal.entries.len(), 1, "rejections never journal");
        assert_eq!(
            report.cache_totals().misses,
            1,
            "rejections never probe the cache"
        );
    }

    #[test]
    fn drop_journal_entry_mutation_breaks_replay() {
        let reqs = stream();
        let report = serve(
            &reqs,
            &SvcConfig {
                mutation: Some(SvcMutation::DropJournalEntry),
                ..config(2)
            },
        );
        let replayed = replay(&report.journal_text).unwrap();
        assert!(
            !replayed.is_clean(),
            "a dropped entry must not replay clean"
        );
    }

    #[test]
    fn deploy_then_solve_round_trip() {
        let mut q = QuotaTable::new();
        q.set("campus-a", TenantQuota::new(8, 8));
        let reqs = vec![
            SvcRequest {
                tenant: "campus-a".into(),
                tick: 0,
                seed: 1,
                op: SvcOp::Deploy,
            },
            SvcRequest {
                tenant: "campus-a".into(),
                tick: 1,
                seed: 2,
                op: SvcOp::Solve(SolveRequest::install(["gromacs"])),
            },
        ];
        let report = serve(
            &reqs,
            &SvcConfig {
                quotas: q,
                ..SvcConfig::default()
            },
        );
        assert!(
            report.responses[0].body.starts_with("deploy ok"),
            "{}",
            report.responses[0].body
        );
        // after the overlay deploy, gromacs is installed: empty solution
        assert!(
            report.responses[1].body.starts_with("solve ok installs=0"),
            "{}",
            report.responses[1].body
        );
        let replayed = replay(&report.journal_text).unwrap();
        assert!(replayed.is_clean(), "{}", replayed.render());
    }

    #[test]
    fn metrics_families_register() {
        let report = serve(&stream(), &config(2));
        let mut registry = MetricRegistry::new();
        report.register_metrics(&mut registry);
        assert_eq!(
            registry.counter_value(
                "xcbc_svc_requests_total",
                &[("tenant", "campus-a"), ("disposition", "accepted")]
            ),
            Some(5)
        );
        let prom = registry.render_prometheus();
        assert!(prom.contains("xcbc_svc_cache_hits_total"), "{prom}");
        assert!(prom.contains("xcbc_svc_shard_entries"), "{prom}");
        assert!(prom.contains("xcbc_svc_journal_entries"), "{prom}");
    }
}
