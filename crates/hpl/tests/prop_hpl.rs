//! Property tests for the Linpack substrate: factorization correctness
//! over random matrices, sizes, block sizes, and thread counts.

use proptest::prelude::*;
use xcbc_hpl::{lu_factor, lu_solve, Matrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Solving A x = A x_true recovers x_true for random well-conditioned
    /// matrices at every (n, nb, threads) combination.
    #[test]
    fn solve_recovers_truth(
        n in 1usize..48,
        nb in 1usize..16,
        threads in 1usize..4,
        seed in 0u64..1000,
    ) {
        let a0 = Matrix::random(n, seed);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 % 7.0) - 3.0).collect();
        let b = a0.matvec(&x_true);
        let mut a = a0.clone();
        let piv = match lu_factor(&mut a, nb, threads) {
            Ok(p) => p,
            Err(_) => return Ok(()), // measure-zero singular draw
        };
        let x = lu_solve(&a, &piv, &b);
        // relative residual must be tiny (random matrices here are
        // well-conditioned with overwhelming probability)
        let ax = a0.matvec(&x);
        let rnorm: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q).abs()).fold(0.0, f64::max);
        let bnorm: f64 = b.iter().map(|v| v.abs()).fold(0.0, f64::max).max(1e-30);
        prop_assert!(rnorm / bnorm < 1e-6, "residual {} at n={n} nb={nb}", rnorm / bnorm);
    }

    /// The pivot vector is always a valid sequence of row indices >= the
    /// diagonal position.
    #[test]
    fn pivots_well_formed(n in 1usize..32, seed in 0u64..100) {
        let mut a = Matrix::random(n, seed);
        if let Ok(piv) = lu_factor(&mut a, 8, 1) {
            prop_assert_eq!(piv.len(), n);
            for (j, &p) in piv.iter().enumerate() {
                prop_assert!(p >= j && p < n, "piv[{}]={} out of range", j, p);
            }
        }
    }

    /// Thread count never changes the numerical result.
    #[test]
    fn threads_are_bitwise_transparent(n in 2usize..40, seed in 0u64..50) {
        let base = Matrix::random(n, seed);
        let mut a1 = base.clone();
        let mut a4 = base.clone();
        let p1 = lu_factor(&mut a1, 8, 1);
        let p4 = lu_factor(&mut a4, 8, 3);
        prop_assert_eq!(p1.is_ok(), p4.is_ok());
        if p1.is_ok() {
            prop_assert_eq!(p1.unwrap(), p4.unwrap());
            prop_assert_eq!(a1.as_slice(), a4.as_slice());
        }
    }
}
