//! # xcbc-hpl — High-Performance Linpack substrate
//!
//! Table 5 of the paper reports Rpeak and Rmax (HP Linpack) for the
//! modified LittleFe and the Limulus HPC200. We cannot run on 2015
//! Haswell hardware, so this crate provides both halves of a faithful
//! substitution:
//!
//! 1. **A real Linpack** — blocked, partially-pivoted LU factorization
//!    with a rayon-parallel trailing update, a triangular solve, and the
//!    standard scaled-residual correctness check. It runs on the host
//!    machine and exhibits the *shape* of HPL: GFLOPS grow with problem
//!    size and thread count, and every run is verified.
//! 2. **An analytic Rmax model** — maps a cluster's Rpeak to expected
//!    Rmax through a computation/communication efficiency model
//!    calibrated against the paper's published points (Limulus measured
//!    498.3 of 793.6; LittleFe estimated at 75 % of Rpeak).
//!
//! ```
//! use xcbc_hpl::{HplConfig, run_hpl};
//!
//! let result = run_hpl(&HplConfig { n: 128, nb: 32, threads: 1, seed: 7 });
//! assert!(result.passed, "residual check must pass");
//! assert!(result.gflops > 0.0);
//! ```

pub mod dgemm;
pub mod hpl;
pub mod lu;
pub mod matrix;
pub mod model;
pub mod stream;
pub mod tuning;

pub use hpl::{run_hpl, HplConfig, HplResult};
pub use lu::{lu_factor, lu_solve, SingularMatrix};
pub use matrix::Matrix;
pub use model::{EfficiencyModel, PAPER_LIMULUS_RMAX_GF, PAPER_LITTLEFE_RMAX_EST_GF};
pub use stream::{
    pingpong_bandwidth_mb_s, pingpong_seconds, run_stream, StreamKernel, StreamResult,
};
pub use tuning::{max_problem_size, sweep_block_size, TuningPoint};
