//! Blocked LU factorization with partial pivoting, and the triangular
//! solves — the computational heart of Linpack.
//!
//! Right-looking algorithm: factor an `nb`-wide panel with row pivoting,
//! then update the trailing submatrix. The trailing update (forward
//! substitution for `U12` plus the `A22 -= L21·U12` GEMM) is
//! column-independent, so it parallelizes across column chunks with
//! rayon — the same decomposition HPL uses across MPI ranks, here across
//! threads.

use crate::matrix::Matrix;

/// The matrix was exactly singular at the given column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix {
    /// The column at which elimination found no nonzero pivot.
    pub column: usize,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for SingularMatrix {}

/// Factor `A = P·L·U` in place (`L` unit-lower below the diagonal, `U`
/// upper). Returns the pivot vector: `piv[j]` is the row swapped with
/// row `j` at step `j`.
///
/// * `nb` — panel width (block size). Anything ≥ 1 works; 32–64 is fast.
/// * `threads` — worker threads for the trailing update (1 = serial).
pub fn lu_factor(a: &mut Matrix, nb: usize, threads: usize) -> Result<Vec<usize>, SingularMatrix> {
    assert_eq!(a.rows(), a.cols(), "LU needs a square matrix");
    assert!(nb >= 1 && threads >= 1);
    let n = a.rows();
    let mut piv = vec![0usize; n];

    let pool = (threads > 1).then(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool builds")
    });

    let mut k0 = 0;
    while k0 < n {
        let kb = nb.min(n - k0);
        let panel_end = k0 + kb;

        // --- panel factorization with partial pivoting ---
        for j in k0..panel_end {
            // pivot search in column j, rows j..n
            let (mut p, mut maxval) = (j, a[(j, j)].abs());
            for i in j + 1..n {
                let v = a[(i, j)].abs();
                if v > maxval {
                    p = i;
                    maxval = v;
                }
            }
            if maxval == 0.0 {
                return Err(SingularMatrix { column: j });
            }
            piv[j] = p;
            a.swap_rows(j, p);

            // scale L column
            let diag = a[(j, j)];
            for i in j + 1..n {
                a[(i, j)] /= diag;
            }
            // rank-1 update of the rest of the panel
            for jj in j + 1..panel_end {
                let u = a[(j, jj)];
                if u == 0.0 {
                    continue;
                }
                for i in j + 1..n {
                    let lij = a[(i, j)];
                    a[(i, jj)] -= lij * u;
                }
            }
        }

        if panel_end < n {
            // --- trailing update, column-parallel ---
            let (left, right) = a.as_mut_slice().split_at_mut(panel_end * n);
            let update_col = |cj: &mut [f64]| {
                // forward-substitute U12 rows (unit L11)
                for l in k0..panel_end {
                    let x = cj[l];
                    if x == 0.0 {
                        continue;
                    }
                    let lcol = &left[l * n..(l + 1) * n];
                    for i in l + 1..panel_end {
                        cj[i] -= lcol[i] * x;
                    }
                }
                // A22 -= L21 · U12 for this column
                for l in k0..panel_end {
                    let x = cj[l];
                    if x == 0.0 {
                        continue;
                    }
                    let lcol = &left[l * n..(l + 1) * n];
                    for i in panel_end..n {
                        cj[i] -= lcol[i] * x;
                    }
                }
            };
            match &pool {
                Some(pool) => pool.install(|| {
                    use rayon::prelude::*;
                    right.par_chunks_mut(n).for_each(update_col);
                }),
                None => right.chunks_mut(n).for_each(update_col),
            }
        }
        k0 = panel_end;
    }
    Ok(piv)
}

/// Solve `A x = b` given the in-place factorization and pivots.
pub fn lu_solve(a: &Matrix, piv: &[usize], b: &[f64]) -> Vec<f64> {
    let n = a.rows();
    assert_eq!(b.len(), n);
    assert_eq!(piv.len(), n);
    let mut x = b.to_vec();
    // apply row interchanges in factorization order
    for (j, &pj) in piv.iter().enumerate().take(n) {
        x.swap(j, pj);
    }
    // forward substitution, unit lower
    for j in 0..n {
        let xj = x[j];
        if xj == 0.0 {
            continue;
        }
        let col = a.col(j);
        for i in j + 1..n {
            x[i] -= col[i] * xj;
        }
    }
    // back substitution, upper
    for j in (0..n).rev() {
        x[j] /= a[(j, j)];
        let xj = x[j];
        if xj == 0.0 {
            continue;
        }
        let col = a.col(j);
        for i in 0..j {
            x[i] -= col[i] * xj;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::vec_norm_inf;

    /// Reconstruct P·A from L·U and check against the original.
    fn check_plu(orig: &Matrix, fact: &Matrix, piv: &[usize], tol: f64) {
        let n = orig.rows();
        // build L and U
        let mut l = Matrix::identity(n);
        let mut u = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                if i > j {
                    l[(i, j)] = fact[(i, j)];
                } else {
                    u[(i, j)] = fact[(i, j)];
                }
            }
        }
        // P*orig: apply the same row swaps to a copy
        let mut pa = orig.clone();
        for (j, &pj) in piv.iter().enumerate().take(n) {
            pa.swap_rows(j, pj);
        }
        // compare P*A with L*U column by column
        for j in 0..n {
            let ucol: Vec<f64> = (0..n).map(|i| u[(i, j)]).collect();
            let lu_col = l.matvec(&ucol);
            for i in 0..n {
                assert!(
                    (pa[(i, j)] - lu_col[i]).abs() < tol,
                    "PA != LU at ({i},{j}): {} vs {}",
                    pa[(i, j)],
                    lu_col[i]
                );
            }
        }
    }

    #[test]
    fn factor_small_known() {
        // A = [[2, 1], [4, 3]] — pivot swaps rows
        let mut a = Matrix::from_rows(2, 2, &[2.0, 1.0, 4.0, 3.0]);
        let orig = a.clone();
        let piv = lu_factor(&mut a, 1, 1).unwrap();
        check_plu(&orig, &a, &piv, 1e-14);
        assert_eq!(piv[0], 1, "row 1 (value 4) must pivot to the top");
    }

    #[test]
    fn factor_random_various_block_sizes() {
        for n in [1usize, 2, 3, 5, 17, 48, 65] {
            for nb in [1usize, 4, 8, 32] {
                let orig = Matrix::random(n, 42);
                let mut a = orig.clone();
                let piv = lu_factor(&mut a, nb, 1).unwrap();
                check_plu(&orig, &a, &piv, 1e-9 * n as f64);
            }
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        for n in [33usize, 64, 100] {
            let orig = Matrix::random(n, 7);
            let mut serial = orig.clone();
            let piv_s = lu_factor(&mut serial, 16, 1).unwrap();
            let mut par = orig.clone();
            let piv_p = lu_factor(&mut par, 16, 4).unwrap();
            assert_eq!(piv_s, piv_p);
            // identical arithmetic order per column → bitwise equal
            assert_eq!(serial.as_slice(), par.as_slice());
        }
    }

    #[test]
    fn solve_recovers_known_vector() {
        let n = 50;
        let orig = Matrix::random(n, 3);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) / 10.0 - 2.0).collect();
        let b = orig.matvec(&x_true);
        let mut a = orig.clone();
        let piv = lu_factor(&mut a, 8, 1).unwrap();
        let x = lu_solve(&a, &piv, &b);
        let err: Vec<f64> = x.iter().zip(&x_true).map(|(a, b)| a - b).collect();
        assert!(
            vec_norm_inf(&err) < 1e-8,
            "solution error {}",
            vec_norm_inf(&err)
        );
    }

    #[test]
    fn singular_matrix_detected() {
        // second column is a multiple of the first
        let mut a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        let err = lu_factor(&mut a, 2, 1).unwrap_err();
        assert_eq!(err.column, 1);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn zero_matrix_singular_at_first_column() {
        let mut a = Matrix::zeros(3, 3);
        assert_eq!(lu_factor(&mut a, 2, 1).unwrap_err().column, 0);
    }

    #[test]
    fn identity_factors_trivially() {
        let mut a = Matrix::identity(8);
        let piv = lu_factor(&mut a, 4, 2).unwrap();
        assert_eq!(piv, (0..8).collect::<Vec<_>>());
        let b = vec![1.0; 8];
        assert_eq!(lu_solve(&a, &piv, &b), b);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let mut a = Matrix::zeros(2, 3);
        let _ = lu_factor(&mut a, 1, 1);
    }
}
