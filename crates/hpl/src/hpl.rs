//! The HPL driver: generate, factor, solve, verify, report GFLOPS.

use crate::lu::{lu_factor, lu_solve};
use crate::matrix::{vec_norm_inf, Matrix};
use std::time::Instant;

/// One benchmark configuration (HPL.dat's N, NB, P×Q — here threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HplConfig {
    /// Problem size.
    pub n: usize,
    /// Block (panel) size.
    pub nb: usize,
    /// Worker threads.
    pub threads: usize,
    /// RNG seed for the input matrix.
    pub seed: u64,
}

/// One benchmark result line.
#[derive(Debug, Clone, PartialEq)]
pub struct HplResult {
    /// The configuration that produced this result.
    pub config: HplConfig,
    /// Wall-clock factor+solve time.
    pub seconds: f64,
    /// Achieved rate per the HPL flop convention.
    pub gflops: f64,
    /// HPL's scaled residual `‖Ax−b‖∞ / (ε·(‖A‖∞·‖x‖∞ + ‖b‖∞)·n)`.
    pub residual: f64,
    /// Residual below the HPL threshold of 16.
    pub passed: bool,
}

impl HplResult {
    /// Render like an HPL output line.
    pub fn render(&self) -> String {
        format!(
            "WR00L2L2 {:>8} {:>5} {:>3}   {:>10.3}  {:>10.4e}  residual={:>8.3e} {}",
            self.config.n,
            self.config.nb,
            self.config.threads,
            self.seconds,
            self.gflops,
            self.residual,
            if self.passed { "PASSED" } else { "FAILED" }
        )
    }
}

/// FLOP count of LU solve: `2n³/3 + 2n²` (the HPL convention — pivoting
/// and substitutions included).
pub fn hpl_flops(n: usize) -> f64 {
    let n = n as f64;
    2.0 / 3.0 * n * n * n + 2.0 * n * n
}

/// Run one Linpack configuration: random A and b, timed factor+solve,
/// scaled-residual verification.
pub fn run_hpl(config: &HplConfig) -> HplResult {
    let a0 = Matrix::random(config.n, config.seed);
    let x_true: Vec<f64> = (0..config.n)
        .map(|i| ((i % 17) as f64) / 17.0 - 0.5)
        .collect();
    let b = a0.matvec(&x_true);

    let mut a = a0.clone();
    let start = Instant::now();
    let piv = lu_factor(&mut a, config.nb, config.threads)
        .expect("random HPL matrices are nonsingular with probability 1");
    let x = lu_solve(&a, &piv, &b);
    let seconds = start.elapsed().as_secs_f64();

    // scaled residual per the HPL harness
    let ax = a0.matvec(&x);
    let r: Vec<f64> = ax.iter().zip(&b).map(|(a, b)| a - b).collect();
    let eps = f64::EPSILON;
    let denom = eps * (a0.norm_inf() * vec_norm_inf(&x) + vec_norm_inf(&b)) * config.n as f64;
    let residual = if denom > 0.0 {
        vec_norm_inf(&r) / denom
    } else {
        0.0
    };

    let gflops = hpl_flops(config.n) / seconds / 1e9;
    HplResult {
        config: *config,
        seconds,
        gflops,
        residual,
        passed: residual < 16.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_count_convention() {
        assert_eq!(hpl_flops(3), 2.0 / 3.0 * 27.0 + 18.0);
        assert!(hpl_flops(1000) > 6.6e8);
    }

    #[test]
    fn small_run_passes_residual() {
        let r = run_hpl(&HplConfig {
            n: 64,
            nb: 16,
            threads: 1,
            seed: 1,
        });
        assert!(r.passed, "residual {}", r.residual);
        assert!(r.gflops > 0.0);
        assert!(r.seconds > 0.0);
        assert!(r.render().contains("PASSED"));
    }

    #[test]
    fn parallel_run_passes_residual() {
        let r = run_hpl(&HplConfig {
            n: 192,
            nb: 32,
            threads: 4,
            seed: 2,
        });
        assert!(r.passed, "residual {}", r.residual);
    }

    #[test]
    fn different_seeds_both_pass() {
        for seed in [3, 4, 5] {
            let r = run_hpl(&HplConfig {
                n: 96,
                nb: 24,
                threads: 2,
                seed,
            });
            assert!(r.passed, "seed {seed}: residual {}", r.residual);
        }
    }

    #[test]
    fn gflops_grow_with_n() {
        // bigger problems amortize overhead: the hallmark HPL curve
        let small = run_hpl(&HplConfig {
            n: 64,
            nb: 32,
            threads: 1,
            seed: 6,
        });
        let large = run_hpl(&HplConfig {
            n: 512,
            nb: 32,
            threads: 1,
            seed: 6,
        });
        assert!(
            large.gflops > small.gflops,
            "N=512 {:.2} GF should beat N=64 {:.2} GF",
            large.gflops,
            small.gflops
        );
    }
}
