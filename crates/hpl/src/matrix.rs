//! Column-major dense matrix storage.
//!
//! Column-major is the natural layout for LU: panels and trailing-column
//! chunks are contiguous, which both the cache and the rayon splitting in
//! [`crate::lu`] rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense `rows × cols` matrix of `f64`, column-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Square matrix with entries uniform in [-0.5, 0.5] (the HPL input
    /// distribution), deterministic per seed.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..n * n).map(|_| rng.gen_range(-0.5..0.5)).collect();
        Matrix {
            rows: n,
            cols: n,
            data,
        }
    }

    /// Build from a row-major slice (test convenience).
    pub fn from_rows(rows: usize, cols: usize, row_major: &[f64]) -> Self {
        assert_eq!(row_major.len(), rows * cols);
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = row_major[r * cols + c];
            }
        }
        m
    }

    /// Identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw column-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage (column-major; column `j` is
    /// `data[j*rows .. (j+1)*rows]`).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One column as a slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate().take(self.cols) {
            let col = self.col(j);
            for i in 0..self.rows {
                y[i] += col[i] * xj;
            }
        }
        y
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        let mut row_sums = vec![0.0; self.rows];
        for j in 0..self.cols {
            let col = self.col(j);
            for i in 0..self.rows {
                row_sums[i] += col[i].abs();
            }
        }
        row_sums.into_iter().fold(0.0, f64::max)
    }

    /// Swap rows `a` and `b` across all columns.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(j * self.rows + a, j * self.rows + b);
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[c * self.rows + r]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[c * self.rows + r]
    }
}

/// Infinity norm of a vector.
pub fn vec_norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |a, &v| a.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_column_major() {
        let mut m = Matrix::zeros(3, 2);
        m[(2, 1)] = 7.0;
        assert_eq!(m.as_slice()[5], 7.0); // column 1 * rows 3 + row 2
        assert_eq!(m[(2, 1)], 7.0);
    }

    #[test]
    fn from_rows_matches_index() {
        let m = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Matrix::random(16, 9);
        let b = Matrix::random(16, 9);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
        assert_ne!(a, Matrix::random(16, 10));
    }

    #[test]
    fn matvec_identity() {
        let i = Matrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x), x);
    }

    #[test]
    fn matvec_known() {
        let m = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn norm_inf_known() {
        let m = Matrix::from_rows(2, 2, &[1.0, -2.0, 3.0, 4.0]);
        assert_eq!(m.norm_inf(), 7.0);
        assert_eq!(vec_norm_inf(&[1.0, -9.0, 3.0]), 9.0);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        m.swap_rows(0, 1);
        assert_eq!(m[(0, 0)], 3.0);
        assert_eq!(m[(1, 1)], 2.0);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m[(1, 0)], 1.0);
    }
}
