//! Analytic Rmax model — mapping Rpeak to expected Linpack performance.
//!
//! Table 5's published points:
//!
//! * **Limulus HPC200**: Rmax 498.3 of Rpeak 793.6 GF → 62.8 % efficiency,
//!   "based on actual results of tests conducted by Basement
//!   Supercomputing" with HPL.
//! * **LittleFe (modified)**: Rmax "estimated at 75 % of Rpeak" (403.2 of
//!   537.6) "due to a hardware failure prior to Linpack".
//!
//! The model splits a run into computation (`2n³/3` FLOPs at
//! `node_efficiency × Rpeak`) and GbE communication (HPL's panel
//! broadcasts and row swaps move `O(n²·√p)` bytes), which yields the two
//! qualitative facts the paper leans on: efficiency *falls* as nodes are
//! added over gigabit Ethernet, and *rises* with problem size.

/// Parameters of the efficiency model.
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyModel {
    /// Fraction of one node's Rpeak that HPL achieves on that node alone
    /// (BLAS quality, memory bandwidth) — ~0.80 for OpenBLAS-era Haswell.
    pub node_efficiency: f64,
    /// Interconnect bandwidth, bytes/second (GbE ≈ 117 MB/s effective).
    pub net_bytes_per_s: f64,
    /// Communication volume coefficient: HPL moves roughly
    /// `c · n² · √p` bytes in total.
    pub comm_coefficient: f64,
}

/// Paper's measured Limulus Rmax, GFLOPS (Table 5).
pub const PAPER_LIMULUS_RMAX_GF: f64 = 498.3;
/// Paper's estimated LittleFe Rmax, GFLOPS (75 % of 537.6; Table 5 note).
pub const PAPER_LITTLEFE_RMAX_EST_GF: f64 = 403.2;

impl EfficiencyModel {
    /// A GbE deskside-cluster model calibrated so the Limulus point
    /// (4 nodes, 793.6 GF Rpeak, N ≈ 64k) lands on the measured 498.3 GF.
    pub fn gigabit_deskside() -> Self {
        EfficiencyModel {
            node_efficiency: 0.80,
            net_bytes_per_s: 117.0e6,
            comm_coefficient: 1.08,
        }
    }

    /// Expected efficiency (Rmax/Rpeak) for a run of size `n` on
    /// `nodes` nodes with aggregate `rpeak_gflops`.
    pub fn efficiency(&self, rpeak_gflops: f64, nodes: u32, n: usize) -> f64 {
        let nf = n as f64;
        let flops = 2.0 / 3.0 * nf * nf * nf;
        let t_comp = flops / (self.node_efficiency * rpeak_gflops * 1e9);
        let t_comm = if nodes > 1 {
            self.comm_coefficient * nf * nf * (nodes as f64).sqrt() / self.net_bytes_per_s
        } else {
            0.0
        };
        self.node_efficiency * t_comp / (t_comp + t_comm)
    }

    /// Expected Rmax in GFLOPS.
    pub fn rmax_gflops(&self, rpeak_gflops: f64, nodes: u32, n: usize) -> f64 {
        rpeak_gflops * self.efficiency(rpeak_gflops, nodes, n)
    }

    /// Largest problem that fits in memory: `N = √(fill × bytes / 8)`.
    pub fn memory_bound_n(total_ram_bytes: u64, fill: f64) -> usize {
        ((total_ram_bytes as f64 * fill / 8.0).sqrt()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMULUS_RPEAK: f64 = 793.6;
    const LITTLEFE_RPEAK: f64 = 537.6;

    #[test]
    fn calibrated_to_limulus_measurement() {
        // Limulus: 4 nodes, 64 GB total RAM → N ≈ 80k; Basement's
        // published run used N≈64k on 64 GB.
        let m = EfficiencyModel::gigabit_deskside();
        let rmax = m.rmax_gflops(LIMULUS_RPEAK, 4, 64_000);
        let err = (rmax - PAPER_LIMULUS_RMAX_GF).abs() / PAPER_LIMULUS_RMAX_GF;
        assert!(
            err < 0.05,
            "model {rmax:.1} GF vs paper 498.3 GF ({:.1}% off)",
            err * 100.0
        );
    }

    #[test]
    fn littlefe_estimate_in_range() {
        // The paper *estimates* 75%; our mechanistic model should land in
        // the same neighbourhood (LittleFe: 6 nodes, 24 GB RAM → N ≈ 48k).
        let m = EfficiencyModel::gigabit_deskside();
        let eff = m.efficiency(LITTLEFE_RPEAK, 6, 48_000);
        assert!(
            (0.55..=0.80).contains(&eff),
            "LittleFe efficiency {eff:.3} should bracket the paper's 0.75 estimate"
        );
    }

    #[test]
    fn efficiency_rises_with_problem_size() {
        let m = EfficiencyModel::gigabit_deskside();
        let small = m.efficiency(LIMULUS_RPEAK, 4, 10_000);
        let large = m.efficiency(LIMULUS_RPEAK, 4, 80_000);
        assert!(large > small);
    }

    #[test]
    fn efficiency_falls_with_more_gbe_nodes() {
        let m = EfficiencyModel::gigabit_deskside();
        let per_node = 198.4; // one i7-4770S
        let e1 = m.efficiency(per_node, 1, 40_000);
        let e4 = m.efficiency(4.0 * per_node, 4, 40_000);
        let e16 = m.efficiency(16.0 * per_node, 16, 40_000);
        assert!(e1 > e4 && e4 > e16, "{e1:.3} > {e4:.3} > {e16:.3} expected");
        assert!(
            (e1 - m.node_efficiency).abs() < 1e-12,
            "single node pays no network tax"
        );
    }

    #[test]
    fn memory_bound_problem_sizes() {
        // 64 GB → ~87k; 8 GB/node × 6 misreported as total 24 GB → ~49k
        let n64 = EfficiencyModel::memory_bound_n(64 << 30, 0.9);
        assert!((80_000..95_000).contains(&n64), "{n64}");
        let n24 = EfficiencyModel::memory_bound_n(24 << 30, 0.9);
        assert!((45_000..60_000).contains(&n24), "{n24}");
    }

    #[test]
    fn table5_shape_littlefe_cheaper_limulus_faster() {
        // the paper's conclusion: Limulus wins absolute Rmax; LittleFe
        // wins price-performance
        let m = EfficiencyModel::gigabit_deskside();
        let lf_rmax = m.rmax_gflops(LITTLEFE_RPEAK, 6, 48_000);
        let lm_rmax = m.rmax_gflops(LIMULUS_RPEAK, 4, 64_000);
        assert!(
            lm_rmax > lf_rmax,
            "Limulus {lm_rmax:.0} > LittleFe {lf_rmax:.0}"
        );
        let lf_price = 3600.0 / lf_rmax;
        let lm_price = 5995.0 / lm_rmax;
        assert!(
            lf_price < lm_price,
            "LittleFe $/GF {lf_price:.2} < Limulus {lm_price:.2}"
        );
    }
}
