//! Parameter tuning: the NB/N sweep every HPL deployment starts with.

use crate::hpl::{run_hpl, HplConfig, HplResult};

/// One point of a tuning sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningPoint {
    /// Block size tried.
    pub nb: usize,
    /// Rate achieved at this block size.
    pub gflops: f64,
    /// Residual check outcome.
    pub passed: bool,
}

/// Run `n` at each block size and report the curve plus the winner.
pub fn sweep_block_size(
    n: usize,
    nbs: &[usize],
    threads: usize,
    seed: u64,
) -> (Vec<TuningPoint>, usize) {
    assert!(!nbs.is_empty());
    let mut points = Vec::with_capacity(nbs.len());
    for &nb in nbs {
        let r: HplResult = run_hpl(&HplConfig {
            n,
            nb,
            threads,
            seed,
        });
        points.push(TuningPoint {
            nb,
            gflops: r.gflops,
            passed: r.passed,
        });
    }
    let best = points
        .iter()
        .max_by(|a, b| a.gflops.total_cmp(&b.gflops))
        .expect("non-empty")
        .nb;
    (points, best)
}

/// Largest problem size that fits in `ram_bytes` at `fill` fraction
/// (HPL's rule of thumb is ~80–90 % of memory).
pub fn max_problem_size(ram_bytes: u64, fill: f64) -> usize {
    crate::model::EfficiencyModel::memory_bound_n(ram_bytes, fill)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_returns_point_per_nb_all_passing() {
        let (points, best) = sweep_block_size(96, &[8, 16, 32], 1, 1);
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|p| p.passed));
        assert!([8, 16, 32].contains(&best));
    }

    #[test]
    fn best_is_argmax() {
        let (points, best) = sweep_block_size(128, &[4, 32], 1, 2);
        let max = points
            .iter()
            .max_by(|a, b| a.gflops.total_cmp(&b.gflops))
            .unwrap();
        assert_eq!(best, max.nb);
    }

    #[test]
    fn problem_size_rule_of_thumb() {
        // 4 GB at 80% → ~20k
        let n = max_problem_size(4 << 30, 0.8);
        assert!((18_000..22_000).contains(&n), "{n}");
    }

    #[test]
    #[should_panic]
    fn empty_sweep_panics() {
        sweep_block_size(64, &[], 1, 1);
    }
}
