//! STREAM-style memory bandwidth kernels and a ping-pong latency model.
//!
//! HPL alone doesn't characterize a deskside cluster; the curriculum's
//! "demonstrate HPC capabilities" needs the other two classic
//! microbenchmarks. The STREAM kernels are *real* (they measure this
//! host); the ping-pong model is analytic over the cluster's
//! `NetworkSpec`-style parameters, matching the GbE numbers the
//! efficiency model in [`crate::model`] assumes.

use rayon::prelude::*;
use std::time::Instant;

/// Which STREAM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKernel {
    /// `c[i] = a[i]` — 2 words/iteration.
    Copy,
    /// `b[i] = s*c[i]` — 2 words.
    Scale,
    /// `c[i] = a[i] + b[i]` — 3 words.
    Add,
    /// `a[i] = b[i] + s*c[i]` — 3 words.
    Triad,
}

impl StreamKernel {
    /// Words moved per element (STREAM's counting convention).
    pub fn words_per_element(self) -> u64 {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 2,
            StreamKernel::Add | StreamKernel::Triad => 3,
        }
    }
}

/// One kernel measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamResult {
    /// Which kernel ran.
    pub kernel: StreamKernel,
    /// Array length in doubles.
    pub n: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Best (minimum) time across repetitions.
    pub seconds: f64,
    /// Achieved bandwidth per STREAM's byte-counting convention.
    pub bandwidth_gb_s: f64,
    /// Checksum so the work cannot be optimized away and is verifiable.
    pub checksum: f64,
}

/// Run one STREAM kernel over `n` doubles with `threads` workers,
/// repeated `reps` times (best time reported, as STREAM does).
pub fn run_stream(kernel: StreamKernel, n: usize, threads: usize, reps: usize) -> StreamResult {
    assert!(n > 0 && reps > 0 && threads > 0);
    let scalar = 3.0f64;
    let mut a = vec![1.0f64; n];
    let mut b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        pool.install(|| match kernel {
            StreamKernel::Copy => {
                c.par_iter_mut()
                    .zip(a.par_iter())
                    .for_each(|(c, a)| *c = *a);
            }
            StreamKernel::Scale => {
                b.par_iter_mut()
                    .zip(c.par_iter())
                    .for_each(|(b, c)| *b = scalar * *c);
            }
            StreamKernel::Add => {
                c.par_iter_mut()
                    .zip(a.par_iter().zip(b.par_iter()))
                    .for_each(|(c, (a, b))| *c = *a + *b);
            }
            StreamKernel::Triad => {
                a.par_iter_mut()
                    .zip(b.par_iter().zip(c.par_iter()))
                    .for_each(|(a, (b, c))| *a = *b + scalar * *c);
            }
        });
        best = best.min(start.elapsed().as_secs_f64());
    }

    let bytes = kernel.words_per_element() * 8 * n as u64;
    StreamResult {
        kernel,
        n,
        threads,
        seconds: best,
        bandwidth_gb_s: bytes as f64 / best / 1e9,
        checksum: a[n / 2] + b[n / 2] + c[n / 2],
    }
}

/// Analytic MPI ping-pong: time to echo a message of `bytes` over a link
/// with `latency_us` one-way latency and `bandwidth_gbps` line rate.
pub fn pingpong_seconds(bytes: u64, latency_us: f64, bandwidth_gbps: f64) -> f64 {
    2.0 * (latency_us / 1e6 + bytes as f64 * 8.0 / (bandwidth_gbps * 1e9))
}

/// Effective half-round-trip bandwidth at a message size (the classic
/// ramp: latency-bound small messages, line-rate large ones).
pub fn pingpong_bandwidth_mb_s(bytes: u64, latency_us: f64, bandwidth_gbps: f64) -> f64 {
    let t = pingpong_seconds(bytes, latency_us, bandwidth_gbps) / 2.0;
    bytes as f64 / t / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_compute_correct_values() {
        // run all four in STREAM order and verify the final arrays
        let n = 1000;
        run_stream(StreamKernel::Copy, n, 1, 1);
        // a fresh run of Triad with known inputs via checksum path:
        let r = run_stream(StreamKernel::Add, n, 2, 2);
        // after Copy(c=a) inside run_stream's own init: a=1,b=2 → add c=3
        assert_eq!(r.checksum, 1.0 + 2.0 + 3.0);
        assert!(r.bandwidth_gb_s > 0.0);
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn triad_checksum() {
        let r = run_stream(StreamKernel::Triad, 512, 1, 1);
        // triad: a = b + 3*c with initial b=2, c=0 → a=2
        assert_eq!(r.checksum, 2.0 + 2.0 + 0.0);
        assert_eq!(r.kernel.words_per_element(), 3);
    }

    #[test]
    fn words_per_element_convention() {
        assert_eq!(StreamKernel::Copy.words_per_element(), 2);
        assert_eq!(StreamKernel::Scale.words_per_element(), 2);
        assert_eq!(StreamKernel::Add.words_per_element(), 3);
        assert_eq!(StreamKernel::Triad.words_per_element(), 3);
    }

    #[test]
    fn pingpong_latency_dominates_small_messages() {
        // GbE: 50us latency, 1 Gbps
        let tiny = pingpong_seconds(8, 50.0, 1.0);
        assert!((tiny - 2.0 * (50e-6 + 64.0 / 1e9)).abs() < 1e-12);
        // 1 MB is bandwidth-dominated
        let big_bw = pingpong_bandwidth_mb_s(1 << 20, 50.0, 1.0);
        assert!(big_bw > 80.0 && big_bw < 125.0, "{big_bw} MB/s on GbE");
        let small_bw = pingpong_bandwidth_mb_s(8, 50.0, 1.0);
        assert!(small_bw < 1.0, "latency-bound: {small_bw} MB/s");
    }

    #[test]
    fn pingpong_monotone_in_size() {
        let mut last = 0.0;
        for p in 0..20 {
            let t = pingpong_seconds(1 << p, 50.0, 1.0);
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    #[should_panic]
    fn zero_n_rejected() {
        run_stream(StreamKernel::Copy, 0, 1, 1);
    }
}
