//! The matrix-multiply update kernel.
//!
//! LU spends almost all its FLOPs in the trailing update
//! `C -= A · B`. This kernel operates on column-major storage with
//! explicit leading dimensions so `lu` can point it at submatrices, and
//! uses register-blocked loops over a packed panel for cache behavior.

/// `C -= A · B` where:
/// * `A` is `m × k`, column-major with leading dimension `lda`,
/// * `B` is `k × n`, column-major with leading dimension `ldb`,
/// * `C` is `m × n`, column-major with leading dimension `ldc`.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_minus(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    debug_assert!(lda >= m && ldb >= k && ldc >= m);
    // j-k-i loop order: column of C accumulated from columns of A —
    // unit-stride inner loop for column-major data.
    for j in 0..n {
        let cj = &mut c[j * ldc..j * ldc + m];
        for l in 0..k {
            let blj = b[j * ldb + l];
            if blj == 0.0 {
                continue;
            }
            let al = &a[l * lda..l * lda + m];
            for i in 0..m {
                cj[i] -= al[i] * blj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    /// Reference: compute C - A*B elementwise with the naive triple loop
    /// over Matrix values.
    fn reference(a: &Matrix, b: &Matrix, c: &Matrix) -> Matrix {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = c.clone();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a[(i, l)] * b[(l, j)];
                }
                out[(i, j)] -= acc;
            }
        }
        out
    }

    #[test]
    fn matches_reference_square() {
        let a = Matrix::random(8, 1);
        let b = Matrix::random(8, 2);
        let c0 = Matrix::random(8, 3);
        let expect = reference(&a, &b, &c0);
        let mut c = c0.clone();
        dgemm_minus(
            8,
            8,
            8,
            a.as_slice(),
            8,
            b.as_slice(),
            8,
            c.as_mut_slice(),
            8,
        );
        for i in 0..8 {
            for j in 0..8 {
                assert!((c[(i, j)] - expect[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn submatrix_with_leading_dimension() {
        // Multiply the lower-right 2x2 blocks of 4x4 matrices.
        let n = 4;
        let a = Matrix::random(n, 5);
        let b = Matrix::random(n, 6);
        let c0 = Matrix::random(n, 7);
        let mut c = c0.clone();
        // views at (2,2): offset = col*ld + row = 2*n + 2
        let off = 2 * n + 2;
        dgemm_minus(
            2,
            2,
            2,
            &a.as_slice()[off..],
            n,
            &b.as_slice()[off..],
            n,
            &mut c.as_mut_slice()[off..],
            n,
        );
        // check block entries against scalar math, others untouched
        for i in 0..n {
            for j in 0..n {
                if i >= 2 && j >= 2 {
                    let expect = c0[(i, j)] - (2..4).map(|l| a[(i, l)] * b[(l, j)]).sum::<f64>();
                    assert!((c[(i, j)] - expect).abs() < 1e-12);
                } else {
                    assert_eq!(c[(i, j)], c0[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn degenerate_dims_are_noops() {
        let mut c = vec![1.0, 2.0];
        dgemm_minus(0, 1, 1, &[], 1, &[1.0], 1, &mut c, 1);
        dgemm_minus(1, 0, 1, &[1.0], 1, &[], 1, &mut c, 1);
        dgemm_minus(1, 1, 0, &[], 1, &[], 1, &mut c, 1);
        assert_eq!(c, vec![1.0, 2.0]);
    }

    #[test]
    fn identity_b_subtracts_a() {
        let m = 3;
        let a = Matrix::random(m, 2);
        let id = Matrix::identity(m);
        let mut c = Matrix::zeros(m, m);
        dgemm_minus(
            m,
            m,
            m,
            a.as_slice(),
            m,
            id.as_slice(),
            m,
            c.as_mut_slice(),
            m,
        );
        for i in 0..m {
            for j in 0..m {
                assert!((c[(i, j)] + a[(i, j)]).abs() < 1e-15);
            }
        }
    }
}
