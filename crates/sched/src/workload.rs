//! Stochastic open-loop workload synthesis.
//!
//! Produces unbounded, seeded job streams shaped like the campus
//! cluster mixes the paper's target sites run: mostly small
//! serial/bioinformatics jobs with occasional full-machine MPI runs,
//! heavier research tails, and day/night submission rhythm. The typed
//! [`WorkloadSpec`] builder is the single description of a workload —
//! normalized and digestable like `SolveRequest` — and
//! [`WorkloadSpec::stream`] turns it into a lazy [`JobStream`] of
//! `(submit_time, JobRequest)` pairs, so a million-job horizon costs
//! no up-front memory.
//!
//! A `(spec.digest(), seed, cluster shape)` triple fully determines
//! the stream: the experiment harness in [`crate::exp`] leans on that
//! for worker-count-invariant sweeps.

use crate::dist::{Dist, Fnv64};
use crate::job::JobRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How wide generated jobs are.
#[derive(Debug, Clone, PartialEq)]
pub struct WidthMix {
    /// Probability a job asks for the whole machine (MPI run).
    pub full_machine: f64,
    /// Node count for non-full jobs (rounded, clamped to the cluster).
    pub nodes: Dist,
    /// Cores per node for non-full jobs (rounded, clamped).
    pub ppn: Dist,
}

/// Who submits: `count` users with Zipf(`skew`) submission weights
/// (skew 0 = uniform; larger = a few heavy users dominate).
#[derive(Debug, Clone, PartialEq)]
pub struct UserMix {
    pub count: usize,
    pub skew: f64,
}

/// A submission queue class: its share of arrivals and how it scales
/// the drawn runtime (e.g. a `short` queue trims jobs, a `long` queue
/// stretches them). The queue name becomes the job-name prefix, so
/// accounting by queue falls out of the job table.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueClass {
    pub name: String,
    pub weight: f64,
    pub runtime_scale: f64,
}

impl QueueClass {
    pub fn new(name: &str, weight: f64, runtime_scale: f64) -> Self {
        QueueClass {
            name: name.to_string(),
            weight,
            runtime_scale,
        }
    }
}

/// Day/night modulation of the arrival rate:
/// `rate(t) = 1 + amplitude·sin(2π(t + phase_s)/period_s)`.
/// Interarrival gaps are divided by `rate(t)`, so amplitude 0.6 means
/// peak-hour submissions come 1.6× as fast as the long-run average.
#[derive(Debug, Clone, PartialEq)]
pub struct Diurnal {
    /// Modulation depth in `[0, 1)`.
    pub amplitude: f64,
    /// Cycle length in seconds (86400 = daily).
    pub period_s: f64,
    /// Phase offset in seconds.
    pub phase_s: f64,
}

impl Diurnal {
    /// A daily cycle with the given depth.
    pub fn daily(amplitude: f64) -> Self {
        Diurnal {
            amplitude,
            period_s: 86_400.0,
            phase_s: 0.0,
        }
    }

    /// Instantaneous rate multiplier at simulated second `t`.
    pub fn rate(&self, t: f64) -> f64 {
        1.0 + self.amplitude * (std::f64::consts::TAU * (t + self.phase_s) / self.period_s).sin()
    }
}

/// The arrival side of a workload: interarrival distribution plus
/// optional diurnal modulation. Open-loop: arrivals never react to
/// queue state, which is what makes saturation measurable.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalProcess {
    /// Gap between consecutive submissions, seconds (pre-modulation).
    pub interarrival: Dist,
    pub diurnal: Option<Diurnal>,
}

impl ArrivalProcess {
    /// Poisson arrivals at the given mean gap.
    pub fn poisson(mean_interarrival_s: f64) -> Self {
        ArrivalProcess {
            interarrival: Dist::Exponential {
                mean: mean_interarrival_s,
            },
            diurnal: None,
        }
    }

    /// Add day/night modulation.
    pub fn with_diurnal(mut self, diurnal: Diurnal) -> Self {
        self.diurnal = Some(diurnal);
        self
    }

    /// Draw the next gap given the current simulated time. Exactly one
    /// `interarrival` sample per call regardless of modulation.
    pub fn next_gap(&self, t: f64, rng: &mut StdRng) -> f64 {
        let gap = self.interarrival.sample(rng);
        match &self.diurnal {
            Some(d) => gap / d.rate(t).max(1e-6),
            None => gap,
        }
    }
}

/// A complete, typed description of a synthetic workload.
///
/// Build one with the fluent setters, then call
/// [`WorkloadSpec::stream`] (lazy) or [`WorkloadSpec::generate`]
/// (materialized) against a cluster shape and seed.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    pub arrivals: ArrivalProcess,
    /// Job runtime, seconds (before queue scaling).
    pub runtime: Dist,
    pub width: WidthMix,
    /// Users request walltime = runtime × this factor (clamped ≥ 1:
    /// users pad, they don't undershoot on purpose).
    pub walltime_factor: Dist,
    pub users: UserMix,
    pub queues: Vec<QueueClass>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec::new()
    }
}

impl WorkloadSpec {
    /// A neutral baseline: Poisson arrivals, log-uniform runtimes,
    /// mostly single-node jobs, one `batch` queue.
    pub fn new() -> Self {
        WorkloadSpec {
            arrivals: ArrivalProcess::poisson(300.0),
            runtime: Dist::LogUniform {
                lo: 60.0,
                hi: 3600.0,
            },
            width: WidthMix {
                full_machine: 0.1,
                nodes: Dist::Constant { value: 1.0 },
                ppn: Dist::Uniform { lo: 1.0, hi: 8.0 },
            },
            walltime_factor: Dist::Constant { value: 2.0 },
            users: UserMix {
                count: 8,
                skew: 0.0,
            },
            queues: vec![QueueClass::new("batch", 1.0, 1.0)],
        }
    }

    /// A teaching-lab mix on a deskside cluster: frequent small jobs,
    /// occasional whole-machine Linpack runs.
    pub fn teaching_lab() -> Self {
        WorkloadSpec::new()
            .arrivals(ArrivalProcess::poisson(120.0))
            .runtime(Dist::LogUniform {
                lo: 30.0,
                hi: 1800.0,
            })
            .width(WidthMix {
                full_machine: 0.1,
                nodes: Dist::Constant { value: 1.0 },
                ppn: Dist::Uniform { lo: 1.0, hi: 2.0 },
            })
            .walltime_factor(Dist::Constant { value: 2.0 })
            .users(UserMix {
                count: 8,
                skew: 0.0,
            })
    }

    /// A research mix: longer jobs, more MPI, a short/long queue split.
    pub fn campus_research() -> Self {
        WorkloadSpec::new()
            .arrivals(ArrivalProcess::poisson(600.0))
            .runtime(Dist::LogUniform {
                lo: 600.0,
                hi: 24.0 * 3600.0,
            })
            .width(WidthMix {
                full_machine: 0.25,
                nodes: Dist::Uniform { lo: 1.0, hi: 4.0 },
                ppn: Dist::Uniform { lo: 1.0, hi: 2.0 },
            })
            .walltime_factor(Dist::Constant { value: 1.5 })
            .users(UserMix {
                count: 20,
                skew: 1.0,
            })
            .queues(vec![
                QueueClass::new("short", 0.6, 0.25),
                QueueClass::new("long", 0.4, 1.0),
            ])
    }

    /// A heavy-tailed production mix: lognormal runtimes with a Pareto
    /// interarrival burst structure and a strong daily rhythm — the
    /// workload that separates backfill policies.
    pub fn heavy_tail() -> Self {
        WorkloadSpec::new()
            .arrivals(
                ArrivalProcess {
                    interarrival: Dist::Pareto {
                        alpha: 2.2,
                        xmin: 50.0,
                    },
                    diurnal: None,
                }
                .with_diurnal(Diurnal::daily(0.6)),
            )
            .runtime(Dist::lognormal_mean_cv(1800.0, 3.0))
            .width(WidthMix {
                full_machine: 0.05,
                nodes: Dist::LogUniform { lo: 1.0, hi: 8.0 },
                ppn: Dist::Uniform { lo: 1.0, hi: 4.0 },
            })
            .walltime_factor(Dist::Uniform { lo: 1.2, hi: 3.0 })
            .users(UserMix {
                count: 40,
                skew: 1.2,
            })
            .queues(vec![
                QueueClass::new("short", 0.5, 0.1),
                QueueClass::new("batch", 0.4, 1.0),
                QueueClass::new("long", 0.1, 4.0),
            ])
    }

    // ----- fluent setters -----

    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    pub fn runtime(mut self, runtime: Dist) -> Self {
        self.runtime = runtime;
        self
    }

    pub fn width(mut self, width: WidthMix) -> Self {
        self.width = width;
        self
    }

    pub fn walltime_factor(mut self, factor: Dist) -> Self {
        self.walltime_factor = factor;
        self
    }

    pub fn users(mut self, users: UserMix) -> Self {
        self.users = users;
        self
    }

    pub fn queues(mut self, queues: Vec<QueueClass>) -> Self {
        self.queues = queues;
        self
    }

    /// Scale the arrival rate by `load` (2.0 = twice the traffic) —
    /// the load-sweep knob. Only meaningful for distributions whose
    /// scale is a parameter; implemented by dividing the interarrival
    /// scale parameters.
    pub fn scaled_load(mut self, load: f64) -> Self {
        assert!(load > 0.0, "load factor must be positive");
        self.arrivals.interarrival = match self.arrivals.interarrival {
            Dist::Constant { value } => Dist::Constant {
                value: value / load,
            },
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: lo / load,
                hi: hi / load,
            },
            Dist::Exponential { mean } => Dist::Exponential { mean: mean / load },
            Dist::Pareto { alpha, xmin } => Dist::Pareto {
                alpha,
                xmin: xmin / load,
            },
            Dist::LogNormal { mu, sigma } => Dist::LogNormal {
                mu: mu - load.ln(),
                sigma,
            },
            Dist::LogUniform { lo, hi } => Dist::LogUniform {
                lo: lo / load,
                hi: hi / load,
            },
        };
        self
    }

    /// The canonical form streams and digests use: queue weights
    /// normalized to sum 1 (zero/negative-weight queues dropped, an
    /// empty list becomes a single `batch` queue), full-machine
    /// probability clamped to `[0,1]`, diurnal amplitude clamped to
    /// `[0, 0.95]`, at least one user.
    pub fn normalized(&self) -> WorkloadSpec {
        let mut spec = self.clone();
        spec.queues.retain(|q| q.weight > 0.0);
        if spec.queues.is_empty() {
            spec.queues = vec![QueueClass::new("batch", 1.0, 1.0)];
        }
        let total: f64 = spec.queues.iter().map(|q| q.weight).sum();
        for q in &mut spec.queues {
            q.weight /= total;
        }
        spec.width.full_machine = spec.width.full_machine.clamp(0.0, 1.0);
        if let Some(d) = &mut spec.arrivals.diurnal {
            d.amplitude = d.amplitude.clamp(0.0, 0.95);
            if d.period_s <= 0.0 {
                spec.arrivals.diurnal = None;
            }
        }
        spec.users.count = spec.users.count.max(1);
        spec.users.skew = spec.users.skew.max(0.0);
        spec
    }

    /// Stable 64-bit digest of the normalized spec — combined with the
    /// seed and cluster shape it names a job stream exactly (the run
    /// identity the experiment harness records).
    pub fn digest(&self) -> u64 {
        let norm = self.normalized();
        let mut h = Fnv64::new();
        norm.arrivals.interarrival.write_digest(&mut h);
        match &norm.arrivals.diurnal {
            Some(d) => {
                h.write_u64(1)
                    .write_f64(d.amplitude)
                    .write_f64(d.period_s)
                    .write_f64(d.phase_s);
            }
            None => {
                h.write_u64(0);
            }
        }
        norm.runtime.write_digest(&mut h);
        h.write_f64(norm.width.full_machine);
        norm.width.nodes.write_digest(&mut h);
        norm.width.ppn.write_digest(&mut h);
        norm.walltime_factor.write_digest(&mut h);
        h.write_u64(norm.users.count as u64)
            .write_f64(norm.users.skew);
        for q in &norm.queues {
            h.write_str(&q.name)
                .write_f64(q.weight)
                .write_f64(q.runtime_scale);
        }
        h.finish()
    }

    /// Lazy, unbounded job stream against a cluster of
    /// `nodes × cores_per_node`, fully determined by `seed`.
    pub fn stream(&self, seed: u64, nodes: u32, cores_per_node: u32) -> JobStream {
        assert!(nodes > 0 && cores_per_node > 0);
        let spec = self.normalized();
        JobStream {
            rng: StdRng::seed_from_u64(seed ^ spec.digest()),
            user_cdf: cumulative(
                &(0..spec.users.count)
                    .map(|i| 1.0 / ((i + 1) as f64).powf(spec.users.skew))
                    .collect::<Vec<_>>(),
            ),
            queue_cdf: cumulative(&spec.queues.iter().map(|q| q.weight).collect::<Vec<_>>()),
            spec,
            t: 0.0,
            i: 0,
            nodes,
            cores_per_node,
        }
    }

    /// Materialize the first `n` jobs of the stream.
    pub fn generate(
        &self,
        seed: u64,
        nodes: u32,
        cores_per_node: u32,
        n: usize,
    ) -> Vec<(f64, JobRequest)> {
        self.stream(seed, nodes, cores_per_node).take(n).collect()
    }
}

fn cumulative(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn pick(cdf: &[f64], u: f64) -> usize {
    cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1)
}

/// The lazy arrival stream a [`WorkloadSpec`] unrolls into. Infinite:
/// take as many jobs as the experiment horizon needs. Every job
/// consumes a fixed number of RNG draws, so streams under different
/// cluster shapes stay aligned.
#[derive(Debug)]
pub struct JobStream {
    spec: WorkloadSpec,
    rng: StdRng,
    user_cdf: Vec<f64>,
    queue_cdf: Vec<f64>,
    t: f64,
    i: u64,
    nodes: u32,
    cores_per_node: u32,
}

impl JobStream {
    /// Jobs yielded so far.
    pub fn emitted(&self) -> u64 {
        self.i
    }
}

impl Iterator for JobStream {
    type Item = (f64, JobRequest);

    fn next(&mut self) -> Option<(f64, JobRequest)> {
        self.t += self.spec.arrivals.next_gap(self.t, &mut self.rng);

        // Fixed draw order: queue, user, width (always all three
        // samples), runtime, walltime factor.
        let qu: f64 = self.rng.gen_range(0.0..1.0);
        let queue = &self.spec.queues[pick(&self.queue_cdf, qu)];
        let uu: f64 = self.rng.gen_range(0.0..1.0);
        let user = pick(&self.user_cdf, uu);

        let full = self.rng.gen_bool(self.spec.width.full_machine);
        let nodes_draw = self.spec.width.nodes.sample(&mut self.rng);
        let ppn_draw = self.spec.width.ppn.sample(&mut self.rng);
        let (nodes, ppn) = if full {
            (self.nodes, self.cores_per_node)
        } else {
            (
                (nodes_draw.round() as u32).clamp(1, self.nodes),
                (ppn_draw.round() as u32).clamp(1, self.cores_per_node),
            )
        };

        let runtime = (self.spec.runtime.sample(&mut self.rng) * queue.runtime_scale).max(1.0);
        let factor = self.spec.walltime_factor.sample(&mut self.rng).max(1.0);
        let walltime = runtime * factor;

        let name = format!("{}-{}", queue.name, self.i);
        let req =
            JobRequest::new(&name, nodes, ppn, walltime, runtime).by(&format!("user{:02}", user));
        self.i += 1;
        Some((self.t, req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_with_seed() {
        let spec = WorkloadSpec::teaching_lab();
        assert_eq!(spec.generate(42, 6, 2, 50), spec.generate(42, 6, 2, 50));
        assert_ne!(spec.generate(1, 6, 2, 50), spec.generate(2, 6, 2, 50));
    }

    #[test]
    fn digest_feeds_the_stream() {
        // Same seed, different spec → different stream.
        let a = WorkloadSpec::teaching_lab();
        let b = WorkloadSpec::teaching_lab().walltime_factor(Dist::Constant { value: 3.0 });
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.generate(7, 6, 2, 20), b.generate(7, 6, 2, 20));
    }

    #[test]
    fn normalization_is_idempotent_and_digest_stable() {
        let raw = WorkloadSpec::new().queues(vec![
            QueueClass::new("a", 3.0, 1.0),
            QueueClass::new("b", 1.0, 2.0),
            QueueClass::new("dead", 0.0, 1.0),
        ]);
        let norm = raw.normalized();
        assert_eq!(norm.normalized(), norm);
        assert_eq!(raw.digest(), norm.digest());
        assert_eq!(norm.queues.len(), 2);
        let total: f64 = norm.queues.iter().map(|q| q.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Proportional weights normalize to the same canonical form.
        let scaled = WorkloadSpec::new().queues(vec![
            QueueClass::new("a", 6.0, 1.0),
            QueueClass::new("b", 2.0, 2.0),
        ]);
        assert_eq!(scaled.digest(), raw.digest());
    }

    #[test]
    fn jobs_fit_cluster_shape() {
        let spec = WorkloadSpec::campus_research();
        for (_, req) in spec.generate(7, 6, 2, 300) {
            assert!((1..=6).contains(&req.nodes));
            assert!((1..=2).contains(&req.ppn));
            assert!(
                req.walltime_s >= req.runtime_s,
                "padding keeps jobs inside walltime"
            );
            assert!(req.runtime_s >= 1.0);
        }
    }

    #[test]
    fn times_monotonic_and_positive() {
        let spec = WorkloadSpec::heavy_tail();
        let jobs = spec.generate(3, 8, 4, 500);
        assert!(jobs[0].0 > 0.0);
        for w in jobs.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn full_machine_fraction_roughly_respected() {
        let spec = WorkloadSpec::teaching_lab();
        let jobs = spec.generate(11, 6, 2, 1000);
        let full = jobs
            .iter()
            .filter(|(_, r)| r.nodes == 6 && r.ppn == 2)
            .count();
        assert!(
            (50..200).contains(&full),
            "expected ~10% full-machine, got {full}/1000"
        );
    }

    #[test]
    fn queue_mix_respected_and_named() {
        let spec = WorkloadSpec::new().queues(vec![
            QueueClass::new("short", 0.8, 0.1),
            QueueClass::new("long", 0.2, 2.0),
        ]);
        let jobs = spec.generate(5, 4, 2, 1000);
        let short = jobs
            .iter()
            .filter(|(_, r)| r.name.starts_with("short-"))
            .count();
        assert!(
            (700..900).contains(&short),
            "expected ~80% short-queue, got {short}/1000"
        );
        assert!(jobs.iter().all(|(_, r)| r.name.contains('-')));
    }

    #[test]
    fn user_skew_concentrates_submissions() {
        let skewed = WorkloadSpec::new().users(UserMix {
            count: 10,
            skew: 2.0,
        });
        let jobs = skewed.generate(9, 4, 2, 1000);
        let top = jobs.iter().filter(|(_, r)| r.user == "user00").count();
        assert!(
            top > 400,
            "zipf(2) should give user00 the majority, got {top}/1000"
        );
    }

    #[test]
    fn diurnal_modulation_shifts_arrivals_toward_peak() {
        let flat = WorkloadSpec::new().arrivals(ArrivalProcess::poisson(600.0));
        let wavy = WorkloadSpec::new()
            .arrivals(ArrivalProcess::poisson(600.0).with_diurnal(Diurnal::daily(0.9)));
        let n = 2000;
        // count jobs landing in the first (rising, fast) half of each day
        let in_peak = |jobs: &[(f64, JobRequest)]| {
            jobs.iter()
                .filter(|(t, _)| (t % 86_400.0) < 43_200.0)
                .count()
        };
        let f = in_peak(&flat.generate(13, 4, 2, n));
        let w = in_peak(&wavy.generate(13, 4, 2, n));
        assert!(
            w > f + n / 20,
            "diurnal peak should attract arrivals: flat={f} wavy={w}"
        );
    }

    #[test]
    fn generated_workload_runs_clean() {
        let jobs = WorkloadSpec::teaching_lab().generate(5, 6, 2, 50);
        let mut sim = crate::ClusterSim::new(6, 2, crate::SchedPolicy::maui_default());
        for (t, req) in jobs {
            sim.run_until(t);
            sim.submit_at(t, req);
        }
        sim.run_to_completion();
        assert_eq!(sim.completed().len(), 50);
    }

    #[test]
    fn scaled_load_speeds_up_arrivals() {
        let base = WorkloadSpec::teaching_lab();
        let hot = base.clone().scaled_load(2.0);
        let t_base = base.generate(21, 6, 2, 500).last().unwrap().0;
        let t_hot = hot.generate(21, 6, 2, 500).last().unwrap().0;
        assert!(
            t_hot < t_base * 0.7,
            "2x load should compress the horizon: {t_hot} vs {t_base}"
        );
    }

    #[test]
    fn stream_is_lazy_and_alignment_fixed() {
        let spec = WorkloadSpec::heavy_tail();
        let mut s = spec.stream(1, 8, 4);
        let first: Vec<_> = s.by_ref().take(10).collect();
        assert_eq!(s.emitted(), 10);
        // Same prefix when taking more.
        let again: Vec<_> = spec.stream(1, 8, 4).take(20).collect();
        assert_eq!(&again[..10], &first[..]);
    }
}
