//! Synthetic workload generation.
//!
//! Produces job streams shaped like the campus-cluster mixes the paper's
//! target sites run: mostly small serial/bioinformatics jobs with
//! occasional full-machine MPI runs. Arrivals are Poisson (exponential
//! inter-arrival); runtimes are log-uniform; requested walltimes
//! over-estimate runtimes by a configurable factor (users pad).

use crate::job::JobRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload shape parameters.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Mean seconds between submissions.
    pub mean_interarrival_s: f64,
    /// Probability a job is a full-machine MPI run.
    pub full_machine_fraction: f64,
    /// Runtime range (log-uniform), seconds.
    pub runtime_range_s: (f64, f64),
    /// Users submit walltime = runtime × this factor (≥ 1).
    pub walltime_padding: f64,
    /// Distinct submitting users.
    pub users: usize,
}

impl WorkloadProfile {
    /// A teaching-lab mix on a deskside cluster: frequent small jobs,
    /// occasional whole-machine Linpack runs.
    pub fn teaching_lab() -> Self {
        WorkloadProfile {
            mean_interarrival_s: 120.0,
            full_machine_fraction: 0.1,
            runtime_range_s: (30.0, 1800.0),
            walltime_padding: 2.0,
            users: 8,
        }
    }

    /// A research mix: longer jobs, more MPI.
    pub fn campus_research() -> Self {
        WorkloadProfile {
            mean_interarrival_s: 600.0,
            full_machine_fraction: 0.25,
            runtime_range_s: (600.0, 24.0 * 3600.0),
            walltime_padding: 1.5,
            users: 20,
        }
    }
}

/// Deterministic (seeded) workload generator.
#[derive(Debug)]
pub struct WorkloadGenerator {
    profile: WorkloadProfile,
    rng: StdRng,
    /// Cluster shape to size jobs against.
    nodes: u32,
    cores_per_node: u32,
}

impl WorkloadGenerator {
    pub fn new(profile: WorkloadProfile, nodes: u32, cores_per_node: u32, seed: u64) -> Self {
        WorkloadGenerator {
            profile,
            rng: StdRng::seed_from_u64(seed),
            nodes,
            cores_per_node,
        }
    }

    /// Generate `n` jobs as `(submit_time, request)` pairs in time order.
    pub fn generate(&mut self, n: usize) -> Vec<(f64, JobRequest)> {
        let mut t = 0.0;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            // exponential inter-arrival
            let u: f64 = self.rng.gen_range(1e-9..1.0);
            t += -self.profile.mean_interarrival_s * u.ln();

            let full = self.rng.gen_bool(self.profile.full_machine_fraction);
            let (nodes, ppn) = if full {
                (self.nodes, self.cores_per_node)
            } else {
                (1, self.rng.gen_range(1..=self.cores_per_node))
            };

            let (lo, hi) = self.profile.runtime_range_s;
            let runtime = lo * (hi / lo).powf(self.rng.gen_range(0.0..1.0));
            let walltime = runtime * self.profile.walltime_padding;
            let user = format!("user{}", self.rng.gen_range(0..self.profile.users));
            out.push((
                t,
                JobRequest::new(&format!("job{i}"), nodes, ppn, walltime, runtime).by(&user),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_with_seed() {
        let mut a = WorkloadGenerator::new(WorkloadProfile::teaching_lab(), 6, 2, 42);
        let mut b = WorkloadGenerator::new(WorkloadProfile::teaching_lab(), 6, 2, 42);
        assert_eq!(a.generate(20), b.generate(20));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadGenerator::new(WorkloadProfile::teaching_lab(), 6, 2, 1);
        let mut b = WorkloadGenerator::new(WorkloadProfile::teaching_lab(), 6, 2, 2);
        assert_ne!(a.generate(20), b.generate(20));
    }

    #[test]
    fn jobs_fit_cluster_shape() {
        let mut g = WorkloadGenerator::new(WorkloadProfile::campus_research(), 6, 2, 7);
        for (_, req) in g.generate(200) {
            assert!(req.nodes <= 6);
            assert!(req.ppn <= 2);
            assert!(
                req.walltime_s >= req.runtime_s,
                "padding keeps jobs inside walltime"
            );
            let (lo, hi) = WorkloadProfile::campus_research().runtime_range_s;
            assert!(req.runtime_s >= lo && req.runtime_s <= hi);
        }
    }

    #[test]
    fn times_monotonic() {
        let mut g = WorkloadGenerator::new(WorkloadProfile::teaching_lab(), 6, 2, 3);
        let jobs = g.generate(100);
        for w in jobs.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn full_machine_fraction_roughly_respected() {
        let mut g = WorkloadGenerator::new(WorkloadProfile::teaching_lab(), 6, 2, 11);
        let jobs = g.generate(1000);
        let full = jobs.iter().filter(|(_, r)| r.nodes == 6).count();
        assert!(
            (50..200).contains(&full),
            "expected ~10% full-machine, got {full}/1000"
        );
    }

    #[test]
    fn generated_workload_runs_clean() {
        let mut g = WorkloadGenerator::new(WorkloadProfile::teaching_lab(), 6, 2, 5);
        let jobs = g.generate(50);
        let mut sim = crate::ClusterSim::new(6, 2, crate::SchedPolicy::maui_default());
        for (t, req) in jobs {
            sim.run_until(t);
            sim.submit_at(t, req);
        }
        sim.run_to_completion();
        assert_eq!(sim.completed().len(), 50);
    }
}
