//! Scheduling policies.
//!
//! * [`SchedPolicy::Fifo`] — strict arrival order; the head of the queue
//!   blocks everything behind it (stock Torque without a scheduler).
//! * [`SchedPolicy::EasyBackfill`] — EASY backfill: the head job gets a
//!   reservation at the earliest time it can run; later jobs may start
//!   now if their walltime ends before that reservation (Maui's and
//!   SLURM's default behavior).
//! * [`SchedPolicy::MauiPriority`] — Maui-style priority ordering
//!   (waiting time minus a fairshare penalty on heavy users) with EASY
//!   backfill on top.

use serde::{Deserialize, Serialize};

/// The scheduling policy a simulator runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// First-in-first-out, head-of-line blocking.
    Fifo,
    /// FIFO order with EASY backfill.
    EasyBackfill,
    /// Priority = wait_seconds × `queue_weight` − user_used_core_seconds ×
    /// `fairshare_weight`, with EASY backfill.
    MauiPriority {
        queue_weight: f64,
        fairshare_weight: f64,
    },
}

impl SchedPolicy {
    /// A Maui configuration close to the shipped default.
    pub fn maui_default() -> Self {
        SchedPolicy::MauiPriority {
            queue_weight: 1.0,
            fairshare_weight: 1e-4,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "FIFO",
            SchedPolicy::EasyBackfill => "EASY backfill",
            SchedPolicy::MauiPriority { .. } => "Maui priority + backfill",
        }
    }

    /// Does this policy backfill?
    pub fn backfills(&self) -> bool {
        !matches!(self, SchedPolicy::Fifo)
    }

    /// Short machine-friendly name, used in sweep variant directories
    /// and CLI grids ([`SchedPolicy::parse`] round-trips it).
    pub fn slug(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::EasyBackfill => "easy",
            SchedPolicy::MauiPriority { .. } => "maui",
        }
    }

    /// Parse the slug spelling (`fifo` / `easy` / `maui`); `maui` gets
    /// the shipped default weights.
    pub fn parse(s: &str) -> Result<SchedPolicy, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fifo" => Ok(SchedPolicy::Fifo),
            "easy" => Ok(SchedPolicy::EasyBackfill),
            "maui" => Ok(SchedPolicy::maui_default()),
            other => Err(format!("unknown policy {other:?} (want fifo/easy/maui)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(SchedPolicy::Fifo.label(), "FIFO");
        assert!(SchedPolicy::maui_default().label().contains("Maui"));
    }

    #[test]
    fn backfill_flags() {
        assert!(!SchedPolicy::Fifo.backfills());
        assert!(SchedPolicy::EasyBackfill.backfills());
        assert!(SchedPolicy::maui_default().backfills());
    }
}
