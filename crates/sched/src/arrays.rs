//! Job arrays (`qsub -t 0-9` / `sbatch --array=0-9`).
//!
//! Parameter sweeps are the bread-and-butter workload of the paper's
//! target users ("workloads requiring fewer than 16 cores"). An array
//! request expands to one job per index, tracked as a group.

use crate::job::{JobId, JobRequest};
use crate::sim::ClusterSim;
use serde::Serialize;

/// A submitted array: the member ids in index order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct JobArray {
    pub base_name: String,
    pub member_ids: Vec<JobId>,
}

impl JobArray {
    pub fn len(&self) -> usize {
        self.member_ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.member_ids.is_empty()
    }

    /// Are all members finished in `sim`?
    pub fn all_finished(&self, sim: &ClusterSim) -> bool {
        self.member_ids
            .iter()
            .all(|id| sim.job(*id).map(|j| j.is_finished()).unwrap_or(false))
    }

    /// (finished, total) progress.
    pub fn progress(&self, sim: &ClusterSim) -> (usize, usize) {
        let done = self
            .member_ids
            .iter()
            .filter(|id| sim.job(**id).map(|j| j.is_finished()).unwrap_or(false))
            .count();
        (done, self.member_ids.len())
    }
}

/// Submit `template` once per index in `indices`, naming each member
/// `name[i]` the way Torque/SLURM display array tasks.
pub fn submit_array(
    sim: &mut ClusterSim,
    template: &JobRequest,
    indices: std::ops::RangeInclusive<u32>,
) -> JobArray {
    let mut member_ids = Vec::new();
    for i in indices {
        let mut req = template.clone();
        req.name = format!("{}[{i}]", template.name);
        member_ids.push(sim.submit(req));
    }
    JobArray {
        base_name: template.name.clone(),
        member_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SchedPolicy;

    #[test]
    fn array_expands_and_completes() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::EasyBackfill);
        let template = JobRequest::new("sweep", 1, 1, 100.0, 50.0);
        let array = submit_array(&mut sim, &template, 0..=9);
        assert_eq!(array.len(), 10);
        assert!(!array.all_finished(&sim));
        sim.run_to_completion();
        assert!(array.all_finished(&sim));
        assert_eq!(array.progress(&sim), (10, 10));
    }

    #[test]
    fn members_named_with_indices() {
        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        let array = submit_array(&mut sim, &JobRequest::new("t", 1, 1, 10.0, 5.0), 3..=5);
        let names: Vec<String> = array
            .member_ids
            .iter()
            .map(|id| sim.job(*id).unwrap().request.name.clone())
            .collect();
        assert_eq!(names, vec!["t[3]", "t[4]", "t[5]"]);
    }

    #[test]
    fn array_members_fill_machine_in_waves() {
        // 10 serial tasks on 2 cores: 5 waves of 50s = 250s makespan
        let mut sim = ClusterSim::new(1, 2, SchedPolicy::Fifo);
        let array = submit_array(&mut sim, &JobRequest::new("w", 1, 1, 60.0, 50.0), 0..=9);
        sim.run_to_completion();
        assert!(array.all_finished(&sim));
        assert!((sim.now() - 250.0).abs() < 1e-9, "makespan {}", sim.now());
    }

    #[test]
    fn partial_progress_visible() {
        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        let array = submit_array(&mut sim, &JobRequest::new("p", 1, 1, 20.0, 10.0), 0..=2);
        sim.run_until(15.0); // first member done, second running
        assert_eq!(array.progress(&sim), (1, 3));
    }
}
