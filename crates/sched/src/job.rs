//! Jobs and their lifecycle.

use serde::{Deserialize, Serialize};

/// Opaque job identifier.
pub type JobId = u64;

/// What a user asks for at submit time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    pub name: String,
    /// Number of nodes requested.
    pub nodes: u32,
    /// Processors per node.
    pub ppn: u32,
    /// Requested walltime (seconds) — the scheduler's planning horizon.
    pub walltime_s: f64,
    /// Actual runtime (seconds) — what the job really does. Must be
    /// <= walltime or the job is killed at the limit.
    pub runtime_s: f64,
    pub user: String,
}

impl JobRequest {
    pub fn new(name: &str, nodes: u32, ppn: u32, walltime_s: f64, runtime_s: f64) -> Self {
        JobRequest {
            name: name.to_string(),
            nodes,
            ppn,
            walltime_s,
            runtime_s,
            user: "student".to_string(),
        }
    }

    pub fn by(mut self, user: &str) -> Self {
        self.user = user.to_string();
        self
    }

    /// Total cores this job occupies.
    pub fn cores(&self) -> u32 {
        self.nodes * self.ppn
    }

    /// Runtime the cluster will actually charge: capped at walltime
    /// (overrunning jobs are killed at the limit).
    pub fn effective_runtime(&self) -> f64 {
        self.runtime_s.min(self.walltime_s)
    }
}

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    Queued,
    Running {
        start_s: f64,
    },
    Completed {
        start_s: f64,
        end_s: f64,
    },
    /// Killed at the walltime limit.
    TimedOut {
        start_s: f64,
        end_s: f64,
    },
    Cancelled,
}

/// A job in the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    pub id: JobId,
    pub request: JobRequest,
    pub submit_s: f64,
    pub state: JobState,
    /// Node indices the job is (or was) placed on.
    pub placement: Vec<usize>,
}

impl Job {
    /// Wait time (queue → start); `None` while queued.
    pub fn wait_s(&self) -> Option<f64> {
        match self.state {
            JobState::Running { start_s }
            | JobState::Completed { start_s, .. }
            | JobState::TimedOut { start_s, .. } => Some(start_s - self.submit_s),
            _ => None,
        }
    }

    /// Turnaround (submit → end) for finished jobs.
    pub fn turnaround_s(&self) -> Option<f64> {
        match self.state {
            JobState::Completed { end_s, .. } | JobState::TimedOut { end_s, .. } => {
                Some(end_s - self.submit_s)
            }
            _ => None,
        }
    }

    /// Bounded slowdown with a 10 s floor (standard metric).
    pub fn bounded_slowdown(&self) -> Option<f64> {
        let turnaround = self.turnaround_s()?;
        let run = self.request.effective_runtime().max(10.0);
        Some((turnaround / run).max(1.0))
    }

    pub fn is_finished(&self) -> bool {
        matches!(
            self.state,
            JobState::Completed { .. } | JobState::TimedOut { .. } | JobState::Cancelled
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_and_effective_runtime() {
        let r = JobRequest::new("j", 4, 2, 100.0, 150.0);
        assert_eq!(r.cores(), 8);
        assert_eq!(r.effective_runtime(), 100.0, "killed at walltime");
        let r2 = JobRequest::new("j", 1, 1, 100.0, 50.0);
        assert_eq!(r2.effective_runtime(), 50.0);
    }

    #[test]
    fn wait_and_turnaround() {
        let mut j = Job {
            id: 1,
            request: JobRequest::new("j", 1, 1, 100.0, 50.0),
            submit_s: 10.0,
            state: JobState::Queued,
            placement: vec![],
        };
        assert!(j.wait_s().is_none());
        assert!(j.turnaround_s().is_none());
        j.state = JobState::Running { start_s: 25.0 };
        assert_eq!(j.wait_s(), Some(15.0));
        j.state = JobState::Completed {
            start_s: 25.0,
            end_s: 75.0,
        };
        assert_eq!(j.turnaround_s(), Some(65.0));
        assert!(j.is_finished());
    }

    #[test]
    fn bounded_slowdown_floors() {
        let j = Job {
            id: 1,
            request: JobRequest::new("quick", 1, 1, 5.0, 1.0),
            submit_s: 0.0,
            state: JobState::Completed {
                start_s: 0.0,
                end_s: 1.0,
            },
            placement: vec![0],
        };
        // tiny jobs use the 10s floor and clamp at 1.0
        assert_eq!(j.bounded_slowdown(), Some(1.0));
    }

    #[test]
    fn user_tagging() {
        let r = JobRequest::new("j", 1, 1, 1.0, 1.0).by("alfredm");
        assert_eq!(r.user, "alfredm");
    }
}
