//! Workload-level metrics over a finished simulation.

use crate::sim::ClusterSim;
use serde::{Deserialize, Serialize};

/// A job is "starved" when it waited in the queue longer than this
/// (4 hours) — the threshold the starvation counter and the experiment
/// harness's CSV column use.
pub const STARVATION_WAIT_S: f64 = 4.0 * 3600.0;

/// Summary statistics of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimMetrics {
    pub policy: String,
    pub jobs_finished: usize,
    pub jobs_timed_out: usize,
    pub makespan_s: f64,
    /// Core-seconds used / (total cores × makespan).
    pub utilization: f64,
    pub mean_wait_s: f64,
    /// 95th-percentile job queue wait.
    pub p95_wait_s: f64,
    pub max_wait_s: f64,
    pub mean_bounded_slowdown: f64,
    /// Jobs that waited longer than [`STARVATION_WAIT_S`].
    pub starved_jobs: usize,
}

impl SimMetrics {
    /// Compute metrics from a (fully or partially) run simulator.
    pub fn from_sim(sim: &ClusterSim) -> Self {
        let finished: Vec<_> = sim.completed();
        let mut waits: Vec<f64> = finished.iter().filter_map(|j| j.wait_s()).collect();
        waits.sort_by(f64::total_cmp);
        let slowdowns: Vec<f64> = finished
            .iter()
            .filter_map(|j| j.bounded_slowdown())
            .collect();
        let makespan = sim.now();
        let timed_out = finished
            .iter()
            .filter(|j| matches!(j.state, crate::job::JobState::TimedOut { .. }))
            .count();
        SimMetrics {
            policy: sim.policy().label().to_string(),
            jobs_finished: finished.len(),
            jobs_timed_out: timed_out,
            makespan_s: makespan,
            utilization: if makespan > 0.0 {
                sim.used_core_seconds() / (sim.total_cores() as f64 * makespan)
            } else {
                0.0
            },
            mean_wait_s: mean(&waits),
            p95_wait_s: percentile(&waits, 0.95),
            max_wait_s: waits.last().copied().unwrap_or(0.0),
            mean_bounded_slowdown: mean(&slowdowns),
            starved_jobs: waits.iter().filter(|&&w| w > STARVATION_WAIT_S).count(),
        }
    }

    /// Export the workload summary into a [`xcbc_sim::MetricRegistry`]
    /// alongside the gmond/gmetad node metrics, labelled by scheduling
    /// policy.
    pub fn register_into(&self, registry: &mut xcbc_sim::MetricRegistry) {
        let labels: &[(&str, &str)] = &[("policy", &self.policy)];
        registry.set_counter(
            "xcbc_sched_jobs_finished_total",
            "Jobs that ran to completion or timeout",
            labels,
            self.jobs_finished as u64,
        );
        registry.set_counter(
            "xcbc_sched_jobs_timed_out_total",
            "Jobs killed at their walltime limit",
            labels,
            self.jobs_timed_out as u64,
        );
        registry.set_gauge(
            "xcbc_sched_makespan_seconds",
            "Simulated time at which the workload drained",
            labels,
            self.makespan_s,
        );
        registry.set_gauge(
            "xcbc_sched_utilization_ratio",
            "Core-seconds used over cores times makespan",
            labels,
            self.utilization,
        );
        registry.set_gauge(
            "xcbc_sched_wait_seconds_mean",
            "Mean job queue wait",
            labels,
            self.mean_wait_s,
        );
        registry.set_gauge(
            "xcbc_sched_wait_seconds_max",
            "Worst job queue wait",
            labels,
            self.max_wait_s,
        );
        registry.set_gauge(
            "xcbc_sched_wait_seconds_p95",
            "95th-percentile job queue wait",
            labels,
            self.p95_wait_s,
        );
        registry.set_counter(
            "xcbc_sched_jobs_starved_total",
            "Jobs that waited longer than the starvation threshold",
            labels,
            self.starved_jobs as u64,
        );
        registry.set_gauge(
            "xcbc_sched_bounded_slowdown_mean",
            "Mean bounded slowdown over finished jobs",
            labels,
            self.mean_bounded_slowdown,
        );
    }

    /// One-line rendering for bench tables.
    pub fn render_row(&self) -> String {
        format!(
            "{:<26} jobs={:<4} util={:>5.1}% wait(mean)={:>8.1}s wait(max)={:>8.1}s slowdown={:>6.2}",
            self.policy,
            self.jobs_finished,
            self.utilization * 100.0,
            self.mean_wait_s,
            self.max_wait_s,
            self.mean_bounded_slowdown
        )
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobRequest;
    use crate::policy::SchedPolicy;

    #[test]
    fn metrics_of_simple_run() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::Fifo);
        sim.submit_at(0.0, JobRequest::new("a", 2, 2, 100.0, 100.0));
        sim.submit_at(0.0, JobRequest::new("b", 2, 2, 100.0, 100.0));
        sim.run_to_completion();
        let m = SimMetrics::from_sim(&sim);
        assert_eq!(m.jobs_finished, 2);
        assert_eq!(m.jobs_timed_out, 0);
        assert_eq!(m.makespan_s, 200.0);
        assert!(
            (m.utilization - 1.0).abs() < 1e-9,
            "back-to-back full-machine jobs: {m:?}"
        );
        assert_eq!(m.mean_wait_s, 50.0);
        assert_eq!(m.max_wait_s, 100.0);
        assert!(m.render_row().contains("FIFO"));
    }

    #[test]
    fn empty_sim_metrics() {
        let sim = ClusterSim::new(2, 2, SchedPolicy::Fifo);
        let m = SimMetrics::from_sim(&sim);
        assert_eq!(m.jobs_finished, 0);
        assert_eq!(m.utilization, 0.0);
        assert_eq!(m.mean_wait_s, 0.0);
    }

    #[test]
    fn timeout_counted() {
        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        sim.submit_at(0.0, JobRequest::new("over", 1, 1, 10.0, 100.0));
        sim.run_to_completion();
        let m = SimMetrics::from_sim(&sim);
        assert_eq!(m.jobs_timed_out, 1);
    }
}
