//! HTCondor-style cycle scavenging (the `htcondor` roll of Table 1).
//!
//! Condor's niche on a campus cluster is opportunistic work: jobs run on
//! cores the batch system leaves idle and are *vacated* (preempted and
//! requeued) the moment the owner wants the cores back. We model a
//! condor pool layered over a core budget with vacate-and-requeue
//! semantics and goodput/badput accounting.

use serde::Serialize;

/// One opportunistic job.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CondorJob {
    pub id: u64,
    pub name: String,
    /// Total compute seconds of work.
    pub work_s: f64,
    /// Work completed so far (survives vacation only with checkpointing).
    pub done_s: f64,
    pub checkpointable: bool,
    pub state: CondorState,
    /// Times vacated.
    pub vacations: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CondorState {
    Idle,
    Running,
    Completed,
}

/// The pool: a core budget shared with (and yielded to) the batch system.
#[derive(Debug)]
pub struct CondorPool {
    total_cores: u32,
    /// Cores currently claimed by the batch system (priority owner).
    owner_claimed: u32,
    jobs: Vec<CondorJob>,
    next_id: u64,
    time_s: f64,
    /// Seconds of useful (kept) work delivered.
    pub goodput_s: f64,
    /// Seconds of work lost to non-checkpointed vacations.
    pub badput_s: f64,
}

impl CondorPool {
    pub fn new(total_cores: u32) -> Self {
        CondorPool {
            total_cores,
            owner_claimed: 0,
            jobs: Vec::new(),
            next_id: 0,
            time_s: 0.0,
            goodput_s: 0.0,
            badput_s: 0.0,
        }
    }

    /// `condor_submit`.
    pub fn submit(&mut self, name: &str, work_s: f64, checkpointable: bool) -> u64 {
        self.next_id += 1;
        self.jobs.push(CondorJob {
            id: self.next_id,
            name: name.to_string(),
            work_s,
            done_s: 0.0,
            checkpointable,
            state: CondorState::Idle,
            vacations: 0,
        });
        self.next_id
    }

    pub fn job(&self, id: u64) -> Option<&CondorJob> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Cores available to condor right now.
    pub fn scavengeable_cores(&self) -> u32 {
        self.total_cores - self.owner_claimed
    }

    fn running(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.state == CondorState::Running)
            .count()
    }

    /// The owner (batch system) claims `cores`; condor vacates enough
    /// running jobs to free them. Non-checkpointable jobs lose their
    /// progress (badput).
    pub fn owner_claims(&mut self, cores: u32) {
        self.owner_claimed = (self.owner_claimed + cores).min(self.total_cores);
        let allowed = self.scavengeable_cores() as usize;
        let mut running: Vec<usize> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.state == CondorState::Running)
            .map(|(i, _)| i)
            .collect();
        while running.len() > allowed {
            let idx = running.pop().expect("nonempty");
            let job = &mut self.jobs[idx];
            job.state = CondorState::Idle;
            job.vacations += 1;
            if !job.checkpointable {
                // the completed fraction is lost: move it from goodput to
                // badput so the two always partition delivered core-time
                self.badput_s += job.done_s;
                self.goodput_s -= job.done_s;
                job.done_s = 0.0;
            }
        }
    }

    /// The owner releases `cores`.
    pub fn owner_releases(&mut self, cores: u32) {
        self.owner_claimed = self.owner_claimed.saturating_sub(cores);
    }

    /// Start idle jobs onto free cores (one core each).
    fn activate(&mut self) {
        let budget = self.scavengeable_cores() as usize;
        let mut slots = budget.saturating_sub(self.running());
        for job in &mut self.jobs {
            if slots == 0 {
                break;
            }
            if job.state == CondorState::Idle {
                job.state = CondorState::Running;
                slots -= 1;
            }
        }
    }

    /// Advance time by `dt` seconds: idle jobs start onto free cores (one
    /// core each), running jobs progress, and as jobs complete the next
    /// wave starts within the same interval.
    pub fn advance(&mut self, dt: f64) {
        assert!(dt >= 0.0);
        let mut remaining = dt;
        while remaining > 0.0 {
            self.activate();
            // time to the next completion among running jobs
            let next_done = self
                .jobs
                .iter()
                .filter(|j| j.state == CondorState::Running)
                .map(|j| j.work_s - j.done_s)
                .fold(f64::INFINITY, f64::min);
            if !next_done.is_finite() {
                // nothing runnable: idle out the remainder
                break;
            }
            let step = remaining.min(next_done.max(0.0));
            for job in &mut self.jobs {
                if job.state == CondorState::Running {
                    job.done_s += step;
                    self.goodput_s += step;
                    if job.done_s >= job.work_s - 1e-12 {
                        job.done_s = job.work_s;
                        job.state = CondorState::Completed;
                    }
                }
            }
            remaining -= step;
        }
        self.time_s += dt;
    }

    pub fn completed(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.state == CondorState::Completed)
            .count()
    }

    pub fn now(&self) -> f64 {
        self.time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scavenges_idle_cores() {
        let mut pool = CondorPool::new(4);
        for i in 0..4 {
            pool.submit(&format!("sweep{i}"), 100.0, true);
        }
        pool.advance(100.0);
        assert_eq!(pool.completed(), 4);
        assert_eq!(pool.goodput_s, 400.0);
        assert_eq!(pool.badput_s, 0.0);
    }

    #[test]
    fn owner_claim_vacates_jobs() {
        let mut pool = CondorPool::new(4);
        for i in 0..4 {
            pool.submit(&format!("j{i}"), 100.0, true);
        }
        pool.advance(50.0); // all half done
        pool.owner_claims(3); // batch job takes 3 cores
        assert_eq!(pool.scavengeable_cores(), 1);
        pool.advance(50.0);
        // only one job could keep running
        assert_eq!(pool.completed(), 1);
        let vacated = pool.jobs.iter().filter(|j| j.vacations > 0).count();
        assert_eq!(vacated, 3);
    }

    #[test]
    fn checkpointing_preserves_progress() {
        let mut pool = CondorPool::new(1);
        let ck = pool.submit("resumable", 100.0, true);
        pool.advance(60.0);
        pool.owner_claims(1);
        pool.advance(10.0); // nothing runs
        assert_eq!(pool.job(ck).unwrap().done_s, 60.0, "progress kept");
        pool.owner_releases(1);
        pool.advance(40.0);
        assert_eq!(pool.job(ck).unwrap().state, CondorState::Completed);
        assert_eq!(pool.badput_s, 0.0);
        // total goodput equals the work, despite the vacation
        assert_eq!(pool.goodput_s, 100.0);
    }

    #[test]
    fn non_checkpointable_loses_work() {
        let mut pool = CondorPool::new(1);
        let id = pool.submit("fragile", 100.0, false);
        pool.advance(60.0);
        pool.owner_claims(1);
        assert_eq!(pool.badput_s, 60.0);
        assert_eq!(pool.job(id).unwrap().done_s, 0.0, "restarts from scratch");
        pool.owner_releases(1);
        pool.advance(100.0);
        assert_eq!(pool.job(id).unwrap().state, CondorState::Completed);
    }

    #[test]
    fn more_jobs_than_cores_run_in_waves() {
        let mut pool = CondorPool::new(2);
        for i in 0..6 {
            pool.submit(&format!("w{i}"), 10.0, true);
        }
        pool.advance(10.0);
        assert_eq!(pool.completed(), 2);
        pool.advance(10.0);
        assert_eq!(pool.completed(), 4);
        pool.advance(10.0);
        assert_eq!(pool.completed(), 6);
    }

    #[test]
    fn owner_claim_clamped() {
        let mut pool = CondorPool::new(2);
        pool.owner_claims(99);
        assert_eq!(pool.scavengeable_cores(), 0);
        pool.owner_releases(99);
        assert_eq!(pool.scavengeable_cores(), 2);
    }
}
