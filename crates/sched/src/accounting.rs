//! Usage accounting (`qacct`/`sreport` style).
//!
//! Campus clusters justify their budgets with usage reports; the
//! fairshare scheduler needs per-user history. This module summarizes a
//! finished simulation into per-user and per-job-class reports.

use crate::job::JobState;
use crate::sim::ClusterSim;
use serde::Serialize;
use std::collections::BTreeMap;

/// One user's row in the usage report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct UserUsage {
    pub user: String,
    pub jobs: usize,
    pub core_seconds: f64,
    pub mean_wait_s: f64,
    /// Share of the cluster's total delivered core-seconds.
    pub share: f64,
}

/// The full report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct UsageReport {
    pub rows: Vec<UserUsage>,
    pub total_core_seconds: f64,
    /// Jobs that hit their walltime limit (lost work).
    pub timed_out_jobs: usize,
}

/// Build the report from a simulator.
pub fn usage_report(sim: &ClusterSim) -> UsageReport {
    struct Acc {
        jobs: usize,
        core_seconds: f64,
        waits: Vec<f64>,
    }
    let mut per_user: BTreeMap<String, Acc> = BTreeMap::new();
    let mut timed_out = 0;
    for job in sim.jobs() {
        let (start, end) = match job.state {
            JobState::Completed { start_s, end_s } => (start_s, end_s),
            JobState::TimedOut { start_s, end_s } => {
                timed_out += 1;
                (start_s, end_s)
            }
            _ => continue,
        };
        let acc = per_user.entry(job.request.user.clone()).or_insert(Acc {
            jobs: 0,
            core_seconds: 0.0,
            waits: Vec::new(),
        });
        acc.jobs += 1;
        acc.core_seconds += job.request.cores() as f64 * (end - start);
        if let Some(w) = job.wait_s() {
            acc.waits.push(w);
        }
    }
    let total: f64 = per_user.values().map(|a| a.core_seconds).sum();
    let rows = per_user
        .into_iter()
        .map(|(user, acc)| UserUsage {
            user,
            jobs: acc.jobs,
            mean_wait_s: if acc.waits.is_empty() {
                0.0
            } else {
                acc.waits.iter().sum::<f64>() / acc.waits.len() as f64
            },
            share: if total > 0.0 {
                acc.core_seconds / total
            } else {
                0.0
            },
            core_seconds: acc.core_seconds,
        })
        .collect();
    UsageReport {
        rows,
        total_core_seconds: total,
        timed_out_jobs: timed_out,
    }
}

impl UsageReport {
    /// Render like `sreport cluster UserUtilizationByAccount`.
    pub fn render(&self) -> String {
        let mut out = String::from("User        Jobs  Core-seconds      Share  MeanWait\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:<11} {:>4} {:>13.0} {:>9.1}% {:>8.1}s\n",
                r.user,
                r.jobs,
                r.core_seconds,
                r.share * 100.0,
                r.mean_wait_s
            ));
        }
        out.push_str(&format!(
            "TOTAL            {:>14.0} core-seconds, {} timed-out job(s)\n",
            self.total_core_seconds, self.timed_out_jobs
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobRequest;
    use crate::policy::SchedPolicy;

    #[test]
    fn report_aggregates_per_user() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::EasyBackfill);
        sim.submit_at(0.0, JobRequest::new("a1", 1, 2, 100.0, 100.0).by("alice"));
        sim.submit_at(0.0, JobRequest::new("a2", 1, 2, 50.0, 50.0).by("alice"));
        sim.submit_at(0.0, JobRequest::new("b1", 1, 1, 200.0, 300.0).by("bob")); // times out
        sim.run_to_completion();
        let report = usage_report(&sim);
        assert_eq!(report.rows.len(), 2);
        let alice = report.rows.iter().find(|r| r.user == "alice").unwrap();
        assert_eq!(alice.jobs, 2);
        assert_eq!(alice.core_seconds, 2.0 * 100.0 + 2.0 * 50.0);
        let bob = report.rows.iter().find(|r| r.user == "bob").unwrap();
        assert_eq!(bob.core_seconds, 200.0, "charged to the walltime kill");
        assert_eq!(report.timed_out_jobs, 1);
        let share_sum: f64 = report.rows.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accounting_matches_sim_counter() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::Fifo);
        for i in 0..10 {
            sim.submit_at(
                i as f64,
                JobRequest::new(&format!("j{i}"), 1, 1, 60.0, 30.0),
            );
        }
        sim.run_to_completion();
        let report = usage_report(&sim);
        assert!((report.total_core_seconds - sim.used_core_seconds()).abs() < 1e-9);
    }

    #[test]
    fn empty_sim_report() {
        let sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        let report = usage_report(&sim);
        assert!(report.rows.is_empty());
        assert_eq!(report.total_core_seconds, 0.0);
        assert!(report.render().contains("TOTAL"));
    }

    #[test]
    fn render_has_rows() {
        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        sim.submit_at(0.0, JobRequest::new("x", 1, 1, 10.0, 5.0).by("carol"));
        sim.run_to_completion();
        let text = usage_report(&sim).render();
        assert!(text.contains("carol"));
        assert!(text.contains("100.0%"));
    }
}
