//! The `xcbc exp` sweep harness: multi-seed × multi-parameter grids.
//!
//! An [`ExpGrid`] is the typed description of one experiment — a base
//! [`WorkloadSpec`] crossed with scheduling policies, RM frontends,
//! and load scales, replicated over seeds. [`run_grid`] executes every
//! point on a worker pool; results are slotted by run index, so the
//! output is byte-identical at any worker count. Rendering helpers
//! produce the per-run JSONL lines and the aggregated CSV the
//! `results/exp-NNN/var-*` layout stores; all floats are printed with
//! fixed precision so re-runs diff clean.

use crate::dist::Fnv64;
use crate::metrics::SimMetrics;
use crate::policy::SchedPolicy;
use crate::rm::RmKind;
use crate::workload::WorkloadSpec;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One experiment: a workload crossed with policy/frontend/load axes,
/// replicated over seeds. Normalized and digestable like the workload
/// spec it contains.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpGrid {
    /// Experiment name (slugged into the layout).
    pub name: String,
    /// The base workload; each grid point scales its arrival rate.
    pub spec: WorkloadSpec,
    pub policies: Vec<SchedPolicy>,
    pub rms: Vec<RmKind>,
    /// Arrival-rate multipliers (1.0 = the spec as written).
    pub loads: Vec<f64>,
    pub seeds: Vec<u64>,
    /// Jobs submitted per run (events ≈ 3× this).
    pub jobs_per_run: usize,
    pub nodes: usize,
    pub cores_per_node: u32,
}

impl Default for ExpGrid {
    fn default() -> Self {
        ExpGrid::new("exp")
    }
}

impl ExpGrid {
    /// A small head-to-head default: the teaching-lab workload under
    /// every policy on Torque, two load points, two seeds.
    pub fn new(name: &str) -> Self {
        ExpGrid {
            name: name.to_string(),
            spec: WorkloadSpec::teaching_lab(),
            policies: vec![
                SchedPolicy::Fifo,
                SchedPolicy::EasyBackfill,
                SchedPolicy::maui_default(),
            ],
            rms: vec![RmKind::Torque],
            loads: vec![1.0, 2.0],
            seeds: vec![0, 1],
            jobs_per_run: 2000,
            nodes: 8,
            cores_per_node: 4,
        }
    }

    // ----- fluent setters -----

    pub fn spec(mut self, spec: WorkloadSpec) -> Self {
        self.spec = spec;
        self
    }

    pub fn policies(mut self, policies: Vec<SchedPolicy>) -> Self {
        self.policies = policies;
        self
    }

    pub fn rms(mut self, rms: Vec<RmKind>) -> Self {
        self.rms = rms;
        self
    }

    pub fn loads(mut self, loads: Vec<f64>) -> Self {
        self.loads = loads;
        self
    }

    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    pub fn jobs_per_run(mut self, jobs: usize) -> Self {
        self.jobs_per_run = jobs;
        self
    }

    pub fn cluster(mut self, nodes: usize, cores_per_node: u32) -> Self {
        self.nodes = nodes;
        self.cores_per_node = cores_per_node;
        self
    }

    /// Canonical form: axes deduplicated (first occurrence wins, order
    /// preserved), empty axes restored to their defaults, the name
    /// slugged to `[a-z0-9-]`, the workload spec normalized, at least
    /// one job per run and one node.
    pub fn normalized(&self) -> ExpGrid {
        let mut grid = self.clone();
        grid.name = slug(&grid.name);
        if grid.name.is_empty() {
            grid.name = "exp".to_string();
        }
        grid.spec = grid.spec.normalized();
        dedup_by_key(&mut grid.policies, |p| format!("{p:?}"));
        dedup_by_key(&mut grid.rms, |r| r.label().to_string());
        grid.loads.retain(|&l| l.is_finite() && l > 0.0);
        dedup_by_key(&mut grid.loads, |l| l.to_bits().to_string());
        dedup_by_key(&mut grid.seeds, |s| s.to_string());
        if grid.policies.is_empty() {
            grid.policies = vec![SchedPolicy::maui_default()];
        }
        if grid.rms.is_empty() {
            grid.rms = vec![RmKind::Torque];
        }
        if grid.loads.is_empty() {
            grid.loads = vec![1.0];
        }
        if grid.seeds.is_empty() {
            grid.seeds = vec![0];
        }
        grid.jobs_per_run = grid.jobs_per_run.max(1);
        grid.nodes = grid.nodes.max(1);
        grid.cores_per_node = grid.cores_per_node.max(1);
        grid
    }

    /// Stable 64-bit digest of the normalized grid — the experiment's
    /// identity, recorded in every output artifact.
    pub fn digest(&self) -> u64 {
        let g = self.normalized();
        let mut h = Fnv64::new();
        h.write_str(&g.name).write_u64(g.spec.digest());
        for p in &g.policies {
            match *p {
                SchedPolicy::Fifo => h.write_u64(1),
                SchedPolicy::EasyBackfill => h.write_u64(2),
                SchedPolicy::MauiPriority {
                    queue_weight,
                    fairshare_weight,
                } => h
                    .write_u64(3)
                    .write_f64(queue_weight)
                    .write_f64(fairshare_weight),
            };
        }
        for r in &g.rms {
            h.write_str(r.label());
        }
        for l in &g.loads {
            h.write_f64(*l);
        }
        for s in &g.seeds {
            h.write_u64(*s);
        }
        h.write_u64(g.jobs_per_run as u64)
            .write_u64(g.nodes as u64)
            .write_u64(g.cores_per_node as u64);
        h.finish()
    }

    /// Every grid point, in canonical order: variants (rm × policy ×
    /// load, in axis order) each replicated over all seeds.
    pub fn points(&self) -> Vec<ExpPoint> {
        let g = self.normalized();
        let mut points = Vec::new();
        let mut variant = 0;
        for rm in &g.rms {
            for policy in &g.policies {
                for load in &g.loads {
                    for seed in &g.seeds {
                        points.push(ExpPoint {
                            variant,
                            rm: *rm,
                            policy: *policy,
                            load: *load,
                            seed: *seed,
                        });
                    }
                    variant += 1;
                }
            }
        }
        points
    }

    /// Total runs in the grid.
    pub fn run_count(&self) -> usize {
        let g = self.normalized();
        g.rms.len() * g.policies.len() * g.loads.len() * g.seeds.len()
    }

    /// Human-readable grid description (stored as `grid.txt` in the
    /// experiment directory).
    pub fn render(&self) -> String {
        let g = self.normalized();
        let mut out = String::new();
        out.push_str(&format!("experiment: {}\n", g.name));
        out.push_str(&format!("digest: {:016x}\n", g.digest()));
        out.push_str(&format!(
            "cluster: {} nodes x {} cores\n",
            g.nodes, g.cores_per_node
        ));
        out.push_str(&format!("jobs/run: {}\n", g.jobs_per_run));
        out.push_str(&format!(
            "workload: interarrival={} runtime={} digest={:016x}\n",
            g.spec.arrivals.interarrival,
            g.spec.runtime,
            g.spec.digest()
        ));
        out.push_str(&format!(
            "rms: {}\n",
            g.rms
                .iter()
                .map(|r| r.label())
                .collect::<Vec<_>>()
                .join(",")
        ));
        out.push_str(&format!(
            "policies: {}\n",
            g.policies
                .iter()
                .map(|p| p.slug())
                .collect::<Vec<_>>()
                .join(",")
        ));
        out.push_str(&format!(
            "loads: {}\n",
            g.loads
                .iter()
                .map(|l| format!("{l}"))
                .collect::<Vec<_>>()
                .join(",")
        ));
        out.push_str(&format!(
            "seeds: {}\n",
            g.seeds
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
        out
    }
}

fn dedup_by_key<T, K: std::cmp::Eq + std::hash::Hash>(xs: &mut Vec<T>, key: impl Fn(&T) -> K) {
    let mut seen = std::collections::HashSet::new();
    xs.retain(|x| seen.insert(key(x)));
}

/// Lowercase, alphanumerics and dashes only.
fn slug(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        let c = c.to_ascii_lowercase();
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else if !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    out.trim_end_matches('-').to_string()
}

/// One grid point: a variant (rm × policy × load) at one seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpPoint {
    /// Index of this point's variant in canonical order.
    pub variant: usize,
    pub rm: RmKind,
    pub policy: SchedPolicy,
    pub load: f64,
    pub seed: u64,
}

impl ExpPoint {
    /// The variant directory name: `var-<rm>-<policy>-load<load>`.
    pub fn variant_label(&self) -> String {
        format!(
            "var-{}-{}-load{}",
            self.rm.label(),
            self.policy.slug(),
            fmt_load(self.load)
        )
    }
}

fn fmt_load(load: f64) -> String {
    // 1.0 → "1", 1.5 → "1.5", path-safe
    let s = format!("{load}");
    s.replace('.', "p").trim_end_matches("p0").to_string()
}

/// One finished run: the point plus its metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    pub point: ExpPoint,
    pub jobs: usize,
    /// Simulator events processed during the run.
    pub events: u64,
    pub metrics: SimMetrics,
}

impl RunResult {
    /// The per-run JSONL line (fixed key order, fixed float precision
    /// — byte-identical across re-runs and worker counts).
    pub fn jsonl(&self, grid_digest: u64) -> String {
        format!(
            concat!(
                "{{\"exp\":\"{:016x}\",\"variant\":\"{}\",\"rm\":\"{}\",\"policy\":\"{}\",",
                "\"load\":{},\"seed\":{},\"jobs\":{},\"events\":{},\"makespan_s\":{:.3},",
                "\"utilization\":{:.6},\"mean_wait_s\":{:.3},\"p95_wait_s\":{:.3},",
                "\"max_wait_s\":{:.3},\"mean_bounded_slowdown\":{:.4},\"starved_jobs\":{},",
                "\"jobs_timed_out\":{}}}"
            ),
            grid_digest,
            self.point.variant_label(),
            self.point.rm.label(),
            self.point.policy.slug(),
            self.point.load,
            self.point.seed,
            self.jobs,
            self.events,
            self.metrics.makespan_s,
            self.metrics.utilization,
            self.metrics.mean_wait_s,
            self.metrics.p95_wait_s,
            self.metrics.max_wait_s,
            self.metrics.mean_bounded_slowdown,
            self.metrics.starved_jobs,
            self.metrics.jobs_timed_out,
        )
    }
}

/// Execute one grid point. Tracing is off: a million-event run must
/// not pay for per-event strings.
pub fn run_point(grid: &ExpGrid, point: &ExpPoint) -> RunResult {
    let g = grid.normalized();
    let spec = g.spec.clone().scaled_load(point.load);
    let mut rm = point.rm.build(g.nodes, g.cores_per_node, point.policy);
    rm.sim_mut().set_tracing(false);
    let stream = spec.stream(point.seed, g.nodes as u32, g.cores_per_node);
    for (t, req) in stream.take(g.jobs_per_run) {
        rm.advance_to(t);
        rm.submit(req);
    }
    rm.drain();
    RunResult {
        point: *point,
        jobs: g.jobs_per_run,
        events: rm.sim().events_processed(),
        metrics: rm.metrics(),
    }
}

/// A finished sweep: every grid point's result, in canonical order.
#[derive(Debug, Clone)]
pub struct ExpReport {
    pub grid: ExpGrid,
    pub digest: u64,
    pub runs: Vec<RunResult>,
}

impl ExpReport {
    /// Total simulator events across the sweep.
    pub fn total_events(&self) -> u64 {
        self.runs.iter().map(|r| r.events).sum()
    }

    /// Variant labels in canonical order (deduplicated).
    pub fn variant_labels(&self) -> Vec<String> {
        let mut labels = Vec::new();
        for r in &self.runs {
            let l = r.point.variant_label();
            if labels.last() != Some(&l) {
                labels.push(l);
            }
        }
        labels
    }

    /// The JSONL block for one variant (one line per seed).
    pub fn variant_jsonl(&self, variant_label: &str) -> String {
        let mut out = String::new();
        for r in &self.runs {
            if r.point.variant_label() == variant_label {
                out.push_str(&r.jsonl(self.digest));
                out.push('\n');
            }
        }
        out
    }

    /// The aggregated CSV: one row per variant, metrics averaged over
    /// seeds (events summed). Column contract documented in
    /// `results/SCHEMA.md`.
    pub fn aggregate_csv(&self) -> String {
        let mut out = String::from(
            "variant,rm,policy,load,seeds,jobs_per_run,events,utilization,\
             mean_wait_s,p95_wait_s,max_wait_s,mean_bounded_slowdown,\
             starved_jobs,jobs_timed_out,makespan_s\n",
        );
        for label in self.variant_labels() {
            let runs: Vec<&RunResult> = self
                .runs
                .iter()
                .filter(|r| r.point.variant_label() == label)
                .collect();
            let n = runs.len() as f64;
            let mean = |f: &dyn Fn(&RunResult) -> f64| runs.iter().map(|r| f(r)).sum::<f64>() / n;
            let p = runs[0].point;
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{:.6},{:.3},{:.3},{:.3},{:.4},{:.2},{:.2},{:.3}\n",
                label,
                p.rm.label(),
                p.policy.slug(),
                p.load,
                runs.len(),
                runs[0].jobs,
                runs.iter().map(|r| r.events).sum::<u64>(),
                mean(&|r| r.metrics.utilization),
                mean(&|r| r.metrics.mean_wait_s),
                mean(&|r| r.metrics.p95_wait_s),
                mean(&|r| r.metrics.max_wait_s),
                mean(&|r| r.metrics.mean_bounded_slowdown),
                mean(&|r| r.metrics.starved_jobs as f64),
                mean(&|r| r.metrics.jobs_timed_out as f64),
                mean(&|r| r.metrics.makespan_s),
            ));
        }
        out
    }

    /// ASCII utilization / wait curves over the load axis, one block
    /// per RM × policy — the human-readable artifact next to the CSV.
    pub fn curves(&self) -> String {
        let g = self.grid.normalized();
        let mut out = String::new();
        out.push_str(&format!(
            "# {} — utilization and mean wait vs load\n",
            g.name
        ));
        for rm in &g.rms {
            for policy in &g.policies {
                out.push_str(&format!("\n{} / {}\n", rm.label(), policy.label()));
                out.push_str("load      util                              mean_wait_s\n");
                for load in &g.loads {
                    let runs: Vec<&RunResult> = self
                        .runs
                        .iter()
                        .filter(|r| {
                            r.point.rm == *rm && r.point.policy == *policy && r.point.load == *load
                        })
                        .collect();
                    if runs.is_empty() {
                        continue;
                    }
                    let n = runs.len() as f64;
                    let util = runs.iter().map(|r| r.metrics.utilization).sum::<f64>() / n;
                    let wait = runs.iter().map(|r| r.metrics.mean_wait_s).sum::<f64>() / n;
                    let bar = "#".repeat((util * 30.0).round().clamp(0.0, 30.0) as usize);
                    out.push_str(&format!(
                        "{:<8}  {:>6.1}% {:<30}  {:>10.1}\n",
                        format!("{load}"),
                        util * 100.0,
                        bar,
                        wait
                    ));
                }
            }
        }
        out
    }
}

/// Run every grid point on `workers` threads. Points are pulled off a
/// shared counter and results slotted by index, so the report is
/// identical at any worker count (each run is an isolated simulator
/// seeded only by its point).
pub fn run_grid(grid: &ExpGrid, workers: usize) -> ExpReport {
    let g = grid.normalized();
    let digest = g.digest();
    let points = g.points();
    let workers = workers.clamp(1, points.len().max(1));
    let slots: Vec<std::sync::Mutex<Option<RunResult>>> = (0..points.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= points.len() {
                    break;
                }
                let result = run_point(&g, &points[i]);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    let runs = slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every point ran"))
        .collect();
    ExpReport {
        grid: g,
        digest,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> ExpGrid {
        ExpGrid::new("smoke")
            .seeds(vec![0, 1])
            .loads(vec![1.0, 2.0])
            .policies(vec![SchedPolicy::Fifo, SchedPolicy::maui_default()])
            .rms(vec![RmKind::Torque, RmKind::Sge])
            .jobs_per_run(120)
            .cluster(4, 2)
    }

    #[test]
    fn normalization_dedups_and_defaults() {
        let g = ExpGrid::new("My Exp!")
            .seeds(vec![3, 3, 4])
            .loads(vec![1.0, 1.0, 0.0, -2.0])
            .rms(vec![])
            .normalized();
        assert_eq!(g.name, "my-exp");
        assert_eq!(g.seeds, vec![3, 4]);
        assert_eq!(g.loads, vec![1.0]);
        assert_eq!(g.rms, vec![RmKind::Torque]);
        assert_eq!(g.normalized(), g, "idempotent");
    }

    #[test]
    fn digest_is_normalization_invariant() {
        let a = ExpGrid::new("x").seeds(vec![1, 1, 2]);
        let b = ExpGrid::new("x").seeds(vec![1, 2]);
        assert_eq!(a.digest(), b.digest());
        let c = ExpGrid::new("x").seeds(vec![1, 3]);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn points_cover_the_product() {
        let g = tiny_grid();
        let points = g.points();
        assert_eq!(points.len(), g.run_count());
        assert_eq!(points.len(), 2 * 2 * 2 * 2);
        // variants change slowest over seeds
        assert_eq!(points[0].variant, 0);
        assert_eq!(points[1].variant, 0);
        assert_eq!(points[2].variant, 1);
    }

    #[test]
    fn report_identical_at_any_worker_count() {
        let g = tiny_grid();
        let one = run_grid(&g, 1);
        let four = run_grid(&g, 4);
        let many = run_grid(&g, 64);
        assert_eq!(one.runs, four.runs);
        assert_eq!(four.runs, many.runs);
        assert_eq!(one.aggregate_csv(), many.aggregate_csv());
        for label in one.variant_labels() {
            assert_eq!(one.variant_jsonl(&label), many.variant_jsonl(&label));
        }
    }

    #[test]
    fn csv_and_jsonl_are_populated() {
        let report = run_grid(&tiny_grid(), 4);
        let csv = report.aggregate_csv();
        assert_eq!(csv.lines().count(), 1 + 8, "header + one row per variant");
        assert!(csv.starts_with("variant,rm,policy,load,seeds"));
        let labels = report.variant_labels();
        assert_eq!(labels.len(), 8);
        for label in &labels {
            let jsonl = report.variant_jsonl(label);
            assert_eq!(jsonl.lines().count(), 2, "one line per seed");
            assert!(jsonl.contains("\"utilization\":"));
        }
        assert!(report.total_events() > 0);
        assert!(report.curves().contains("utilization"));
    }

    #[test]
    fn backfill_beats_fifo_under_load() {
        let g = ExpGrid::new("policy-check")
            .policies(vec![SchedPolicy::Fifo, SchedPolicy::maui_default()])
            .rms(vec![RmKind::Torque])
            .loads(vec![3.0])
            .seeds(vec![7])
            .jobs_per_run(400)
            .cluster(4, 2);
        let report = run_grid(&g, 2);
        let wait = |slug: &str| {
            report
                .runs
                .iter()
                .find(|r| r.point.policy.slug() == slug)
                .map(|r| r.metrics.mean_wait_s)
                .unwrap()
        };
        assert!(
            wait("maui") <= wait("fifo"),
            "backfill should not worsen mean wait: maui={} fifo={}",
            wait("maui"),
            wait("fifo")
        );
    }
}
