//! The resource-manager abstraction.
//!
//! XCBC's Table 1 says "Torque, SLURM, sge (choose one)". All three
//! façades implement [`ResourceManager`], so the deployment code in
//! `xcbc-core` can install any of them and the curriculum can teach the
//! command differences while the underlying simulation stays the same.

use crate::job::{JobId, JobRequest};
use crate::metrics::SimMetrics;
use crate::policy::SchedPolicy;
use crate::sge::SgeCell;
use crate::sim::ClusterSim;
use crate::slurm::Slurm;
use crate::torque::TorqueServer;
use std::fmt;

/// A batch system facade over the simulator.
pub trait ResourceManager {
    /// The package name XCBC installs for this RM (e.g. "torque").
    fn package_name(&self) -> &'static str;

    /// The submit command users type (`qsub` / `sbatch`).
    fn submit_command(&self) -> &'static str;

    /// Submit a job; returns the RM's textual job id.
    fn submit(&mut self, req: JobRequest) -> String;

    /// Cancel by textual id; true if a queued job was removed.
    fn cancel(&mut self, id: &str) -> bool;

    /// Kill a *running* job by textual id (operator `qdel`/`scancel`
    /// on a job that already started); freed cores are re-evaluated
    /// immediately. True if a running job was terminated.
    fn kill(&mut self, id: &str) -> bool {
        parse_numeric_id(id)
            .map(|n| self.sim_mut().kill(n))
            .unwrap_or(false)
    }

    /// Render the queue status listing (`qstat` / `squeue`).
    fn status(&self) -> String;

    /// Advance simulated time.
    fn advance_to(&mut self, t: f64);

    /// Drain all events.
    fn drain(&mut self);

    /// Access the underlying simulator.
    fn sim(&self) -> &ClusterSim;

    /// Mutable access to the underlying simulator — used by parity
    /// tests and the soak harness to normalize scheduling policy across
    /// frontends and to drain the recorded trace
    /// ([`ClusterSim::take_trace`]).
    fn sim_mut(&mut self) -> &mut ClusterSim;

    /// Metrics snapshot.
    fn metrics(&self) -> SimMetrics {
        SimMetrics::from_sim(self.sim())
    }

    /// Take a node out of service (rolling-update drain): running jobs
    /// keep running, new placements skip it. The façades expose the
    /// native spelling (`pbsnodes -o` / `scontrol update state=drain` /
    /// `qmod -d`); this is the uniform entry point campaigns use.
    fn offline_node(&mut self, node: usize) -> bool {
        self.sim_mut().set_offline(node)
    }

    /// Return a node to service after its update.
    fn online_node(&mut self, node: usize) -> bool {
        self.sim_mut().set_online(node)
    }

    /// Losslessly requeue whatever still runs on a draining node;
    /// returns the requeued job ids.
    fn requeue_node(&mut self, node: usize) -> Vec<JobId> {
        self.sim_mut().requeue_jobs_on(node)
    }

    /// True when `node` has no running jobs (safe to reinstall).
    fn node_idle(&self, node: usize) -> bool {
        self.sim().node_idle(node)
    }

    /// Grow the cluster by one node (elastic scale-up / burst join);
    /// returns the new node's index. The façades expose the native
    /// spelling (`qmgr -c "create node"` / `scontrol create nodename` /
    /// `qconf -ae`); this is the uniform entry point the elastic engine
    /// uses.
    fn add_node(&mut self) -> usize {
        self.sim_mut().add_node()
    }

    /// Permanently remove an idle, drained node (elastic scale-down /
    /// burst departure). Returns false if already retired.
    fn retire_node(&mut self, node: usize) -> bool {
        self.sim_mut().retire_node(node)
    }

    /// Eligible queued jobs — the autoscaler's demand signal.
    fn queue_depth(&self) -> usize {
        self.sim().queue_depth()
    }
}

/// Parse the numeric part out of an RM job id like `"42.littlefe"` or
/// `"42"`.
pub(crate) fn parse_numeric_id(id: &str) -> Option<JobId> {
    id.split('.').next()?.parse().ok()
}

/// Which resource-manager frontend a run uses — the typed spelling of
/// XCBC's "Torque, SLURM, sge (choose one)". Generators and the
/// experiment sweep driver are written against [`ResourceManager`],
/// so an `RmKind` is all they need to be backend-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RmKind {
    Torque,
    Slurm,
    Sge,
}

impl RmKind {
    /// Every frontend, in canonical order (sweep default).
    pub const ALL: [RmKind; 3] = [RmKind::Torque, RmKind::Slurm, RmKind::Sge];

    /// The package name XCBC installs for this RM.
    pub fn label(&self) -> &'static str {
        match self {
            RmKind::Torque => "torque",
            RmKind::Slurm => "slurm",
            RmKind::Sge => "sge",
        }
    }

    /// Parse the package-name spelling.
    pub fn parse(s: &str) -> Result<RmKind, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "torque" | "pbs" => Ok(RmKind::Torque),
            "slurm" => Ok(RmKind::Slurm),
            "sge" | "gridengine" => Ok(RmKind::Sge),
            other => Err(format!(
                "unknown resource manager {other:?} (want torque/slurm/sge)"
            )),
        }
    }

    /// Build this frontend over a fresh cluster with its native default
    /// scheduler (Torque ships Maui; SLURM and SGE default to EASY
    /// backfill). `name` labels the server where the frontend has one.
    pub fn build_default(
        &self,
        name: &str,
        nodes: usize,
        cores_per_node: u32,
    ) -> Box<dyn ResourceManager> {
        match self {
            RmKind::Torque => Box::new(TorqueServer::with_maui(name, nodes, cores_per_node)),
            RmKind::Slurm => Box::new(Slurm::new(name, nodes, cores_per_node)),
            RmKind::Sge => Box::new(SgeCell::new(nodes, cores_per_node)),
        }
    }

    /// Build this frontend over a fresh cluster, with the given
    /// scheduling policy installed — the uniform constructor the
    /// workload engine and sweep driver use.
    pub fn build(
        &self,
        nodes: usize,
        cores_per_node: u32,
        policy: SchedPolicy,
    ) -> Box<dyn ResourceManager> {
        let mut rm = self.build_default("cluster", nodes, cores_per_node);
        rm.sim_mut().set_policy(policy);
        rm
    }
}

impl fmt::Display for RmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Run a whole `(submit_time, request)` workload through an RM and
/// return metrics. Jobs are submitted in time order; the façade
/// advances between submissions the way a live cluster would.
pub fn run_workload<R: ResourceManager + ?Sized>(
    rm: &mut R,
    jobs: impl IntoIterator<Item = (f64, JobRequest)>,
) -> SimMetrics {
    let mut jobs: Vec<(f64, JobRequest)> = jobs.into_iter().collect();
    jobs.sort_by(|a, b| a.0.total_cmp(&b.0));
    for (t, req) in jobs {
        rm.advance_to(t);
        rm.submit(req);
    }
    rm.drain();
    rm.metrics()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_parsing() {
        assert_eq!(parse_numeric_id("42.littlefe"), Some(42));
        assert_eq!(parse_numeric_id("17"), Some(17));
        assert_eq!(parse_numeric_id("x.y"), None);
        assert_eq!(parse_numeric_id(""), None);
    }
}
