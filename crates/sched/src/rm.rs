//! The resource-manager abstraction.
//!
//! XCBC's Table 1 says "Torque, SLURM, sge (choose one)". All three
//! façades implement [`ResourceManager`], so the deployment code in
//! `xcbc-core` can install any of them and the curriculum can teach the
//! command differences while the underlying simulation stays the same.

use crate::job::{JobId, JobRequest};
use crate::metrics::SimMetrics;
use crate::sim::ClusterSim;

/// A batch system facade over the simulator.
pub trait ResourceManager {
    /// The package name XCBC installs for this RM (e.g. "torque").
    fn package_name(&self) -> &'static str;

    /// The submit command users type (`qsub` / `sbatch`).
    fn submit_command(&self) -> &'static str;

    /// Submit a job; returns the RM's textual job id.
    fn submit(&mut self, req: JobRequest) -> String;

    /// Cancel by textual id; true if a queued job was removed.
    fn cancel(&mut self, id: &str) -> bool;

    /// Render the queue status listing (`qstat` / `squeue`).
    fn status(&self) -> String;

    /// Advance simulated time.
    fn advance_to(&mut self, t: f64);

    /// Drain all events.
    fn drain(&mut self);

    /// Access the underlying simulator.
    fn sim(&self) -> &ClusterSim;

    /// Mutable access to the underlying simulator — used by parity
    /// tests and the soak harness to normalize scheduling policy across
    /// frontends and to drain the recorded trace
    /// ([`ClusterSim::take_trace`]).
    fn sim_mut(&mut self) -> &mut ClusterSim;

    /// Metrics snapshot.
    fn metrics(&self) -> SimMetrics {
        SimMetrics::from_sim(self.sim())
    }

    /// Take a node out of service (rolling-update drain): running jobs
    /// keep running, new placements skip it. The façades expose the
    /// native spelling (`pbsnodes -o` / `scontrol update state=drain` /
    /// `qmod -d`); this is the uniform entry point campaigns use.
    fn offline_node(&mut self, node: usize) -> bool {
        self.sim_mut().set_offline(node)
    }

    /// Return a node to service after its update.
    fn online_node(&mut self, node: usize) -> bool {
        self.sim_mut().set_online(node)
    }

    /// Losslessly requeue whatever still runs on a draining node;
    /// returns the requeued job ids.
    fn requeue_node(&mut self, node: usize) -> Vec<JobId> {
        self.sim_mut().requeue_jobs_on(node)
    }

    /// True when `node` has no running jobs (safe to reinstall).
    fn node_idle(&self, node: usize) -> bool {
        self.sim().node_idle(node)
    }

    /// Grow the cluster by one node (elastic scale-up / burst join);
    /// returns the new node's index. The façades expose the native
    /// spelling (`qmgr -c "create node"` / `scontrol create nodename` /
    /// `qconf -ae`); this is the uniform entry point the elastic engine
    /// uses.
    fn add_node(&mut self) -> usize {
        self.sim_mut().add_node()
    }

    /// Permanently remove an idle, drained node (elastic scale-down /
    /// burst departure). Returns false if already retired.
    fn retire_node(&mut self, node: usize) -> bool {
        self.sim_mut().retire_node(node)
    }

    /// Eligible queued jobs — the autoscaler's demand signal.
    fn queue_depth(&self) -> usize {
        self.sim().queue_depth()
    }
}

/// Parse the numeric part out of an RM job id like `"42.littlefe"` or
/// `"42"`.
pub(crate) fn parse_numeric_id(id: &str) -> Option<JobId> {
    id.split('.').next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_parsing() {
        assert_eq!(parse_numeric_id("42.littlefe"), Some(42));
        assert_eq!(parse_numeric_id("17"), Some(17));
        assert_eq!(parse_numeric_id("x.y"), None);
        assert_eq!(parse_numeric_id(""), None);
    }
}
