//! SLURM façade (the second of XCBC's "choose one" job managers).

use crate::job::{JobRequest, JobState};
use crate::policy::SchedPolicy;
use crate::rm::{parse_numeric_id, ResourceManager};
use crate::sim::ClusterSim;

/// A slurmctld with the backfill scheduler (SLURM's default plugin is
/// `sched/backfill`).
#[derive(Debug)]
pub struct Slurm {
    sim: ClusterSim,
    partition: String,
}

impl Slurm {
    pub fn new(partition: &str, nodes: usize, cores_per_node: u32) -> Self {
        Slurm {
            sim: ClusterSim::new(nodes, cores_per_node, SchedPolicy::EasyBackfill),
            partition: partition.to_string(),
        }
    }

    /// `sbatch -N nodes --ntasks-per-node=ppn`.
    pub fn sbatch(&mut self, req: JobRequest) -> String {
        format!("{}", self.sim.submit(req))
    }

    /// `squeue` output.
    pub fn squeue(&self) -> String {
        let mut out = String::from("JOBID PARTITION     NAME     ST  NODES\n");
        for j in self.sim.jobs() {
            let st = match j.state {
                JobState::Queued => "PD",
                JobState::Running { .. } => "R",
                JobState::Completed { .. } => "CD",
                JobState::TimedOut { .. } => "TO",
                JobState::Cancelled => "CA",
            };
            out.push_str(&format!(
                "{:<5} {:<13} {:<8} {:<3} {:>5}\n",
                j.id, self.partition, j.request.name, st, j.request.nodes
            ));
        }
        out
    }

    /// `sinfo` output.
    pub fn sinfo(&self) -> String {
        format!(
            "PARTITION AVAIL NODES STATE\n{:<9} up    {:>5} mixed\n",
            self.partition,
            self.sim.node_count()
        )
    }

    /// `scancel <id>`.
    pub fn scancel(&mut self, id: &str) -> bool {
        parse_numeric_id(id)
            .map(|n| self.sim.cancel(n))
            .unwrap_or(false)
    }

    /// `scontrol update nodename=<node> state=drain`.
    pub fn scontrol_drain(&mut self, node: usize) -> bool {
        self.sim.set_offline(node)
    }

    /// `scontrol update nodename=<node> state=resume`.
    pub fn scontrol_resume(&mut self, node: usize) -> bool {
        self.sim.set_online(node)
    }

    /// `scontrol create nodename=<node>` (dynamic nodes, SLURM ≥ 20.11):
    /// add a node to the partition. Returns the new node's index.
    pub fn scontrol_create_node(&mut self) -> usize {
        self.sim.add_node()
    }

    /// `scontrol delete nodename=<node>`: permanently remove a drained
    /// node.
    pub fn scontrol_delete_node(&mut self, node: usize) -> bool {
        self.sim.retire_node(node)
    }
}

impl ResourceManager for Slurm {
    fn package_name(&self) -> &'static str {
        "slurm"
    }

    fn submit_command(&self) -> &'static str {
        "sbatch"
    }

    fn submit(&mut self, req: JobRequest) -> String {
        self.sbatch(req)
    }

    fn cancel(&mut self, id: &str) -> bool {
        self.scancel(id)
    }

    fn status(&self) -> String {
        self.squeue()
    }

    fn advance_to(&mut self, t: f64) {
        self.sim.run_until(t);
    }

    fn drain(&mut self) {
        self.sim.run_to_completion();
    }

    fn sim(&self) -> &ClusterSim {
        &self.sim
    }

    fn sim_mut(&mut self) -> &mut ClusterSim {
        &mut self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbatch_numeric_ids() {
        let mut s = Slurm::new("compute", 4, 4);
        assert_eq!(s.sbatch(JobRequest::new("a", 1, 1, 10.0, 5.0)), "1");
        assert_eq!(s.sbatch(JobRequest::new("b", 1, 1, 10.0, 5.0)), "2");
    }

    #[test]
    fn squeue_states() {
        let mut s = Slurm::new("compute", 1, 1);
        s.sbatch(JobRequest::new("run", 1, 1, 100.0, 50.0));
        s.sbatch(JobRequest::new("pend", 1, 1, 100.0, 50.0));
        s.advance_to(1.0);
        let q = s.squeue();
        assert!(q.contains("run") && q.contains(" R "));
        assert!(q.contains("pend") && q.contains("PD"));
    }

    #[test]
    fn backfill_by_default() {
        let s = Slurm::new("compute", 2, 2);
        assert!(s.sim().policy().backfills());
    }

    #[test]
    fn sinfo_and_scancel() {
        let mut s = Slurm::new("debug", 3, 2);
        assert!(s.sinfo().contains("debug"));
        s.sbatch(JobRequest::new("running", 3, 2, 100.0, 50.0));
        let id = s.sbatch(JobRequest::new("victim", 1, 1, 100.0, 50.0));
        s.advance_to(1.0);
        assert!(s.scancel(&id));
    }

    #[test]
    fn scontrol_drain_and_resume() {
        let mut s = Slurm::new("compute", 2, 2);
        assert!(s.scontrol_drain(0));
        s.sbatch(JobRequest::new("steered", 1, 2, 10.0, 5.0));
        s.drain();
        assert_eq!(s.sim().running_on(0), vec![]);
        assert!(s.scontrol_resume(0));
        assert!(!s.sim().is_offline(0));
    }

    #[test]
    fn scontrol_dynamic_nodes() {
        let mut s = Slurm::new("compute", 1, 2);
        s.sbatch(JobRequest::new("running", 1, 2, 100.0, 100.0));
        s.sbatch(JobRequest::new("waiting", 1, 2, 50.0, 50.0));
        s.advance_to(1.0);
        assert_eq!(s.queue_depth(), 1);
        assert_eq!(s.scontrol_create_node(), 1);
        assert_eq!(s.queue_depth(), 0);
        s.drain();
        assert!(s.scontrol_drain(1));
        assert!(s.scontrol_delete_node(1));
        assert!(!s.scontrol_resume(1), "deleted node stays out");
    }

    #[test]
    fn facade_metrics() {
        let mut s = Slurm::new("compute", 2, 2);
        s.sbatch(JobRequest::new("x", 2, 2, 10.0, 8.0));
        s.drain();
        let m = s.metrics();
        assert_eq!(m.jobs_finished, 1);
        assert_eq!(s.package_name(), "slurm");
        assert_eq!(s.submit_command(), "sbatch");
    }
}
