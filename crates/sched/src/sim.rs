//! The discrete-event cluster simulator.
//!
//! Time advances through the shared `xcbc-sim` event queue (submits
//! and job ends on one [`SimClock`] timebase); at every event the
//! active [`SchedPolicy`] is given a chance to start queued jobs.
//! Placement is node-granular: a job asking for `nodes × ppn` needs
//! `nodes` distinct nodes with `ppn` free cores each. Job lifecycle is
//! reported as trace spans/marks on an internal [`EventBus`], so
//! scheduler time is directly commensurable with boot and install time
//! elsewhere in the stack.

use crate::job::{Job, JobId, JobRequest, JobState};
use crate::policy::SchedPolicy;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use xcbc_sim::{EventBus, EventQueue, SimClock, SimTime, TraceEvent};

/// Trace source tag for events this simulator emits.
const TRACE_SOURCE: &str = "sched";

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Job end for one incarnation; a requeue bumps the incarnation so
    /// the stale end event of the interrupted run is ignored.
    End(JobId, u32),
    Submit(JobId),
    /// Scheduler wake-up (reservation boundaries).
    Wake,
}

/// A maintenance/advance reservation: the listed nodes accept no job
/// whose execution window would overlap `[start, end)` (Maui's
/// standing-reservation semantics for a maintenance window).
#[derive(Debug, Clone, PartialEq)]
pub struct Reservation {
    pub label: String,
    pub nodes: Vec<usize>,
    start: SimTime,
    end: SimTime,
}

impl Reservation {
    /// When the window opens.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// When the window closes.
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Window start in seconds (compatibility accessor).
    pub fn start_s(&self) -> f64 {
        self.start.as_secs_f64()
    }

    /// Window end in seconds (compatibility accessor).
    pub fn end_s(&self) -> f64 {
        self.end.as_secs_f64()
    }

    fn blocks(&self, node: usize, job_start: f64, job_end: f64) -> bool {
        self.nodes.contains(&node) && job_start < self.end_s() && job_end > self.start_s()
    }
}

/// The simulator.
#[derive(Debug)]
pub struct ClusterSim {
    /// Free cores per node.
    free: Vec<u32>,
    /// Cores per node (uniform).
    cores_per_node: u32,
    policy: SchedPolicy,
    clock: SimClock,
    next_id: JobId,
    events: EventQueue<EventKind>,
    /// Structured trace of submits, job spans, and reservations.
    bus: EventBus,
    jobs: BTreeMap<JobId, Job>,
    /// Queued job ids in arrival order.
    queue: Vec<JobId>,
    /// Running job ids. An index, not state: kept in lockstep with
    /// `jobs[*].state` so per-event work (backfill shadow time, drain
    /// queries) scans the ≤ nodes×cores running jobs instead of every
    /// job ever submitted — the difference between O(n²) and O(n) over
    /// a million-event run.
    running_ids: BTreeSet<JobId>,
    /// Per-user consumed core-seconds (fairshare input).
    usage: HashMap<String, f64>,
    /// Core-seconds actually executed (utilization numerator).
    used_core_seconds: f64,
    /// Advance reservations (maintenance windows).
    reservations: Vec<Reservation>,
    /// Held job ids (`qhold`): queued but not eligible to start.
    held: std::collections::HashSet<JobId>,
    /// Offline (drained) node indices: no new placements land there.
    offline: BTreeSet<usize>,
    /// Retired node indices: permanently out of service (scale-down /
    /// burst-site departure). Always a subset of `offline`; a retired
    /// node cannot be brought back with [`ClusterSim::set_online`].
    retired: BTreeSet<usize>,
    /// Per-job restart counter; see [`EventKind::End`].
    incarnations: HashMap<JobId, u32>,
    /// Emit structured trace events? On by default; million-event
    /// experiment runs turn it off so the event loop does no string
    /// formatting or trace allocation.
    tracing: bool,
    /// Events popped off the queue so far (throughput accounting).
    events_processed: u64,
}

impl ClusterSim {
    /// A cluster of `nodes` nodes with `cores_per_node` cores each.
    pub fn new(nodes: usize, cores_per_node: u32, policy: SchedPolicy) -> Self {
        assert!(nodes > 0 && cores_per_node > 0);
        ClusterSim {
            free: vec![cores_per_node; nodes],
            cores_per_node,
            policy,
            clock: SimClock::new(),
            next_id: 0,
            events: EventQueue::new(),
            bus: EventBus::new(),
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            running_ids: BTreeSet::new(),
            usage: HashMap::new(),
            used_core_seconds: 0.0,
            reservations: Vec::new(),
            held: std::collections::HashSet::new(),
            offline: BTreeSet::new(),
            retired: BTreeSet::new(),
            incarnations: HashMap::new(),
            tracing: true,
            events_processed: 0,
        }
    }

    /// Events popped off the queue so far — the denominator of the
    /// million-event throughput bench.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Builder form of [`ClusterSim::set_tracing`].
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Turn structured trace emission on or off. Scheduling decisions
    /// and metrics are identical either way; off skips all per-event
    /// string formatting, which is what lets a run sustain ~10^6
    /// events in seconds (see the `million_events` bench).
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Is structured trace emission enabled?
    pub fn tracing_enabled(&self) -> bool {
        self.tracing
    }

    /// `qhold`: keep a queued job from starting. Returns false for
    /// running/finished/unknown jobs.
    pub fn hold(&mut self, id: JobId) -> bool {
        match self.jobs.get(&id) {
            Some(j) if j.state == JobState::Queued => {
                self.held.insert(id);
                true
            }
            _ => false,
        }
    }

    /// `qrls`: release a held job (it becomes eligible immediately).
    pub fn release(&mut self, id: JobId) -> bool {
        let released = self.held.remove(&id);
        if released {
            self.try_start_jobs();
        }
        released
    }

    /// Is the job currently held?
    pub fn is_held(&self, id: JobId) -> bool {
        self.held.contains(&id)
    }

    /// Add a maintenance/advance reservation over node indices
    /// `nodes` for `[start, end)`. Jobs whose walltime window would
    /// overlap the reservation cannot be placed on those nodes.
    /// Accepts `SimTime` or float seconds for the window bounds.
    pub fn add_reservation(
        &mut self,
        label: &str,
        nodes: Vec<usize>,
        start: impl Into<SimTime>,
        end: impl Into<SimTime>,
    ) {
        let (start, end) = (start.into(), end.into());
        assert!(start < end, "empty reservation window");
        assert!(
            nodes.iter().all(|&n| n < self.free.len()),
            "reserved node out of range"
        );
        if self.tracing {
            self.bus.emit(
                TraceEvent::span(
                    start,
                    TRACE_SOURCE,
                    format!("reservation: {label}"),
                    end - start,
                )
                .with_field("nodes", nodes.len()),
            );
        }
        self.reservations.push(Reservation {
            label: label.to_string(),
            nodes,
            start,
            end,
        });
        // wake the scheduler when the window closes so blocked jobs start
        if end >= self.clock.now() {
            self.push_event(end, EventKind::Wake);
        }
    }

    pub fn reservations(&self) -> &[Reservation] {
        &self.reservations
    }

    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Swap the scheduling policy on a live cluster (the §8 "change the
    /// schedulers" workflow). Queued jobs are re-evaluated immediately.
    pub fn set_policy(&mut self, policy: SchedPolicy) {
        self.policy = policy;
        self.try_start_jobs();
    }

    /// Current simulation time in seconds (compatibility accessor).
    pub fn now(&self) -> f64 {
        self.clock.now().as_secs_f64()
    }

    /// Current simulation time on the shared integer-nanosecond clock.
    pub fn now_sim(&self) -> SimTime {
        self.clock.now()
    }

    /// The structured trace recorded so far: a `Mark` per submission, a
    /// `Span` per finished job (at its start time), a `Span` per
    /// reservation window.
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.bus.events()
    }

    /// Drain the recorded trace (for merging into a scenario-wide log).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.bus).into_events()
    }

    pub fn node_count(&self) -> usize {
        self.free.len()
    }

    pub fn total_cores(&self) -> u32 {
        self.cores_per_node * self.free.len() as u32
    }

    fn push_event(&mut self, t: impl Into<SimTime>, kind: EventKind) {
        self.events.schedule(t, kind);
    }

    /// Schedule a submission at absolute time `t` (>= now). Accepts
    /// `SimTime` or float seconds.
    pub fn submit_at(&mut self, t: impl Into<SimTime>, request: JobRequest) -> JobId {
        let t = t.into();
        assert!(t >= self.clock.now(), "cannot submit in the past");
        assert!(
            request.ppn <= self.cores_per_node,
            "job {} asks ppn={} but nodes have {} cores",
            request.name,
            request.ppn,
            self.cores_per_node
        );
        assert!(
            request.nodes as usize <= self.free.len(),
            "job {} asks {} nodes but cluster has {}",
            request.name,
            request.nodes,
            self.free.len()
        );
        self.next_id += 1;
        let id = self.next_id;
        if self.tracing {
            self.bus.emit(
                TraceEvent::mark(t, TRACE_SOURCE, format!("submit {}", request.name))
                    .with_field("user", request.user.clone())
                    .with_field("nodes", request.nodes)
                    .with_field("ppn", request.ppn),
            );
        }
        self.jobs.insert(
            id,
            Job {
                id,
                request,
                submit_s: t.as_secs_f64(),
                state: JobState::Queued,
                placement: vec![],
            },
        );
        self.push_event(t, EventKind::Submit(id));
        id
    }

    /// Submit now.
    pub fn submit(&mut self, request: JobRequest) -> JobId {
        self.submit_at(self.clock.now(), request)
    }

    /// Cancel a queued job (`qdel`/`scancel`). Running jobs keep running.
    pub fn cancel(&mut self, id: JobId) -> bool {
        if let Some(job) = self.jobs.get_mut(&id) {
            if job.state == JobState::Queued {
                job.state = JobState::Cancelled;
                self.queue.retain(|&q| q != id);
                self.held.remove(&id);
                return true;
            }
        }
        false
    }

    /// Kill a job in any unfinished state (`qdel`/`scancel` of a running
    /// job): a queued job is cancelled in place; a running job is
    /// evicted, its cores freed, and its scheduled end fenced off via an
    /// incarnation bump. Returns false for finished or unknown jobs.
    pub fn kill(&mut self, id: JobId) -> bool {
        if self.cancel(id) {
            return true;
        }
        let Some(job) = self.jobs.get_mut(&id) else {
            return false;
        };
        if !matches!(job.state, JobState::Running { .. }) {
            return false;
        }
        job.state = JobState::Cancelled;
        let placement = std::mem::take(&mut job.placement);
        let ppn = job.request.ppn;
        let name = job.request.name.clone();
        self.running_ids.remove(&id);
        *self.incarnations.entry(id).or_insert(0) += 1;
        for n in placement {
            self.free[n] += ppn;
        }
        let now = self.clock.now();
        if self.tracing {
            self.bus
                .emit(TraceEvent::mark(now, TRACE_SOURCE, format!("kill {name}")));
        }
        self.try_start_jobs();
        true
    }

    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    pub fn queued(&self) -> Vec<&Job> {
        self.queue.iter().map(|id| &self.jobs[id]).collect()
    }

    pub fn running(&self) -> Vec<&Job> {
        self.running_ids.iter().map(|id| &self.jobs[id]).collect()
    }

    pub fn completed(&self) -> Vec<&Job> {
        self.jobs.values().filter(|j| j.is_finished()).collect()
    }

    pub fn used_core_seconds(&self) -> f64 {
        self.used_core_seconds
    }

    // ----- node service state (drain support) -----

    /// Take a node out of service (`pbsnodes -o` / `scontrol update
    /// nodename=... state=drain`): running jobs keep running but no new
    /// placements land on it. Returns false if already offline.
    pub fn set_offline(&mut self, node: usize) -> bool {
        assert!(node < self.free.len(), "node out of range");
        if !self.offline.insert(node) {
            return false;
        }
        let now = self.clock.now();
        if self.tracing {
            self.bus.emit(TraceEvent::mark(
                now,
                TRACE_SOURCE,
                format!("offline node {node}"),
            ));
        }
        true
    }

    /// Return a node to service; queued jobs are re-evaluated
    /// immediately. Returns false if it was not offline or has been
    /// retired.
    pub fn set_online(&mut self, node: usize) -> bool {
        assert!(node < self.free.len(), "node out of range");
        if self.retired.contains(&node) {
            return false;
        }
        if !self.offline.remove(&node) {
            return false;
        }
        let now = self.clock.now();
        if self.tracing {
            self.bus.emit(TraceEvent::mark(
                now,
                TRACE_SOURCE,
                format!("online node {node}"),
            ));
        }
        self.try_start_jobs();
        true
    }

    pub fn is_offline(&self, node: usize) -> bool {
        self.offline.contains(&node)
    }

    /// Offline node indices, ascending.
    pub fn offline_nodes(&self) -> Vec<usize> {
        self.offline.iter().copied().collect()
    }

    // ----- dynamic membership (elastic scaling) -----

    /// Grow the cluster by one node (elastic scale-up / burst join).
    /// The node arrives online with all cores free; queued jobs are
    /// re-evaluated immediately. Returns the new node's index.
    pub fn add_node(&mut self) -> usize {
        let node = self.free.len();
        self.free.push(self.cores_per_node);
        let now = self.clock.now();
        if self.tracing {
            self.bus.emit(TraceEvent::mark(
                now,
                TRACE_SOURCE,
                format!("add node {node}"),
            ));
        }
        self.try_start_jobs();
        node
    }

    /// Permanently remove an idle node from service (elastic
    /// scale-down / burst departure). The caller drains the node first
    /// ([`ClusterSim::set_offline`] + [`ClusterSim::requeue_jobs_on`]);
    /// retiring a node with running jobs panics. A retired node takes
    /// no placements and refuses [`ClusterSim::set_online`]. Returns
    /// false if the node was already retired.
    pub fn retire_node(&mut self, node: usize) -> bool {
        assert!(node < self.free.len(), "node out of range");
        assert!(
            self.node_idle(node),
            "retire requires an idle node: drain and requeue first"
        );
        if !self.retired.insert(node) {
            return false;
        }
        self.offline.insert(node);
        let now = self.clock.now();
        if self.tracing {
            self.bus.emit(TraceEvent::mark(
                now,
                TRACE_SOURCE,
                format!("retire node {node}"),
            ));
        }
        true
    }

    /// Has the node been permanently retired?
    pub fn is_retired(&self, node: usize) -> bool {
        self.retired.contains(&node)
    }

    /// Retired node indices, ascending.
    pub fn retired_nodes(&self) -> Vec<usize> {
        self.retired.iter().copied().collect()
    }

    /// Nodes currently in service (neither offline nor retired).
    pub fn active_node_count(&self) -> usize {
        self.free.len() - self.offline.len()
    }

    /// Jobs sitting in the queue and eligible to run (not held) — the
    /// autoscaler's demand signal.
    pub fn queue_depth(&self) -> usize {
        self.queue
            .iter()
            .filter(|id| !self.held.contains(id))
            .count()
    }

    /// Ids of jobs currently running on `node`, ascending.
    pub fn running_on(&self, node: usize) -> Vec<JobId> {
        self.running_ids
            .iter()
            .filter(|id| self.jobs[id].placement.contains(&node))
            .copied()
            .collect()
    }

    /// True when no job occupies any core of `node`.
    pub fn node_idle(&self, node: usize) -> bool {
        self.free[node] == self.cores_per_node
    }

    /// Requeue every job running on `node` losslessly: cores are freed
    /// on the job's whole placement, the job re-enters the queue with
    /// its original submit time, and the interrupted run's end event is
    /// invalidated (no span is emitted and no core-seconds are charged
    /// for the partial run). Returns the requeued job ids, ascending.
    pub fn requeue_jobs_on(&mut self, node: usize) -> Vec<JobId> {
        assert!(node < self.free.len(), "node out of range");
        let victims = self.running_on(node);
        for &id in &victims {
            let (placement, ppn, name) = {
                let job = self.jobs.get_mut(&id).expect("job exists");
                job.state = JobState::Queued;
                (
                    std::mem::take(&mut job.placement),
                    job.request.ppn,
                    job.request.name.clone(),
                )
            };
            self.running_ids.remove(&id);
            *self.incarnations.entry(id).or_insert(0) += 1;
            for n in placement {
                self.free[n] += ppn;
            }
            let now = self.clock.now();
            if self.tracing {
                self.bus.emit(
                    TraceEvent::mark(now, TRACE_SOURCE, format!("requeue {name}"))
                        .with_field("node", node),
                );
            }
            self.queue.push(id);
        }
        if !victims.is_empty() {
            self.try_start_jobs();
        }
        victims
    }

    /// Per-user core-second usage so far.
    pub fn user_usage(&self, user: &str) -> f64 {
        self.usage.get(user).copied().unwrap_or(0.0)
    }

    // ----- placement -----

    /// Find a placement for `nodes × ppn` in the given free vector,
    /// skipping offline nodes.
    fn find_placement(
        free: &[u32],
        offline: &BTreeSet<usize>,
        nodes: u32,
        ppn: u32,
    ) -> Option<Vec<usize>> {
        let mut picked = Vec::with_capacity(nodes as usize);
        for (i, &f) in free.iter().enumerate() {
            if f >= ppn && !offline.contains(&i) {
                picked.push(i);
                if picked.len() == nodes as usize {
                    return Some(picked);
                }
            }
        }
        None
    }

    fn fits_now(&self, req: &JobRequest) -> Option<Vec<usize>> {
        let job_start = self.now();
        let job_end = job_start + req.walltime_s;
        let mut picked = Vec::with_capacity(req.nodes as usize);
        for (i, &f) in self.free.iter().enumerate() {
            let reserved = self
                .reservations
                .iter()
                .any(|r| r.blocks(i, job_start, job_end));
            if f >= req.ppn && !reserved && !self.offline.contains(&i) {
                picked.push(i);
                if picked.len() == req.nodes as usize {
                    return Some(picked);
                }
            }
        }
        None
    }

    fn start_job(&mut self, id: JobId) {
        let placement = {
            let job = &self.jobs[&id];
            self.fits_now(&job.request).expect("caller checked fit")
        };
        let now_s = self.now();
        let job = self.jobs.get_mut(&id).expect("job exists");
        for &n in &placement {
            self.free[n] -= job.request.ppn;
        }
        job.placement = placement;
        job.state = JobState::Running { start_s: now_s };
        let end = now_s + job.request.effective_runtime();
        self.running_ids.insert(id);
        self.queue.retain(|&q| q != id);
        let inc = self.incarnations.get(&id).copied().unwrap_or(0);
        self.push_event(end, EventKind::End(id, inc));
    }

    fn finish_job(&mut self, id: JobId, inc: u32) {
        if self.incarnations.get(&id).copied().unwrap_or(0) != inc {
            // End event of a run that was requeued off its node; the
            // current incarnation has its own end event.
            return;
        }
        let now_s = self.now();
        let job = self.jobs.get_mut(&id).expect("job exists");
        if let JobState::Running { start_s } = job.state {
            self.running_ids.remove(&id);
            let timed_out = job.request.runtime_s > job.request.walltime_s;
            job.state = if timed_out {
                JobState::TimedOut {
                    start_s,
                    end_s: now_s,
                }
            } else {
                JobState::Completed {
                    start_s,
                    end_s: now_s,
                }
            };
            let core_secs = job.request.cores() as f64 * (now_s - start_s);
            let (ppn, placement, user) = (
                job.request.ppn,
                job.placement.clone(),
                job.request.user.clone(),
            );
            if self.tracing {
                let placed: Vec<String> = placement.iter().map(|n| n.to_string()).collect();
                let span = TraceEvent::span(
                    start_s,
                    TRACE_SOURCE,
                    format!("job {}", job.request.name),
                    now_s - start_s,
                )
                .with_field("user", user.clone())
                .with_field("cores", job.request.cores())
                .with_field("state", if timed_out { "timed-out" } else { "completed" })
                .with_field("placement", placed.join(","));
                self.bus.emit(span);
            }
            self.used_core_seconds += core_secs;
            *self.usage.entry(user).or_insert(0.0) += core_secs;
            for n in placement {
                self.free[n] += ppn;
            }
        }
    }

    // ----- scheduling -----

    /// Queue order the policy wants.
    fn policy_order(&self) -> Vec<JobId> {
        let eligible: Vec<JobId> = self
            .queue
            .iter()
            .copied()
            .filter(|id| !self.held.contains(id))
            .collect();
        match self.policy {
            SchedPolicy::Fifo | SchedPolicy::EasyBackfill => eligible,
            SchedPolicy::MauiPriority {
                queue_weight,
                fairshare_weight,
            } => {
                // Priority depends only on the job, not on the other
                // queue entries, so compute it once per id instead of
                // on every comparison. The comparator is a total order
                // (total_cmp + id tie-break), so the resulting order is
                // identical to sorting with inline evaluation.
                let mut keyed: Vec<(f64, JobId)> = eligible
                    .into_iter()
                    .map(|id| (self.maui_priority(id, queue_weight, fairshare_weight), id))
                    .collect();
                keyed.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                keyed.into_iter().map(|(_, id)| id).collect()
            }
        }
    }

    fn maui_priority(&self, id: JobId, qw: f64, fw: f64) -> f64 {
        let job = &self.jobs[&id];
        let wait = self.now() - job.submit_s;
        wait * qw - self.user_usage(&job.request.user) * fw
    }

    /// Earliest time the head job could start, per the running jobs'
    /// *walltime-based* planned ends (the scheduler cannot see actual
    /// runtimes).
    fn shadow_time(&self, head: &JobRequest) -> f64 {
        let mut free = self.free.clone();
        // (planned_end, ppn, placement)
        let mut releases: Vec<(f64, u32, Vec<usize>)> = self
            .running_ids
            .iter()
            .filter_map(|id| {
                let j = &self.jobs[id];
                match j.state {
                    JobState::Running { start_s } => Some((
                        start_s + j.request.walltime_s,
                        j.request.ppn,
                        j.placement.clone(),
                    )),
                    _ => None,
                }
            })
            .collect();
        releases.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (t, ppn, placement) in releases {
            for n in placement {
                free[n] += ppn;
            }
            if Self::find_placement(&free, &self.offline, head.nodes, head.ppn).is_some() {
                return t;
            }
        }
        f64::INFINITY // should not happen if the job fits the machine
    }

    /// Start every job the policy allows right now.
    fn try_start_jobs(&mut self) {
        loop {
            let order = self.policy_order();
            if order.is_empty() {
                return;
            }
            // Start the head if it fits (then recompute ordering, since
            // placement and fairshare state changed).
            let head = order[0];
            if self.fits_now(&self.jobs[&head].request).is_some() {
                self.start_job(head);
                continue;
            }

            // Head blocked: backfill if the policy allows.
            if !self.policy.backfills() {
                return;
            }
            let head_req = self.jobs[&order[0]].request.clone();
            let shadow = self.shadow_time(&head_req);
            let mut backfilled = false;
            for &id in order.iter().skip(1) {
                let req = self.jobs[&id].request.clone();
                let fits = self.fits_now(&req).is_some();
                let ends_before_shadow = self.now() + req.walltime_s <= shadow;
                if fits && ends_before_shadow {
                    self.start_job(id);
                    backfilled = true;
                    break;
                }
            }
            if !backfilled {
                return;
            }
        }
    }

    // ----- event loop -----

    /// Process events up to and including time `t`. Accepts `SimTime`
    /// or float seconds.
    pub fn run_until(&mut self, t: impl Into<SimTime>) {
        let t = t.into();
        while let Some(et) = self.events.peek_time() {
            if et > t {
                break;
            }
            let scheduled = self.events.pop().expect("peeked");
            self.events_processed += 1;
            self.clock.advance_to(scheduled.t);
            match scheduled.event {
                EventKind::Submit(id) => {
                    if self.jobs[&id].state == JobState::Queued {
                        self.queue.push(id);
                    }
                }
                EventKind::End(id, inc) => self.finish_job(id, inc),
                EventKind::Wake => {}
            }
            self.try_start_jobs();
        }
        self.clock.advance_to(t);
    }

    /// Run until the event queue drains. The whole drain is timed as
    /// one [`xcbc_sim::SECTION_SCHED_RUN`] self-profile observation —
    /// deliberately coarse, so the per-event loop stays timer-free.
    pub fn run_to_completion(&mut self) {
        xcbc_sim::self_profiler().time(xcbc_sim::SECTION_SCHED_RUN, || {
            while let Some(et) = self.events.peek_time() {
                self.run_until(et);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(name: &str, nodes: u32, ppn: u32, wall: f64, run: f64) -> JobRequest {
        JobRequest::new(name, nodes, ppn, wall, run)
    }

    #[test]
    fn single_job_runs_immediately() {
        let mut sim = ClusterSim::new(6, 2, SchedPolicy::Fifo);
        let id = sim.submit_at(0.0, req("hello", 6, 2, 100.0, 80.0));
        sim.run_to_completion();
        let j = sim.job(id).unwrap();
        assert_eq!(j.wait_s(), Some(0.0));
        assert!(matches!(j.state, JobState::Completed { end_s, .. } if end_s == 80.0));
        assert_eq!(sim.used_core_seconds(), 12.0 * 80.0);
    }

    #[test]
    fn overrunning_job_killed_at_walltime() {
        let mut sim = ClusterSim::new(1, 2, SchedPolicy::Fifo);
        let id = sim.submit_at(0.0, req("runaway", 1, 1, 50.0, 500.0));
        sim.run_to_completion();
        assert!(
            matches!(sim.job(id).unwrap().state, JobState::TimedOut { end_s, .. } if end_s == 50.0)
        );
    }

    #[test]
    fn fifo_serializes_full_machine_jobs() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::Fifo);
        let a = sim.submit_at(0.0, req("a", 2, 2, 100.0, 100.0));
        let b = sim.submit_at(1.0, req("b", 2, 2, 100.0, 100.0));
        sim.run_to_completion();
        assert_eq!(sim.job(a).unwrap().wait_s(), Some(0.0));
        assert_eq!(sim.job(b).unwrap().wait_s(), Some(99.0));
    }

    #[test]
    fn fifo_head_of_line_blocks_small_job() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::Fifo);
        sim.submit_at(0.0, req("wide-running", 2, 1, 100.0, 100.0)); // leaves 1 core/node
        sim.submit_at(1.0, req("wide-blocked", 2, 2, 100.0, 100.0)); // must wait
        let tiny = sim.submit_at(2.0, req("tiny", 1, 1, 10.0, 10.0)); // would fit now!
        sim.run_to_completion();
        // FIFO: tiny waits behind the blocked head
        assert!(sim.job(tiny).unwrap().wait_s().unwrap() >= 98.0);
    }

    #[test]
    fn backfill_lets_small_job_jump() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::EasyBackfill);
        sim.submit_at(0.0, req("wide-running", 2, 1, 100.0, 100.0));
        sim.submit_at(1.0, req("wide-blocked", 2, 2, 100.0, 100.0));
        let tiny = sim.submit_at(2.0, req("tiny", 1, 1, 10.0, 10.0));
        sim.run_to_completion();
        // EASY: tiny ends (t=12) before the head's shadow time (t=100)
        assert_eq!(sim.job(tiny).unwrap().wait_s(), Some(0.0));
    }

    #[test]
    fn backfill_never_delays_head_job() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::EasyBackfill);
        sim.submit_at(0.0, req("running", 2, 1, 100.0, 100.0));
        let head = sim.submit_at(1.0, req("head", 2, 2, 100.0, 100.0));
        // this one would fit now but its walltime crosses the shadow time
        let long = sim.submit_at(2.0, req("long", 1, 1, 500.0, 500.0));
        sim.run_to_completion();
        let head_start = match sim.job(head).unwrap().state {
            JobState::Completed { start_s, .. } => start_s,
            other => panic!("{other:?}"),
        };
        assert_eq!(head_start, 100.0, "head starts exactly at the shadow time");
        let long_start = sim.job(long).unwrap().wait_s().unwrap() + 2.0;
        assert!(
            long_start >= 100.0,
            "long job must not backfill: started {long_start}"
        );
    }

    #[test]
    fn maui_fairshare_penalizes_heavy_user() {
        let policy = SchedPolicy::MauiPriority {
            queue_weight: 1.0,
            fairshare_weight: 1.0,
        };
        let mut sim = ClusterSim::new(1, 2, policy);
        // hog builds up usage
        sim.submit_at(0.0, req("hog1", 1, 2, 100.0, 100.0).by("hog"));
        sim.run_until(50.0);
        // both queue while hog1 runs; at t=100 the fair user's job should
        // win despite submitting later
        sim.submit_at(50.0, req("hog2", 1, 2, 100.0, 100.0).by("hog"));
        let fair = sim.submit_at(60.0, req("fair1", 1, 2, 100.0, 100.0).by("fair"));
        sim.run_to_completion();
        assert_eq!(
            sim.job(fair).unwrap().wait_s(),
            Some(40.0),
            "fair user's job runs first"
        );
    }

    #[test]
    fn policy_swap_on_live_cluster() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::Fifo);
        sim.submit_at(0.0, req("running", 2, 1, 100.0, 100.0));
        sim.submit_at(1.0, req("blocked-head", 2, 2, 100.0, 100.0));
        let tiny = sim.submit_at(2.0, req("tiny", 1, 1, 10.0, 10.0));
        sim.run_until(5.0);
        assert!(
            sim.job(tiny).unwrap().wait_s().is_none(),
            "FIFO keeps tiny queued"
        );
        // the XNIT scheduler swap: torque/fifo -> maui backfill
        sim.set_policy(SchedPolicy::EasyBackfill);
        sim.run_until(6.0);
        assert!(
            sim.job(tiny).unwrap().wait_s().is_some(),
            "backfill starts tiny immediately"
        );
    }

    #[test]
    fn cancel_queued_job() {
        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        sim.submit_at(0.0, req("running", 1, 1, 100.0, 100.0));
        let victim = sim.submit_at(1.0, req("victim", 1, 1, 100.0, 100.0));
        sim.run_until(2.0);
        assert!(sim.cancel(victim));
        assert!(!sim.cancel(victim), "double cancel is a no-op");
        sim.run_to_completion();
        assert_eq!(sim.job(victim).unwrap().state, JobState::Cancelled);
    }

    #[test]
    #[should_panic(expected = "ppn")]
    fn oversized_ppn_rejected() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::Fifo);
        sim.submit_at(0.0, req("fat", 1, 4, 10.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "nodes")]
    fn oversized_node_count_rejected() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::Fifo);
        sim.submit_at(0.0, req("wide", 3, 1, 10.0, 10.0));
    }

    #[test]
    fn reservation_blocks_overlapping_jobs() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::EasyBackfill);
        // maintenance window on both nodes from t=100 to t=200
        sim.add_reservation("maintenance", vec![0, 1], 100.0, 200.0);
        // a job whose walltime crosses into the window cannot start now
        let long = sim.submit_at(0.0, req("long", 2, 2, 150.0, 150.0));
        // a short job fits before the window
        let short = sim.submit_at(0.0, req("short", 2, 2, 90.0, 80.0));
        sim.run_to_completion();
        let short_start = sim.job(short).unwrap().wait_s().unwrap();
        assert_eq!(short_start, 0.0, "short job runs before the window");
        let long_start = sim.job(long).unwrap().wait_s().unwrap();
        assert!(
            long_start >= 200.0,
            "long job must wait out the window: {long_start}"
        );
    }

    #[test]
    fn reservation_on_subset_leaves_other_nodes_usable() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::EasyBackfill);
        sim.add_reservation("swap node 1 fan", vec![1], 0.0, 1000.0);
        let j = sim.submit_at(0.0, req("fits-on-node0", 1, 2, 100.0, 50.0));
        sim.run_to_completion();
        assert_eq!(sim.job(j).unwrap().wait_s(), Some(0.0));
        assert_eq!(sim.job(j).unwrap().placement, vec![0]);
    }

    #[test]
    #[should_panic(expected = "empty reservation")]
    fn inverted_reservation_window_rejected() {
        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        sim.add_reservation("bad", vec![0], 10.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reservation_on_unknown_node_rejected() {
        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        sim.add_reservation("bad", vec![5], 0.0, 10.0);
    }

    #[test]
    fn hold_keeps_job_queued_release_starts_it() {
        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        let id = sim.submit_at(0.0, req("held", 1, 1, 10.0, 5.0));
        sim.run_until(0.0);
        // job started immediately (empty machine) — so test with a
        // fresh one that is submitted while held-before-eligible
        assert!(sim.job(id).unwrap().wait_s().is_some());

        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        sim.submit_at(0.0, req("running", 1, 1, 100.0, 50.0));
        let victim = sim.submit_at(1.0, req("victim", 1, 1, 10.0, 5.0));
        sim.run_until(2.0);
        assert!(sim.hold(victim));
        assert!(sim.is_held(victim));
        sim.run_until(60.0); // machine free at t=50, but victim held
        assert!(sim.job(victim).unwrap().wait_s().is_none());
        assert!(sim.release(victim));
        assert!(
            sim.job(victim).unwrap().wait_s().is_some(),
            "starts on release"
        );
        sim.run_to_completion();
    }

    #[test]
    fn hold_rejects_running_and_unknown() {
        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        let id = sim.submit_at(0.0, req("r", 1, 1, 10.0, 5.0));
        sim.run_until(1.0);
        assert!(!sim.hold(id), "running job cannot be held");
        assert!(!sim.hold(999));
        assert!(!sim.release(id));
    }

    #[test]
    fn held_job_does_not_block_fifo_queue() {
        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        sim.submit_at(0.0, req("running", 1, 1, 100.0, 50.0));
        let held = sim.submit_at(1.0, req("held-head", 1, 1, 10.0, 5.0));
        let behind = sim.submit_at(2.0, req("behind", 1, 1, 10.0, 5.0));
        sim.run_until(3.0);
        sim.hold(held);
        sim.run_to_completion();
        // behind ran even though the held job was ahead of it
        assert!(sim.job(behind).unwrap().turnaround_s().is_some());
        assert!(sim.job(held).unwrap().wait_s().is_none());
    }

    #[test]
    fn cancel_clears_hold() {
        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        sim.submit_at(0.0, req("running", 1, 1, 100.0, 50.0));
        let victim = sim.submit_at(1.0, req("v", 1, 1, 10.0, 5.0));
        sim.run_until(2.0);
        sim.hold(victim);
        assert!(sim.cancel(victim));
        assert!(!sim.is_held(victim));
    }

    #[test]
    fn trace_records_submits_jobs_and_reservations() {
        use xcbc_sim::TraceKind;
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::Fifo);
        sim.add_reservation("maintenance", vec![1], 500.0, 600.0);
        sim.submit_at(0.0, req("a", 1, 2, 100.0, 80.0));
        sim.run_to_completion();
        let events = sim.trace_events();
        assert!(events
            .iter()
            .any(|e| e.label == "reservation: maintenance"
                && matches!(e.kind, TraceKind::Span { .. })));
        assert!(events
            .iter()
            .any(|e| e.label == "submit a" && matches!(e.kind, TraceKind::Mark)));
        let job = events
            .iter()
            .find(|e| e.label == "job a")
            .expect("job span");
        assert_eq!(job.t, SimTime::ZERO);
        assert_eq!(job.duration(), xcbc_sim::SimDuration::from_secs(80));
        assert_eq!(job.source, "sched");
    }

    #[test]
    fn trace_job_span_starts_at_job_start_not_submit() {
        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        sim.submit_at(0.0, req("first", 1, 1, 100.0, 100.0));
        sim.submit_at(1.0, req("second", 1, 1, 50.0, 50.0));
        sim.run_to_completion();
        let second = sim
            .trace_events()
            .iter()
            .find(|e| e.label == "job second")
            .expect("span");
        assert_eq!(second.t, SimTime::from_secs(100));
    }

    #[test]
    fn offline_node_takes_no_new_placements() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::Fifo);
        assert!(sim.set_offline(0));
        assert!(!sim.set_offline(0), "double offline is a no-op");
        assert!(sim.is_offline(0));
        assert_eq!(sim.offline_nodes(), vec![0]);
        let j = sim.submit_at(0.0, req("steered", 1, 2, 10.0, 5.0));
        sim.run_to_completion();
        assert_eq!(sim.job(j).unwrap().placement, vec![1]);
        assert!(sim.set_online(0));
        assert!(!sim.set_online(0));
    }

    #[test]
    fn online_restarts_blocked_queue() {
        let mut sim = ClusterSim::new(1, 2, SchedPolicy::Fifo);
        sim.set_offline(0);
        let j = sim.submit_at(0.0, req("waits", 1, 2, 10.0, 5.0));
        sim.run_until(1.0);
        assert!(sim.job(j).unwrap().wait_s().is_none());
        sim.set_online(0);
        sim.run_to_completion();
        assert!(matches!(
            sim.job(j).unwrap().state,
            JobState::Completed { .. }
        ));
    }

    #[test]
    fn requeue_is_lossless_and_ignores_stale_end() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::Fifo);
        let j = sim.submit_at(0.0, req("evicted", 1, 2, 100.0, 50.0));
        sim.run_until(10.0);
        assert_eq!(sim.running_on(0), vec![j]);
        assert!(!sim.node_idle(0));
        sim.set_offline(0);
        assert_eq!(sim.requeue_jobs_on(0), vec![j]);
        assert!(sim.node_idle(0));
        // restarts immediately on node 1; the stale end at t=50 must not
        // complete the new run (it would credit only 40s of work)
        sim.run_to_completion();
        let job = sim.job(j).unwrap();
        assert_eq!(job.placement, vec![1]);
        assert!(
            matches!(job.state, JobState::Completed { start_s, end_s } if start_s == 10.0 && end_s == 60.0),
            "restarted run must span 10..60, got {:?}",
            job.state
        );
        // exactly one job span, charged for the full restarted run only
        let spans: Vec<_> = sim
            .trace_events()
            .iter()
            .filter(|e| e.label == "job evicted")
            .collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(sim.used_core_seconds(), 2.0 * 50.0);
        // requeue left a mark in the trace
        assert!(sim
            .trace_events()
            .iter()
            .any(|e| e.label == "requeue evicted"));
    }

    #[test]
    fn drain_then_online_resumes_service() {
        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        let j = sim.submit_at(0.0, req("v", 1, 1, 100.0, 30.0));
        sim.run_until(5.0);
        sim.set_offline(0);
        sim.requeue_jobs_on(0);
        sim.run_until(20.0);
        assert!(
            sim.job(j).unwrap().state == JobState::Queued,
            "only node offline: job waits"
        );
        sim.set_online(0);
        sim.run_to_completion();
        assert!(
            matches!(sim.job(j).unwrap().state, JobState::Completed { start_s, end_s } if start_s == 20.0 && end_s == 50.0)
        );
    }

    #[test]
    fn add_node_grows_capacity_and_starts_queue() {
        let mut sim = ClusterSim::new(1, 2, SchedPolicy::Fifo);
        sim.submit_at(0.0, req("running", 1, 2, 100.0, 100.0));
        let waiting = sim.submit_at(1.0, req("waiting", 1, 2, 50.0, 50.0));
        sim.run_until(5.0);
        assert_eq!(sim.queue_depth(), 1);
        assert_eq!(sim.add_node(), 1);
        assert_eq!(sim.node_count(), 2);
        assert_eq!(sim.active_node_count(), 2);
        assert_eq!(sim.queue_depth(), 0, "queued job starts on the new node");
        sim.run_to_completion();
        assert_eq!(sim.job(waiting).unwrap().placement, vec![1]);
        assert!(sim.trace_events().iter().any(|e| e.label == "add node 1"));
    }

    #[test]
    fn retired_node_refuses_service_and_online() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::Fifo);
        sim.set_offline(1);
        assert!(sim.retire_node(1));
        assert!(!sim.retire_node(1), "double retire is a no-op");
        assert!(sim.is_retired(1));
        assert_eq!(sim.retired_nodes(), vec![1]);
        assert_eq!(sim.active_node_count(), 1);
        assert!(!sim.set_online(1), "retired nodes stay out of service");
        let j = sim.submit_at(0.0, req("steered", 1, 2, 10.0, 5.0));
        sim.run_to_completion();
        assert_eq!(sim.job(j).unwrap().placement, vec![0]);
        assert!(sim
            .trace_events()
            .iter()
            .any(|e| e.label == "retire node 1"));
    }

    #[test]
    fn retire_without_prior_offline_still_blocks_placement() {
        let mut sim = ClusterSim::new(2, 2, SchedPolicy::Fifo);
        assert!(sim.retire_node(0));
        assert!(sim.is_offline(0), "retire implies offline");
        let j = sim.submit_at(0.0, req("j", 1, 1, 10.0, 5.0));
        sim.run_to_completion();
        assert_eq!(sim.job(j).unwrap().placement, vec![1]);
    }

    #[test]
    #[should_panic(expected = "idle")]
    fn retire_busy_node_panics() {
        let mut sim = ClusterSim::new(1, 2, SchedPolicy::Fifo);
        sim.submit_at(0.0, req("busy", 1, 2, 100.0, 100.0));
        sim.run_until(5.0);
        sim.retire_node(0);
    }

    #[test]
    fn queue_depth_ignores_held_jobs() {
        let mut sim = ClusterSim::new(1, 1, SchedPolicy::Fifo);
        sim.submit_at(0.0, req("running", 1, 1, 100.0, 100.0));
        let held = sim.submit_at(1.0, req("held", 1, 1, 10.0, 5.0));
        sim.submit_at(2.0, req("queued", 1, 1, 10.0, 5.0));
        sim.run_until(3.0);
        assert_eq!(sim.queue_depth(), 2);
        sim.hold(held);
        assert_eq!(sim.queue_depth(), 1);
    }

    #[test]
    fn kill_evicts_a_running_job_and_frees_its_cores() {
        let mut sim = ClusterSim::new(1, 2, SchedPolicy::Fifo);
        let victim = sim.submit_at(0.0, req("victim", 1, 2, 1000.0, 900.0));
        let next = sim.submit_at(0.0, req("next", 1, 2, 10.0, 5.0));
        sim.run_until(1.0);
        assert!(matches!(
            sim.job(victim).unwrap().state,
            JobState::Running { .. }
        ));
        assert!(sim.kill(victim), "running job must be killable");
        assert!(!sim.kill(victim), "already dead");
        assert_eq!(sim.job(victim).unwrap().state, JobState::Cancelled);
        // the freed cores go straight to the next queued job, and the
        // victim's stale end event never resurrects it
        sim.run_to_completion();
        assert!(matches!(
            sim.job(next).unwrap().state,
            JobState::Completed { .. }
        ));
        assert_eq!(sim.job(victim).unwrap().state, JobState::Cancelled);
        let served = sim
            .jobs()
            .filter(|j| matches!(j.state, JobState::Completed { .. }))
            .count();
        assert_eq!(served, 1);
    }

    #[test]
    fn no_oversubscription_ever() {
        // a randomized soak: run many jobs and assert free cores never
        // go negative (they can't by construction, but the invariant is
        // that placements are disjoint at any instant)
        let mut sim = ClusterSim::new(4, 4, SchedPolicy::EasyBackfill);
        let mut t = 0.0;
        for i in 0..40 {
            let nodes = 1 + (i % 4) as u32;
            let ppn = 1 + (i % 3) as u32;
            sim.submit_at(
                t,
                req(&format!("j{i}"), nodes, ppn, 50.0 + (i as f64), 40.0),
            );
            t += 3.0;
        }
        sim.run_to_completion();
        assert_eq!(sim.completed().len(), 40);
        // all cores free at the end
        assert_eq!(sim.free.iter().sum::<u32>(), 16);
        // utilization numerator sane
        assert!(sim.used_core_seconds() > 0.0);
    }
}
