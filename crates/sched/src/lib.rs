//! # xcbc-sched — resource-manager and scheduler substrate
//!
//! XCBC ships "Torque, SLURM, sge (choose one)" as job managers and Maui
//! as the scheduler (Table 1/2). This crate provides a discrete-event
//! cluster simulator with pluggable scheduling policies (FIFO, EASY
//! backfill, Maui-style priority + backfill) and thin façades exposing
//! each resource manager's command vocabulary (`qsub`/`qstat`,
//! `sbatch`/`squeue`, SGE slot semantics), so the XNIT workflow of
//! *changing the scheduler on a running cluster* (§8) is exercisable.
//!
//! ```
//! use xcbc_sched::{ClusterSim, JobRequest, SchedPolicy};
//!
//! let mut sim = ClusterSim::new(6, 2, SchedPolicy::Fifo); // a LittleFe
//! sim.submit_at(0.0, JobRequest::new("mpi-hello", 6, 2, 100.0, 90.0));
//! sim.run_to_completion();
//! assert_eq!(sim.completed().len(), 1);
//! ```

pub mod accounting;
pub mod arrays;
pub mod condor;
pub mod dist;
pub mod exp;
pub mod job;
pub mod metrics;
pub mod policy;
pub mod rm;
pub mod sge;
pub mod sim;
pub mod slurm;
pub mod torque;
pub mod workload;

pub use accounting::{usage_report, UsageReport, UserUsage};
pub use arrays::{submit_array, JobArray};
pub use condor::{CondorJob, CondorPool, CondorState};
pub use dist::{sample_weighted, Dist};
pub use exp::{run_grid, run_point, ExpGrid, ExpPoint, ExpReport, RunResult};
pub use job::{Job, JobId, JobRequest, JobState};
pub use metrics::SimMetrics;
pub use policy::SchedPolicy;
pub use rm::{run_workload, ResourceManager, RmKind};
pub use sge::SgeCell;
pub use sim::{ClusterSim, Reservation};
pub use slurm::Slurm;
pub use torque::TorqueServer;
pub use workload::{
    ArrivalProcess, Diurnal, JobStream, QueueClass, UserMix, WidthMix, WorkloadSpec,
};
