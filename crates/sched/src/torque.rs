//! Torque/PBS façade (with Maui as the scheduler, the XCBC default:
//! Table 2 lists "maui, torque" under Scheduler and Resource Manager).

use crate::job::{JobRequest, JobState};
use crate::policy::SchedPolicy;
use crate::rm::{parse_numeric_id, ResourceManager};
use crate::sim::ClusterSim;

/// A pbs_server + maui pair on one cluster.
#[derive(Debug)]
pub struct TorqueServer {
    sim: ClusterSim,
    server_name: String,
}

impl TorqueServer {
    /// Torque with the Maui scheduler (default XCBC configuration).
    pub fn with_maui(server_name: &str, nodes: usize, cores_per_node: u32) -> Self {
        TorqueServer {
            sim: ClusterSim::new(nodes, cores_per_node, SchedPolicy::maui_default()),
            server_name: server_name.to_string(),
        }
    }

    /// Torque alone (pbs_sched FIFO) — what you get before Maui is set up.
    pub fn fifo_only(server_name: &str, nodes: usize, cores_per_node: u32) -> Self {
        TorqueServer {
            sim: ClusterSim::new(nodes, cores_per_node, SchedPolicy::Fifo),
            server_name: server_name.to_string(),
        }
    }

    /// `qsub -l nodes=N:ppn=P,walltime=W`.
    pub fn qsub(&mut self, req: JobRequest) -> String {
        let id = self.sim.submit(req);
        format!("{id}.{}", self.server_name)
    }

    /// `qstat` output.
    pub fn qstat(&self) -> String {
        let mut out = format!(
            "Job ID                    Name             State  Nodes\n{}\n",
            "-".repeat(56)
        );
        for j in self.sim.jobs() {
            let state = match j.state {
                JobState::Queued => "Q",
                JobState::Running { .. } => "R",
                JobState::Completed { .. } => "C",
                JobState::TimedOut { .. } => "E",
                JobState::Cancelled => "C",
            };
            out.push_str(&format!(
                "{:<25} {:<16} {:<6} {}\n",
                format!("{}.{}", j.id, self.server_name),
                j.request.name,
                state,
                j.request.nodes
            ));
        }
        out
    }

    /// `pbsnodes -a`-style node listing.
    pub fn pbsnodes(&self) -> String {
        let mut out = String::new();
        for i in 0..self.sim.node_count() {
            let state = if self.sim.is_offline(i) {
                "offline"
            } else {
                "free"
            };
            out.push_str(&format!(
                "compute-0-{i}\n     state = {state}\n     np = ?\n"
            ));
        }
        out
    }

    /// `pbsnodes -o <node>`: mark a node offline (drain).
    pub fn pbsnodes_offline(&mut self, node: usize) -> bool {
        self.sim.set_offline(node)
    }

    /// `pbsnodes -c <node>`: clear the offline state.
    pub fn pbsnodes_clear(&mut self, node: usize) -> bool {
        self.sim.set_online(node)
    }

    /// `qmgr -c "create node compute-0-N"`: add a node to the server's
    /// node list (elastic scale-up). Returns the new node's index.
    pub fn qmgr_create_node(&mut self) -> usize {
        self.sim.add_node()
    }

    /// `qmgr -c "delete node compute-0-N"`: permanently remove a
    /// drained node.
    pub fn qmgr_delete_node(&mut self, node: usize) -> bool {
        self.sim.retire_node(node)
    }

    /// `qdel <id>`.
    pub fn qdel(&mut self, id: &str) -> bool {
        parse_numeric_id(id)
            .map(|n| self.sim.cancel(n))
            .unwrap_or(false)
    }
}

impl ResourceManager for TorqueServer {
    fn package_name(&self) -> &'static str {
        "torque"
    }

    fn submit_command(&self) -> &'static str {
        "qsub"
    }

    fn submit(&mut self, req: JobRequest) -> String {
        self.qsub(req)
    }

    fn cancel(&mut self, id: &str) -> bool {
        self.qdel(id)
    }

    fn status(&self) -> String {
        self.qstat()
    }

    fn advance_to(&mut self, t: f64) {
        self.sim.run_until(t);
    }

    fn drain(&mut self) {
        self.sim.run_to_completion();
    }

    fn sim(&self) -> &ClusterSim {
        &self.sim
    }

    fn sim_mut(&mut self) -> &mut ClusterSim {
        &mut self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rm::run_workload;

    #[test]
    fn qsub_returns_pbs_style_id() {
        let mut t = TorqueServer::with_maui("littlefe", 6, 2);
        let id = t.qsub(JobRequest::new("hpl", 6, 2, 100.0, 90.0));
        assert_eq!(id, "1.littlefe");
        let id2 = t.qsub(JobRequest::new("hpl2", 1, 1, 100.0, 90.0));
        assert_eq!(id2, "2.littlefe");
    }

    #[test]
    fn qstat_shows_states() {
        let mut t = TorqueServer::with_maui("littlefe", 1, 2);
        t.qsub(JobRequest::new("running", 1, 2, 100.0, 90.0));
        t.qsub(JobRequest::new("waiting", 1, 2, 100.0, 90.0));
        t.advance_to(1.0);
        let q = t.qstat();
        assert!(q.contains("running") && q.contains(" R "));
        assert!(q.contains("waiting") && q.contains(" Q "));
    }

    #[test]
    fn qdel_cancels_queued() {
        let mut t = TorqueServer::with_maui("littlefe", 1, 1);
        t.qsub(JobRequest::new("running", 1, 1, 100.0, 90.0));
        let id = t.qsub(JobRequest::new("victim", 1, 1, 100.0, 90.0));
        t.advance_to(1.0);
        assert!(t.qdel(&id));
        assert!(!t.qdel("999.littlefe"));
        assert!(!t.qdel("garbage"));
    }

    #[test]
    fn maui_beats_fifo_on_mixed_workload() {
        let workload: Vec<(f64, JobRequest)> = (0..30)
            .map(|i| {
                let (nodes, ppn, run) = if i % 5 == 0 {
                    (6, 2, 600.0)
                } else {
                    (1, 1, 60.0)
                };
                (
                    i as f64 * 10.0,
                    JobRequest::new(&format!("j{i}"), nodes, ppn, run * 1.5, run),
                )
            })
            .collect();
        let mut fifo = TorqueServer::fifo_only("c", 6, 2);
        let m_fifo = run_workload(&mut fifo, workload.clone());
        let mut maui = TorqueServer::with_maui("c", 6, 2);
        let m_maui = run_workload(&mut maui, workload);
        assert!(
            m_maui.mean_wait_s <= m_fifo.mean_wait_s,
            "backfill should not increase mean wait: {m_maui:?} vs {m_fifo:?}"
        );
        assert!(m_maui.utilization >= m_fifo.utilization - 1e-9);
    }

    #[test]
    fn pbsnodes_lists_all() {
        let t = TorqueServer::with_maui("littlefe", 6, 2);
        assert_eq!(t.pbsnodes().matches("state = free").count(), 6);
    }

    #[test]
    fn pbsnodes_offline_drains_node() {
        let mut t = TorqueServer::with_maui("littlefe", 2, 2);
        assert!(t.pbsnodes_offline(1));
        assert_eq!(t.pbsnodes().matches("state = offline").count(), 1);
        t.qsub(JobRequest::new("steered", 1, 2, 10.0, 5.0));
        t.drain();
        assert_eq!(t.sim().running_on(1), vec![]);
        assert!(t.pbsnodes_clear(1));
        assert_eq!(t.pbsnodes().matches("state = free").count(), 2);
    }

    #[test]
    fn qmgr_node_lifecycle() {
        let mut t = TorqueServer::with_maui("littlefe", 1, 2);
        assert_eq!(t.qmgr_create_node(), 1);
        assert_eq!(t.pbsnodes().matches("state = free").count(), 2);
        assert!(t.pbsnodes_offline(1));
        assert!(t.qmgr_delete_node(1));
        assert!(!t.pbsnodes_clear(1), "deleted node stays offline");
        assert_eq!(t.queue_depth(), 0);
    }

    #[test]
    fn trait_facade() {
        let mut t = TorqueServer::with_maui("littlefe", 2, 2);
        assert_eq!(t.package_name(), "torque");
        assert_eq!(t.submit_command(), "qsub");
        let id = ResourceManager::submit(&mut t, JobRequest::new("x", 1, 1, 10.0, 5.0));
        t.drain();
        assert!(id.contains("littlefe"));
        assert_eq!(t.metrics().jobs_finished, 1);
    }
}
