//! Sun Grid Engine façade (the third "choose one" option).
//!
//! SGE thinks in *slots* rather than nodes×ppn: a parallel-environment
//! request `-pe mpi N` asks for N slots anywhere. We map slot requests
//! onto the node-granular simulator by packing slots one per core.

use crate::job::{JobRequest, JobState};
use crate::policy::SchedPolicy;
use crate::rm::{parse_numeric_id, ResourceManager};
use crate::sim::ClusterSim;

/// An SGE cell.
#[derive(Debug)]
pub struct SgeCell {
    sim: ClusterSim,
    cores_per_node: u32,
    nodes: usize,
}

impl SgeCell {
    pub fn new(nodes: usize, cores_per_node: u32) -> Self {
        SgeCell {
            sim: ClusterSim::new(nodes, cores_per_node, SchedPolicy::EasyBackfill),
            cores_per_node,
            nodes,
        }
    }

    /// Translate a slot count into a nodes×ppn shape: fill whole nodes,
    /// then round up (SGE's `$fill_up` allocation rule). Returns `None`
    /// when the cell cannot ever satisfy the request.
    pub fn shape_for_slots(&self, slots: u32) -> Option<(u32, u32)> {
        if slots == 0 || slots > self.cores_per_node * self.nodes as u32 {
            return None;
        }
        if slots <= self.cores_per_node {
            Some((1, slots))
        } else {
            // whole nodes; remainder rounds the node count up with full ppn
            let nodes = slots.div_ceil(self.cores_per_node);
            Some((nodes, self.cores_per_node))
        }
    }

    /// `qsub -pe mpi <slots>`. Returns `Err` for impossible requests.
    pub fn qsub_pe(
        &mut self,
        name: &str,
        slots: u32,
        walltime_s: f64,
        runtime_s: f64,
    ) -> Result<String, String> {
        let (nodes, ppn) = self
            .shape_for_slots(slots)
            .ok_or_else(|| format!("cannot satisfy -pe mpi {slots} on this cell"))?;
        let id = self
            .sim
            .submit(JobRequest::new(name, nodes, ppn, walltime_s, runtime_s));
        Ok(id.to_string())
    }

    /// `qmod -d <queue>@<node>`: disable the queue instance on a node.
    pub fn qmod_disable(&mut self, node: usize) -> bool {
        self.sim.set_offline(node)
    }

    /// `qmod -e <queue>@<node>`: re-enable it.
    pub fn qmod_enable(&mut self, node: usize) -> bool {
        self.sim.set_online(node)
    }

    /// `qconf -ae <node>`: add an execution host to the cell. Returns
    /// the new node's index; slot-shape math sees the new capacity.
    pub fn qconf_add_exec(&mut self) -> usize {
        let node = self.sim.add_node();
        self.nodes += 1;
        node
    }

    /// `qconf -de <node>`: permanently remove a drained execution host.
    /// The husk keeps its index, so the cell's slot ceiling is not
    /// shrunk retroactively for queued requests.
    pub fn qconf_delete_exec(&mut self, node: usize) -> bool {
        self.sim.retire_node(node)
    }

    /// `qstat` (SGE flavor).
    pub fn qstat(&self) -> String {
        let mut out = String::from("job-ID  name      state\n");
        for j in self.sim.jobs() {
            let st = match j.state {
                JobState::Queued => "qw",
                JobState::Running { .. } => "r",
                JobState::Completed { .. } => "z",
                JobState::TimedOut { .. } => "Eqw",
                JobState::Cancelled => "dz",
            };
            out.push_str(&format!("{:<7} {:<9} {}\n", j.id, j.request.name, st));
        }
        out
    }
}

impl ResourceManager for SgeCell {
    fn package_name(&self) -> &'static str {
        "gridengine"
    }

    fn submit_command(&self) -> &'static str {
        "qsub"
    }

    fn submit(&mut self, req: JobRequest) -> String {
        self.sim.submit(req).to_string()
    }

    fn cancel(&mut self, id: &str) -> bool {
        parse_numeric_id(id)
            .map(|n| self.sim.cancel(n))
            .unwrap_or(false)
    }

    fn status(&self) -> String {
        self.qstat()
    }

    fn advance_to(&mut self, t: f64) {
        self.sim.run_until(t);
    }

    fn drain(&mut self) {
        self.sim.run_to_completion();
    }

    fn sim(&self) -> &ClusterSim {
        &self.sim
    }

    fn sim_mut(&mut self) -> &mut ClusterSim {
        &mut self.sim
    }

    fn add_node(&mut self) -> usize {
        // keep the slot-shape node count in step with the simulator
        self.qconf_add_exec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_shapes() {
        let cell = SgeCell::new(6, 2); // a LittleFe
        assert_eq!(cell.shape_for_slots(1), Some((1, 1)));
        assert_eq!(cell.shape_for_slots(2), Some((1, 2)));
        assert_eq!(cell.shape_for_slots(3), Some((2, 2)));
        assert_eq!(cell.shape_for_slots(12), Some((6, 2)));
        assert_eq!(cell.shape_for_slots(13), None);
        assert_eq!(cell.shape_for_slots(0), None);
    }

    #[test]
    fn pe_submission_runs() {
        let mut cell = SgeCell::new(6, 2);
        let id = cell.qsub_pe("mpi-job", 12, 100.0, 80.0).unwrap();
        cell.drain();
        assert_eq!(cell.metrics().jobs_finished, 1);
        assert!(!id.is_empty());
    }

    #[test]
    fn impossible_pe_rejected() {
        let mut cell = SgeCell::new(2, 2);
        assert!(cell.qsub_pe("too-big", 5, 10.0, 5.0).is_err());
    }

    #[test]
    fn qstat_sge_states() {
        let mut cell = SgeCell::new(1, 1);
        cell.qsub_pe("running", 1, 100.0, 50.0).unwrap();
        cell.qsub_pe("waiting", 1, 100.0, 50.0).unwrap();
        cell.advance_to(1.0);
        let q = cell.qstat();
        assert!(q.contains("running") && q.contains(" r"));
        assert!(q.contains("waiting") && q.contains("qw"));
    }

    #[test]
    fn qmod_disable_and_enable() {
        let mut cell = SgeCell::new(2, 2);
        assert!(cell.qmod_disable(0));
        cell.qsub_pe("steered", 2, 10.0, 5.0).unwrap();
        ResourceManager::drain(&mut cell);
        assert_eq!(cell.sim().running_on(0), vec![]);
        assert!(cell.qmod_enable(0));
        // the uniform trait entry points route to the same state
        assert!(cell.offline_node(1));
        assert!(cell.node_idle(1));
        assert!(cell.online_node(1));
    }

    #[test]
    fn qconf_grows_and_shrinks_the_cell() {
        let mut cell = SgeCell::new(1, 2);
        assert_eq!(cell.shape_for_slots(4), None);
        assert_eq!(cell.qconf_add_exec(), 1);
        assert_eq!(cell.shape_for_slots(4), Some((2, 2)));
        // the trait entry point keeps slot math in step too
        assert_eq!(ResourceManager::add_node(&mut cell), 2);
        assert_eq!(cell.shape_for_slots(6), Some((3, 2)));
        assert!(cell.qmod_disable(2));
        assert!(cell.qconf_delete_exec(2));
        assert!(!cell.qmod_enable(2), "deleted host stays out");
    }

    #[test]
    fn facade_identity() {
        let cell = SgeCell::new(1, 1);
        assert_eq!(cell.package_name(), "gridengine");
        assert_eq!(cell.submit_command(), "qsub");
    }
}
