//! Seeded sampling distributions for workload synthesis.
//!
//! The open-loop generators in [`crate::workload`] draw interarrival
//! gaps, runtimes, and widths from these distributions. Everything is
//! inverse-CDF (or Box–Muller, for the normal behind the lognormal)
//! over a seeded [`StdRng`], so a `(Dist, seed)` pair is a complete,
//! reproducible description of a sample stream. Each variant documents
//! how many uniform draws one sample consumes; the count is fixed per
//! variant so streams stay aligned under parameter sweeps.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::fmt;

/// A continuous distribution over positive reals (seconds, widths).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Always `value`. Consumes no draws.
    Constant { value: f64 },
    /// Uniform on `[lo, hi)`. One draw.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given mean — Poisson arrivals. One draw.
    Exponential { mean: f64 },
    /// Pareto with shape `alpha`, scale (minimum) `xmin` — the classic
    /// heavy tail; mean is infinite for `alpha <= 1`. One draw.
    Pareto { alpha: f64, xmin: f64 },
    /// Lognormal: `exp(mu + sigma·Z)` for standard normal `Z`. Two
    /// draws (Box–Muller, cosine branch only).
    LogNormal { mu: f64, sigma: f64 },
    /// Log-uniform on `[lo, hi]` — equal mass per decade. One draw.
    LogUniform { lo: f64, hi: f64 },
}

impl Dist {
    /// Lognormal parameterized by its *arithmetic* mean and coefficient
    /// of variation — the form workload papers quote.
    pub fn lognormal_mean_cv(mean: f64, cv: f64) -> Dist {
        let sigma2 = (1.0 + cv * cv).ln();
        Dist::LogNormal {
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            Dist::Constant { value } => value,
            Dist::Uniform { lo, hi } => {
                let u: f64 = rng.gen_range(0.0..1.0);
                lo + (hi - lo) * u
            }
            Dist::Exponential { mean } => {
                // u in (0,1]: avoid ln(0)
                let u: f64 = 1.0 - rng.gen_range(0.0..1.0);
                -mean * u.ln()
            }
            Dist::Pareto { alpha, xmin } => {
                let u: f64 = 1.0 - rng.gen_range(0.0..1.0);
                xmin * u.powf(-1.0 / alpha)
            }
            Dist::LogNormal { mu, sigma } => {
                let u1: f64 = 1.0 - rng.gen_range(0.0..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mu + sigma * z).exp()
            }
            Dist::LogUniform { lo, hi } => {
                let u: f64 = rng.gen_range(0.0..1.0);
                lo * (hi / lo).powf(u)
            }
        }
    }

    /// Theoretical mean (`f64::INFINITY` where it diverges).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant { value } => value,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exponential { mean } => mean,
            Dist::Pareto { alpha, xmin } => {
                if alpha > 1.0 {
                    alpha * xmin / (alpha - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::LogUniform { lo, hi } => {
                if (hi - lo).abs() < f64::EPSILON {
                    lo
                } else {
                    (hi - lo) / (hi / lo).ln()
                }
            }
        }
    }

    /// Theoretical coefficient of variation, std/mean
    /// (`f64::INFINITY` where the variance diverges).
    pub fn cv(&self) -> f64 {
        match *self {
            Dist::Constant { .. } => 0.0,
            Dist::Uniform { lo, hi } => {
                let m = (lo + hi) / 2.0;
                if m == 0.0 {
                    0.0
                } else {
                    (hi - lo) / (12.0f64.sqrt() * m)
                }
            }
            Dist::Exponential { .. } => 1.0,
            Dist::Pareto { alpha, .. } => {
                if alpha > 2.0 {
                    1.0 / (alpha * (alpha - 2.0)).sqrt()
                } else {
                    f64::INFINITY
                }
            }
            Dist::LogNormal { sigma, .. } => ((sigma * sigma).exp() - 1.0).sqrt(),
            Dist::LogUniform { lo, hi } => {
                let m = self.mean();
                if (hi - lo).abs() < f64::EPSILON || m == 0.0 {
                    0.0
                } else {
                    let m2 = (hi * hi - lo * lo) / (2.0 * (hi / lo).ln());
                    (m2 / (m * m) - 1.0).max(0.0).sqrt()
                }
            }
        }
    }

    /// Parse the compact text form the CLI grids use:
    /// `const:V` (or a bare number), `uniform:LO:HI`, `exp:MEAN`,
    /// `pareto:ALPHA:XMIN`, `lognorm:MU:SIGMA`, `loguniform:LO:HI`.
    pub fn parse(s: &str) -> Result<Dist, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let num = |p: &str| -> Result<f64, String> {
            p.trim()
                .parse::<f64>()
                .map_err(|_| format!("bad number {p:?} in distribution {s:?}"))
        };
        let arity = |want: usize| -> Result<(), String> {
            if parts.len() == want + 1 {
                Ok(())
            } else {
                Err(format!(
                    "distribution {:?} takes {} parameter(s), got {}",
                    parts[0],
                    want,
                    parts.len() - 1
                ))
            }
        };
        let dist = match parts[0].trim() {
            "const" => {
                arity(1)?;
                Dist::Constant {
                    value: num(parts[1])?,
                }
            }
            "uniform" => {
                arity(2)?;
                Dist::Uniform {
                    lo: num(parts[1])?,
                    hi: num(parts[2])?,
                }
            }
            "exp" => {
                arity(1)?;
                Dist::Exponential {
                    mean: num(parts[1])?,
                }
            }
            "pareto" => {
                arity(2)?;
                Dist::Pareto {
                    alpha: num(parts[1])?,
                    xmin: num(parts[2])?,
                }
            }
            "lognorm" => {
                arity(2)?;
                Dist::LogNormal {
                    mu: num(parts[1])?,
                    sigma: num(parts[2])?,
                }
            }
            "loguniform" => {
                arity(2)?;
                Dist::LogUniform {
                    lo: num(parts[1])?,
                    hi: num(parts[2])?,
                }
            }
            other => {
                // bare number → constant
                if parts.len() == 1 {
                    if let Ok(v) = other.parse::<f64>() {
                        return Ok(Dist::Constant { value: v });
                    }
                }
                return Err(format!(
                    "unknown distribution {other:?} (want const/uniform/exp/pareto/lognorm/loguniform)"
                ));
            }
        };
        dist.validate()?;
        Ok(dist)
    }

    /// Reject parameterizations that cannot produce a sane positive
    /// stream (used by [`Dist::parse`] and spec normalization).
    pub fn validate(&self) -> Result<(), String> {
        let bad = |msg: String| Err(msg);
        match *self {
            Dist::Constant { value } => {
                if !value.is_finite() || value < 0.0 {
                    return bad(format!("const value must be finite and >= 0, got {value}"));
                }
            }
            Dist::Uniform { lo, hi } | Dist::LogUniform { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite()) || lo > hi {
                    return bad(format!(
                        "range must be finite with lo <= hi, got {lo}..{hi}"
                    ));
                }
                if matches!(self, Dist::LogUniform { .. }) && lo <= 0.0 {
                    return bad(format!("loguniform needs lo > 0, got {lo}"));
                }
            }
            Dist::Exponential { mean } => {
                if !mean.is_finite() || mean <= 0.0 {
                    return bad(format!("exp mean must be > 0, got {mean}"));
                }
            }
            Dist::Pareto { alpha, xmin } => {
                if !(alpha.is_finite() && xmin.is_finite()) || alpha <= 0.0 || xmin <= 0.0 {
                    return bad(format!(
                        "pareto needs alpha > 0 and xmin > 0, got alpha={alpha} xmin={xmin}"
                    ));
                }
            }
            Dist::LogNormal { mu, sigma } => {
                if !(mu.is_finite() && sigma.is_finite()) || sigma < 0.0 {
                    return bad(format!(
                        "lognorm needs finite mu and sigma >= 0, got mu={mu} sigma={sigma}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Feed this distribution into a digest (variant tag + parameter
    /// bits), for [`crate::workload::WorkloadSpec::digest`].
    pub fn write_digest(&self, h: &mut Fnv64) {
        match *self {
            Dist::Constant { value } => h.write_u64(1).write_f64(value),
            Dist::Uniform { lo, hi } => h.write_u64(2).write_f64(lo).write_f64(hi),
            Dist::Exponential { mean } => h.write_u64(3).write_f64(mean),
            Dist::Pareto { alpha, xmin } => h.write_u64(4).write_f64(alpha).write_f64(xmin),
            Dist::LogNormal { mu, sigma } => h.write_u64(5).write_f64(mu).write_f64(sigma),
            Dist::LogUniform { lo, hi } => h.write_u64(6).write_f64(lo).write_f64(hi),
        };
    }
}

impl fmt::Display for Dist {
    /// The canonical text form; `Dist::parse` round-trips it.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Dist::Constant { value } => write!(f, "const:{value}"),
            Dist::Uniform { lo, hi } => write!(f, "uniform:{lo}:{hi}"),
            Dist::Exponential { mean } => write!(f, "exp:{mean}"),
            Dist::Pareto { alpha, xmin } => write!(f, "pareto:{alpha}:{xmin}"),
            Dist::LogNormal { mu, sigma } => write!(f, "lognorm:{mu}:{sigma}"),
            Dist::LogUniform { lo, hi } => write!(f, "loguniform:{lo}:{hi}"),
        }
    }
}

/// Sample an index from discrete, non-negative `weights` (a categorical
/// draw): index `i` is chosen with probability `weights[i] / Σ weights`.
/// Zero-weight entries are never chosen; if every weight is zero (or
/// the slice is empty) the draw falls back to index 0. One RNG word is
/// consumed per call, so callers interleaving this with other draws
/// stay stream-stable. The multi-tenant service uses it for skewed
/// tenant and operation mixes over [`Dist`]-sampled arrival gaps.
pub fn sample_weighted(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    if total <= 0.0 {
        return 0;
    }
    let mut point = unit * total;
    for (i, &w) in weights.iter().enumerate() {
        if !(w.is_finite() && w > 0.0) {
            continue;
        }
        if point < w {
            return i;
        }
        point -= w;
    }
    // float round-off on the last positive weight
    weights
        .iter()
        .rposition(|w| w.is_finite() && *w > 0.0)
        .unwrap_or(0)
}

/// FNV-1a, the same digest the yum solve cache keys on — kept local so
/// the scheduler crate stays dependency-free.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf29ce484222325)
    }
}

impl Fnv64 {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
        self
    }

    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_bytes(s.as_bytes()).write_bytes(&[0xff])
    }

    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn samples(d: Dist, seed: u64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn weighted_draws_respect_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[sample_weighted(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight is never drawn");
        assert!(counts[2] > counts[0] * 2, "3:1 skew shows up: {counts:?}");
        assert_eq!(counts[0] + counts[2], 4000);
    }

    #[test]
    fn weighted_draw_degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(sample_weighted(&mut rng, &[]), 0);
        assert_eq!(sample_weighted(&mut rng, &[0.0, 0.0]), 0);
        assert_eq!(sample_weighted(&mut rng, &[0.0, 5.0]), 1);
        // deterministic for a fixed seed
        let a: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32)
                .map(|_| sample_weighted(&mut r, &[2.0, 1.0, 1.0]))
                .collect()
        };
        let b: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32)
                .map(|_| sample_weighted(&mut r, &[2.0, 1.0, 1.0]))
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        for d in [
            Dist::Exponential { mean: 600.0 },
            Dist::Pareto {
                alpha: 2.5,
                xmin: 60.0,
            },
            Dist::LogNormal {
                mu: 5.5,
                sigma: 1.2,
            },
            Dist::LogUniform {
                lo: 30.0,
                hi: 1800.0,
            },
            Dist::Uniform { lo: 1.0, hi: 9.0 },
        ] {
            assert_eq!(samples(d, 42, 64), samples(d, 42, 64), "{d}");
            assert_ne!(samples(d, 42, 64), samples(d, 43, 64), "{d}");
        }
    }

    #[test]
    fn samples_respect_supports() {
        for x in samples(
            Dist::Pareto {
                alpha: 1.5,
                xmin: 60.0,
            },
            7,
            1000,
        ) {
            assert!(x >= 60.0);
        }
        for x in samples(
            Dist::LogUniform {
                lo: 30.0,
                hi: 1800.0,
            },
            7,
            1000,
        ) {
            assert!((30.0..=1800.0).contains(&x));
        }
        for x in samples(Dist::Exponential { mean: 10.0 }, 7, 1000) {
            assert!(x >= 0.0 && x.is_finite());
        }
    }

    #[test]
    fn parse_round_trips_display() {
        for s in [
            "const:42",
            "uniform:1:9",
            "exp:600",
            "pareto:1.5:60",
            "lognorm:5.5:1.2",
            "loguniform:30:1800",
        ] {
            let d = Dist::parse(s).unwrap();
            assert_eq!(Dist::parse(&d.to_string()).unwrap(), d, "{s}");
        }
        assert_eq!(Dist::parse("120").unwrap(), Dist::Constant { value: 120.0 });
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "exp",
            "exp:0",
            "exp:-3",
            "exp:1:2",
            "pareto:0:60",
            "loguniform:0:10",
            "uniform:9:1",
            "weibull:1:2",
            "lognorm:nope:1",
        ] {
            assert!(Dist::parse(s).is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn theoretical_moments() {
        let p = Dist::Pareto {
            alpha: 3.0,
            xmin: 2.0,
        };
        assert!((p.mean() - 3.0).abs() < 1e-12);
        assert!((p.cv() - 1.0 / 3.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(
            Dist::Pareto {
                alpha: 1.0,
                xmin: 2.0
            }
            .mean(),
            f64::INFINITY
        );
        let ln = Dist::lognormal_mean_cv(300.0, 2.0);
        assert!((ln.mean() - 300.0).abs() < 1e-9);
        assert!((ln.cv() - 2.0).abs() < 1e-9);
        assert_eq!(Dist::Exponential { mean: 5.0 }.cv(), 1.0);
    }

    #[test]
    fn digest_distinguishes_variants_and_params() {
        let digest = |d: Dist| {
            let mut h = Fnv64::new();
            d.write_digest(&mut h);
            h.finish()
        };
        let a = digest(Dist::Exponential { mean: 600.0 });
        let b = digest(Dist::Exponential { mean: 601.0 });
        let c = digest(Dist::Constant { value: 600.0 });
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, digest(Dist::Exponential { mean: 600.0 }));
    }
}
