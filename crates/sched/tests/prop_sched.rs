//! Property tests for the scheduler: random workloads always drain, never
//! oversubscribe, and reservations are never violated.

use proptest::prelude::*;
use xcbc_sched::{ClusterSim, JobRequest, JobState, SchedPolicy};

fn policies() -> impl Strategy<Value = SchedPolicy> {
    prop_oneof![
        Just(SchedPolicy::Fifo),
        Just(SchedPolicy::EasyBackfill),
        Just(SchedPolicy::maui_default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every submitted job eventually finishes, regardless of policy and
    /// workload shape, and core accounting balances.
    #[test]
    fn workloads_always_drain(
        policy in policies(),
        jobs in proptest::collection::vec(
            (1u32..4, 1u32..3, 1.0f64..200.0, 0.5f64..300.0, 0.0f64..500.0),
            1..40,
        ),
    ) {
        let mut sim = ClusterSim::new(4, 2, policy);
        let mut expected_core_seconds = 0.0;
        let mut sorted = jobs;
        sorted.sort_by(|a, b| a.4.total_cmp(&b.4));
        for (i, (nodes, ppn, wall, run, at)) in sorted.into_iter().enumerate() {
            let req = JobRequest::new(&format!("j{i}"), nodes, ppn, wall, run);
            expected_core_seconds += req.cores() as f64 * req.effective_runtime();
            sim.submit_at(at, req);
        }
        sim.run_to_completion();
        let finished = sim.completed().len();
        prop_assert_eq!(finished, sim.jobs().count());
        prop_assert!((sim.used_core_seconds() - expected_core_seconds).abs() < 1e-6);
    }

    /// With a whole-machine reservation, no job's walltime window ever
    /// overlaps it.
    #[test]
    fn reservations_never_violated(
        policy in policies(),
        jobs in proptest::collection::vec((1.0f64..100.0, 0.0f64..400.0), 1..25),
        window_start in 100.0f64..300.0,
    ) {
        let mut sim = ClusterSim::new(2, 2, policy);
        sim.add_reservation("window", vec![0, 1], window_start, window_start + 100.0);
        // compare against the window as the scheduler stores it: times
        // are quantized to integer nanoseconds on the shared clock
        let window_start = sim.reservations()[0].start_s();
        let window_end = sim.reservations()[0].end_s();
        let mut sorted = jobs;
        sorted.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (i, (wall, at)) in sorted.into_iter().enumerate() {
            sim.submit_at(at, JobRequest::new(&format!("j{i}"), 1, 1, wall, wall * 0.9));
        }
        sim.run_to_completion();
        for job in sim.jobs() {
            if let JobState::Completed { start_s, .. } = job.state {
                let wall_end = start_s + job.request.walltime_s;
                prop_assert!(
                    wall_end <= window_start || start_s >= window_end,
                    "job {} [{}, {}] overlaps [{}, {}]",
                    job.request.name, start_s, wall_end, window_start, window_end
                );
            }
        }
    }
}
