//! Statistical property tests for the workload samplers.
//!
//! Two families of properties:
//!
//! 1. **Determinism** — a `(Dist, seed)` or `(WorkloadSpec, seed)` pair
//!    is a complete description of a sample stream: re-sampling with the
//!    same seed reproduces the stream bit-for-bit, and a different seed
//!    produces a different one.
//! 2. **Moment agreement** — over a few thousand samples the empirical
//!    mean and coefficient of variation land within tolerance of the
//!    closed forms `Dist::mean()` / `Dist::cv()` report. The proptest
//!    shim is seeded per (test, case), so these bounds are checked over
//!    a fixed, reproducible set of parameterizations — there is no
//!    flake margin to leave.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xcbc_sched::{Dist, WorkloadSpec};

fn samples(d: Dist, seed: u64, n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| d.sample(&mut rng)).collect()
}

fn mean_cv(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt() / mean)
}

/// Map a variant index plus two unit draws onto a distribution whose
/// mean and CV are both finite and modest enough that a few thousand
/// samples estimate them well. Pareto shape stays above 4.2 so the
/// fourth moment (which controls the CV estimator's variance) exists.
fn well_behaved_dist(kind: usize, a: f64, b: f64) -> Dist {
    match kind {
        0 => Dist::Exponential {
            mean: 10.0 + a * 500.0,
        },
        1 => {
            let lo = 1.0 + a * 20.0;
            Dist::Uniform {
                lo,
                hi: lo + 5.0 + b * 200.0,
            }
        }
        2 => Dist::Pareto {
            alpha: 4.2 + a * 3.0,
            xmin: 1.0 + b * 50.0,
        },
        3 => Dist::LogNormal {
            mu: a * 4.0,
            sigma: 0.1 + b * 0.7,
        },
        4 => {
            let lo = 1.0 + a * 5.0;
            Dist::LogUniform {
                lo,
                hi: lo * (2.0 + b * 20.0),
            }
        }
        _ => Dist::Constant {
            value: 1.0 + a * 100.0,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed, same stream; different seed, different stream.
    #[test]
    fn sampling_is_seed_deterministic(
        kind in 0usize..5,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
        seed in proptest::prelude::any::<u64>(),
    ) {
        let d = well_behaved_dist(kind, a, b);
        prop_assert_eq!(samples(d, seed, 256), samples(d, seed, 256), "{}", d);
        // kind < 5 excludes Constant, whose stream ignores the seed
        prop_assert_ne!(
            samples(d, seed, 256),
            samples(d, seed.wrapping_add(1), 256),
            "{}", d
        );
    }

    /// The empirical mean of 8k samples tracks `Dist::mean()`.
    #[test]
    fn empirical_mean_matches_theory(
        kind in 0usize..6,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
        seed in proptest::prelude::any::<u64>(),
    ) {
        let d = well_behaved_dist(kind, a, b);
        let (mean, _) = mean_cv(&samples(d, seed, 8000));
        let want = d.mean();
        prop_assert!(
            (mean - want).abs() <= 0.15 * want.abs().max(1e-9),
            "{}: empirical mean {} vs theoretical {}", d, mean, want
        );
    }

    /// The empirical CV of 8k samples tracks `Dist::cv()`.
    #[test]
    fn empirical_cv_matches_theory(
        kind in 0usize..5,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
        seed in proptest::prelude::any::<u64>(),
    ) {
        let d = well_behaved_dist(kind, a, b);
        let (_, cv) = mean_cv(&samples(d, seed, 8000));
        let want = d.cv();
        prop_assert!(
            (cv - want).abs() <= 0.30 * want.max(0.05),
            "{}: empirical cv {} vs theoretical {}", d, cv, want
        );
    }

    /// A whole generated job stream is reproducible from (spec, seed):
    /// identical names, shapes, runtimes, and submit times — and a
    /// different seed shifts the arrival sequence.
    #[test]
    fn generated_streams_are_reproducible(
        which in 0usize..3,
        seed in proptest::prelude::any::<u64>(),
        n in 16usize..64,
    ) {
        let spec = match which {
            0 => WorkloadSpec::teaching_lab(),
            1 => WorkloadSpec::campus_research(),
            _ => WorkloadSpec::heavy_tail(),
        };
        let flatten = |jobs: &[(f64, xcbc_sched::JobRequest)]| -> Vec<(u64, String, u32, u32, u64, u64)> {
            jobs.iter()
                .map(|(t, r)| (
                    t.to_bits(),
                    r.name.clone(),
                    r.nodes,
                    r.ppn,
                    r.runtime_s.to_bits(),
                    r.walltime_s.to_bits(),
                ))
                .collect()
        };
        let first = spec.generate(seed, 8, 4, n);
        let again = spec.generate(seed, 8, 4, n);
        prop_assert_eq!(flatten(&first), flatten(&again));
        let other = spec.generate(seed.wrapping_add(1), 8, 4, n);
        prop_assert_ne!(flatten(&first), flatten(&other));
    }
}
