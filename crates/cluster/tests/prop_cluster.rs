//! Property tests for the hardware substrate: power accounting, ring
//! buffers, and BOM arithmetic under randomized inputs.

use proptest::prelude::*;
use xcbc_cluster::cost::Bom;
use xcbc_cluster::{ClusterMonitor, MetricKind, PowerManager, PowerPolicy};

proptest! {
    /// On-demand power never exceeds always-on for the same demand, and
    /// both deliver at least the scheduled window's service.
    #[test]
    fn on_demand_never_costs_more(
        demand in proptest::collection::vec(0u32..6, 1..24),
        hours in 1u32..200,
    ) {
        let cluster = xcbc_cluster::specs::littlefe_modified();
        let always = PowerManager::new(PowerPolicy::AlwaysOn).simulate(&cluster, &demand, hours);
        let od = PowerManager::new(PowerPolicy::on_demand(60.0))
            .simulate(&cluster, &demand, hours);
        prop_assert!(od.energy_kwh <= always.energy_kwh + 1e-9);
        prop_assert!(always.service_fraction >= od.service_fraction - 1e-9);
        prop_assert!(od.energy_kwh >= 0.0);
    }

    /// Ring buffers never exceed capacity and always surface the newest
    /// sample.
    #[test]
    fn monitor_ring_caps_and_latest(
        values in proptest::collection::vec(0.0f64..100.0, 1..100),
        cap in 1usize..16,
    ) {
        let m = ClusterMonitor::new(cap);
        for (i, v) in values.iter().enumerate() {
            m.publish("n0", MetricKind::LoadOne, i as f64, *v);
        }
        // latest value wins regardless of capacity
        let mean = m.cluster_mean(MetricKind::LoadOne).unwrap();
        prop_assert!((mean - values[values.len() - 1]).abs() < 1e-12);
    }

    /// BOM totals are linear: scaling every quantity by k scales the
    /// total by k, and $/GFLOPS rounding is stable.
    #[test]
    fn bom_arithmetic(
        lines in proptest::collection::vec((1.0f64..500.0, 1u32..8), 1..8),
        k in 2u32..4,
    ) {
        let mut single = Bom::new("one");
        let mut scaled = Bom::new("k");
        for (i, (price, qty)) in lines.iter().enumerate() {
            single = single.line(format!("item{i}"), *price, *qty);
            scaled = scaled.line(format!("item{i}"), *price, *qty * k);
        }
        prop_assert!((scaled.total_usd() - single.total_usd() * k as f64).abs() < 1e-6);
        let gf = 100.0;
        prop_assert_eq!(
            single.usd_per_gflops_rounded(gf),
            (single.total_usd() / gf).round() as u32
        );
    }
}
