//! Blueprints of the paper's evaluated systems.
//!
//! * [`littlefe_v4`] — the historical 6-node Atom D510 LittleFe.
//! * [`littlefe_modified`] — §5.1's modified design: Celeron G1840 on
//!   Gigabyte GA-Q87TN, Crucial M550 mSATA per node (Rocks needs disks),
//!   Rosewill low-profile coolers, an individual PSU per node, dual-homed
//!   headnode. 6 nodes, 12 cores, Rpeak 537.6 GF, < 50 lb, ~$3,600.
//! * [`limulus_hpc200`] — §5.2's commercial deskside cluster: 1 head +
//!   3 diskless compute blades, i7-4770S each, one 850 W supply. 4 nodes,
//!   16 cores, Rpeak 793.6 GF, 50 lb, $5,995.

use crate::hw;
use crate::node::{NodeRole, NodeSpec};
use crate::topology::{ClusterSpec, NetworkSpec};

/// Number of nodes in every LittleFe build.
pub const LITTLEFE_NODES: usize = 6;
/// Number of nodes in the Limulus HPC200.
pub const LIMULUS_NODES: usize = 4;

/// Table 5 cost of the modified LittleFe (the paper uses $3,600 in the
/// price/performance arithmetic; the text says "$3,000 to $4,000").
pub const LITTLEFE_COST_USD: f64 = 3600.0;
/// Table 5 cost of the Limulus HPC200.
pub const LIMULUS_COST_USD: f64 = 5995.0;

/// The historical LittleFe v4: six Atom D510 boards, shared supply,
/// diskless (PXE/NFS root) — which is why stock LittleFe cannot run
/// Rocks/XCBC without modification.
pub fn littlefe_v4() -> ClusterSpec {
    let mut c = ClusterSpec::new("LittleFe v4", NetworkSpec::gigabit_ethernet(8));
    c.weight_lbs = 45.0;
    c.shared_psu = Some(hw::LITTLEFE_SHARED_PSU);
    for i in 0..LITTLEFE_NODES {
        let role = if i == 0 {
            NodeRole::Frontend
        } else {
            NodeRole::Compute
        };
        let mut b = NodeSpec::new(node_name(i), role)
            .board(hw::ATOM_BOARD_D510MO)
            .cpu(hw::ATOM_D510)
            .cooler(hw::ATOM_HEATSINK)
            .ram_gb(2);
        if i == 0 {
            // the v4 headnode does carry a disk and a USB NIC for the
            // public side
            b = b.disk(hw::LAPTOP_HDD_500GB).nic(hw::GBE_NIC);
        }
        c.nodes.push(b.build());
    }
    c
}

/// §5.1's modified LittleFe: the exemplar built at IU.
pub fn littlefe_modified() -> ClusterSpec {
    let mut c = ClusterSpec::new(
        "LittleFe (modified, Haswell)",
        NetworkSpec::gigabit_ethernet(8),
    );
    c.weight_lbs = 48.0;
    for i in 0..LITTLEFE_NODES {
        let role = if i == 0 {
            NodeRole::Frontend
        } else {
            NodeRole::Compute
        };
        let mut b = NodeSpec::new(node_name(i), role)
            .board(hw::GA_Q87TN)
            .cpu(hw::CELERON_G1840)
            .cooler(hw::ROSEWILL_RCX_Z775_LP)
            .ram_gb(4)
            .disk(hw::CRUCIAL_M550_MSATA)
            .psu(hw::PER_NODE_PSU);
        if i == 0 {
            // "We used a hard-wired connection using a dual-homed
            // headnode. All nodes utilize the same motherboard, but only
            // one of the two network interfaces will be used on compute
            // nodes."
            b = b.nic(hw::GBE_NIC);
        }
        c.nodes.push(b.build());
    }
    c
}

/// §5.2's Limulus HPC200: head unit plus three diskless compute blades in
/// one deskside case, Scientific Linux, 850 W shared supply, power-managed.
pub fn limulus_hpc200() -> ClusterSpec {
    let mut c = ClusterSpec::new("Limulus HPC200", NetworkSpec::gigabit_ethernet(5));
    c.weight_lbs = 50.0;
    c.shared_psu = Some(hw::LIMULUS_850W_PSU);
    for i in 0..LIMULUS_NODES {
        let role = if i == 0 {
            NodeRole::Frontend
        } else {
            NodeRole::Compute
        };
        let mut b = NodeSpec::new(
            if i == 0 {
                "limulus".to_string()
            } else {
                format!("n{i}")
            },
            role,
        )
        .board(hw::GA_Q87TN)
        .cpu(hw::I7_4770S)
        .cooler(hw::INTEL_STOCK_COOLER) // full-height case: stock cooler fits
        .ram_gb(16);
        if i == 0 {
            // headnode holds the storage ("40TB storage"-style local
            // disks are on the head; computes are diskless)
            b = b
                .disk(hw::LAPTOP_HDD_500GB)
                .disk(hw::LAPTOP_HDD_500GB)
                .nic(hw::GBE_NIC);
        }
        c.nodes.push(b.build());
    }
    c
}

fn node_name(i: usize) -> String {
    if i == 0 {
        "littlefe".to_string()
    } else {
        format!("compute-0-{}", i - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_littlefe_row() {
        let c = littlefe_modified();
        assert_eq!(c.node_count(), 6);
        assert_eq!(c.cpu_count(), 6);
        assert_eq!(c.compute_cores(), 12);
        assert_eq!(c.nodes[0].cpu.clock_ghz, 2.8);
    }

    #[test]
    fn table4_limulus_row() {
        let c = limulus_hpc200();
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.cpu_count(), 4);
        assert_eq!(c.compute_cores(), 16);
        assert_eq!(c.nodes[0].cpu.clock_ghz, 3.1);
    }

    #[test]
    fn table5_rpeak_values() {
        assert!((littlefe_modified().rpeak_gflops() - 537.6).abs() < 1e-6);
        assert!((limulus_hpc200().rpeak_gflops() - 793.6).abs() < 1e-6);
    }

    #[test]
    fn modified_littlefe_is_rocks_installable() {
        let (ok, reasons) = littlefe_modified().rocks_installable();
        assert!(ok, "{reasons:?}");
    }

    #[test]
    fn v4_littlefe_is_not_rocks_installable() {
        // diskless computes: the constraint §5.1 fixes with mSATA drives
        let (ok, reasons) = littlefe_v4().rocks_installable();
        assert!(!ok);
        assert!(reasons.iter().any(|r| r.contains("diskless")));
    }

    #[test]
    fn limulus_is_not_rocks_installable() {
        // "It includes fewer compute nodes than the Rocks-based LittleFe
        // but they are diskless in design" — hence the XNIT path.
        let (ok, reasons) = limulus_hpc200().rocks_installable();
        assert!(!ok);
        assert_eq!(reasons.len(), 3, "all three compute blades are diskless");
    }

    #[test]
    fn both_luggable() {
        assert!(littlefe_modified().weight_lbs < 50.0);
        assert!((limulus_hpc200().weight_lbs - 50.0).abs() < f64::EPSILON);
    }

    #[test]
    fn power_budgets_hold() {
        assert!(littlefe_modified().power_budget_ok());
        assert!(limulus_hpc200().power_budget_ok());
        assert!(littlefe_v4().power_budget_ok());
    }

    #[test]
    fn dual_homed_headnodes() {
        assert!(littlefe_modified().frontend().unwrap().can_be_frontend());
        assert!(limulus_hpc200().frontend().unwrap().can_be_frontend());
    }

    #[test]
    fn limulus_computes_diskless() {
        let c = limulus_hpc200();
        assert!(c.compute_nodes().all(|n| n.is_diskless()));
        assert!(!c.frontend().unwrap().is_diskless());
    }
}
