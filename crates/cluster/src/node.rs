//! Node specifications: one motherboard-CPU-disk assembly in a chassis.

use crate::flops;
use crate::hw::{Cooler, CpuModel, DiskDrive, Motherboard, Nic, Psu};
use serde::Serialize;

/// Role of a node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum NodeRole {
    /// Rocks "frontend" appliance — dual-homed head node.
    Frontend,
    /// Compute node.
    Compute,
    /// NAS/storage appliance.
    Storage,
}

/// Power state, managed by [`crate::power::PowerManager`] on the Limulus
/// ("power management that turns nodes on and off as needed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PowerState {
    Off,
    Booting,
    On,
}

/// A single node's hardware build.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NodeSpec {
    pub hostname: String,
    pub role: NodeRole,
    pub board: Motherboard,
    pub cpu: CpuModel,
    /// Populated CPU sockets (1 for every system in the paper).
    pub sockets: u32,
    pub ram_gb: u32,
    pub disks: Vec<DiskDrive>,
    pub nics: Vec<Nic>,
    pub cooler: Cooler,
    /// `Some` when the node has its own supply (modified LittleFe);
    /// `None` when it draws from a chassis-shared supply.
    pub psu: Option<Psu>,
    pub power_state: PowerState,
}

impl NodeSpec {
    /// Entry point of the fluent builder (deliberately returns the
    /// builder, not `Self`).
    #[allow(clippy::new_ret_no_self)]
    pub fn new(hostname: impl Into<String>, role: NodeRole) -> NodeSpecBuilder {
        NodeSpecBuilder::new(hostname, role)
    }

    /// Total cores on this node.
    pub fn cores(&self) -> u32 {
        self.cpu.cores * self.sockets
    }

    /// Hardware threads on this node.
    pub fn threads(&self) -> u32 {
        self.cpu.threads() * self.sockets
    }

    /// Theoretical peak GFLOPS.
    pub fn rpeak_gflops(&self) -> f64 {
        flops::rpeak_gflops_cpu(&self.cpu) * self.sockets as f64
    }

    /// Is the node diskless (Limulus compute nodes are: "they are diskless
    /// in design, so a little less complex")? Rocks cannot provision such
    /// a node — the constraint that drove the LittleFe mSATA modification.
    pub fn is_diskless(&self) -> bool {
        self.disks.is_empty()
    }

    /// Total local disk capacity in GB.
    pub fn disk_capacity_gb(&self) -> u32 {
        self.disks.iter().map(|d| d.capacity_gb).sum()
    }

    /// Load power draw in watts (CPU measured + disks + 10 W board/RAM).
    pub fn load_watts(&self) -> f64 {
        self.cpu.measured_watts * self.sockets as f64
            + self.disks.iter().map(|d| d.watts).sum::<f64>()
            + 10.0
    }

    /// Idle draw (30% of CPU load figure + disks idle + board).
    pub fn idle_watts(&self) -> f64 {
        0.3 * self.cpu.measured_watts * self.sockets as f64
            + 0.5 * self.disks.iter().map(|d| d.watts).sum::<f64>()
            + 8.0
    }

    /// Can this node be dual-homed (Rocks frontend requirement)?
    pub fn can_be_frontend(&self) -> bool {
        self.nics.len() >= 2
    }
}

/// Builder for [`NodeSpec`].
pub struct NodeSpecBuilder {
    spec: NodeSpec,
}

impl NodeSpecBuilder {
    pub fn new(hostname: impl Into<String>, role: NodeRole) -> Self {
        NodeSpecBuilder {
            spec: NodeSpec {
                hostname: hostname.into(),
                role,
                board: crate::hw::GA_Q87TN,
                cpu: crate::hw::CELERON_G1840,
                sockets: 1,
                ram_gb: 4,
                disks: Vec::new(),
                nics: vec![crate::hw::GBE_NIC],
                cooler: crate::hw::ROSEWILL_RCX_Z775_LP,
                psu: None,
                power_state: PowerState::Off,
            },
        }
    }

    pub fn board(mut self, b: Motherboard) -> Self {
        self.spec.board = b;
        self
    }

    pub fn cpu(mut self, c: CpuModel) -> Self {
        self.spec.cpu = c;
        self
    }

    pub fn sockets(mut self, n: u32) -> Self {
        self.spec.sockets = n;
        self
    }

    pub fn ram_gb(mut self, n: u32) -> Self {
        self.spec.ram_gb = n;
        self
    }

    pub fn disk(mut self, d: DiskDrive) -> Self {
        self.spec.disks.push(d);
        self
    }

    pub fn nic(mut self, n: Nic) -> Self {
        self.spec.nics.push(n);
        self
    }

    pub fn cooler(mut self, c: Cooler) -> Self {
        self.spec.cooler = c;
        self
    }

    pub fn psu(mut self, p: Psu) -> Self {
        self.spec.psu = Some(p);
        self
    }

    pub fn build(self) -> NodeSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw;

    fn littlefe_node(i: u32) -> NodeSpec {
        NodeSpec::new(format!("compute-0-{i}"), NodeRole::Compute)
            .cpu(hw::CELERON_G1840)
            .disk(hw::CRUCIAL_M550_MSATA)
            .psu(hw::PER_NODE_PSU)
            .build()
    }

    #[test]
    fn cores_and_rpeak() {
        let n = littlefe_node(0);
        assert_eq!(n.cores(), 2);
        assert_eq!(n.threads(), 2);
        // 2 cores * 2.8 GHz * 16 flops = 89.6 GF
        assert!((n.rpeak_gflops() - 89.6).abs() < 1e-9);
    }

    #[test]
    fn diskless_detection() {
        let diskless = NodeSpec::new("n0", NodeRole::Compute)
            .cpu(hw::I7_4770S)
            .build();
        assert!(diskless.is_diskless());
        assert!(!littlefe_node(0).is_diskless());
        assert_eq!(littlefe_node(0).disk_capacity_gb(), 128);
    }

    #[test]
    fn power_draw_ordering() {
        let n = littlefe_node(0);
        assert!(n.load_watts() > n.idle_watts());
        // celeron node: 43.06 + 3.5 + 10
        assert!((n.load_watts() - 56.56).abs() < 1e-9);
    }

    #[test]
    fn frontend_needs_two_nics() {
        let single = NodeSpec::new("fe", NodeRole::Frontend).build();
        assert!(!single.can_be_frontend());
        let dual = NodeSpec::new("fe", NodeRole::Frontend)
            .nic(hw::GBE_NIC)
            .build();
        assert!(dual.can_be_frontend());
    }

    #[test]
    fn atom_node_draws_far_less() {
        let atom = NodeSpec::new("n", NodeRole::Compute)
            .cpu(hw::ATOM_D510)
            .board(hw::ATOM_BOARD_D510MO)
            .cooler(hw::ATOM_HEATSINK)
            .build();
        let haswell = littlefe_node(0);
        assert!(atom.load_watts() < haswell.load_watts() / 2.0);
    }
}
