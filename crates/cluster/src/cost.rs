//! Bill-of-materials cost and the §8 cluster-vs-cloud TCO argument.
//!
//! "With a small cluster, one-time monies can be pooled to purchase a
//! hardware resource ... Cost is fixed at purchase time ... Use of
//! commercial cloud is typically an ongoing service expense rather than a
//! one-time capital expense."

use serde::{Deserialize, Serialize};

/// One line of a bill of materials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BomLine {
    pub item: String,
    pub unit_usd: f64,
    pub quantity: u32,
}

impl BomLine {
    pub fn total(&self) -> f64 {
        self.unit_usd * self.quantity as f64
    }
}

/// A full bill of materials.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Bom {
    pub system: String,
    pub lines: Vec<BomLine>,
}

impl Bom {
    pub fn new(system: impl Into<String>) -> Self {
        Bom {
            system: system.into(),
            lines: Vec::new(),
        }
    }

    pub fn line(mut self, item: impl Into<String>, unit_usd: f64, quantity: u32) -> Self {
        self.lines.push(BomLine {
            item: item.into(),
            unit_usd,
            quantity,
        });
        self
    }

    pub fn total_usd(&self) -> f64 {
        self.lines.iter().map(BomLine::total).sum()
    }

    /// Dollars per GFLOPS, rounded to whole dollars the way Table 5
    /// reports it ($7/GFLOP etc.).
    pub fn usd_per_gflops_rounded(&self, gflops: f64) -> u32 {
        (self.total_usd() / gflops).round() as u32
    }

    /// Exact dollars per GFLOPS.
    pub fn usd_per_gflops(&self, gflops: f64) -> f64 {
        self.total_usd() / gflops
    }
}

/// The modified LittleFe's parts list (§5.1 components; totals to the
/// paper's $3,600 Table 5 figure).
pub fn littlefe_modified_bom() -> Bom {
    Bom::new("LittleFe (modified)")
        .line("Gigabyte GA-Q87TN motherboard", 155.0, 6)
        .line("Intel Celeron G1840", 55.0, 6)
        .line("Rosewill RCX-Z775-LP cooler", 15.0, 6)
        .line("Crucial M550 128GB mSATA", 80.0, 6)
        .line("4GB DDR3 SO-DIMM", 40.0, 6)
        .line("picoPSU + brick (per node)", 60.0, 6)
        .line("8-port GbE switch", 60.0, 1)
        .line("LittleFe v4 frame + hardware", 700.0, 1)
        .line("Cabling, misc", 410.0, 1)
}

/// The Limulus HPC200 is a single commercial SKU.
pub fn limulus_hpc200_bom() -> Bom {
    Bom::new("Limulus HPC200").line("Limulus HPC200 Personal Cluster Workstation", 5995.0, 1)
}

/// A Dell PowerEdge VRTX-class server configuration of comparable
/// capability — the paper: "these prices are an order of magnitude lower
/// than similarly powered systems in a typical server configuration".
pub fn server_configuration_bom() -> Bom {
    Bom::new("PowerEdge VRTX-class server config").line(
        "Chassis + 4 blade nodes, configured",
        42000.0,
        1,
    )
}

/// A commercial cloud offering for the §8 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudOffering {
    pub name: String,
    /// Hourly price of an instance roughly matching one cluster node.
    pub usd_per_node_hour: f64,
}

impl CloudOffering {
    /// c3.2xlarge-era pricing (2015): ~$0.42/hr per node-equivalent.
    pub fn aws_2015() -> Self {
        CloudOffering {
            name: "AWS c3.2xlarge (2015)".to_string(),
            usd_per_node_hour: 0.42,
        }
    }
}

/// Cluster capex vs cloud opex over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcoComparison {
    pub cluster_capex_usd: f64,
    /// Cluster running cost per month (power at $0.12/kWh).
    pub cluster_opex_usd_per_month: f64,
    pub cloud_usd_per_month: f64,
    /// Months until the cluster's cumulative cost drops below cloud's.
    pub crossover_months: Option<u32>,
}

impl TcoComparison {
    /// Compare owning a cluster against renting `nodes` cloud instances
    /// for `hours_per_month` each.
    pub fn compute(
        capex_usd: f64,
        cluster_watts: f64,
        cloud: &CloudOffering,
        nodes: u32,
        hours_per_month: f64,
        horizon_months: u32,
    ) -> Self {
        let cluster_opex = cluster_watts / 1000.0 * hours_per_month * 0.12;
        let cloud_monthly = cloud.usd_per_node_hour * nodes as f64 * hours_per_month;
        let mut crossover = None;
        for m in 1..=horizon_months {
            let cluster_total = capex_usd + cluster_opex * m as f64;
            let cloud_total = cloud_monthly * m as f64;
            if cluster_total <= cloud_total {
                crossover = Some(m);
                break;
            }
        }
        TcoComparison {
            cluster_capex_usd: capex_usd,
            cluster_opex_usd_per_month: cluster_opex,
            cloud_usd_per_month: cloud_monthly,
            crossover_months: crossover,
        }
    }

    /// Cumulative cost of each option at month `m`.
    pub fn at_month(&self, m: u32) -> (f64, f64) {
        (
            self.cluster_capex_usd + self.cluster_opex_usd_per_month * m as f64,
            self.cloud_usd_per_month * m as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs;

    #[test]
    fn littlefe_bom_totals_to_paper_cost() {
        let bom = littlefe_modified_bom();
        assert!(
            (bom.total_usd() - specs::LITTLEFE_COST_USD).abs() < 1e-9,
            "{}",
            bom.total_usd()
        );
    }

    #[test]
    fn limulus_bom_is_the_sku_price() {
        assert!((limulus_hpc200_bom().total_usd() - specs::LIMULUS_COST_USD).abs() < 1e-9);
    }

    #[test]
    fn table5_price_performance_rounding() {
        // Table 5: LittleFe $7/GFLOP Rpeak, $9 Rmax; Limulus $8, $12.
        let lf = littlefe_modified_bom();
        let lm = limulus_hpc200_bom();
        assert_eq!(lf.usd_per_gflops_rounded(537.6), 7);
        assert_eq!(lf.usd_per_gflops_rounded(403.2), 9);
        assert_eq!(lm.usd_per_gflops_rounded(793.6), 8);
        assert_eq!(lm.usd_per_gflops_rounded(498.3), 12);
    }

    #[test]
    fn order_of_magnitude_vs_server_config() {
        let server = server_configuration_bom().total_usd();
        assert!(server / littlefe_modified_bom().total_usd() >= 10.0);
        assert!(server / limulus_hpc200_bom().total_usd() >= 7.0);
    }

    #[test]
    fn cloud_crossover_exists_for_steady_usage() {
        // 6 nodes busy 8h/day ≈ 240 h/month: the cluster wins within a year
        let c = specs::littlefe_modified();
        let tco = TcoComparison::compute(
            specs::LITTLEFE_COST_USD,
            c.load_watts(),
            &CloudOffering::aws_2015(),
            6,
            240.0,
            60,
        );
        let m = tco.crossover_months.expect("cluster must win eventually");
        assert!(m <= 12, "crossover at month {m}");
        let (cluster, cloud) = tco.at_month(m);
        assert!(cluster <= cloud);
    }

    #[test]
    fn light_usage_may_never_cross() {
        let tco = TcoComparison::compute(
            specs::LITTLEFE_COST_USD,
            300.0,
            &CloudOffering::aws_2015(),
            6,
            2.0, // two hours a month
            24,
        );
        assert!(tco.crossover_months.is_none(), "{tco:?}");
    }

    #[test]
    fn bom_line_math() {
        let l = BomLine {
            item: "x".into(),
            unit_usd: 10.0,
            quantity: 6,
        };
        assert_eq!(l.total(), 60.0);
        let bom = Bom::new("s").line("a", 1.5, 2).line("b", 7.0, 1);
        assert_eq!(bom.total_usd(), 10.0);
        assert!((bom.usd_per_gflops(5.0) - 2.0).abs() < 1e-12);
    }
}
