//! Ganglia-style cluster monitoring.
//!
//! The `ganglia` roll is part of every XCBC build (Table 1: "Cluster
//! monitoring system"). We model the gmond (per-node metric daemon) /
//! gmetad (cluster aggregator) split with fixed-capacity ring buffers in
//! the spirit of RRDtool.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The metric kinds a stock gmond reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// 1-minute load average.
    LoadOne,
    /// CPU utilisation percent.
    CpuPercent,
    /// Memory utilisation percent.
    MemPercent,
    /// Network bytes/sec.
    NetBytesPerSec,
}

impl MetricKind {
    pub const ALL: [MetricKind; 4] = [
        MetricKind::LoadOne,
        MetricKind::CpuPercent,
        MetricKind::MemPercent,
        MetricKind::NetBytesPerSec,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MetricKind::LoadOne => "load_one",
            MetricKind::CpuPercent => "cpu_percent",
            MetricKind::MemPercent => "mem_percent",
            MetricKind::NetBytesPerSec => "net_bytes_sec",
        }
    }
}

/// One observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Seconds since cluster epoch.
    pub time_s: f64,
    pub value: f64,
}

/// Fixed-capacity ring of samples (RRD-style: old data falls off).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ring {
    capacity: usize,
    samples: Vec<MetricSample>,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            capacity,
            samples: Vec::new(),
        }
    }

    fn push(&mut self, s: MetricSample) {
        if self.samples.len() == self.capacity {
            self.samples.remove(0);
        }
        self.samples.push(s);
    }

    pub fn latest(&self) -> Option<MetricSample> {
        self.samples.last().copied()
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().map(|s| s.value).sum::<f64>() / self.samples.len() as f64)
        }
    }

    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.value)
            .fold(None, |acc, v| match acc {
                None => Some(v),
                Some(a) => Some(a.max(v)),
            })
    }
}

/// Per-node metric daemon (gmond).
#[derive(Debug)]
pub struct NodeMonitor {
    pub hostname: String,
    rings: BTreeMap<MetricKind, Ring>,
}

impl NodeMonitor {
    pub fn new(hostname: impl Into<String>, ring_capacity: usize) -> Self {
        let rings = MetricKind::ALL
            .iter()
            .map(|k| (*k, Ring::new(ring_capacity)))
            .collect();
        NodeMonitor {
            hostname: hostname.into(),
            rings,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, kind: MetricKind, time_s: f64, value: f64) {
        self.rings
            .get_mut(&kind)
            .expect("all kinds present")
            .push(MetricSample { time_s, value });
    }

    pub fn ring(&self, kind: MetricKind) -> &Ring {
        &self.rings[&kind]
    }
}

/// Cluster aggregator (gmetad): thread-safe so parallel node simulations
/// can publish concurrently.
#[derive(Debug, Clone)]
pub struct ClusterMonitor {
    inner: Arc<RwLock<BTreeMap<String, NodeMonitor>>>,
    ring_capacity: usize,
}

impl ClusterMonitor {
    pub fn new(ring_capacity: usize) -> Self {
        ClusterMonitor {
            inner: Arc::new(RwLock::new(BTreeMap::new())),
            ring_capacity,
        }
    }

    /// Register a node (idempotent).
    pub fn register(&self, hostname: &str) {
        let mut g = self.inner.write();
        g.entry(hostname.to_string())
            .or_insert_with(|| NodeMonitor::new(hostname, self.ring_capacity));
    }

    pub fn node_count(&self) -> usize {
        self.inner.read().len()
    }

    /// Publish one observation for a node (auto-registers).
    pub fn publish(&self, hostname: &str, kind: MetricKind, time_s: f64, value: f64) {
        let mut g = self.inner.write();
        g.entry(hostname.to_string())
            .or_insert_with(|| NodeMonitor::new(hostname, self.ring_capacity))
            .observe(kind, time_s, value);
    }

    /// Cluster-wide latest mean of a metric (the front page of a Ganglia
    /// web UI).
    pub fn cluster_mean(&self, kind: MetricKind) -> Option<f64> {
        let g = self.inner.read();
        let vals: Vec<f64> = g
            .values()
            .filter_map(|n| n.ring(kind).latest().map(|s| s.value))
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Nodes whose latest sample of `kind` exceeds `threshold`.
    pub fn hotspots(&self, kind: MetricKind, threshold: f64) -> Vec<String> {
        let g = self.inner.read();
        g.values()
            .filter(|n| {
                n.ring(kind)
                    .latest()
                    .map(|s| s.value > threshold)
                    .unwrap_or(false)
            })
            .map(|n| n.hostname.clone())
            .collect()
    }

    /// Text dump in the spirit of gmetad's XML.
    pub fn dump(&self) -> String {
        let g = self.inner.read();
        let mut out = String::new();
        for n in g.values() {
            out.push_str(&format!("HOST {}\n", n.hostname));
            for k in MetricKind::ALL {
                if let Some(s) = n.ring(k).latest() {
                    out.push_str(&format!(
                        "  METRIC {} = {:.2} @ {:.0}s\n",
                        k.name(),
                        s.value,
                        s.time_s
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(MetricSample {
                time_s: i as f64,
                value: i as f64,
            });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.latest().unwrap().value, 4.0);
        assert_eq!(r.mean().unwrap(), 3.0); // samples 2,3,4
        assert_eq!(r.max().unwrap(), 4.0);
    }

    #[test]
    fn empty_ring() {
        let r = Ring::new(4);
        assert!(r.is_empty());
        assert!(r.latest().is_none());
        assert!(r.mean().is_none());
        assert!(r.max().is_none());
    }

    #[test]
    fn node_monitor_tracks_kinds_separately() {
        let mut n = NodeMonitor::new("compute-0-0", 16);
        n.observe(MetricKind::LoadOne, 0.0, 1.5);
        n.observe(MetricKind::CpuPercent, 0.0, 88.0);
        assert_eq!(n.ring(MetricKind::LoadOne).latest().unwrap().value, 1.5);
        assert_eq!(n.ring(MetricKind::CpuPercent).latest().unwrap().value, 88.0);
        assert!(n.ring(MetricKind::MemPercent).is_empty());
    }

    #[test]
    fn cluster_mean_and_hotspots() {
        let m = ClusterMonitor::new(8);
        m.publish("a", MetricKind::CpuPercent, 1.0, 90.0);
        m.publish("b", MetricKind::CpuPercent, 1.0, 10.0);
        assert_eq!(m.cluster_mean(MetricKind::CpuPercent).unwrap(), 50.0);
        assert_eq!(m.hotspots(MetricKind::CpuPercent, 80.0), vec!["a"]);
        assert!(m.cluster_mean(MetricKind::LoadOne).is_none());
    }

    #[test]
    fn register_idempotent() {
        let m = ClusterMonitor::new(8);
        m.register("x");
        m.register("x");
        assert_eq!(m.node_count(), 1);
    }

    #[test]
    fn concurrent_publish() {
        let m = ClusterMonitor::new(64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        m.publish(
                            &format!("node-{t}"),
                            MetricKind::LoadOne,
                            i as f64,
                            t as f64,
                        );
                    }
                });
            }
        });
        assert_eq!(m.node_count(), 4);
        for t in 0..4 {
            let dump = m.dump();
            assert!(dump.contains(&format!("node-{t}")));
        }
    }

    #[test]
    fn dump_contains_metrics() {
        let m = ClusterMonitor::new(8);
        m.publish("compute-0-0", MetricKind::MemPercent, 5.0, 42.5);
        let d = m.dump();
        assert!(d.contains("HOST compute-0-0"));
        assert!(d.contains("mem_percent = 42.50"));
    }
}
