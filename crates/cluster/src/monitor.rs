//! Ganglia-style cluster monitoring on the shared simulation clock.
//!
//! The `ganglia` roll is part of every XCBC build (Table 1: "Cluster
//! monitoring system"). We model the gmond (per-node metric daemon) /
//! gmetad (cluster aggregator) split:
//!
//! * [`NodeMonitor`] is one gmond: per-metric sample series stamped in
//!   [`SimTime`], each an RRD-style [`MetricSeries`] — a raw ring plus
//!   AVERAGE/MAX consolidation tiers that downsample old data instead
//!   of dropping it;
//! * [`ClusterMonitor`] is gmetad: thread-safe aggregation across
//!   gmonds, cluster-wide means, hotspot queries, heartbeat/absent-node
//!   detection, the classic XML dump
//!   ([`ganglia_xml`](ClusterMonitor::ganglia_xml)), and export into
//!   the shared [`MetricRegistry`];
//! * [`AlertRule`] / [`AlertEngine`] turn threshold crossings into
//!   [`Alert`]s with hysteresis, each convertible to a `mon.alert`
//!   [`TraceEvent`] timestamped on the shared clock.
//!
//! Everything iterates `BTreeMap`s, so dumps, expositions, and alert
//! order are deterministic for deterministic inputs.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::Arc;
use xcbc_sim::{format_prom_f64, MetricRegistry, SimDuration, SimTime, TraceEvent};

/// Trace source of fired-alert events.
pub const ALERT_TRACE_SOURCE: &str = "mon.alert";

/// The metric kinds a stock gmond reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// 1-minute load average.
    LoadOne,
    /// CPU utilisation percent.
    CpuPercent,
    /// Memory utilisation percent.
    MemPercent,
    /// Network bytes/sec.
    NetBytesPerSec,
}

impl MetricKind {
    pub const ALL: [MetricKind; 4] = [
        MetricKind::LoadOne,
        MetricKind::CpuPercent,
        MetricKind::MemPercent,
        MetricKind::NetBytesPerSec,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MetricKind::LoadOne => "load_one",
            MetricKind::CpuPercent => "cpu_percent",
            MetricKind::MemPercent => "mem_percent",
            MetricKind::NetBytesPerSec => "net_bytes_sec",
        }
    }

    /// Gmond metric units, for the XML dump.
    pub fn units(self) -> &'static str {
        match self {
            MetricKind::LoadOne => "",
            MetricKind::CpuPercent | MetricKind::MemPercent => "%",
            MetricKind::NetBytesPerSec => "bytes/sec",
        }
    }
}

/// One observation, stamped on the shared simulation clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// When the sample was taken.
    pub time: SimTime,
    /// The observed value.
    pub value: f64,
}

impl MetricSample {
    /// A sample at `time` (accepts `SimTime` or legacy float seconds).
    pub fn new(time: impl Into<SimTime>, value: f64) -> MetricSample {
        MetricSample {
            time: time.into(),
            value,
        }
    }
}

/// Fixed-capacity circular ring of samples (RRD-style: old data falls
/// off). Push is O(1); iteration yields oldest-first.
#[derive(Debug, Clone)]
pub struct Ring {
    capacity: usize,
    buf: Vec<MetricSample>,
    /// Index of the oldest sample once the ring has wrapped.
    head: usize,
}

impl Ring {
    pub fn new(capacity: usize) -> Self {
        Ring {
            capacity,
            buf: Vec::new(),
            head: 0,
        }
    }

    pub fn push(&mut self, s: MetricSample) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(s);
        } else {
            self.buf[self.head] = s;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<MetricSample> {
        if self.buf.is_empty() {
            None
        } else {
            let idx = (self.head + self.buf.len() - 1) % self.buf.len();
            Some(self.buf[idx])
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Samples oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = MetricSample> + '_ {
        let n = self.buf.len();
        (0..n).map(move |i| self.buf[(self.head + i) % n])
    }

    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.buf.iter().map(|s| s.value).sum::<f64>() / self.buf.len() as f64)
        }
    }

    pub fn max(&self) -> Option<f64> {
        self.buf
            .iter()
            .map(|s| s.value)
            .fold(None, |acc, v| match acc {
                None => Some(v),
                Some(a) => Some(a.max(v)),
            })
    }
}

/// RRD consolidation function: how raw samples collapse into one
/// downsampled point per step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Consolidation {
    /// Mean of the bucket's samples.
    Average,
    /// Max of the bucket's samples.
    Max,
}

impl Consolidation {
    pub fn name(self) -> &'static str {
        match self {
            Consolidation::Average => "AVERAGE",
            Consolidation::Max => "MAX",
        }
    }
}

/// One consolidation tier: raw samples accumulate into fixed `step`
/// buckets; when the clock crosses a bucket boundary the consolidated
/// point (stamped at the bucket's end) drops into this tier's ring.
#[derive(Debug, Clone)]
pub struct RrdTier {
    cf: Consolidation,
    step: SimDuration,
    ring: Ring,
    bucket: Option<u64>,
    acc_sum: f64,
    acc_max: f64,
    acc_n: u32,
}

impl RrdTier {
    fn new(cf: Consolidation, step: SimDuration, capacity: usize) -> RrdTier {
        RrdTier {
            cf,
            step: if step.is_zero() {
                SimDuration::from_secs(1)
            } else {
                step
            },
            ring: Ring::new(capacity),
            bucket: None,
            acc_sum: 0.0,
            acc_max: f64::NEG_INFINITY,
            acc_n: 0,
        }
    }

    /// This tier's consolidation function.
    pub fn consolidation(&self) -> Consolidation {
        self.cf
    }

    /// This tier's bucket width.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// The consolidated points that have fallen out of completed
    /// buckets (the still-open bucket is not visible yet).
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    fn flush(&mut self, bucket: u64) {
        if self.acc_n == 0 {
            return;
        }
        let value = match self.cf {
            Consolidation::Average => self.acc_sum / self.acc_n as f64,
            Consolidation::Max => self.acc_max,
        };
        let end = SimTime::from_nanos((bucket + 1).saturating_mul(self.step.as_nanos()));
        self.ring.push(MetricSample::new(end, value));
        self.acc_sum = 0.0;
        self.acc_max = f64::NEG_INFINITY;
        self.acc_n = 0;
    }

    fn push(&mut self, s: MetricSample) {
        let bucket = s.time.as_nanos() / self.step.as_nanos();
        match self.bucket {
            Some(b) if bucket > b => {
                self.flush(b);
                self.bucket = Some(bucket);
            }
            None => self.bucket = Some(bucket),
            _ => {}
        }
        self.acc_sum += s.value;
        self.acc_max = self.acc_max.max(s.value);
        self.acc_n += 1;
    }
}

/// How a [`MetricSeries`] retains data: the raw ring capacity plus the
/// consolidation tiers behind it.
#[derive(Debug, Clone)]
pub struct RrdConfig {
    /// How many raw samples to keep.
    pub raw_capacity: usize,
    /// `(function, step, capacity)` per consolidation tier.
    pub tiers: Vec<(Consolidation, SimDuration, usize)>,
}

impl Default for RrdConfig {
    /// The stock gmond layout: 64 raw samples, one AVERAGE and one MAX
    /// tier at 60 s steps, 64 points each.
    fn default() -> Self {
        RrdConfig {
            raw_capacity: 64,
            tiers: vec![
                (Consolidation::Average, SimDuration::from_secs(60), 64),
                (Consolidation::Max, SimDuration::from_secs(60), 64),
            ],
        }
    }
}

impl RrdConfig {
    /// A raw-only config (no consolidation tiers) with the given ring
    /// capacity — what `ClusterMonitor::new(capacity)` used to mean.
    pub fn raw_only(capacity: usize) -> RrdConfig {
        RrdConfig {
            raw_capacity: capacity,
            tiers: Vec::new(),
        }
    }
}

/// One metric's retained history: the raw ring plus consolidation
/// tiers.
#[derive(Debug, Clone)]
pub struct MetricSeries {
    raw: Ring,
    tiers: Vec<RrdTier>,
}

impl MetricSeries {
    fn new(config: &RrdConfig) -> MetricSeries {
        MetricSeries {
            raw: Ring::new(config.raw_capacity),
            tiers: config
                .tiers
                .iter()
                .map(|&(cf, step, cap)| RrdTier::new(cf, step, cap))
                .collect(),
        }
    }

    fn push(&mut self, s: MetricSample) {
        self.raw.push(s);
        for tier in &mut self.tiers {
            tier.push(s);
        }
    }

    /// The raw ring.
    pub fn raw(&self) -> &Ring {
        &self.raw
    }

    /// The consolidation tiers, in configured order.
    pub fn tiers(&self) -> &[RrdTier] {
        &self.tiers
    }

    /// The first tier with the given consolidation function.
    pub fn tier(&self, cf: Consolidation) -> Option<&RrdTier> {
        self.tiers.iter().find(|t| t.cf == cf)
    }
}

/// Per-node metric daemon (gmond).
#[derive(Debug)]
pub struct NodeMonitor {
    pub hostname: String,
    series: BTreeMap<MetricKind, MetricSeries>,
    last_seen: Option<SimTime>,
}

impl NodeMonitor {
    pub fn new(hostname: impl Into<String>, ring_capacity: usize) -> Self {
        NodeMonitor::with_config(
            hostname,
            &RrdConfig {
                raw_capacity: ring_capacity,
                ..RrdConfig::default()
            },
        )
    }

    /// A gmond with an explicit retention layout.
    pub fn with_config(hostname: impl Into<String>, config: &RrdConfig) -> Self {
        let series = MetricKind::ALL
            .iter()
            .map(|k| (*k, MetricSeries::new(config)))
            .collect();
        NodeMonitor {
            hostname: hostname.into(),
            series,
            last_seen: None,
        }
    }

    /// Record one observation (accepts `SimTime` or float seconds).
    pub fn observe(&mut self, kind: MetricKind, time: impl Into<SimTime>, value: f64) {
        let s = MetricSample::new(time, value);
        self.last_seen = Some(self.last_seen.map_or(s.time, |t| t.max(s.time)));
        self.series
            .get_mut(&kind)
            .expect("all kinds present")
            .push(s);
    }

    /// The raw ring of one metric (kept name-compatible with the old
    /// single-ring gmond).
    pub fn ring(&self, kind: MetricKind) -> &Ring {
        self.series[&kind].raw()
    }

    /// The full series (raw + tiers) of one metric.
    pub fn series(&self, kind: MetricKind) -> &MetricSeries {
        &self.series[&kind]
    }

    /// When this gmond last reported anything.
    pub fn last_seen(&self) -> Option<SimTime> {
        self.last_seen
    }
}

/// One derived observation headed for a node's metric rings — the unit
/// of [`ClusterMonitor::publish_all`] batching.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricUpdate {
    /// The reporting host. Shared (`Arc<str>`) so the several samples a
    /// single trace event derives reuse one allocation.
    pub host: Arc<str>,
    /// Which metric the sample belongs to.
    pub kind: MetricKind,
    /// When the sample was taken.
    pub time: SimTime,
    /// The sampled value.
    pub value: f64,
}

/// Cluster aggregator (gmetad): thread-safe so parallel node simulations
/// can publish concurrently.
#[derive(Debug, Clone)]
pub struct ClusterMonitor {
    inner: Arc<RwLock<BTreeMap<String, NodeMonitor>>>,
    config: RrdConfig,
}

impl ClusterMonitor {
    /// A gmetad whose gmonds keep `ring_capacity` raw samples plus the
    /// default consolidation tiers.
    pub fn new(ring_capacity: usize) -> Self {
        ClusterMonitor::with_config(RrdConfig {
            raw_capacity: ring_capacity,
            ..RrdConfig::default()
        })
    }

    /// A gmetad with an explicit per-gmond retention layout.
    pub fn with_config(config: RrdConfig) -> Self {
        ClusterMonitor {
            inner: Arc::new(RwLock::new(BTreeMap::new())),
            config,
        }
    }

    /// Register a node (idempotent). Registered-but-silent nodes show
    /// up in [`absent_nodes`](Self::absent_nodes).
    pub fn register(&self, hostname: &str) {
        let mut g = self.inner.write();
        if !g.contains_key(hostname) {
            g.insert(
                hostname.to_string(),
                NodeMonitor::with_config(hostname, &self.config),
            );
        }
    }

    pub fn node_count(&self) -> usize {
        self.inner.read().len()
    }

    /// Registered hostnames, sorted.
    pub fn hosts(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Publish one observation for a node (auto-registers). Accepts
    /// `SimTime` or legacy float seconds.
    pub fn publish(&self, hostname: &str, kind: MetricKind, time: impl Into<SimTime>, value: f64) {
        let time = time.into();
        let mut g = self.inner.write();
        if !g.contains_key(hostname) {
            g.insert(
                hostname.to_string(),
                NodeMonitor::with_config(hostname, &self.config),
            );
        }
        g.get_mut(hostname)
            .expect("just inserted")
            .observe(kind, time, value);
    }

    /// Publish a whole batch of observations under **one** write-lock
    /// acquisition, with consecutive same-host updates sharing a single
    /// map lookup. Observationally identical to calling
    /// [`publish`](Self::publish) once per update in order — per
    /// `(host, kind)` series the samples land in the same order — but
    /// ~an order of magnitude cheaper for telemetry-ingest workloads
    /// where every trace event derives several samples for one host.
    pub fn publish_all<'a>(&self, updates: impl IntoIterator<Item = &'a MetricUpdate>) {
        let mut updates = updates.into_iter();
        let Some(mut cur) = updates.next() else {
            return;
        };
        let mut g = self.inner.write();
        'runs: loop {
            let host: &str = &cur.host;
            if !g.contains_key(host) {
                g.insert(
                    host.to_string(),
                    NodeMonitor::with_config(host, &self.config),
                );
            }
            let node = g.get_mut(host).expect("just inserted");
            node.observe(cur.kind, cur.time, cur.value);
            loop {
                match updates.next() {
                    Some(u) if *u.host == *host => node.observe(u.kind, u.time, u.value),
                    Some(u) => {
                        cur = u;
                        continue 'runs;
                    }
                    None => return,
                }
            }
        }
    }

    /// Run `f` over one gmond.
    pub fn with_node<R>(&self, hostname: &str, f: impl FnOnce(&NodeMonitor) -> R) -> Option<R> {
        self.inner.read().get(hostname).map(f)
    }

    /// Cluster-wide latest mean of a metric (the front page of a Ganglia
    /// web UI).
    pub fn cluster_mean(&self, kind: MetricKind) -> Option<f64> {
        let g = self.inner.read();
        let vals: Vec<f64> = g
            .values()
            .filter_map(|n| n.ring(kind).latest().map(|s| s.value))
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Nodes whose latest sample of `kind` exceeds `threshold`.
    pub fn hotspots(&self, kind: MetricKind, threshold: f64) -> Vec<String> {
        let g = self.inner.read();
        g.values()
            .filter(|n| {
                n.ring(kind)
                    .latest()
                    .map(|s| s.value > threshold)
                    .unwrap_or(false)
            })
            .map(|n| n.hostname.clone())
            .collect()
    }

    /// Heartbeat check: registered nodes that have never reported, or
    /// whose last report is older than `max_age` at instant `now`.
    pub fn absent_nodes(&self, now: SimTime, max_age: Option<SimDuration>) -> Vec<String> {
        let g = self.inner.read();
        g.values()
            .filter(|n| match (n.last_seen(), max_age) {
                (None, _) => true,
                (Some(seen), Some(age)) => seen + age < now,
                (Some(_), None) => false,
            })
            .map(|n| n.hostname.clone())
            .collect()
    }

    /// Text dump in the spirit of gmetad's interactive port.
    pub fn dump(&self) -> String {
        let g = self.inner.read();
        let mut out = String::new();
        for n in g.values() {
            out.push_str(&format!("HOST {}\n", n.hostname));
            for k in MetricKind::ALL {
                if let Some(s) = n.ring(k).latest() {
                    out.push_str(&format!(
                        "  METRIC {} = {:.2} @ {:.0}s\n",
                        k.name(),
                        s.value,
                        s.time.as_secs_f64()
                    ));
                }
            }
        }
        out
    }

    /// Ganglia-faithful XML dump (what gmetad serves on its XML port):
    /// one `CLUSTER` element, one `HOST` per gmond with its `REPORTED`
    /// heartbeat, one `METRIC` per kind with the latest value.
    /// Byte-deterministic: hosts in name order, metrics in declaration
    /// order, all floats through one formatter.
    pub fn ganglia_xml(&self, cluster_name: &str, now: SimTime) -> String {
        let g = self.inner.read();
        let mut out = String::new();
        out.push_str("<GANGLIA_XML VERSION=\"3.1.7\" SOURCE=\"gmetad\">\n");
        let _ = writeln!(
            out,
            "<CLUSTER NAME=\"{}\" LOCALTIME=\"{}\" OWNER=\"xcbc\">",
            xml_escape(cluster_name),
            now.as_nanos() / xcbc_sim::NANOS_PER_SEC
        );
        for n in g.values() {
            let reported = n
                .last_seen()
                .map(|t| t.as_nanos() / xcbc_sim::NANOS_PER_SEC)
                .unwrap_or(0);
            let _ = writeln!(
                out,
                "<HOST NAME=\"{}\" REPORTED=\"{}\">",
                xml_escape(&n.hostname),
                reported
            );
            for k in MetricKind::ALL {
                if let Some(s) = n.ring(k).latest() {
                    let _ = writeln!(
                        out,
                        "<METRIC NAME=\"{}\" VAL=\"{}\" TYPE=\"double\" UNITS=\"{}\" TN=\"{}\" SLOPE=\"both\"/>",
                        k.name(),
                        format_prom_f64(s.value),
                        k.units(),
                        now.since(s.time).as_nanos() / xcbc_sim::NANOS_PER_SEC
                    );
                }
            }
            out.push_str("</HOST>\n");
        }
        out.push_str("</CLUSTER>\n</GANGLIA_XML>\n");
        out
    }

    /// Export every gmond's latest values into `registry` as
    /// `xcbc_node_<metric>` gauges, labelled by the caller's
    /// `base_labels` (e.g. `site`) then `host` — the gmetad→registry
    /// bridge.
    pub fn register_into(&self, registry: &mut MetricRegistry, base_labels: &[(&str, &str)]) {
        let g = self.inner.read();
        for n in g.values() {
            let mut labels: Vec<(&str, &str)> = base_labels.to_vec();
            labels.push(("host", n.hostname.as_str()));
            for k in MetricKind::ALL {
                if let Some(s) = n.ring(k).latest() {
                    registry.set_gauge(
                        &format!("xcbc_node_{}", k.name()),
                        match k {
                            MetricKind::LoadOne => "gmond 1-minute load average",
                            MetricKind::CpuPercent => "gmond CPU utilisation percent",
                            MetricKind::MemPercent => "gmond memory utilisation percent",
                            MetricKind::NetBytesPerSec => "gmond network bytes per second",
                        },
                        &labels,
                        s.value,
                    );
                }
            }
            registry.set_gauge(
                "xcbc_node_heartbeat_seconds",
                "simulation instant of the gmond's last report",
                &labels,
                n.last_seen().map(|t| t.as_secs_f64()).unwrap_or(-1.0),
            );
        }
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

// ---------------------------------------------------------------------
// Alerting
// ---------------------------------------------------------------------

/// Which side of the threshold violates the rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertOp {
    /// Violated when the value exceeds the threshold.
    Above,
    /// Violated when the value drops below the threshold.
    Below,
}

/// A threshold rule over one metric kind.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Stable rule identifier (shows up in alert labels).
    pub name: String,
    /// Which gmond metric the rule watches.
    pub kind: MetricKind,
    /// Violation direction.
    pub op: AlertOp,
    /// The threshold value.
    pub threshold: f64,
}

impl AlertRule {
    pub fn above(name: impl Into<String>, kind: MetricKind, threshold: f64) -> AlertRule {
        AlertRule {
            name: name.into(),
            kind,
            op: AlertOp::Above,
            threshold,
        }
    }

    pub fn below(name: impl Into<String>, kind: MetricKind, threshold: f64) -> AlertRule {
        AlertRule {
            name: name.into(),
            kind,
            op: AlertOp::Below,
            threshold,
        }
    }

    /// Does `value` violate this rule?
    pub fn violated(&self, value: f64) -> bool {
        match self.op {
            AlertOp::Above => value > self.threshold,
            AlertOp::Below => value < self.threshold,
        }
    }
}

/// The default XCBC alert pack: thrashing CPU (retry storms push
/// derived CPU past 95 %), overloaded nodes, and exhausted memory.
pub fn default_alert_rules() -> Vec<AlertRule> {
    vec![
        AlertRule::above("cpu-hot", MetricKind::CpuPercent, 95.0),
        AlertRule::above("load-high", MetricKind::LoadOne, 4.0),
        AlertRule::above("mem-high", MetricKind::MemPercent, 90.0),
    ]
}

/// One fired alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// When the violation was observed, on the shared clock.
    pub t: SimTime,
    /// The violated rule's name.
    pub rule: String,
    /// The violating host.
    pub host: String,
    /// The observed value.
    pub value: f64,
    /// The rule threshold (0.0 for event alerts like quarantine).
    pub threshold: f64,
}

impl Alert {
    /// The alert as a `mon.alert` mark on the shared timeline.
    pub fn to_event(&self) -> TraceEvent {
        TraceEvent::mark(
            self.t,
            ALERT_TRACE_SOURCE,
            format!("{}: {}", self.rule, self.host),
        )
        .with_field("host", self.host.as_str())
        .with_field("value", self.value)
        .with_field("threshold", self.threshold)
    }

    /// One dashboard line.
    pub fn render(&self) -> String {
        format!(
            "[{:>10}] ALERT {:<12} {:<14} value={} threshold={}",
            self.t.to_string(),
            self.rule,
            self.host,
            format_prom_f64(self.value),
            format_prom_f64(self.threshold),
        )
    }
}

/// Evaluates [`AlertRule`]s sample-by-sample with hysteresis: a rule
/// fires when a host crosses into violation and will not re-fire for
/// that host until a sample comes back inside the threshold.
#[derive(Debug, Default)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    /// Per-host threshold latches, indexed by rule position: `true` ⇔
    /// that rule is currently in violation for the host. Keyed by host
    /// so the per-sample hot path is a borrowed `&str` lookup — no
    /// allocation unless an alert actually fires.
    latched: BTreeMap<String, Vec<bool>>,
    /// Event-alert latches ([`raise`](Self::raise)/[`clear`](Self::clear))
    /// for names that are not configured threshold rules.
    raised: BTreeSet<(String, String)>,
    fired: Vec<Alert>,
}

impl AlertEngine {
    /// An engine with no rules (use [`push_rule`](Self::push_rule) or
    /// [`with_rules`](Self::with_rules)).
    pub fn new() -> AlertEngine {
        AlertEngine::default()
    }

    /// An engine evaluating `rules`.
    pub fn with_rules(rules: Vec<AlertRule>) -> AlertEngine {
        AlertEngine {
            rules,
            ..AlertEngine::default()
        }
    }

    /// Add one rule.
    pub fn push_rule(&mut self, rule: AlertRule) {
        self.rules.push(rule);
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluate one observation; any newly-fired alerts are recorded.
    pub fn observe(&mut self, host: &str, kind: MetricKind, t: SimTime, value: f64) {
        for i in 0..self.rules.len() {
            let rule = &self.rules[i];
            if rule.kind != kind {
                continue;
            }
            if rule.violated(value) {
                if self.latch(i, host) {
                    let rule = &self.rules[i];
                    self.fired.push(Alert {
                        t,
                        rule: rule.name.clone(),
                        host: host.to_string(),
                        value,
                        threshold: rule.threshold,
                    });
                }
            } else if let Some(latch) = self.latched.get_mut(host) {
                if let Some(b) = latch.get_mut(i) {
                    *b = false;
                }
            }
        }
    }

    /// Set latch `i` for `host`; returns true if it was newly set.
    fn latch(&mut self, i: usize, host: &str) -> bool {
        if !self.latched.contains_key(host) {
            self.latched.insert(host.to_string(), Vec::new());
        }
        let latch = self.latched.get_mut(host).expect("just inserted");
        if latch.len() <= i {
            latch.resize(i + 1, false);
        }
        let newly = !latch[i];
        latch[i] = true;
        newly
    }

    /// Raise an event alert (quarantine, absent heartbeat) directly,
    /// deduplicated per `(rule, host)` until [`clear`](Self::clear).
    /// Raising the name of a configured threshold rule shares that
    /// rule's hysteresis latch.
    pub fn raise(&mut self, t: SimTime, rule: &str, host: &str, value: f64) {
        let newly = match self.rules.iter().position(|r| r.name == rule) {
            Some(i) => self.latch(i, host),
            None => self.raised.insert((rule.to_string(), host.to_string())),
        };
        if newly {
            self.fired.push(Alert {
                t,
                rule: rule.to_string(),
                host: host.to_string(),
                value,
                threshold: 0.0,
            });
        }
    }

    /// Clear one `(rule, host)` latch so it may fire again.
    pub fn clear(&mut self, rule: &str, host: &str) {
        match self.rules.iter().position(|r| r.name == rule) {
            Some(i) => {
                if let Some(latch) = self.latched.get_mut(host) {
                    if let Some(b) = latch.get_mut(i) {
                        *b = false;
                    }
                }
            }
            None => {
                self.raised.remove(&(rule.to_string(), host.to_string()));
            }
        }
    }

    /// Every alert fired so far, in firing order.
    pub fn alerts(&self) -> &[Alert] {
        &self.fired
    }

    /// Fired alerts as `mon.alert` trace events, in firing order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.fired.iter().map(Alert::to_event).collect()
    }

    /// Consume the engine, returning the fired alerts.
    pub fn into_alerts(self) -> Vec<Alert> {
        self.fired
    }

    /// Register per-rule fired totals into `registry`.
    pub fn register_into(&self, registry: &mut MetricRegistry, base_labels: &[(&str, &str)]) {
        let mut per_rule: BTreeMap<&str, u64> = BTreeMap::new();
        for rule in &self.rules {
            per_rule.insert(rule.name.as_str(), 0);
        }
        for a in &self.fired {
            *per_rule.entry(a.rule.as_str()).or_insert(0) += 1;
        }
        for (rule, n) in per_rule {
            let mut labels: Vec<(&str, &str)> = base_labels.to_vec();
            labels.push(("rule", rule));
            registry.set_counter(
                "xcbc_alerts_fired_total",
                "alerts fired per rule",
                &labels,
                n,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(MetricSample::new(i as f64, i as f64));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.latest().unwrap().value, 4.0);
        assert_eq!(r.mean().unwrap(), 3.0); // samples 2,3,4
        assert_eq!(r.max().unwrap(), 4.0);
        let ordered: Vec<f64> = r.iter().map(|s| s.value).collect();
        assert_eq!(ordered, [2.0, 3.0, 4.0], "iteration is oldest-first");
    }

    #[test]
    fn empty_ring() {
        let r = Ring::new(4);
        assert!(r.is_empty());
        assert!(r.latest().is_none());
        assert!(r.mean().is_none());
        assert!(r.max().is_none());
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn zero_capacity_ring_keeps_nothing() {
        let mut r = Ring::new(0);
        r.push(MetricSample::new(1.0, 1.0));
        assert!(r.is_empty());
        assert!(r.latest().is_none());
    }

    #[test]
    fn single_sample_ring() {
        let mut r = Ring::new(8);
        r.push(MetricSample::new(2.5, 7.0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.latest().unwrap().value, 7.0);
        assert_eq!(r.latest().unwrap().time, SimTime::from_secs_f64(2.5));
        assert_eq!(r.mean(), Some(7.0));
        assert_eq!(r.max(), Some(7.0));
    }

    #[test]
    fn exact_capacity_wrap() {
        // pushing exactly `capacity` then one more must wrap cleanly
        let mut r = Ring::new(4);
        for i in 0..4 {
            r.push(MetricSample::new(i as f64, i as f64));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(
            r.iter().map(|s| s.value).collect::<Vec<_>>(),
            [0.0, 1.0, 2.0, 3.0]
        );
        r.push(MetricSample::new(4.0, 4.0));
        assert_eq!(r.len(), 4);
        assert_eq!(
            r.iter().map(|s| s.value).collect::<Vec<_>>(),
            [1.0, 2.0, 3.0, 4.0]
        );
        assert_eq!(r.latest().unwrap().value, 4.0);
    }

    #[test]
    fn sample_time_reads_in_seconds_via_simtime() {
        let s = MetricSample::new(SimTime::from_secs(90), 1.0);
        assert_eq!(s.time.as_secs_f64(), 90.0);
    }

    #[test]
    fn average_tier_consolidates_per_step() {
        let mut series = MetricSeries::new(&RrdConfig::default());
        // minute 0: samples 10 and 20 → AVERAGE 15, MAX 20
        series.push(MetricSample::new(10.0, 10.0));
        series.push(MetricSample::new(50.0, 20.0));
        // crossing into minute 1 flushes minute 0
        series.push(MetricSample::new(70.0, 99.0));
        let avg = series.tier(Consolidation::Average).unwrap();
        let max = series.tier(Consolidation::Max).unwrap();
        assert_eq!(avg.ring().len(), 1);
        assert_eq!(avg.ring().latest().unwrap().value, 15.0);
        assert_eq!(avg.ring().latest().unwrap().time, SimTime::from_secs(60));
        assert_eq!(max.ring().latest().unwrap().value, 20.0);
        // the open minute-1 bucket is not visible yet
        assert_eq!(series.raw().len(), 3);
    }

    #[test]
    fn tier_skips_empty_buckets() {
        let mut series = MetricSeries::new(&RrdConfig::default());
        series.push(MetricSample::new(30.0, 8.0));
        // jump three minutes ahead: exactly one consolidated point (no
        // fabricated points for the silent minutes)
        series.push(MetricSample::new(200.0, 2.0));
        let avg = series.tier(Consolidation::Average).unwrap();
        assert_eq!(avg.ring().len(), 1);
        assert_eq!(avg.ring().latest().unwrap().value, 8.0);
    }

    #[test]
    fn boundary_sample_opens_the_next_bucket() {
        // t = 60 s sits exactly on the bucket boundary: it must open
        // minute 1, flushing minute 0 with only its own samples
        let mut series = MetricSeries::new(&RrdConfig::default());
        series.push(MetricSample::new(0.0, 10.0));
        series.push(MetricSample::new(60.0, 90.0));
        let avg = series.tier(Consolidation::Average).unwrap();
        assert_eq!(avg.ring().len(), 1);
        assert_eq!(avg.ring().latest().unwrap().value, 10.0);
        // flushing minute 1 shows the boundary sample landed there
        series.push(MetricSample::new(121.0, 0.0));
        let avg = series.tier(Consolidation::Average).unwrap();
        assert_eq!(avg.ring().len(), 2);
        assert_eq!(avg.ring().latest().unwrap().value, 90.0);
    }

    #[test]
    fn late_sample_folds_into_open_bucket() {
        // a sample stamped before the open bucket must not reopen (or
        // corrupt) an already-flushed bucket — it folds into the
        // current accumulator, mirroring rrdtool's refusal to rewind
        let mut series = MetricSeries::new(&RrdConfig::default());
        series.push(MetricSample::new(70.0, 4.0));
        series.push(MetricSample::new(10.0, 8.0)); // late arrival
        series.push(MetricSample::new(130.0, 1.0)); // flush minute 1
        let avg = series.tier(Consolidation::Average).unwrap();
        assert_eq!(avg.ring().len(), 1);
        assert_eq!(avg.ring().latest().unwrap().value, 6.0); // (4+8)/2
        let max = series.tier(Consolidation::Max).unwrap();
        assert_eq!(max.ring().latest().unwrap().value, 8.0);
    }

    #[test]
    fn max_tier_handles_negative_values() {
        // the MAX accumulator resets to -inf, so an all-negative bucket
        // must still consolidate to its true (negative) max
        let mut series = MetricSeries::new(&RrdConfig::default());
        series.push(MetricSample::new(5.0, -7.0));
        series.push(MetricSample::new(6.0, -3.0));
        series.push(MetricSample::new(65.0, -1.0));
        let max = series.tier(Consolidation::Max).unwrap();
        assert_eq!(max.ring().latest().unwrap().value, -3.0);
    }

    #[test]
    fn node_monitor_tracks_kinds_separately() {
        let mut n = NodeMonitor::new("compute-0-0", 16);
        n.observe(MetricKind::LoadOne, 0.0, 1.5);
        n.observe(MetricKind::CpuPercent, 0.0, 88.0);
        assert_eq!(n.ring(MetricKind::LoadOne).latest().unwrap().value, 1.5);
        assert_eq!(n.ring(MetricKind::CpuPercent).latest().unwrap().value, 88.0);
        assert!(n.ring(MetricKind::MemPercent).is_empty());
        assert_eq!(n.last_seen(), Some(SimTime::ZERO));
    }

    #[test]
    fn cluster_mean_and_hotspots() {
        let m = ClusterMonitor::new(8);
        m.publish("a", MetricKind::CpuPercent, 1.0, 90.0);
        m.publish("b", MetricKind::CpuPercent, 1.0, 10.0);
        assert_eq!(m.cluster_mean(MetricKind::CpuPercent).unwrap(), 50.0);
        assert_eq!(m.hotspots(MetricKind::CpuPercent, 80.0), vec!["a"]);
        assert!(m.cluster_mean(MetricKind::LoadOne).is_none());
    }

    #[test]
    fn register_idempotent() {
        let m = ClusterMonitor::new(8);
        m.register("x");
        m.register("x");
        assert_eq!(m.node_count(), 1);
    }

    #[test]
    fn absent_nodes_by_heartbeat() {
        let m = ClusterMonitor::new(8);
        m.register("silent");
        m.publish("recent", MetricKind::LoadOne, 100.0, 1.0);
        m.publish("stale", MetricKind::LoadOne, 10.0, 1.0);
        let now = SimTime::from_secs(130);
        assert_eq!(m.absent_nodes(now, None), vec!["silent"]);
        assert_eq!(
            m.absent_nodes(now, Some(SimDuration::from_secs(60))),
            vec!["silent", "stale"]
        );
    }

    #[test]
    fn concurrent_publish() {
        let m = ClusterMonitor::new(64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        m.publish(
                            &format!("node-{t}"),
                            MetricKind::LoadOne,
                            i as f64,
                            t as f64,
                        );
                    }
                });
            }
        });
        assert_eq!(m.node_count(), 4);
        for t in 0..4 {
            let dump = m.dump();
            assert!(dump.contains(&format!("node-{t}")));
        }
    }

    #[test]
    fn dump_contains_metrics() {
        let m = ClusterMonitor::new(8);
        m.publish("compute-0-0", MetricKind::MemPercent, 5.0, 42.5);
        let d = m.dump();
        assert!(d.contains("HOST compute-0-0"));
        assert!(d.contains("mem_percent = 42.50"));
    }

    #[test]
    fn ganglia_xml_is_faithful_and_deterministic() {
        let m = ClusterMonitor::new(8);
        m.publish("compute-0-0", MetricKind::LoadOne, 30.0, 1.5);
        m.publish("littlefe", MetricKind::CpuPercent, 60.0, 12.0);
        let xml = m.ganglia_xml("littlefe", SimTime::from_secs(90));
        assert_eq!(xml, m.ganglia_xml("littlefe", SimTime::from_secs(90)));
        assert!(xml.starts_with("<GANGLIA_XML VERSION=\"3.1.7\" SOURCE=\"gmetad\">"));
        assert!(xml.contains("<CLUSTER NAME=\"littlefe\" LOCALTIME=\"90\" OWNER=\"xcbc\">"));
        assert!(xml.contains("<HOST NAME=\"compute-0-0\" REPORTED=\"30\">"));
        assert!(xml.contains("<METRIC NAME=\"load_one\" VAL=\"1.5\" TYPE=\"double\" UNITS=\"\" TN=\"60\" SLOPE=\"both\"/>"));
        assert!(xml.trim_end().ends_with("</GANGLIA_XML>"));
    }

    #[test]
    fn registry_export_labels_hosts() {
        let m = ClusterMonitor::new(8);
        m.publish("compute-0-0", MetricKind::LoadOne, 5.0, 2.0);
        let mut reg = MetricRegistry::new();
        m.register_into(&mut reg, &[("site", "littlefe")]);
        let text = reg.render_prometheus();
        assert!(text.contains("xcbc_node_load_one{site=\"littlefe\",host=\"compute-0-0\"} 2"));
        assert!(
            text.contains("xcbc_node_heartbeat_seconds{site=\"littlefe\",host=\"compute-0-0\"} 5")
        );
    }

    #[test]
    fn alert_engine_fires_with_hysteresis() {
        let mut eng = AlertEngine::with_rules(default_alert_rules());
        eng.observe("n0", MetricKind::CpuPercent, SimTime::from_secs(1), 97.0);
        // still violating: latched, no re-fire
        eng.observe("n0", MetricKind::CpuPercent, SimTime::from_secs(2), 99.0);
        assert_eq!(eng.alerts().len(), 1);
        // back under threshold clears the latch
        eng.observe("n0", MetricKind::CpuPercent, SimTime::from_secs(3), 10.0);
        eng.observe("n0", MetricKind::CpuPercent, SimTime::from_secs(4), 98.0);
        assert_eq!(eng.alerts().len(), 2);
        let ev = eng.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].source, ALERT_TRACE_SOURCE);
        assert!(ev[0].label.contains("cpu-hot"));
    }

    #[test]
    fn raise_deduplicates_event_alerts() {
        let mut eng = AlertEngine::new();
        eng.raise(
            SimTime::from_secs(5),
            "node-quarantined",
            "compute-0-2",
            1.0,
        );
        eng.raise(
            SimTime::from_secs(9),
            "node-quarantined",
            "compute-0-2",
            1.0,
        );
        assert_eq!(eng.alerts().len(), 1);
        eng.clear("node-quarantined", "compute-0-2");
        eng.raise(
            SimTime::from_secs(20),
            "node-quarantined",
            "compute-0-2",
            1.0,
        );
        assert_eq!(eng.alerts().len(), 2);
    }

    #[test]
    fn alert_totals_register() {
        let mut eng = AlertEngine::with_rules(default_alert_rules());
        eng.observe("n0", MetricKind::MemPercent, SimTime::from_secs(1), 95.0);
        let mut reg = MetricRegistry::new();
        eng.register_into(&mut reg, &[]);
        assert_eq!(
            reg.counter_value("xcbc_alerts_fired_total", &[("rule", "mem-high")]),
            Some(1)
        );
        assert_eq!(
            reg.counter_value("xcbc_alerts_fired_total", &[("rule", "cpu-hot")]),
            Some(0),
            "configured-but-silent rules report zero"
        );
    }
}
