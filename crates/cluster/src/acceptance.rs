//! Hardware acceptance testing — the post-assembly burn-in.
//!
//! §5.1 walks through assembling a LittleFe from parts; the natural next
//! curriculum step is "prove the assembly is sound". The suite checks
//! exactly the constraints the build narrative raises: socket/board
//! match, cooler fit and capacity, PSU sizing, disk presence for the
//! intended provisioning path, and NIC inventory for the node's role.

use crate::node::{NodeRole, NodeSpec};
use crate::thermal::{check_node_thermals, ThermalIssue};
use crate::topology::ClusterSpec;
use serde::Serialize;

/// One acceptance check outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AcceptanceCheck {
    pub node: String,
    pub check: &'static str,
    pub passed: bool,
    pub detail: String,
}

/// A node-level acceptance run.
pub fn check_node(
    node: &NodeSpec,
    bay_clearance_mm: f64,
    needs_disk: bool,
) -> Vec<AcceptanceCheck> {
    let mut out = Vec::new();

    // socket match
    let socket_ok = node.board.socket == node.cpu.socket;
    out.push(AcceptanceCheck {
        node: node.hostname.clone(),
        check: "cpu-socket-match",
        passed: socket_ok,
        detail: format!("board {} vs cpu {}", node.board.socket, node.cpu.socket),
    });

    // thermals
    let thermal_issues: Vec<ThermalIssue> = check_node_thermals(node, bay_clearance_mm);
    out.push(AcceptanceCheck {
        node: node.hostname.clone(),
        check: "thermal",
        passed: thermal_issues.is_empty(),
        detail: if thermal_issues.is_empty() {
            "cooler fits and covers TDP".to_string()
        } else {
            thermal_issues
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        },
    });

    // power (only meaningful for per-node supplies)
    if let Some(psu) = &node.psu {
        let ok = node.load_watts() * 1.2 <= psu.watts;
        out.push(AcceptanceCheck {
            node: node.hostname.clone(),
            check: "psu-headroom",
            passed: ok,
            detail: format!(
                "{:.1} W load vs {:.0} W supply",
                node.load_watts(),
                psu.watts
            ),
        });
    }

    // disk presence for the provisioning path
    if needs_disk {
        out.push(AcceptanceCheck {
            node: node.hostname.clone(),
            check: "disk-present",
            passed: !node.is_diskless(),
            detail: format!("{} GB local disk", node.disk_capacity_gb()),
        });
    }

    // NIC inventory
    let needed = if node.role == NodeRole::Frontend {
        2
    } else {
        1
    };
    out.push(AcceptanceCheck {
        node: node.hostname.clone(),
        check: "nic-count",
        passed: node.nics.len() >= needed,
        detail: format!("{} of {} required", node.nics.len(), needed),
    });

    out
}

/// Cluster-level acceptance: every node plus the shared power budget.
pub fn check_cluster(
    cluster: &ClusterSpec,
    bay_clearance_mm: f64,
    needs_disks: bool,
) -> Vec<AcceptanceCheck> {
    let mut out = Vec::new();
    for node in &cluster.nodes {
        out.extend(check_node(node, bay_clearance_mm, needs_disks));
    }
    out.push(AcceptanceCheck {
        node: "(cluster)".to_string(),
        check: "power-budget",
        passed: cluster.power_budget_ok(),
        detail: format!("{:.1} W total load", cluster.load_watts()),
    });
    out
}

/// Summarize a run: (passed, failed).
pub fn summarize(checks: &[AcceptanceCheck]) -> (usize, usize) {
    let passed = checks.iter().filter(|c| c.passed).count();
    (passed, checks.len() - passed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw;
    use crate::specs::{limulus_hpc200, littlefe_modified, littlefe_v4};
    use crate::thermal::{DESKSIDE_CLEARANCE_MM, LITTLEFE_BAY_CLEARANCE_MM};

    #[test]
    fn modified_littlefe_passes_everything() {
        let checks = check_cluster(&littlefe_modified(), LITTLEFE_BAY_CLEARANCE_MM, true);
        let (passed, failed) = summarize(&checks);
        assert_eq!(failed, 0, "{checks:?}");
        assert!(passed > 20);
    }

    #[test]
    fn v4_littlefe_fails_disk_checks_for_rocks_path() {
        let checks = check_cluster(&littlefe_v4(), LITTLEFE_BAY_CLEARANCE_MM, true);
        let disk_failures: Vec<_> = checks
            .iter()
            .filter(|c| c.check == "disk-present" && !c.passed)
            .collect();
        assert_eq!(disk_failures.len(), 5, "five diskless compute nodes");
    }

    #[test]
    fn limulus_passes_in_deskside_case_without_disk_requirement() {
        // the XNIT path doesn't need local disks
        let checks = check_cluster(&limulus_hpc200(), DESKSIDE_CLEARANCE_MM, false);
        let (_, failed) = summarize(&checks);
        assert_eq!(failed, 0, "{checks:?}");
    }

    #[test]
    fn socket_mismatch_caught() {
        // a Celeron G1840 (LGA-1150) dropped onto the old Atom board
        let node = NodeSpec::new("frankenstein", NodeRole::Compute)
            .board(hw::ATOM_BOARD_D510MO)
            .cpu(hw::CELERON_G1840)
            .disk(hw::CRUCIAL_M550_MSATA)
            .psu(hw::PER_NODE_PSU)
            .build();
        let checks = check_node(&node, LITTLEFE_BAY_CLEARANCE_MM, true);
        let socket = checks
            .iter()
            .find(|c| c.check == "cpu-socket-match")
            .unwrap();
        assert!(!socket.passed);
        assert!(socket.detail.contains("FCBGA559"));
    }

    #[test]
    fn undersized_psu_caught() {
        let node = NodeSpec::new("brownout", NodeRole::Compute)
            .cpu(hw::CELERON_G1840)
            .disk(hw::CRUCIAL_M550_MSATA)
            .psu(hw::Psu {
                name: "tiny 40W",
                watts: 40.0,
            })
            .build();
        let checks = check_node(&node, LITTLEFE_BAY_CLEARANCE_MM, true);
        let psu = checks.iter().find(|c| c.check == "psu-headroom").unwrap();
        assert!(!psu.passed);
    }

    #[test]
    fn summary_counts() {
        let checks = vec![
            AcceptanceCheck {
                node: "a".into(),
                check: "x",
                passed: true,
                detail: String::new(),
            },
            AcceptanceCheck {
                node: "a".into(),
                check: "y",
                passed: false,
                detail: String::new(),
            },
        ];
        assert_eq!(summarize(&checks), (1, 1));
    }
}
