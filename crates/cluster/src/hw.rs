//! Hardware component catalog.
//!
//! Every part the paper's §5 build narrative names is encoded here with
//! its published characteristics, so the Table 4/5 numbers and the §5.1
//! design constraints (cooler height, per-node power) are *derived*, not
//! asserted.

use serde::Serialize;

/// A CPU model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CpuModel {
    pub name: &'static str,
    pub clock_ghz: f64,
    pub cores: u32,
    /// Double-precision FLOPs per cycle per core, as used by vendor Rpeak
    /// arithmetic (Haswell with FMA3+AVX2: 16).
    pub flops_per_cycle: u32,
    /// Thermal design power, watts.
    pub tdp_watts: f64,
    /// Measured package power under load (the paper quotes CPU Boss
    /// figures: D510 10.56 W vs G1840 43.06 W).
    pub measured_watts: f64,
    pub hyperthreading: bool,
    pub socket: &'static str,
}

impl CpuModel {
    /// Hardware threads exposed to the OS.
    pub fn threads(&self) -> u32 {
        if self.hyperthreading {
            self.cores * 2
        } else {
            self.cores
        }
    }
}

/// Intel Atom D510 — the historical LittleFe v4 CPU (§5.1: "The Atom
/// (D510) used historically in the LittleFe build uses 10.56 watts").
/// In-order Bonnell core, SSE3 only: 2 DP FLOPs/cycle.
pub const ATOM_D510: CpuModel = CpuModel {
    name: "Intel Atom D510",
    clock_ghz: 1.66,
    cores: 2,
    flops_per_cycle: 2,
    tdp_watts: 13.0,
    measured_watts: 10.56,
    hyperthreading: true,
    socket: "FCBGA559",
};

/// Intel Celeron G1840 — the modified-LittleFe CPU (§5.1). Haswell die;
/// the paper's Rpeak arithmetic (537.6 GF for 12 cores at 2.8 GHz) uses
/// the Haswell generation figure of 16 DP FLOPs/cycle. No hyperthreading
/// ("These CPU choices also eliminate the option of using
/// hyperthreading").
pub const CELERON_G1840: CpuModel = CpuModel {
    name: "Intel Celeron G1840",
    clock_ghz: 2.8,
    cores: 2,
    flops_per_cycle: 16,
    tdp_watts: 53.0,
    measured_watts: 43.06,
    hyperthreading: false,
    socket: "LGA-1150",
};

/// Intel Core i7-4770S — the Limulus HPC200 CPU (§5.2: "3.10GHz, 8MB
/// cache, 65 watts"). Haswell: 16 DP FLOPs/cycle, HT on.
pub const I7_4770S: CpuModel = CpuModel {
    name: "Intel Core i7-4770S",
    clock_ghz: 3.1,
    cores: 4,
    flops_per_cycle: 16,
    tdp_watts: 65.0,
    measured_watts: 65.0,
    hyperthreading: true,
    socket: "LGA-1150",
};

/// Disk technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DiskKind {
    /// Spinning laptop-type 2.5" drive.
    Hdd25,
    /// 2.5" SATA SSD.
    Ssd25,
    /// mSATA module mounted directly on the motherboard (§5.1: "an
    /// internal mini Serial-ATA (mSATA) drive that directly mounts to a
    /// compatible motherboard ... minimizing space ... while minimizing
    /// components that need to be isolated electronically").
    MSata,
}

/// A storage device.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DiskDrive {
    pub name: &'static str,
    pub kind: DiskKind,
    pub capacity_gb: u32,
    pub watts: f64,
    /// Whether the drive needs a physical mounting bay (mSATA does not).
    pub needs_bay: bool,
}

/// Crucial M550 128 GB mSATA — the per-node drive added to LittleFe so
/// Rocks (which "does not support diskless installation") can install.
pub const CRUCIAL_M550_MSATA: DiskDrive = DiskDrive {
    name: "Crucial M550 128GB mSATA",
    kind: DiskKind::MSata,
    capacity_gb: 128,
    watts: 3.5,
    needs_bay: false,
};

/// Generic 2.5" laptop HDD option §5.1 mentions as the alternative.
pub const LAPTOP_HDD_500GB: DiskDrive = DiskDrive {
    name: "2.5in laptop HDD 500GB",
    kind: DiskKind::Hdd25,
    capacity_gb: 500,
    watts: 2.5,
    needs_bay: true,
};

/// A network interface.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Nic {
    pub name: &'static str,
    pub speed_gbps: f64,
}

/// Onboard Intel GbE (the GA-Q87TN has two).
pub const GBE_NIC: Nic = Nic {
    name: "Intel I217LM GbE",
    speed_gbps: 1.0,
};

/// Motherboard form factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FormFactor {
    MiniItx,
    MicroAtx,
    Atx,
}

/// A motherboard.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Motherboard {
    pub name: &'static str,
    pub form_factor: FormFactor,
    pub socket: &'static str,
    pub msata_slot: bool,
    pub nic_count: u32,
}

/// Gigabyte GA-Q87TN — the modified LittleFe board (§5.1: "mini-ITX form
/// factor, but using Gigabyte GA-Q87TN motherboards that use the LGA-1150
/// socket"; dual NIC so the headnode can be dual-homed).
pub const GA_Q87TN: Motherboard = Motherboard {
    name: "Gigabyte GA-Q87TN",
    form_factor: FormFactor::MiniItx,
    socket: "LGA-1150",
    msata_slot: true,
    nic_count: 2,
};

/// The historical Atom board.
pub const ATOM_BOARD_D510MO: Motherboard = Motherboard {
    name: "Intel D510MO",
    form_factor: FormFactor::MiniItx,
    socket: "FCBGA559",
    msata_slot: false,
    nic_count: 1,
};

/// A power supply.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Psu {
    pub name: &'static str,
    pub watts: f64,
}

/// The per-node PicoPSU-style supply the modified LittleFe uses
/// (§5.1: "we added an individual power supply for each node").
pub const PER_NODE_PSU: Psu = Psu {
    name: "picoPSU-120 per-node supply",
    watts: 120.0,
};

/// The single shared supply of the original LittleFe design.
pub const LITTLEFE_SHARED_PSU: Psu = Psu {
    name: "LittleFe shared ATX supply",
    watts: 350.0,
};

/// The Limulus HPC200's 850 W supply (§5.2).
pub const LIMULUS_850W_PSU: Psu = Psu {
    name: "Limulus 850W supply",
    watts: 850.0,
};

/// CPU cooling solution with physical height (the binding constraint in
/// a LittleFe bay).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Cooler {
    pub name: &'static str,
    /// Total stack height in millimetres.
    pub height_mm: f64,
    /// Maximum CPU power it can dissipate, watts.
    pub capacity_watts: f64,
    pub has_fan: bool,
}

/// Passive heat sink + chassis airflow — enough for the Atom
/// ("The original LittleFe used a heat sink on the CPU and a small add-on
/// fan to blow air over the heat sink fins").
pub const ATOM_HEATSINK: Cooler = Cooler {
    name: "passive heatsink + chassis fan",
    height_mm: 25.0,
    capacity_watts: 18.0,
    has_fan: false,
};

/// The stock Intel cooler bundled with the Celeron G1840 — "too large to
/// fit in the space allocated per LittleFe node".
pub const INTEL_STOCK_COOLER: Cooler = Cooler {
    name: "Intel stock cooler",
    height_mm: 47.0,
    capacity_watts: 73.0,
    has_fan: true,
};

/// Rosewill RCX-Z775-LP 80 mm low-profile cooler — "fits well in the
/// allotted space".
pub const ROSEWILL_RCX_Z775_LP: Cooler = Cooler {
    name: "Rosewill RCX-Z775-LP 80mm Low Profile",
    height_mm: 37.0,
    capacity_watts: 65.0,
    has_fan: true,
};

#[cfg(test)]
// the paper's hardware facts are constants; asserting them is the point
#[allow(clippy::assertions_on_constants)]
mod tests {
    use super::*;

    #[test]
    fn paper_power_figures() {
        // §5.1: "The Atom (D510) ... uses 10.56 watts versus 43.06 watts
        // for the Celeron G1840"
        assert_eq!(ATOM_D510.measured_watts, 10.56);
        assert_eq!(CELERON_G1840.measured_watts, 43.06);
        assert!(CELERON_G1840.measured_watts / ATOM_D510.measured_watts > 4.0);
    }

    #[test]
    fn celeron_has_no_hyperthreading() {
        assert!(!CELERON_G1840.hyperthreading);
        assert_eq!(CELERON_G1840.threads(), 2);
        assert!(I7_4770S.hyperthreading);
        assert_eq!(I7_4770S.threads(), 8);
    }

    #[test]
    fn paper_clock_rates_match_table4() {
        assert_eq!(CELERON_G1840.clock_ghz, 2.8);
        assert_eq!(I7_4770S.clock_ghz, 3.1);
    }

    #[test]
    fn msata_needs_no_bay() {
        assert!(!CRUCIAL_M550_MSATA.needs_bay);
        assert!(LAPTOP_HDD_500GB.needs_bay);
        assert_eq!(CRUCIAL_M550_MSATA.capacity_gb, 128);
    }

    #[test]
    fn boards_match_sockets() {
        assert_eq!(GA_Q87TN.socket, CELERON_G1840.socket);
        assert_eq!(GA_Q87TN.socket, I7_4770S.socket);
        assert_ne!(ATOM_BOARD_D510MO.socket, CELERON_G1840.socket);
        assert!(GA_Q87TN.msata_slot);
        assert_eq!(GA_Q87TN.nic_count, 2, "dual-homed headnode needs two NICs");
    }

    #[test]
    fn stock_cooler_taller_than_low_profile() {
        assert!(INTEL_STOCK_COOLER.height_mm > ROSEWILL_RCX_Z775_LP.height_mm);
        assert!(ROSEWILL_RCX_Z775_LP.capacity_watts >= CELERON_G1840.tdp_watts);
        assert!(ATOM_HEATSINK.capacity_watts >= ATOM_D510.tdp_watts);
        assert!(ATOM_HEATSINK.capacity_watts < CELERON_G1840.tdp_watts);
    }
}
