//! Hardware failure injection.
//!
//! Table 5's footnote is itself a failure report: "Rmax for LittleFe is
//! estimated due to a hardware failure prior to Linpack." This module
//! models component failures, the degraded cluster that results, and a
//! simple fleet-level MTBF survey, so experiments can reproduce exactly
//! that scenario (lose a node, re-estimate what you can still measure).

use crate::node::NodeRole;
use crate::topology::ClusterSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Which component of a node failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FailedComponent {
    Motherboard,
    Cpu,
    Disk,
    Psu,
    Nic,
    Fan,
}

impl FailedComponent {
    pub const ALL: [FailedComponent; 6] = [
        FailedComponent::Motherboard,
        FailedComponent::Cpu,
        FailedComponent::Disk,
        FailedComponent::Psu,
        FailedComponent::Nic,
        FailedComponent::Fan,
    ];

    /// Does this failure take the node fully offline (vs degraded)?
    pub fn is_fatal(self) -> bool {
        matches!(
            self,
            FailedComponent::Motherboard | FailedComponent::Cpu | FailedComponent::Psu
        )
    }

    /// The hardware component a provisioning fault of `kind` most
    /// plausibly indicates, used when quarantined nodes are mapped onto
    /// a [`DegradedCluster`]: a node that hangs at boot looks like a dead
    /// motherboard, repeated DHCP timeouts like a bad NIC, a failed
    /// scriptlet or persistent transient error like a disk that needs
    /// reinstalling, and a power loss like a dead PSU.
    pub fn from_fault_kind(kind: xcbc_fault::FaultKind) -> FailedComponent {
        match kind {
            xcbc_fault::FaultKind::Transient => FailedComponent::Disk,
            xcbc_fault::FaultKind::Timeout => FailedComponent::Nic,
            xcbc_fault::FaultKind::Hang => FailedComponent::Motherboard,
            xcbc_fault::FaultKind::ScriptletError => FailedComponent::Disk,
            xcbc_fault::FaultKind::PowerLoss => FailedComponent::Psu,
        }
    }
}

/// One injected failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Failure {
    pub hostname: String,
    pub component: FailedComponent,
}

/// A cluster with a set of failures applied.
#[derive(Debug, Clone)]
pub struct DegradedCluster {
    pub spec: ClusterSpec,
    pub failures: Vec<Failure>,
}

impl DegradedCluster {
    /// Apply failures to a healthy cluster.
    pub fn new(spec: ClusterSpec, failures: Vec<Failure>) -> Self {
        DegradedCluster { spec, failures }
    }

    /// Build a degraded cluster from provisioning quarantine: each
    /// quarantined node becomes a [`Failure`] whose component is derived
    /// from the fault kind that exhausted its retry budget (see
    /// [`FailedComponent::from_fault_kind`]).
    pub fn from_quarantine<'a>(
        spec: ClusterSpec,
        quarantined: impl IntoIterator<Item = (&'a str, xcbc_fault::FaultKind)>,
    ) -> Self {
        let failures = quarantined
            .into_iter()
            .map(|(hostname, kind)| Failure {
                hostname: hostname.to_string(),
                component: FailedComponent::from_fault_kind(kind),
            })
            .collect();
        DegradedCluster::new(spec, failures)
    }

    /// Hostnames that are fully offline.
    pub fn offline_nodes(&self) -> Vec<&str> {
        self.failures
            .iter()
            .filter(|f| f.component.is_fatal())
            .map(|f| f.hostname.as_str())
            .collect()
    }

    /// Nodes still usable (possibly degraded).
    pub fn usable_nodes(&self) -> Vec<&crate::node::NodeSpec> {
        let offline = self.offline_nodes();
        self.spec
            .nodes
            .iter()
            .filter(|n| !offline.contains(&n.hostname.as_str()))
            .collect()
    }

    /// Rpeak of what still powers on.
    pub fn degraded_rpeak_gflops(&self) -> f64 {
        self.usable_nodes().iter().map(|n| n.rpeak_gflops()).sum()
    }

    /// Can the degraded cluster still run a whole-machine MPI job?
    /// (Any fatal failure on a compute node, or a NIC failure anywhere,
    /// breaks the all-node run — the Table 5 situation.)
    pub fn can_run_full_linpack(&self) -> bool {
        if !self.offline_nodes().is_empty() {
            return false;
        }
        !self
            .failures
            .iter()
            .any(|f| f.component == FailedComponent::Nic)
    }

    /// Is the frontend alive (cluster manageable at all)?
    pub fn frontend_alive(&self) -> bool {
        match self.spec.frontend() {
            None => false,
            Some(fe) => !self.offline_nodes().contains(&fe.hostname.as_str()),
        }
    }

    /// A disk failure on a Rocks cluster means that node must be
    /// reinstalled after the swap — list them.
    pub fn needs_reinstall(&self) -> Vec<&str> {
        self.failures
            .iter()
            .filter(|f| f.component == FailedComponent::Disk)
            .map(|f| f.hostname.as_str())
            .collect()
    }
}

/// Sample failures over `hours` of operation given a per-component
/// hourly failure rate (cheap consumer parts: ~1e-5/h ≈ 11-year MTBF).
pub fn sample_failures(
    spec: &ClusterSpec,
    hourly_rate: f64,
    hours: u32,
    seed: u64,
) -> Vec<Failure> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = Vec::new();
    let p_window = 1.0 - (1.0 - hourly_rate).powi(hours as i32);
    for node in &spec.nodes {
        for component in FailedComponent::ALL {
            // skip components the node does not have
            if component == FailedComponent::Disk && node.is_diskless() {
                continue;
            }
            if component == FailedComponent::Fan && !node.cooler.has_fan {
                continue;
            }
            if rng.gen_bool(p_window.clamp(0.0, 1.0)) {
                failures.push(Failure {
                    hostname: node.hostname.clone(),
                    component,
                });
            }
        }
    }
    let _ = NodeRole::Compute; // silence unused-import lint pathways
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::littlefe_modified;

    /// The Table 5 scenario: one LittleFe node dies before the Linpack
    /// run; the team estimates Rmax instead of measuring it.
    #[test]
    fn table5_footnote_scenario() {
        let cluster = littlefe_modified();
        let full_rpeak = cluster.rpeak_gflops();
        let degraded = DegradedCluster::new(
            cluster,
            vec![Failure {
                hostname: "compute-0-3".to_string(),
                component: FailedComponent::Motherboard,
            }],
        );
        assert!(
            !degraded.can_run_full_linpack(),
            "no 12-core Linpack possible"
        );
        assert!(degraded.frontend_alive(), "cluster still manageable");
        // 5 of 6 nodes: 5/6 of Rpeak still available
        assert!((degraded.degraded_rpeak_gflops() - full_rpeak * 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn non_fatal_failures_keep_nodes_usable() {
        let degraded = DegradedCluster::new(
            littlefe_modified(),
            vec![Failure {
                hostname: "compute-0-0".into(),
                component: FailedComponent::Fan,
            }],
        );
        assert!(degraded.offline_nodes().is_empty());
        assert_eq!(degraded.usable_nodes().len(), 6);
        assert!(
            degraded.can_run_full_linpack(),
            "a degraded fan does not stop HPL"
        );
    }

    #[test]
    fn nic_failure_breaks_full_run_but_not_node() {
        let degraded = DegradedCluster::new(
            littlefe_modified(),
            vec![Failure {
                hostname: "compute-0-1".into(),
                component: FailedComponent::Nic,
            }],
        );
        assert!(degraded.offline_nodes().is_empty());
        assert!(!degraded.can_run_full_linpack());
    }

    #[test]
    fn frontend_death_detected() {
        let degraded = DegradedCluster::new(
            littlefe_modified(),
            vec![Failure {
                hostname: "littlefe".into(),
                component: FailedComponent::Psu,
            }],
        );
        assert!(!degraded.frontend_alive());
    }

    #[test]
    fn disk_failures_trigger_reinstalls() {
        let degraded = DegradedCluster::new(
            littlefe_modified(),
            vec![
                Failure {
                    hostname: "compute-0-0".into(),
                    component: FailedComponent::Disk,
                },
                Failure {
                    hostname: "compute-0-2".into(),
                    component: FailedComponent::Disk,
                },
            ],
        );
        assert_eq!(
            degraded.needs_reinstall(),
            vec!["compute-0-0", "compute-0-2"]
        );
    }

    #[test]
    fn sampling_respects_hardware_presence() {
        // Limulus blades are diskless: no disk failures possible there
        let spec = crate::specs::limulus_hpc200();
        let failures = sample_failures(&spec, 0.9, 1, 3); // near-certain
        for f in &failures {
            if f.component == FailedComponent::Disk {
                assert_eq!(f.hostname, "limulus", "only the head has disks");
            }
        }
        assert!(!failures.is_empty());
    }

    #[test]
    fn quarantine_maps_fault_kinds_to_components() {
        use xcbc_fault::FaultKind;
        let degraded = DegradedCluster::from_quarantine(
            littlefe_modified(),
            vec![
                ("compute-0-3", FaultKind::Hang),
                ("compute-0-1", FaultKind::Timeout),
            ],
        );
        // A boot hang is fatal (motherboard); a DHCP timeout is a NIC.
        assert_eq!(degraded.offline_nodes(), vec!["compute-0-3"]);
        assert_eq!(degraded.usable_nodes().len(), 5);
        assert!(
            !degraded.can_run_full_linpack(),
            "NIC quarantine breaks the all-node run"
        );
        assert!(degraded.frontend_alive());
    }

    #[test]
    fn scriptlet_quarantine_needs_reinstall() {
        use xcbc_fault::FaultKind;
        let degraded = DegradedCluster::from_quarantine(
            littlefe_modified(),
            vec![("compute-0-2", FaultKind::ScriptletError)],
        );
        assert_eq!(degraded.needs_reinstall(), vec!["compute-0-2"]);
        assert!(degraded.offline_nodes().is_empty());
    }

    #[test]
    fn zero_rate_no_failures() {
        let spec = littlefe_modified();
        assert!(sample_failures(&spec, 0.0, 10_000, 1).is_empty());
    }

    #[test]
    fn sampling_deterministic() {
        let spec = littlefe_modified();
        let a = sample_failures(&spec, 1e-4, 8760, 7);
        let b = sample_failures(&spec, 1e-4, 8760, 7);
        assert_eq!(a, b);
    }
}
