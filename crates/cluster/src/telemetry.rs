//! Event-driven gmond: derive node metrics from the trace bus.
//!
//! The old monitor was fed by nothing — dashboards showed whatever a
//! demo hand-published. [`TelemetrySink`] closes the loop: it is a
//! [`TraceSink`] attached to the same stream every layer already emits
//! (`rocks.install` spans, `sched` job spans, `yum.mirror` fetches,
//! `cluster.boot` phases) and converts each event into the per-node
//! samples a real gmond would have measured while that work ran:
//!
//! * an install span on a node ⇒ CPU/memory/load busy at span start,
//!   idle at span end; a `bytes` field ⇒ network bytes/sec for the
//!   span's duration;
//! * a retry-backoff span ([`BACKOFF_PREFIX`]) ⇒ a CPU thrash spike —
//!   which is what trips the `cpu-hot` alert rule under fault
//!   injection;
//! * a scheduler job span with a `placement` field ⇒ load/CPU on each
//!   placed node for the job's lifetime;
//! * a mirror fetch ⇒ network throughput on the frontend.
//!
//! Every derived sample also flows through the [`AlertEngine`], so
//! threshold alerts fire *at the simulated instant* the violation
//! happened, deterministically. Because the input trace is
//! byte-deterministic for a fixed seed, so is everything this sink
//! derives.

use crate::monitor::{Alert, AlertEngine, AlertRule, ClusterMonitor, MetricKind, MetricUpdate};
use crate::node::PowerState;
use crate::power::POWER_TRACE_SOURCE;
use std::collections::BTreeMap;
use std::sync::Arc;
use xcbc_sim::{
    FieldValue, SimTime, TraceEvent, TraceKind, TraceSink, ANALYZE_TRACE_SOURCE, BACKOFF_PREFIX,
};

/// Trace source for fleet membership marks (`join <host>` /
/// `drain <host>` / `leave <host>`). Emitted by the elastic membership
/// engine; a join doubles as a heartbeat so always-on floor nodes and
/// mid-run burst sites register without ever booting through the power
/// sequencer.
pub const MEMBERSHIP_TRACE_SOURCE: &str = "fleet.membership";

/// Where a node stands in a rolling update campaign, as seen by the
/// monitoring plane. Driven by `campaign`-source trace marks
/// (`drain <host>` / `update <host>` / `online <host>` / `fail <host>`),
/// so dashboards can show service state next to load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceState {
    /// Accepting jobs; not part of an active wave.
    #[default]
    InService,
    /// Taken out of the scheduler; waiting for running jobs to clear.
    Draining,
    /// Drained and applying the target package set.
    Updating,
    /// The campaign gave up on this node (retry budget exhausted).
    Failed,
}

impl ServiceState {
    pub fn as_str(self) -> &'static str {
        match self {
            ServiceState::InService => "in-service",
            ServiceState::Draining => "draining",
            ServiceState::Updating => "updating",
            ServiceState::Failed => "failed",
        }
    }
}

/// Derived CPU percent while an install span runs.
pub const INSTALL_CPU: f64 = 88.0;
/// Derived memory percent while an install span runs.
pub const INSTALL_MEM: f64 = 62.0;
/// Derived 1-minute load while an install span runs.
pub const INSTALL_LOAD: f64 = 1.0;
/// Derived CPU percent during a retry-backoff span (the node is
/// thrashing through timeouts and retries) — above the `cpu-hot`
/// threshold on purpose.
pub const BACKOFF_CPU: f64 = 97.5;
/// Derived CPU percent on nodes running a scheduler job.
pub const JOB_CPU: f64 = 92.0;
/// Derived CPU percent on the frontend while it serves a mirror fetch.
pub const MIRROR_CPU: f64 = 35.0;
/// Derived CPU percent while a node boots.
pub const BOOT_CPU: f64 = 55.0;
/// Idle CPU percent published when a span ends.
pub const IDLE_CPU: f64 = 4.0;
/// Idle memory percent published when a span ends.
pub const IDLE_MEM: f64 = 22.0;
/// Idle load published when a span ends.
pub const IDLE_LOAD: f64 = 0.05;

/// How the sink maps trace events onto hosts.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// The frontend hostname: unattributable work (mirror fetches,
    /// insert-ethers, spans with no recognizable host) lands here —
    /// faithfully, since the frontend runs all of it.
    pub frontend: String,
    /// Every hostname in the cluster; registered up front so silent
    /// nodes show up in heartbeat checks.
    pub hosts: Vec<String>,
    /// Scheduler node index `i` maps to host `{sched_host_prefix}{i}`.
    pub sched_host_prefix: String,
}

impl TelemetryConfig {
    /// A config for `frontend` plus `hosts`, with the stock Rocks
    /// compute naming (`compute-0-<i>`).
    pub fn new(frontend: impl Into<String>, hosts: Vec<String>) -> TelemetryConfig {
        TelemetryConfig {
            frontend: frontend.into(),
            hosts,
            sched_host_prefix: "compute-0-".to_string(),
        }
    }
}

/// One derived monitoring action, buffered so a batch of trace events
/// can publish under a single monitor lock while the alert engine
/// still sees every action in exact emission order.
#[derive(Debug)]
enum TelemetryOp {
    /// A sample for the gmetad rings *and* the alert engine.
    Sample(MetricUpdate),
    /// A direct alert raise (campaign failures and the like).
    Raise {
        t: SimTime,
        rule: &'static str,
        host: String,
    },
}

/// The last trace-analysis summary observed on the
/// [`ANALYZE_TRACE_SOURCE`] stream (the `critical-path` mark the
/// analyser emits), so dashboards can show what bounded the run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalysisSummary {
    /// Links in the critical path.
    pub segments: u64,
    /// Busy seconds along the path.
    pub busy_s: f64,
    /// Blocked seconds along the path.
    pub blocked_s: f64,
    /// The span makespan the path telescopes to.
    pub makespan_s: f64,
    /// Label of the terminal (makespan-bounding) span, if any.
    pub terminal: Option<String>,
}

/// The event-driven gmond array: one [`TraceSink`] that publishes
/// derived samples into a [`ClusterMonitor`] and evaluates alert rules
/// sample-by-sample.
#[derive(Debug)]
pub struct TelemetrySink {
    monitor: ClusterMonitor,
    engine: AlertEngine,
    config: TelemetryConfig,
    /// Campaign service state per host; hosts never touched by a
    /// campaign stay [`ServiceState::InService`].
    service: BTreeMap<String, ServiceState>,
    /// Power state per host, driven by `cluster.power` boot spans and
    /// power-off marks; hosts never power-managed stay [`PowerState::On`].
    power: BTreeMap<String, PowerState>,
    /// The last `trace.analyze` critical-path summary seen, if any.
    analysis: Option<AnalysisSummary>,
    /// Reused per-event op buffer, so single-event `record` doesn't
    /// allocate a fresh vec per trace event.
    scratch: Vec<TelemetryOp>,
    /// The frontend hostname as a shared allocation: unattributable
    /// work resolves here on every event, so cloning must be a
    /// refcount bump, not a heap allocation.
    frontend: Arc<str>,
}

impl TelemetrySink {
    /// A sink publishing into `monitor` under `rules`. All configured
    /// hosts are registered immediately.
    pub fn new(monitor: ClusterMonitor, config: TelemetryConfig, rules: Vec<AlertRule>) -> Self {
        for h in &config.hosts {
            monitor.register(h);
        }
        monitor.register(&config.frontend);
        let frontend = Arc::from(config.frontend.as_str());
        TelemetrySink {
            monitor,
            engine: AlertEngine::with_rules(rules),
            config,
            service: BTreeMap::new(),
            power: BTreeMap::new(),
            analysis: None,
            scratch: Vec::new(),
            frontend,
        }
    }

    /// The last critical-path summary seen on the `trace.analyze`
    /// stream, if the run's trace was analysed.
    pub fn analysis(&self) -> Option<&AnalysisSummary> {
        self.analysis.as_ref()
    }

    /// The campaign service state of `host`.
    pub fn service_state(&self, host: &str) -> ServiceState {
        self.service.get(host).copied().unwrap_or_default()
    }

    /// Hosts whose service state a campaign has touched, sorted by name.
    pub fn service_states(&self) -> impl Iterator<Item = (&str, ServiceState)> {
        self.service.iter().map(|(h, s)| (h.as_str(), *s))
    }

    /// The power state of `host` as last reported on the trace. Hosts
    /// never touched by power management are assumed on.
    pub fn power_state(&self, host: &str) -> PowerState {
        self.power.get(host).copied().unwrap_or(PowerState::On)
    }

    /// Hosts whose power state the trace has touched, sorted by name.
    pub fn power_states(&self) -> impl Iterator<Item = (&str, PowerState)> {
        self.power.iter().map(|(h, s)| (h.as_str(), *s))
    }

    /// The gmetad this sink publishes into.
    pub fn monitor(&self) -> &ClusterMonitor {
        &self.monitor
    }

    /// The alert engine (rules, fired alerts).
    pub fn engine(&self) -> &AlertEngine {
        &self.engine
    }

    /// Alerts fired so far, in firing order.
    pub fn alerts(&self) -> &[Alert] {
        self.engine.alerts()
    }

    /// Raise a quarantine alert for `node` at `t` (fed from the fault
    /// layer's post-mortem).
    pub fn note_quarantined(&mut self, t: SimTime, node: &str) {
        self.engine.raise(t, "node-quarantined", node, 1.0);
    }

    /// Heartbeat sweep at scenario end: any registered node that never
    /// reported raises a `node-absent` alert.
    pub fn finish(&mut self, now: SimTime) {
        for host in self.monitor.absent_nodes(now, None) {
            self.engine.raise(now, "node-absent", &host, 1.0);
        }
    }

    /// Consume the sink, returning the monitor and the alert engine.
    pub fn into_parts(self) -> (ClusterMonitor, AlertEngine) {
        (self.monitor, self.engine)
    }

    /// Replay buffered ops: every sample lands in the gmetad under one
    /// [`publish_all`](ClusterMonitor::publish_all) lock acquisition,
    /// then the alert engine sees every op in exact derivation order —
    /// so batched ingest is observationally identical to per-event
    /// ingest, just without a lock round-trip per sample.
    fn apply(&mut self, ops: &[TelemetryOp]) {
        self.monitor
            .publish_all(ops.iter().filter_map(|op| match op {
                TelemetryOp::Sample(u) => Some(u),
                TelemetryOp::Raise { .. } => None,
            }));
        for op in ops {
            match op {
                TelemetryOp::Sample(u) => self.engine.observe(&u.host, u.kind, u.time, u.value),
                TelemetryOp::Raise { t, rule, host } => self.engine.raise(*t, rule, host, 1.0),
            }
        }
    }

    /// Resolve the host an event describes: an explicit `node` field
    /// wins; otherwise a `<host>:`-prefixed label is matched against
    /// the known hosts (with `frontend:` aliasing the configured
    /// frontend); everything else is the frontend's work. Returns a
    /// shared allocation so the event's derived samples can all point
    /// at one host string.
    fn resolve_host(&self, event: &TraceEvent) -> Arc<str> {
        if let Some(FieldValue::Str(node)) = field(event, "node") {
            return Arc::from(node.as_str());
        }
        if let Some((prefix, _)) = event.label.split_once(':') {
            if prefix == "frontend" {
                return Arc::clone(&self.frontend);
            }
            if self.config.hosts.iter().any(|h| h == prefix) {
                return Arc::from(prefix);
            }
        }
        Arc::clone(&self.frontend)
    }
}

fn field<'a>(event: &'a TraceEvent, key: &str) -> Option<&'a FieldValue> {
    event.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn field_u64(event: &TraceEvent, key: &str) -> Option<u64> {
    match field(event, key) {
        Some(FieldValue::U64(v)) => Some(*v),
        _ => None,
    }
}

fn field_f64(event: &TraceEvent, key: &str) -> Option<f64> {
    match field(event, key) {
        Some(FieldValue::F64(v)) => Some(*v),
        _ => None,
    }
}

fn sample(
    ops: &mut Vec<TelemetryOp>,
    host: &Arc<str>,
    kind: MetricKind,
    time: SimTime,
    value: f64,
) {
    ops.push(TelemetryOp::Sample(MetricUpdate {
        host: Arc::clone(host),
        kind,
        time,
        value,
    }));
}

/// Busy samples at span start, idle samples at span end.
fn busy_idle(
    ops: &mut Vec<TelemetryOp>,
    host: &Arc<str>,
    start: SimTime,
    end: SimTime,
    cpu: f64,
    load: f64,
    mem: Option<f64>,
) {
    sample(ops, host, MetricKind::CpuPercent, start, cpu);
    sample(ops, host, MetricKind::LoadOne, start, load);
    if let Some(mem) = mem {
        sample(ops, host, MetricKind::MemPercent, start, mem);
    }
    if end > start {
        sample(ops, host, MetricKind::CpuPercent, end, IDLE_CPU);
        sample(ops, host, MetricKind::LoadOne, end, IDLE_LOAD);
        if mem.is_some() {
            sample(ops, host, MetricKind::MemPercent, end, IDLE_MEM);
        }
    }
}

fn net_span(ops: &mut Vec<TelemetryOp>, host: &Arc<str>, start: SimTime, end: SimTime, bytes: u64) {
    let dur_s = end.since(start).as_secs_f64();
    let rate = if dur_s > 0.0 {
        bytes as f64 / dur_s
    } else {
        bytes as f64
    };
    sample(ops, host, MetricKind::NetBytesPerSec, start, rate);
    if end > start {
        sample(ops, host, MetricKind::NetBytesPerSec, end, 0.0);
    }
}

impl TelemetrySink {
    /// Convert one trace event into buffered monitoring ops and state
    /// updates. Shared verbatim by [`record`](TraceSink::record) and
    /// [`accept_batch`](TraceSink::accept_batch), so both paths derive
    /// the exact same op sequence.
    fn derive(&mut self, event: &TraceEvent, ops: &mut Vec<TelemetryOp>) {
        if event.source == "campaign" {
            if let TraceKind::Mark = event.kind {
                if let Some((verb, host)) = event.label.split_once(' ') {
                    let state = match verb {
                        "drain" => Some(ServiceState::Draining),
                        "update" => Some(ServiceState::Updating),
                        "online" => Some(ServiceState::InService),
                        "fail" => Some(ServiceState::Failed),
                        _ => None,
                    };
                    if let Some(state) = state {
                        self.service.insert(host.to_string(), state);
                        if state == ServiceState::Failed {
                            ops.push(TelemetryOp::Raise {
                                t: event.t,
                                rule: "campaign-node-failed",
                                host: host.to_string(),
                            });
                        }
                    }
                }
            }
            return;
        }
        if event.source == MEMBERSHIP_TRACE_SOURCE {
            if let TraceKind::Mark = event.kind {
                if let Some((verb, host)) = event.label.split_once(' ') {
                    match verb {
                        // A join is the member's first heartbeat: an
                        // idle sample registers it with the gmetad so
                        // the absence sweep sees it, without inventing
                        // load the node never carried.
                        "join" => {
                            let shared: Arc<str> = Arc::from(host);
                            sample(ops, &shared, MetricKind::CpuPercent, event.t, 0.0);
                            sample(ops, &shared, MetricKind::LoadOne, event.t, 0.0);
                            self.power.insert(host.to_string(), PowerState::On);
                            self.service
                                .insert(host.to_string(), ServiceState::InService);
                        }
                        "drain" => {
                            self.service
                                .insert(host.to_string(), ServiceState::Draining);
                        }
                        "leave" => {
                            self.power.insert(host.to_string(), PowerState::Off);
                        }
                        _ => {}
                    }
                }
            }
            return;
        }
        if event.source == ANALYZE_TRACE_SOURCE {
            // analysis summaries update dashboard state; they carry no
            // node load (the analyser ran on the operator's machine)
            if let TraceKind::Mark = event.kind {
                if event.label == "critical-path" {
                    let terminal = match field(event, "terminal") {
                        Some(FieldValue::Str(s)) => Some(s.clone()),
                        _ => None,
                    };
                    self.analysis = Some(AnalysisSummary {
                        segments: field_u64(event, "segments").unwrap_or(0),
                        busy_s: field_f64(event, "busy_s").unwrap_or(0.0),
                        blocked_s: field_f64(event, "blocked_s").unwrap_or(0.0),
                        makespan_s: field_f64(event, "makespan_s").unwrap_or(0.0),
                        terminal,
                    });
                }
            }
            return;
        }
        if event.source == POWER_TRACE_SOURCE {
            // `boot node N` spans and `power-off node N` marks carry a
            // numeric `node` field; aggregate `boot N nodes` spans and
            // `nodes-on` counters carry no per-host state.
            let Some(n) = field_u64(event, "node") else {
                return;
            };
            let host = format!("{}{n}", self.config.sched_host_prefix);
            match event.kind {
                TraceKind::Span { dur } => {
                    let shared: Arc<str> = Arc::from(host.as_str());
                    busy_idle(
                        ops,
                        &shared,
                        event.t,
                        event.t + dur,
                        BOOT_CPU,
                        INSTALL_LOAD,
                        None,
                    );
                    self.power.insert(host, PowerState::On);
                }
                TraceKind::Mark => {
                    self.power.insert(host, PowerState::Off);
                }
                TraceKind::Counter { .. } => {}
            }
            return;
        }
        let TraceKind::Span { dur } = event.kind else {
            return; // marks and counters carry no sustained node load
        };
        let (start, end) = (event.t, event.t + dur);
        match event.source.as_str() {
            "rocks.install" | "xnit.overlay" => {
                let host = self.resolve_host(event);
                if event.label.starts_with(BACKOFF_PREFIX) {
                    // retries thrash the node: CPU spike, no real work
                    busy_idle(ops, &host, start, end, BACKOFF_CPU, INSTALL_LOAD, None);
                } else {
                    busy_idle(
                        ops,
                        &host,
                        start,
                        end,
                        INSTALL_CPU,
                        INSTALL_LOAD,
                        Some(INSTALL_MEM),
                    );
                    if let Some(bytes) = field_u64(event, "bytes") {
                        net_span(ops, &host, start, end, bytes);
                    }
                }
            }
            "cluster.boot" => {
                let host = self.resolve_host(event);
                busy_idle(ops, &host, start, end, BOOT_CPU, INSTALL_LOAD, None);
            }
            "yum.mirror" => {
                let host = Arc::clone(&self.frontend);
                busy_idle(ops, &host, start, end, MIRROR_CPU, INSTALL_LOAD, None);
                if let Some(bytes) = field_u64(event, "bytes") {
                    net_span(ops, &host, start, end, bytes);
                }
            }
            "sched" => {
                let Some(FieldValue::Str(placement)) = field(event, "placement") else {
                    return; // reservations and marks: no node load
                };
                let hosts: Vec<Arc<str>> = placement
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|i| Arc::from(format!("{}{i}", self.config.sched_host_prefix)))
                    .collect();
                if hosts.is_empty() {
                    return;
                }
                let cores = field_u64(event, "cores").unwrap_or(hosts.len() as u64);
                let per_node_load = cores as f64 / hosts.len() as f64;
                for host in &hosts {
                    busy_idle(ops, host, start, end, JOB_CPU, per_node_load, None);
                }
            }
            _ => {}
        }
    }
}

impl TraceSink for TelemetrySink {
    fn record(&mut self, event: &TraceEvent) {
        let mut ops = std::mem::take(&mut self.scratch);
        ops.clear();
        self.derive(event, &mut ops);
        self.apply(&ops);
        self.scratch = ops;
    }

    fn accept_batch(&mut self, events: &[TraceEvent]) {
        // Chunked rather than all-at-once: each chunk's samples publish
        // under one monitor lock, while the op buffer stays small
        // enough to stay cache-resident and is reused across chunks
        // (an unbounded buffer for a large batch costs more in memory
        // traffic than the saved lock round-trips buy back).
        const CHUNK: usize = 256;
        let mut ops = std::mem::take(&mut self.scratch);
        for chunk in events.chunks(CHUNK) {
            ops.clear();
            for event in chunk {
                self.derive(event, &mut ops);
            }
            self.apply(&ops);
        }
        self.scratch = ops;
    }

    fn name(&self) -> &str {
        "telemetry"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::default_alert_rules;

    fn sink() -> TelemetrySink {
        let hosts = vec![
            "littlefe".to_string(),
            "compute-0-0".to_string(),
            "compute-0-1".to_string(),
        ];
        TelemetrySink::new(
            ClusterMonitor::new(32),
            TelemetryConfig::new("littlefe", hosts),
            default_alert_rules(),
        )
    }

    #[test]
    fn install_span_drives_node_metrics() {
        let mut s = sink();
        s.record(
            &TraceEvent::span(
                10.0,
                "rocks.install",
                "compute-0-0: pxe + kickstart install",
                600.0,
            )
            .with_field("bytes", 300u64 << 20),
        );
        let m = s.monitor();
        let cpu = m
            .with_node("compute-0-0", |n| n.ring(MetricKind::CpuPercent).latest())
            .flatten()
            .unwrap();
        assert_eq!(cpu.value, IDLE_CPU, "span ended: node back to idle");
        assert_eq!(cpu.time, SimTime::from_secs(610));
        let net = m
            .with_node("compute-0-0", |n| n.ring(MetricKind::NetBytesPerSec).len())
            .unwrap();
        assert_eq!(net, 2, "rate at start, zero at end");
    }

    #[test]
    fn frontend_labels_map_to_frontend_host() {
        let mut s = sink();
        s.record(&TraceEvent::span(
            0.0,
            "rocks.install",
            "frontend: installer screens & roll selection",
            300.0,
        ));
        assert!(s
            .monitor()
            .with_node("littlefe", |n| !n.ring(MetricKind::CpuPercent).is_empty())
            .unwrap());
    }

    #[test]
    fn backoff_spike_fires_cpu_hot_alert() {
        let mut s = sink();
        s.record(&TraceEvent::span(
            50.0,
            "rocks.install",
            format!("{BACKOFF_PREFIX}compute-0-1: boot retries"),
            20.0,
        ));
        // the label after the prefix is not a known-host prefix match,
        // but the spike still lands (on the frontend) and trips the rule
        let alerts = s.alerts();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].rule, "cpu-hot");
        assert_eq!(alerts[0].t, SimTime::from_secs(50));
    }

    #[test]
    fn job_span_places_load_on_placed_nodes() {
        let mut s = sink();
        s.record(
            &TraceEvent::span(100.0, "sched", "job hello-mpi", 600.0)
                .with_field("cores", 4u64)
                .with_field("placement", "0,1"),
        );
        for host in ["compute-0-0", "compute-0-1"] {
            let load = s
                .monitor()
                .with_node(host, |n| n.ring(MetricKind::LoadOne).iter().next())
                .flatten()
                .unwrap();
            assert_eq!(load.value, 2.0, "4 cores over 2 nodes");
        }
    }

    #[test]
    fn sched_marks_and_reservations_carry_no_load() {
        let mut s = sink();
        s.record(&TraceEvent::mark(0.0, "sched", "submit hello"));
        s.record(
            &TraceEvent::span(0.0, "sched", "reservation: maintenance", 3600.0)
                .with_field("nodes", 2u64),
        );
        assert!(s
            .monitor()
            .with_node("compute-0-0", |n| n.ring(MetricKind::LoadOne).is_empty())
            .unwrap());
    }

    #[test]
    fn mirror_fetch_is_frontend_network() {
        let mut s = sink();
        s.record(
            &TraceEvent::span(0.0, "yum.mirror", "fetch http://mirror/rocks", 100.0)
                .with_field("bytes", 1000u64 * 100),
        );
        let net = s
            .monitor()
            .with_node("littlefe", |n| {
                n.ring(MetricKind::NetBytesPerSec).iter().next()
            })
            .flatten()
            .unwrap();
        assert_eq!(net.value, 1000.0);
    }

    #[test]
    fn finish_raises_absent_alerts_for_silent_nodes() {
        let mut s = sink();
        s.record(&TraceEvent::span(
            0.0,
            "rocks.install",
            "compute-0-0: pxe + kickstart install",
            60.0,
        ));
        s.finish(SimTime::from_secs(120));
        let absent: Vec<&str> = s
            .alerts()
            .iter()
            .filter(|a| a.rule == "node-absent")
            .map(|a| a.host.as_str())
            .collect();
        // compute-0-1 and the frontend never reported
        assert_eq!(absent, ["compute-0-1", "littlefe"]);
    }

    #[test]
    fn campaign_marks_drive_service_state() {
        let mut s = sink();
        assert_eq!(s.service_state("compute-0-0"), ServiceState::InService);
        s.record(&TraceEvent::mark(10.0, "campaign", "drain compute-0-0"));
        assert_eq!(s.service_state("compute-0-0"), ServiceState::Draining);
        s.record(&TraceEvent::mark(20.0, "campaign", "update compute-0-0"));
        assert_eq!(s.service_state("compute-0-0"), ServiceState::Updating);
        s.record(&TraceEvent::mark(30.0, "campaign", "online compute-0-0"));
        assert_eq!(s.service_state("compute-0-0"), ServiceState::InService);
        s.record(&TraceEvent::mark(40.0, "campaign", "fail compute-0-1"));
        assert_eq!(s.service_state("compute-0-1"), ServiceState::Failed);
        let states: Vec<_> = s.service_states().collect();
        assert_eq!(
            states,
            vec![
                ("compute-0-0", ServiceState::InService),
                ("compute-0-1", ServiceState::Failed),
            ]
        );
        // a failed node raises a campaign alert on the monitoring plane
        assert!(s
            .alerts()
            .iter()
            .any(|a| a.rule == "campaign-node-failed" && a.host == "compute-0-1"));
        // unknown campaign verbs and non-campaign marks are ignored
        s.record(&TraceEvent::mark(50.0, "campaign", "ponder compute-0-0"));
        s.record(&TraceEvent::mark(50.0, "sched", "drain compute-0-0"));
        assert_eq!(s.service_state("compute-0-0"), ServiceState::InService);
    }

    #[test]
    fn power_events_drive_power_state_and_boot_load() {
        let mut s = sink();
        assert_eq!(s.power_state("compute-0-1"), PowerState::On);
        s.record(
            &TraceEvent::span(100.0, POWER_TRACE_SOURCE, "boot node 1", 90.0)
                .with_field("node", 1u64),
        );
        assert_eq!(s.power_state("compute-0-1"), PowerState::On);
        // the boot span drives CPU on the booting node
        let cpu = s
            .monitor()
            .with_node("compute-0-1", |n| {
                n.ring(MetricKind::CpuPercent).iter().next()
            })
            .flatten()
            .unwrap();
        assert_eq!(cpu.value, BOOT_CPU);
        s.record(
            &TraceEvent::mark(500.0, POWER_TRACE_SOURCE, "power-off node 1")
                .with_field("node", 1u64),
        );
        assert_eq!(s.power_state("compute-0-1"), PowerState::Off);
        let states: Vec<_> = s.power_states().collect();
        assert_eq!(states, vec![("compute-0-1", PowerState::Off)]);
        // aggregate events (no `node` field) carry no per-host state
        s.record(
            &TraceEvent::span(600.0, POWER_TRACE_SOURCE, "boot 2 nodes", 90.0)
                .with_field("nodes", 2u64),
        );
        assert_eq!(s.power_state("compute-0-0"), PowerState::On);
    }

    #[test]
    fn batch_ingest_matches_per_event_ingest() {
        // a mixed stream touching every derivation branch
        let mut events = Vec::new();
        for i in 0..40u64 {
            events.push(
                TraceEvent::span(
                    (i * 10) as f64,
                    "rocks.install",
                    format!("compute-0-{}: pxe + kickstart install", i % 2),
                    60.0,
                )
                .with_field("node", format!("compute-0-{}", i % 2))
                .with_field("bytes", 1u64 << 20),
            );
            events.push(
                TraceEvent::span((i * 10 + 2) as f64, "sched", format!("job j{i}"), 30.0)
                    .with_field("cores", 2u64)
                    .with_field("placement", "0,1"),
            );
        }
        events.push(TraceEvent::mark(500.0, "campaign", "fail compute-0-1"));
        events.push(TraceEvent::span(
            600.0,
            "rocks.install",
            format!("{BACKOFF_PREFIX}retries"),
            20.0,
        ));

        let mut looped = sink();
        for e in &events {
            looped.record(e);
        }
        let mut batched = sink();
        batched.accept_batch(&events);

        assert_eq!(looped.alerts(), batched.alerts(), "same alerts, same order");
        for host in ["littlefe", "compute-0-0", "compute-0-1"] {
            for kind in [
                MetricKind::CpuPercent,
                MetricKind::LoadOne,
                MetricKind::MemPercent,
                MetricKind::NetBytesPerSec,
            ] {
                let a: Vec<_> = looped
                    .monitor()
                    .with_node(host, |n| n.ring(kind).iter().collect::<Vec<_>>())
                    .unwrap();
                let b: Vec<_> = batched
                    .monitor()
                    .with_node(host, |n| n.ring(kind).iter().collect::<Vec<_>>())
                    .unwrap();
                assert_eq!(a, b, "{host}/{kind:?} series identical");
            }
        }
    }

    #[test]
    fn analysis_marks_update_summary_state() {
        let mut s = sink();
        assert!(s.analysis().is_none());
        s.record(
            &TraceEvent::mark(100.0, ANALYZE_TRACE_SOURCE, "critical-path")
                .with_field("segments", 3u64)
                .with_field("busy_s", 80.0)
                .with_field("blocked_s", 20.0)
                .with_field("makespan_s", 100.0)
                .with_field("terminal", "sched drain"),
        );
        let a = s.analysis().unwrap();
        assert_eq!(a.segments, 3);
        assert_eq!(a.makespan_s, 100.0);
        assert_eq!(a.terminal.as_deref(), Some("sched drain"));
        // lane marks and unrelated labels don't clobber the summary
        s.record(&TraceEvent::mark(100.0, ANALYZE_TRACE_SOURCE, "lane sched"));
        assert_eq!(s.analysis().unwrap().segments, 3);
        // analysis marks derive no node load
        assert!(s
            .monitor()
            .with_node("compute-0-0", |n| n.ring(MetricKind::CpuPercent).is_empty())
            .unwrap());
    }

    #[test]
    fn quarantine_notes_become_alerts() {
        let mut s = sink();
        s.note_quarantined(SimTime::from_secs(30), "compute-0-1");
        s.note_quarantined(SimTime::from_secs(31), "compute-0-1");
        assert_eq!(s.alerts().len(), 1);
        assert_eq!(s.alerts()[0].rule, "node-quarantined");
    }
}
