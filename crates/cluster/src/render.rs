//! Text renderings of the paper's hardware figures.
//!
//! Figures 1–3 are photographs (LittleFe frame rear/front; Limulus case
//! internals). We substitute deterministic ASCII renderings generated
//! from the same [`ClusterSpec`] data — they convey the structural
//! content (six exposed stacked nodes; one deskside case with a head unit
//! and three blades) and are testable.

use crate::node::NodeRole;
use crate::topology::ClusterSpec;

/// Figure 1 substitute: LittleFe frame, rear view — PSUs and cabling side.
pub fn render_littlefe_rear(c: &ClusterSpec) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} — rear view (power & network side)\n", c.name));
    out.push_str("┌──────────────────────────────────────────────┐\n");
    for n in &c.nodes {
        let psu = match (&n.psu, &c.shared_psu) {
            (Some(p), _) => format!("[PSU {}W]", p.watts),
            (None, Some(_)) => "[shared bus]".to_string(),
            (None, None) => "[unpowered!]".to_string(),
        };
        let nics =
            "eth".repeat(n.nics.len().min(1)) + &"+eth".repeat(n.nics.len().saturating_sub(1));
        out.push_str(&format!(
            "│ {:<12} {:<12} {:<8} {:>9} │\n",
            n.hostname,
            psu,
            nics,
            match n.role {
                NodeRole::Frontend => "FRONTEND",
                NodeRole::Compute => "compute",
                NodeRole::Storage => "storage",
            }
        ));
    }
    out.push_str("└──────────────────────────────────────────────┘\n");
    out.push_str(&format!(
        "  switch: {} ({} ports)\n",
        c.network.name, c.network.switch_ports
    ));
    out
}

/// Figure 2 substitute: LittleFe frame, front view — boards and coolers.
pub fn render_littlefe_front(c: &ClusterSpec) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} — front view (boards exposed)\n", c.name));
    out.push_str("┌──────────────────────────────────────────────┐\n");
    for n in &c.nodes {
        let disk = if n.is_diskless() {
            "diskless".to_string()
        } else {
            format!("{}GB", n.disk_capacity_gb())
        };
        out.push_str(&format!(
            "│ [{:<10}] {:<22} {:>8} │\n",
            n.cpu.name.split_whitespace().last().unwrap_or("cpu"),
            n.cooler.name.split(',').next().unwrap_or(""),
            disk,
        ));
    }
    out.push_str("└──────────────────────────────────────────────┘\n");
    out.push_str(&format!(
        "  {} nodes, {} cores, Rpeak {:.1} GFLOPS, {:.0} lbs\n",
        c.node_count(),
        c.compute_cores(),
        c.rpeak_gflops(),
        c.weight_lbs
    ));
    out
}

/// Figure 3 substitute: Limulus deskside case internals.
pub fn render_limulus(c: &ClusterSpec) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} — deskside case, cover removed\n", c.name));
    out.push_str("╔════════════════════════════════════╗\n");
    for n in &c.nodes {
        match n.role {
            NodeRole::Frontend => {
                out.push_str(&format!(
                    "║ HEAD  {:<8} {:>2}c {:>4}GB {:>6}GB ║\n",
                    n.cpu.name.split_whitespace().last().unwrap_or(""),
                    n.cores(),
                    n.ram_gb,
                    n.disk_capacity_gb()
                ));
                out.push_str("║ ────────────────────────────────── ║\n");
            }
            _ => {
                out.push_str(&format!(
                    "║ BLADE {:<8} {:>2}c {:>4}GB diskless ║\n",
                    n.cpu.name.split_whitespace().last().unwrap_or(""),
                    n.cores(),
                    n.ram_gb
                ));
            }
        }
    }
    if let Some(psu) = &c.shared_psu {
        out.push_str(&format!(
            "║ PSU: {:<29} ║\n",
            format!("{} ({} W)", psu.name, psu.watts)
        ));
    }
    out.push_str("╚════════════════════════════════════╝\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::specs::{limulus_hpc200, littlefe_modified};

    #[test]
    fn rear_view_shows_six_nodes_with_psus() {
        let r = super::render_littlefe_rear(&littlefe_modified());
        assert_eq!(
            r.matches("PSU 120W").count(),
            6,
            "per-node supplies visible:\n{r}"
        );
        assert!(r.contains("FRONTEND"));
        assert_eq!(r.matches("compute-0-").count(), 5);
    }

    #[test]
    fn front_view_shows_coolers_and_disks() {
        let r = super::render_littlefe_front(&littlefe_modified());
        assert_eq!(r.matches("Rosewill").count(), 6);
        assert_eq!(r.matches("128GB").count(), 6);
        assert!(r.contains("537.6 GFLOPS"));
    }

    #[test]
    fn limulus_view_shows_head_and_three_blades() {
        let r = super::render_limulus(&limulus_hpc200());
        assert_eq!(r.matches("HEAD").count(), 1);
        assert_eq!(r.matches("BLADE").count(), 3);
        assert_eq!(r.matches("diskless").count(), 3);
        assert!(r.contains("850"));
    }

    #[test]
    fn renders_are_deterministic() {
        let a = super::render_limulus(&limulus_hpc200());
        let b = super::render_limulus(&limulus_hpc200());
        assert_eq!(a, b);
    }
}
