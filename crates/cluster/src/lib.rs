//! # xcbc-cluster — cluster hardware substrate
//!
//! Models the physical side of the paper's evaluation: CPU/disk/PSU/NIC
//! components with the actual part numbers §5 names (Intel Atom D510,
//! Celeron G1840, i7-4770S, Gigabyte GA-Q87TN, Crucial M550 mSATA,
//! Rosewill RCX-Z775-LP cooler), node and cluster topology, theoretical
//! peak FLOPS (Rpeak), power and thermal constraints, Ganglia-style
//! monitoring, boot timelines, bill-of-materials cost, and the
//! cloud-vs-cluster TCO model from §8.
//!
//! The two headline systems are available as ready-made blueprints:
//!
//! ```
//! use xcbc_cluster::specs;
//!
//! let littlefe = specs::littlefe_modified();
//! let limulus = specs::limulus_hpc200();
//! assert_eq!(littlefe.compute_cores(), 12);
//! assert_eq!(limulus.compute_cores(), 16);
//! // Table 5 Rpeak values
//! assert!((littlefe.rpeak_gflops() - 537.6).abs() < 0.1);
//! assert!((limulus.rpeak_gflops() - 793.6).abs() < 0.1);
//! ```

pub mod acceptance;
pub mod boot;
pub mod cost;
pub mod failure;
pub mod flops;
pub mod hw;
pub mod monitor;
pub mod node;
pub mod power;
pub mod render;
pub mod specs;
pub mod telemetry;
pub mod thermal;
pub mod topology;

pub use acceptance::{check_cluster, check_node, summarize, AcceptanceCheck};
pub use boot::{timeline_from_recorder, BootPhase, Timeline};
pub use cost::{Bom, BomLine, CloudOffering, TcoComparison};
pub use failure::{sample_failures, DegradedCluster, FailedComponent, Failure};
pub use flops::{gpu_peak_gflops, rpeak_gflops_cpu};
pub use hw::{Cooler, CpuModel, DiskDrive, DiskKind, FormFactor, Motherboard, Nic, Psu};
pub use monitor::{
    default_alert_rules, Alert, AlertEngine, AlertOp, AlertRule, ClusterMonitor, Consolidation,
    MetricKind, MetricSample, MetricSeries, MetricUpdate, NodeMonitor, Ring, RrdConfig, RrdTier,
    ALERT_TRACE_SOURCE,
};
pub use node::{NodeRole, NodeSpec, PowerState};
pub use power::{
    PowerManager, PowerPolicy, PowerReport, PowerRun, PowerSequencer, POWER_TRACE_SOURCE,
};
pub use render::{render_limulus, render_littlefe_front, render_littlefe_rear};
pub use specs::{limulus_hpc200, littlefe_modified, littlefe_v4};
pub use telemetry::{
    AnalysisSummary, ServiceState, TelemetryConfig, TelemetrySink, MEMBERSHIP_TRACE_SOURCE,
};
pub use thermal::{check_node_thermals, ThermalIssue};
pub use topology::{ClusterSpec, NetworkSpec};
