//! Thermal/mechanical constraint checking.
//!
//! §5.1 spends two paragraphs on cooling: the Haswell Celeron needs a
//! real CPU fan (the Atom did not), the stock Intel cooler "is too large
//! to fit in the space allocated per LittleFe node", and the Rosewill
//! RCX-Z775-LP low-profile cooler "fits well in the allotted space".
//! This module turns those statements into checkable constraints.

use crate::node::NodeSpec;
use serde::{Deserialize, Serialize};

/// Vertical clearance of one LittleFe node bay, millimetres. The
/// mini-ITX boards stack with ~40 mm between board surface and the next
/// tray.
pub const LITTLEFE_BAY_CLEARANCE_MM: f64 = 40.0;

/// Clearance inside a full deskside case (Limulus) — effectively
/// unconstrained for any desktop cooler.
pub const DESKSIDE_CLEARANCE_MM: f64 = 160.0;

/// A thermal or mechanical problem with a node build.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ThermalIssue {
    /// The cooler stack is taller than the bay allows.
    CoolerDoesNotFit {
        node: String,
        cooler: String,
        height_mm: f64,
        clearance_mm: f64,
    },
    /// The cooler cannot dissipate the CPU's thermal design power.
    InsufficientCooling {
        node: String,
        cooler: String,
        cpu_tdp: f64,
        capacity: f64,
    },
    /// CPU needs a fan but the cooler is passive.
    NeedsFan { node: String, cpu: String },
}

impl std::fmt::Display for ThermalIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThermalIssue::CoolerDoesNotFit {
                node,
                cooler,
                height_mm,
                clearance_mm,
            } => write!(
                f,
                "{node}: {cooler} ({height_mm} mm) does not fit in {clearance_mm} mm bay"
            ),
            ThermalIssue::InsufficientCooling {
                node,
                cooler,
                cpu_tdp,
                capacity,
            } => write!(
                f,
                "{node}: {cooler} ({capacity} W) cannot cool a {cpu_tdp} W CPU"
            ),
            ThermalIssue::NeedsFan { node, cpu } => {
                write!(f, "{node}: {cpu} requires active cooling")
            }
        }
    }
}

/// Check one node against a bay clearance.
pub fn check_node_thermals(node: &NodeSpec, clearance_mm: f64) -> Vec<ThermalIssue> {
    let mut issues = Vec::new();
    if node.cooler.height_mm > clearance_mm {
        issues.push(ThermalIssue::CoolerDoesNotFit {
            node: node.hostname.clone(),
            cooler: node.cooler.name.to_string(),
            height_mm: node.cooler.height_mm,
            clearance_mm,
        });
    }
    if node.cooler.capacity_watts < node.cpu.tdp_watts {
        issues.push(ThermalIssue::InsufficientCooling {
            node: node.hostname.clone(),
            cooler: node.cooler.name.to_string(),
            cpu_tdp: node.cpu.tdp_watts,
            capacity: node.cooler.capacity_watts,
        });
    }
    // anything over 20 W TDP needs a fan in a LittleFe-style open frame
    if node.cpu.tdp_watts > 20.0 && !node.cooler.has_fan {
        issues.push(ThermalIssue::NeedsFan {
            node: node.hostname.clone(),
            cpu: node.cpu.name.to_string(),
        });
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw;
    use crate::node::{NodeRole, NodeSpec};

    fn node(cpu: hw::CpuModel, cooler: hw::Cooler) -> NodeSpec {
        NodeSpec::new("n0", NodeRole::Compute)
            .cpu(cpu)
            .cooler(cooler)
            .build()
    }

    #[test]
    fn atom_with_heatsink_is_fine_in_bay() {
        let n = node(hw::ATOM_D510, hw::ATOM_HEATSINK);
        assert!(check_node_thermals(&n, LITTLEFE_BAY_CLEARANCE_MM).is_empty());
    }

    #[test]
    fn celeron_with_stock_cooler_does_not_fit_littlefe_bay() {
        // the paper: "The fan that comes packaged with the Celeron G1840
        // processor we used is too large to fit"
        let n = node(hw::CELERON_G1840, hw::INTEL_STOCK_COOLER);
        let issues = check_node_thermals(&n, LITTLEFE_BAY_CLEARANCE_MM);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ThermalIssue::CoolerDoesNotFit { .. })));
    }

    #[test]
    fn celeron_with_rosewill_fits_and_cools() {
        // "We chose the Rosewill RCX-Z775-LP ... as it fits well"
        let n = node(hw::CELERON_G1840, hw::ROSEWILL_RCX_Z775_LP);
        assert!(check_node_thermals(&n, LITTLEFE_BAY_CLEARANCE_MM).is_empty());
    }

    #[test]
    fn celeron_with_atom_heatsink_overheats() {
        let n = node(hw::CELERON_G1840, hw::ATOM_HEATSINK);
        let issues = check_node_thermals(&n, LITTLEFE_BAY_CLEARANCE_MM);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ThermalIssue::InsufficientCooling { .. })));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ThermalIssue::NeedsFan { .. })));
    }

    #[test]
    fn stock_cooler_fine_in_deskside_case() {
        let n = node(hw::I7_4770S, hw::INTEL_STOCK_COOLER);
        assert!(check_node_thermals(&n, DESKSIDE_CLEARANCE_MM).is_empty());
    }

    #[test]
    fn issues_render() {
        let n = node(hw::CELERON_G1840, hw::ATOM_HEATSINK);
        for i in check_node_thermals(&n, LITTLEFE_BAY_CLEARANCE_MM) {
            assert!(!i.to_string().is_empty());
        }
    }

    #[test]
    fn whole_modified_littlefe_passes() {
        for n in &crate::specs::littlefe_modified().nodes {
            assert!(check_node_thermals(n, LITTLEFE_BAY_CLEARANCE_MM).is_empty());
        }
    }
}
