//! Cluster-level specification: a frontend, compute nodes, a network, and
//! (optionally) a chassis-shared power supply.

use crate::hw::Psu;
use crate::node::{NodeRole, NodeSpec};
use serde::Serialize;

/// The private interconnect.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NetworkSpec {
    pub name: String,
    pub speed_gbps: f64,
    /// One-way small-message latency in microseconds.
    pub latency_us: f64,
    pub switch_ports: u32,
}

impl NetworkSpec {
    /// The GbE switch both deskside clusters use.
    pub fn gigabit_ethernet(ports: u32) -> Self {
        NetworkSpec {
            name: "Gigabit Ethernet".to_string(),
            speed_gbps: 1.0,
            latency_us: 50.0,
            switch_ports: ports,
        }
    }
}

/// A whole cluster build.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterSpec {
    pub name: String,
    pub nodes: Vec<NodeSpec>,
    pub network: NetworkSpec,
    /// Chassis-shared PSU, if the design uses one (original LittleFe,
    /// Limulus). Mutually exclusive in practice with per-node PSUs.
    pub shared_psu: Option<Psu>,
    /// Chassis weight in pounds (both papers' systems are "luggable":
    /// LittleFe < 50 lb, Limulus = 50 lb).
    pub weight_lbs: f64,
}

impl ClusterSpec {
    pub fn new(name: impl Into<String>, network: NetworkSpec) -> Self {
        ClusterSpec {
            name: name.into(),
            nodes: Vec::new(),
            network,
            shared_psu: None,
            weight_lbs: 0.0,
        }
    }

    pub fn frontend(&self) -> Option<&NodeSpec> {
        self.nodes.iter().find(|n| n.role == NodeRole::Frontend)
    }

    pub fn compute_nodes(&self) -> impl Iterator<Item = &NodeSpec> {
        self.nodes.iter().filter(|n| n.role == NodeRole::Compute)
    }

    /// Node count (all roles) — the "Nodes" column of Tables 3 and 4.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// CPU package count — Table 4's "CPUs" column.
    pub fn cpu_count(&self) -> u32 {
        self.nodes.iter().map(|n| n.sockets).sum()
    }

    /// Total cores across all nodes — Table 4's "Cores" column.
    ///
    /// Note: in the paper's Table 4, *all* nodes (head + compute) count —
    /// the Limulus headnode participates in computation.
    pub fn compute_cores(&self) -> u32 {
        self.nodes.iter().map(|n| n.cores()).sum()
    }

    /// Theoretical peak over all nodes, GFLOPS.
    pub fn rpeak_gflops(&self) -> f64 {
        self.nodes.iter().map(|n| n.rpeak_gflops()).sum()
    }

    /// Whole-cluster power under load, watts.
    pub fn load_watts(&self) -> f64 {
        self.nodes.iter().map(|n| n.load_watts()).sum()
    }

    /// Whole-cluster idle power, watts.
    pub fn idle_watts(&self) -> f64 {
        self.nodes.iter().map(|n| n.idle_watts()).sum()
    }

    /// Does the power design hold? Shared-PSU clusters must fit the whole
    /// load in the supply's rating (with 20% headroom); per-node-PSU
    /// nodes must each fit their own.
    pub fn power_budget_ok(&self) -> bool {
        match &self.shared_psu {
            Some(psu) => self.load_watts() * 1.2 <= psu.watts,
            None => self.nodes.iter().all(|n| {
                n.psu
                    .as_ref()
                    .map(|p| n.load_watts() * 1.2 <= p.watts)
                    .unwrap_or(false)
            }),
        }
    }

    /// Can Rocks provision this cluster from scratch? Every node needs a
    /// disk and the frontend needs two NICs. (The Limulus fails this —
    /// diskless computes — which is exactly why the paper pairs it with
    /// XNIT instead.)
    pub fn rocks_installable(&self) -> (bool, Vec<String>) {
        let mut reasons = Vec::new();
        match self.frontend() {
            None => reasons.push("no frontend node".to_string()),
            Some(fe) => {
                if !fe.can_be_frontend() {
                    reasons.push(format!("frontend {} is not dual-homed", fe.hostname));
                }
                if fe.is_diskless() {
                    reasons.push(format!("frontend {} has no disk", fe.hostname));
                }
            }
        }
        for n in self.compute_nodes() {
            if n.is_diskless() {
                reasons.push(format!(
                    "{} is diskless (Rocks does not support diskless installation)",
                    n.hostname
                ));
            }
        }
        (reasons.is_empty(), reasons)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw;
    use crate::node::NodeSpec;

    fn tiny_cluster(diskful: bool) -> ClusterSpec {
        let mut c = ClusterSpec::new("test", NetworkSpec::gigabit_ethernet(8));
        let mut fe = NodeSpec::new("frontend", NodeRole::Frontend)
            .nic(hw::GBE_NIC)
            .disk(hw::CRUCIAL_M550_MSATA)
            .psu(hw::PER_NODE_PSU)
            .build();
        if !diskful {
            fe.disks.clear();
        }
        c.nodes.push(fe);
        for i in 0..2 {
            let mut n = NodeSpec::new(format!("compute-0-{i}"), NodeRole::Compute)
                .psu(hw::PER_NODE_PSU)
                .disk(hw::CRUCIAL_M550_MSATA)
                .build();
            if !diskful {
                n.disks.clear();
            }
            c.nodes.push(n);
        }
        c
    }

    #[test]
    fn aggregates() {
        let c = tiny_cluster(true);
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.cpu_count(), 3);
        assert_eq!(c.compute_cores(), 6);
        assert!((c.rpeak_gflops() - 3.0 * 89.6).abs() < 1e-9);
        assert!(c.load_watts() > c.idle_watts());
    }

    #[test]
    fn rocks_check_diskful_ok() {
        let (ok, reasons) = tiny_cluster(true).rocks_installable();
        assert!(ok, "{reasons:?}");
    }

    #[test]
    fn rocks_check_diskless_fails() {
        let (ok, reasons) = tiny_cluster(false).rocks_installable();
        assert!(!ok);
        assert!(reasons.iter().any(|r| r.contains("diskless")));
    }

    #[test]
    fn rocks_check_needs_frontend() {
        let mut c = tiny_cluster(true);
        c.nodes.remove(0);
        let (ok, reasons) = c.rocks_installable();
        assert!(!ok);
        assert_eq!(reasons, vec!["no frontend node"]);
    }

    #[test]
    fn rocks_check_single_homed_frontend_fails() {
        let mut c = tiny_cluster(true);
        c.nodes[0].nics.truncate(1);
        let (ok, reasons) = c.rocks_installable();
        assert!(!ok);
        assert!(reasons[0].contains("dual-homed"));
    }

    #[test]
    fn per_node_psu_budget() {
        let c = tiny_cluster(true);
        assert!(c.power_budget_ok());
    }

    #[test]
    fn shared_psu_budget() {
        let mut c = tiny_cluster(true);
        for n in &mut c.nodes {
            n.psu = None;
        }
        c.shared_psu = Some(hw::Psu {
            name: "tiny",
            watts: 50.0,
        });
        assert!(!c.power_budget_ok(), "3 haswell nodes cannot run on 50 W");
        c.shared_psu = Some(hw::LIMULUS_850W_PSU);
        assert!(c.power_budget_ok());
    }

    #[test]
    fn missing_psu_everywhere_fails_budget() {
        let mut c = tiny_cluster(true);
        for n in &mut c.nodes {
            n.psu = None;
        }
        assert!(!c.power_budget_ok());
    }
}
