//! Power management.
//!
//! §5.2: the Limulus has "power management that turns nodes on and off as
//! needed for maximum power efficiency. This can also be scheduled."
//! [`PowerManager`] simulates a cluster's energy use over a load
//! timeline under three policies and reports energy and availability.
//!
//! Since the elastic-fleet refactor the simulation runs on the shared
//! sim clock: demand is a step function of [`SimTime`]-stamped levels
//! ([`PowerManager::simulate_demand`]), transitions are recorded as
//! [`POWER_TRACE_SOURCE`] trace events so they merge into fleet
//! timelines, and [`PowerSequencer`] gives the autoscaler per-node
//! power control with boot latency charged on the clock. The old
//! hourly-profile `simulate` survives as a thin wrapper.

use crate::node::{NodeRole, PowerState};
use crate::topology::ClusterSpec;
use serde::{Deserialize, Serialize};
use xcbc_sim::{SimDuration, SimTime, TraceEvent};

/// Trace source for power transitions (`boot node N` spans,
/// `power-off` marks, `nodes-on` counters).
pub const POWER_TRACE_SOURCE: &str = "cluster.power";

/// Node power policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PowerPolicy {
    /// Every node stays on (classic LittleFe behavior).
    AlwaysOn,
    /// Nodes power on when demanded, off when idle (Limulus default).
    OnDemand {
        /// How long a node takes to boot when demand arrives.
        boot: SimDuration,
    },
    /// Nodes are up only inside a daily window (Limulus "can also be
    /// scheduled"), `start_hour..end_hour` in 0..24.
    Scheduled { start_hour: u32, end_hour: u32 },
}

impl PowerPolicy {
    /// On-demand power with the given boot lag (accepts `SimDuration`
    /// or float seconds).
    pub fn on_demand(boot: impl Into<SimDuration>) -> PowerPolicy {
        PowerPolicy::OnDemand { boot: boot.into() }
    }

    /// Human-readable policy name for reports.
    pub fn label(&self) -> String {
        match self {
            PowerPolicy::AlwaysOn => "AlwaysOn".to_string(),
            PowerPolicy::OnDemand { boot } => format!("OnDemand {{ boot: {boot} }}"),
            PowerPolicy::Scheduled {
                start_hour,
                end_hour,
            } => {
                format!("Scheduled {{ {start_hour}..{end_hour} }}")
            }
        }
    }
}

/// Outcome of a power simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    pub policy_label: String,
    /// Total energy over the simulated horizon, kWh.
    pub energy_kwh: f64,
    /// Mean watts.
    pub mean_watts: f64,
    /// Fraction of demanded node-hours that were actually served
    /// (OnDemand boots create a small service lag).
    pub service_fraction: f64,
}

/// A power simulation plus the [`POWER_TRACE_SOURCE`] events it emitted,
/// ready to merge onto a fleet timeline.
#[derive(Debug, Clone)]
pub struct PowerRun {
    /// Energy/availability summary.
    pub report: PowerReport,
    /// Power transitions on the shared clock, in time order.
    pub trace: Vec<TraceEvent>,
}

/// Simulates cluster power under a policy.
#[derive(Debug, Clone)]
pub struct PowerManager {
    pub policy: PowerPolicy,
}

impl PowerManager {
    pub fn new(policy: PowerPolicy) -> Self {
        PowerManager { policy }
    }

    /// Simulate `hours` of operation against an hourly demand profile.
    /// `demand[h % demand.len()]` is the number of compute nodes busy in
    /// hour `h`. The frontend is always on.
    ///
    /// Thin compat wrapper over [`PowerManager::simulate_demand`]: the
    /// hourly profile becomes a step function with one step per hour.
    pub fn simulate(&self, cluster: &ClusterSpec, demand: &[u32], hours: u32) -> PowerReport {
        assert!(!demand.is_empty(), "demand profile must be non-empty");
        let steps: Vec<(SimTime, u32)> = (0..hours)
            .map(|h| {
                (
                    SimTime::from_secs(h as u64 * 3600),
                    demand[(h as usize) % demand.len()],
                )
            })
            .collect();
        self.simulate_demand(cluster, &steps, SimDuration::from_secs(hours as u64 * 3600))
            .report
    }

    /// Simulate a [`SimTime`]-stamped demand step function over
    /// `horizon`. `demand` holds `(t, want)` steps in non-decreasing
    /// time order: from `t` until the next step, `want` compute nodes
    /// are busy (clamped to the cluster size). Demand before the first
    /// step is zero. The frontend is always on.
    ///
    /// Under [`PowerPolicy::OnDemand`] each upward transition charges
    /// the boot lag against served node-hours, and transitions are
    /// recorded as [`POWER_TRACE_SOURCE`] events: a `boot N nodes` span
    /// per scale-up, a `power-off N nodes` mark per scale-down, and a
    /// `nodes-on` counter at every level change.
    pub fn simulate_demand(
        &self,
        cluster: &ClusterSpec,
        demand: &[(SimTime, u32)],
        horizon: SimDuration,
    ) -> PowerRun {
        assert!(!demand.is_empty(), "demand profile must be non-empty");
        for w in demand.windows(2) {
            assert!(w[0].0 <= w[1].0, "demand steps must be in time order");
        }
        let computes: Vec<_> = cluster
            .nodes
            .iter()
            .filter(|n| n.role == NodeRole::Compute)
            .collect();
        let frontends: Vec<_> = cluster
            .nodes
            .iter()
            .filter(|n| n.role != NodeRole::Compute)
            .collect();
        let end = SimTime::ZERO + horizon;

        // Segment boundaries: every demand step plus every hour mark,
        // so the Scheduled window and hourly accounting stay exact.
        let mut cuts: Vec<SimTime> = vec![SimTime::ZERO];
        cuts.extend(demand.iter().map(|(t, _)| *t).filter(|t| *t < end));
        let mut h = 1u64;
        loop {
            let t = SimTime::from_secs(h * 3600);
            if t >= end {
                break;
            }
            cuts.push(t);
            h += 1;
        }
        cuts.push(end);
        cuts.sort();
        cuts.dedup();

        let level_at = |t: SimTime| -> u32 {
            let mut level = 0;
            for (st, want) in demand {
                if *st <= t {
                    level = *want;
                } else {
                    break;
                }
            }
            level
        };

        let mut trace = Vec::new();
        let mut wh_total = 0.0;
        let mut demanded_node_hours = 0.0;
        let mut served_node_hours = 0.0;
        let mut lost_node_hours = 0.0;
        let mut prev_want = 0usize;
        let boot_h = match &self.policy {
            PowerPolicy::OnDemand { boot } => boot.as_secs_f64() / 3600.0,
            _ => 0.0,
        };

        // Emit transition events at the demand steps themselves.
        for (t, raw) in demand {
            if *t >= end {
                break;
            }
            let want = (*raw as usize).min(computes.len());
            if want != prev_want {
                trace.push(TraceEvent::counter(
                    *t,
                    POWER_TRACE_SOURCE,
                    "nodes-on",
                    want as u64,
                ));
                if let PowerPolicy::OnDemand { boot } = &self.policy {
                    if want > prev_want {
                        let delta = want - prev_want;
                        trace.push(
                            TraceEvent::span(
                                *t,
                                POWER_TRACE_SOURCE,
                                format!("boot {delta} nodes"),
                                *boot,
                            )
                            .with_field("nodes", delta as u64),
                        );
                        lost_node_hours += delta as f64 * boot_h;
                    } else {
                        let delta = prev_want - want;
                        trace.push(
                            TraceEvent::mark(
                                *t,
                                POWER_TRACE_SOURCE,
                                format!("power-off {delta} nodes"),
                            )
                            .with_field("nodes", delta as u64),
                        );
                    }
                }
                prev_want = want;
            }
        }

        // Integrate energy and service over the segments.
        for w in cuts.windows(2) {
            let (t0, t1) = (w[0], w[1]);
            if t1 <= t0 {
                continue;
            }
            let dur_h = t1.since(t0).as_secs_f64() / 3600.0;
            let want = (level_at(t0) as usize).min(computes.len());
            demanded_node_hours += want as f64 * dur_h;
            for fe in &frontends {
                wh_total += dur_h
                    * if want > 0 {
                        fe.load_watts()
                    } else {
                        fe.idle_watts()
                    };
            }
            match &self.policy {
                PowerPolicy::AlwaysOn => {
                    for (i, n) in computes.iter().enumerate() {
                        wh_total += dur_h
                            * if i < want {
                                n.load_watts()
                            } else {
                                n.idle_watts()
                            };
                    }
                    served_node_hours += want as f64 * dur_h;
                }
                PowerPolicy::OnDemand { .. } => {
                    for (i, n) in computes.iter().enumerate() {
                        // off nodes sit at 2 W standby
                        wh_total += dur_h * if i < want { n.load_watts() } else { 2.0 };
                    }
                    served_node_hours += want as f64 * dur_h;
                }
                PowerPolicy::Scheduled {
                    start_hour,
                    end_hour,
                } => {
                    let hod =
                        ((t0.since(SimTime::ZERO).as_secs_f64() / 3600.0).floor() as u32) % 24;
                    let window = hod >= *start_hour && hod < *end_hour;
                    for (i, n) in computes.iter().enumerate() {
                        wh_total += dur_h
                            * if window {
                                if i < want {
                                    n.load_watts()
                                } else {
                                    n.idle_watts()
                                }
                            } else {
                                2.0
                            };
                    }
                    if window {
                        served_node_hours += want as f64 * dur_h;
                    }
                }
            }
        }

        let served = (served_node_hours - lost_node_hours).max(0.0);
        let horizon_hours = horizon.as_secs_f64() / 3600.0;
        PowerRun {
            report: PowerReport {
                policy_label: self.policy.label(),
                energy_kwh: wh_total / 1000.0,
                mean_watts: if horizon_hours > 0.0 {
                    wh_total / horizon_hours
                } else {
                    0.0
                },
                service_fraction: if demanded_node_hours > 0.0 {
                    served / demanded_node_hours
                } else {
                    1.0
                },
            },
            trace,
        }
    }
}

/// Per-node power control on the shared clock, for callers (the elastic
/// autoscaler) that decide transitions one at a time rather than from a
/// demand profile. Boot latency is charged on the clock: a node powered
/// on at `t` is [`PowerState::Booting`] until `t + boot` and only then
/// [`PowerState::On`]. Every transition is recorded as a
/// [`POWER_TRACE_SOURCE`] event.
#[derive(Debug, Clone)]
pub struct PowerSequencer {
    boot: SimDuration,
    /// `None` = off; `Some(ready)` = powered, booting until `ready`.
    ready: Vec<Option<SimTime>>,
    trace: Vec<TraceEvent>,
}

impl PowerSequencer {
    /// A sequencer for `nodes` nodes, all off, with the given boot lag.
    pub fn new(nodes: usize, boot: impl Into<SimDuration>) -> PowerSequencer {
        PowerSequencer {
            boot: boot.into(),
            ready: vec![None; nodes],
            trace: Vec::new(),
        }
    }

    /// A sequencer whose `nodes` nodes are already [`PowerState::On`] at
    /// time zero — the day-zero fleet that was racked and booted before
    /// the simulation starts. No boot spans are emitted for them.
    pub fn powered(nodes: usize, boot: impl Into<SimDuration>) -> PowerSequencer {
        PowerSequencer {
            boot: boot.into(),
            ready: vec![Some(SimTime::ZERO); nodes],
            trace: Vec::new(),
        }
    }

    /// Number of nodes under management.
    pub fn len(&self) -> usize {
        self.ready.len()
    }

    /// True when no nodes are under management.
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty()
    }

    /// The configured boot lag.
    pub fn boot(&self) -> SimDuration {
        self.boot
    }

    /// Bring `n` more (off) nodes under management — burst arrivals.
    pub fn grow(&mut self, n: usize) {
        self.ready.extend(std::iter::repeat_n(None, n));
    }

    /// Power `node` on at `t`; returns the instant it is ready to serve.
    /// Powering an already-on node is a no-op returning its existing
    /// ready time.
    pub fn power_on(&mut self, t: SimTime, node: usize) -> SimTime {
        if let Some(ready) = self.ready[node] {
            return ready;
        }
        let ready = t + self.boot;
        self.ready[node] = Some(ready);
        self.trace.push(
            TraceEvent::span(
                t,
                POWER_TRACE_SOURCE,
                format!("boot node {node}"),
                self.boot,
            )
            .with_field("node", node as u64),
        );
        ready
    }

    /// Power `node` off at `t`. Powering off an off node is a no-op.
    pub fn power_off(&mut self, t: SimTime, node: usize) {
        if self.ready[node].is_none() {
            return;
        }
        self.ready[node] = None;
        self.trace.push(
            TraceEvent::mark(t, POWER_TRACE_SOURCE, format!("power-off node {node}"))
                .with_field("node", node as u64),
        );
    }

    /// The power state of `node` as of `t`.
    pub fn state(&self, t: SimTime, node: usize) -> PowerState {
        match self.ready[node] {
            None => PowerState::Off,
            Some(ready) if t < ready => PowerState::Booting,
            Some(_) => PowerState::On,
        }
    }

    /// True when `node` is powered (on or still booting).
    pub fn is_powered(&self, node: usize) -> bool {
        self.ready[node].is_some()
    }

    /// Nodes fully [`PowerState::On`] as of `t`.
    pub fn on_count(&self, t: SimTime) -> usize {
        (0..self.ready.len())
            .filter(|&i| self.state(t, i) == PowerState::On)
            .count()
    }

    /// Nodes powered (on or booting).
    pub fn powered_count(&self) -> usize {
        self.ready.iter().filter(|r| r.is_some()).count()
    }

    /// The recorded transition events, in emission order.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Drain the recorded transition events.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::limulus_hpc200;
    use xcbc_sim::TraceKind;

    /// Office-hours demand: busy 9-17, idle otherwise.
    fn office_demand() -> Vec<u32> {
        (0..24)
            .map(|h| if (9..17).contains(&h) { 3 } else { 0 })
            .collect()
    }

    #[test]
    fn on_demand_saves_energy_vs_always_on() {
        let c = limulus_hpc200();
        let demand = office_demand();
        let always = PowerManager::new(PowerPolicy::AlwaysOn).simulate(&c, &demand, 24 * 7);
        let od = PowerManager::new(PowerPolicy::on_demand(90.0)).simulate(&c, &demand, 24 * 7);
        assert!(od.energy_kwh < always.energy_kwh, "{od:?} vs {always:?}");
        assert_eq!(always.service_fraction, 1.0);
        assert!(
            od.service_fraction > 0.95,
            "boot lag should cost <5%: {od:?}"
        );
    }

    #[test]
    fn scheduled_window_serves_only_inside() {
        let c = limulus_hpc200();
        let demand = office_demand();
        // window exactly covering demand
        let good = PowerManager::new(PowerPolicy::Scheduled {
            start_hour: 9,
            end_hour: 17,
        })
        .simulate(&c, &demand, 24 * 7);
        assert!((good.service_fraction - 1.0).abs() < 1e-9);
        // window missing half the demand
        let bad = PowerManager::new(PowerPolicy::Scheduled {
            start_hour: 13,
            end_hour: 17,
        })
        .simulate(&c, &demand, 24 * 7);
        assert!((bad.service_fraction - 0.5).abs() < 1e-9);
        assert!(bad.energy_kwh < good.energy_kwh);
    }

    #[test]
    fn zero_demand_all_policies_idle() {
        let c = limulus_hpc200();
        let demand = vec![0u32];
        let always = PowerManager::new(PowerPolicy::AlwaysOn).simulate(&c, &demand, 24);
        let od = PowerManager::new(PowerPolicy::on_demand(90.0)).simulate(&c, &demand, 24);
        assert!(od.energy_kwh < always.energy_kwh);
        assert_eq!(od.service_fraction, 1.0);
    }

    #[test]
    fn demand_clamped_to_cluster_size() {
        let c = limulus_hpc200();
        let demand = vec![99u32];
        let r = PowerManager::new(PowerPolicy::AlwaysOn).simulate(&c, &demand, 10);
        // 3 computes max
        assert!((r.service_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_demand_panics() {
        let c = limulus_hpc200();
        PowerManager::new(PowerPolicy::AlwaysOn).simulate(&c, &[], 1);
    }

    #[test]
    fn mean_watts_consistent_with_energy() {
        let c = limulus_hpc200();
        let r = PowerManager::new(PowerPolicy::AlwaysOn).simulate(&c, &office_demand(), 48);
        assert!((r.energy_kwh * 1000.0 / 48.0 - r.mean_watts).abs() < 1e-9);
    }

    #[test]
    fn demand_steps_emit_power_trace() {
        let c = limulus_hpc200();
        let steps = [
            (SimTime::ZERO, 0u32),
            (SimTime::from_secs(600), 3),
            (SimTime::from_secs(4000), 0),
        ];
        let run = PowerManager::new(PowerPolicy::on_demand(90.0)).simulate_demand(
            &c,
            &steps,
            SimDuration::from_secs(7200),
        );
        let sources: Vec<&str> = run.trace.iter().map(|e| e.source.as_str()).collect();
        assert!(sources.iter().all(|s| *s == POWER_TRACE_SOURCE));
        let boot = run
            .trace
            .iter()
            .find(|e| e.label == "boot 3 nodes")
            .expect("scale-up boot span");
        assert_eq!(boot.t, SimTime::from_secs(600));
        assert_eq!(boot.duration(), SimDuration::from_secs(90));
        assert!(run
            .trace
            .iter()
            .any(|e| e.label == "power-off 3 nodes" && matches!(e.kind, TraceKind::Mark)));
        // three boots of 90 s against 3 nodes × (4000-600) s demanded
        let demanded = 3.0 * (4000.0 - 600.0) / 3600.0;
        let lost = 3.0 * 90.0 / 3600.0;
        assert!((run.report.service_fraction - (demanded - lost) / demanded).abs() < 1e-9);
    }

    #[test]
    fn always_on_trace_has_no_boot_spans() {
        let c = limulus_hpc200();
        let steps = [(SimTime::ZERO, 2u32), (SimTime::from_secs(1800), 0)];
        let run = PowerManager::new(PowerPolicy::AlwaysOn).simulate_demand(
            &c,
            &steps,
            SimDuration::from_secs(3600),
        );
        assert!(run
            .trace
            .iter()
            .all(|e| matches!(e.kind, TraceKind::Counter { .. })));
    }

    #[test]
    fn sequencer_charges_boot_latency_on_the_clock() {
        let mut seq = PowerSequencer::new(3, 90.0);
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.state(SimTime::ZERO, 0), PowerState::Off);
        let ready = seq.power_on(SimTime::from_secs(100), 0);
        assert_eq!(ready, SimTime::from_secs(190));
        assert_eq!(seq.state(SimTime::from_secs(150), 0), PowerState::Booting);
        assert_eq!(seq.state(SimTime::from_secs(190), 0), PowerState::On);
        assert_eq!(seq.on_count(SimTime::from_secs(150)), 0);
        assert_eq!(seq.on_count(SimTime::from_secs(200)), 1);
        assert_eq!(seq.powered_count(), 1);
        // idempotent: re-powering keeps the original ready time
        assert_eq!(seq.power_on(SimTime::from_secs(160), 0), ready);
        seq.power_off(SimTime::from_secs(300), 0);
        assert_eq!(seq.state(SimTime::from_secs(301), 0), PowerState::Off);
        // off→off is silent
        seq.power_off(SimTime::from_secs(302), 0);
        let labels: Vec<&str> = seq.trace().iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["boot node 0", "power-off node 0"]);
    }

    #[test]
    fn sequencer_grow_adds_off_nodes() {
        let mut seq = PowerSequencer::new(1, 10.0);
        seq.grow(2);
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.state(SimTime::ZERO, 2), PowerState::Off);
    }
}
