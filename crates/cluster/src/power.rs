//! Power management.
//!
//! §5.2: the Limulus has "power management that turns nodes on and off as
//! needed for maximum power efficiency. This can also be scheduled."
//! [`PowerManager`] simulates a cluster's energy use over a load
//! timeline under three policies and reports energy and availability.

use crate::node::NodeRole;
use crate::topology::ClusterSpec;
use serde::{Deserialize, Serialize};
use xcbc_sim::SimDuration;

/// Node power policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PowerPolicy {
    /// Every node stays on (classic LittleFe behavior).
    AlwaysOn,
    /// Nodes power on when demanded, off when idle (Limulus default).
    OnDemand {
        /// How long a node takes to boot when demand arrives.
        boot: SimDuration,
    },
    /// Nodes are up only inside a daily window (Limulus "can also be
    /// scheduled"), `start_hour..end_hour` in 0..24.
    Scheduled { start_hour: u32, end_hour: u32 },
}

impl PowerPolicy {
    /// On-demand power with the given boot lag (accepts `SimDuration`
    /// or float seconds).
    pub fn on_demand(boot: impl Into<SimDuration>) -> PowerPolicy {
        PowerPolicy::OnDemand { boot: boot.into() }
    }

    /// Human-readable policy name for reports.
    pub fn label(&self) -> String {
        match self {
            PowerPolicy::AlwaysOn => "AlwaysOn".to_string(),
            PowerPolicy::OnDemand { boot } => format!("OnDemand {{ boot: {boot} }}"),
            PowerPolicy::Scheduled {
                start_hour,
                end_hour,
            } => {
                format!("Scheduled {{ {start_hour}..{end_hour} }}")
            }
        }
    }
}

/// Outcome of a power simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    pub policy_label: String,
    /// Total energy over the simulated horizon, kWh.
    pub energy_kwh: f64,
    /// Mean watts.
    pub mean_watts: f64,
    /// Fraction of demanded node-hours that were actually served
    /// (OnDemand boots create a small service lag).
    pub service_fraction: f64,
}

/// Simulates cluster power under a policy.
#[derive(Debug, Clone)]
pub struct PowerManager {
    pub policy: PowerPolicy,
}

impl PowerManager {
    pub fn new(policy: PowerPolicy) -> Self {
        PowerManager { policy }
    }

    /// Simulate `hours` of operation against an hourly demand profile.
    /// `demand[h % demand.len()]` is the number of compute nodes busy in
    /// hour `h`. The frontend is always on.
    pub fn simulate(&self, cluster: &ClusterSpec, demand: &[u32], hours: u32) -> PowerReport {
        assert!(!demand.is_empty(), "demand profile must be non-empty");
        let computes: Vec<_> = cluster
            .nodes
            .iter()
            .filter(|n| n.role == NodeRole::Compute)
            .collect();
        let frontends: Vec<_> = cluster
            .nodes
            .iter()
            .filter(|n| n.role != NodeRole::Compute)
            .collect();

        let mut wh_total = 0.0;
        let mut demanded_node_hours = 0.0;
        let mut served_node_hours = 0.0;

        for h in 0..hours {
            let want = (demand[(h as usize) % demand.len()] as usize).min(computes.len());
            demanded_node_hours += want as f64;
            // frontend(s): always on, busy if any demand
            for fe in &frontends {
                wh_total += if want > 0 {
                    fe.load_watts()
                } else {
                    fe.idle_watts()
                };
            }
            match &self.policy {
                PowerPolicy::AlwaysOn => {
                    for (i, n) in computes.iter().enumerate() {
                        wh_total += if i < want {
                            n.load_watts()
                        } else {
                            n.idle_watts()
                        };
                    }
                    served_node_hours += want as f64;
                }
                PowerPolicy::OnDemand { boot } => {
                    // busy nodes run at load; the boot lag shaves service
                    let boot_fraction = boot.as_secs_f64() / 3600.0;
                    for (i, n) in computes.iter().enumerate() {
                        if i < want {
                            wh_total += n.load_watts();
                        }
                        // idle nodes are off: 2 W standby
                        else {
                            wh_total += 2.0;
                        }
                    }
                    served_node_hours += want as f64 * (1.0 - boot_fraction).max(0.0);
                }
                PowerPolicy::Scheduled {
                    start_hour,
                    end_hour,
                } => {
                    let hod = h % 24;
                    let window = hod >= *start_hour && hod < *end_hour;
                    for (i, n) in computes.iter().enumerate() {
                        if window {
                            wh_total += if i < want {
                                n.load_watts()
                            } else {
                                n.idle_watts()
                            };
                        } else {
                            wh_total += 2.0;
                        }
                    }
                    if window {
                        served_node_hours += want as f64;
                    }
                }
            }
        }

        PowerReport {
            policy_label: self.policy.label(),
            energy_kwh: wh_total / 1000.0,
            mean_watts: wh_total / hours as f64,
            service_fraction: if demanded_node_hours > 0.0 {
                served_node_hours / demanded_node_hours
            } else {
                1.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::limulus_hpc200;

    /// Office-hours demand: busy 9-17, idle otherwise.
    fn office_demand() -> Vec<u32> {
        (0..24)
            .map(|h| if (9..17).contains(&h) { 3 } else { 0 })
            .collect()
    }

    #[test]
    fn on_demand_saves_energy_vs_always_on() {
        let c = limulus_hpc200();
        let demand = office_demand();
        let always = PowerManager::new(PowerPolicy::AlwaysOn).simulate(&c, &demand, 24 * 7);
        let od = PowerManager::new(PowerPolicy::on_demand(90.0)).simulate(&c, &demand, 24 * 7);
        assert!(od.energy_kwh < always.energy_kwh, "{od:?} vs {always:?}");
        assert_eq!(always.service_fraction, 1.0);
        assert!(
            od.service_fraction > 0.95,
            "boot lag should cost <5%: {od:?}"
        );
    }

    #[test]
    fn scheduled_window_serves_only_inside() {
        let c = limulus_hpc200();
        let demand = office_demand();
        // window exactly covering demand
        let good = PowerManager::new(PowerPolicy::Scheduled {
            start_hour: 9,
            end_hour: 17,
        })
        .simulate(&c, &demand, 24 * 7);
        assert!((good.service_fraction - 1.0).abs() < 1e-9);
        // window missing half the demand
        let bad = PowerManager::new(PowerPolicy::Scheduled {
            start_hour: 13,
            end_hour: 17,
        })
        .simulate(&c, &demand, 24 * 7);
        assert!((bad.service_fraction - 0.5).abs() < 1e-9);
        assert!(bad.energy_kwh < good.energy_kwh);
    }

    #[test]
    fn zero_demand_all_policies_idle() {
        let c = limulus_hpc200();
        let demand = vec![0u32];
        let always = PowerManager::new(PowerPolicy::AlwaysOn).simulate(&c, &demand, 24);
        let od = PowerManager::new(PowerPolicy::on_demand(90.0)).simulate(&c, &demand, 24);
        assert!(od.energy_kwh < always.energy_kwh);
        assert_eq!(od.service_fraction, 1.0);
    }

    #[test]
    fn demand_clamped_to_cluster_size() {
        let c = limulus_hpc200();
        let demand = vec![99u32];
        let r = PowerManager::new(PowerPolicy::AlwaysOn).simulate(&c, &demand, 10);
        // 3 computes max
        assert!((r.service_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_demand_panics() {
        let c = limulus_hpc200();
        PowerManager::new(PowerPolicy::AlwaysOn).simulate(&c, &[], 1);
    }

    #[test]
    fn mean_watts_consistent_with_energy() {
        let c = limulus_hpc200();
        let r = PowerManager::new(PowerPolicy::AlwaysOn).simulate(&c, &office_demand(), 48);
        assert!((r.energy_kwh * 1000.0 / 48.0 - r.mean_watts).abs() < 1e-9);
    }
}
