//! Boot/provisioning timelines.
//!
//! A [`Timeline`] is an ordered list of timestamped phases; the Rocks
//! installer (`xcbc-rocks`) and the deployment comparisons in
//! `xcbc-core::deploy` build them to quantify "how long does each path
//! take and how many steps does it have".
//!
//! Since the `xcbc-sim` refactor the timeline is a *view* over
//! recorded trace spans: phases carry integer-nanosecond
//! [`SimTime`]/[`SimDuration`] stamps, [`Timeline::from_spans`] builds
//! a timeline from an `xcbc-sim` event log, and the old `f64`-seconds
//! API survives as a thin compatibility shim (`push` still accepts
//! float seconds via `Into<SimDuration>`, and `start_s`/`duration_s`
//! are now accessor methods).

use serde::{Deserialize, Serialize};
use xcbc_sim::{SimDuration, SimTime, SpanRecorder, TraceEvent, TraceKind};

/// Re-exported from `xcbc-sim`: label prefix that marks a phase as
/// retry backoff, so timelines can account for time lost to the
/// resilience layer separately from real install work.
pub use xcbc_sim::BACKOFF_PREFIX;

/// A named phase with a start time and duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootPhase {
    start: SimTime,
    duration: SimDuration,
    pub label: String,
}

impl BootPhase {
    /// A phase starting at `start` and running for `duration`.
    pub fn new(
        start: impl Into<SimTime>,
        duration: impl Into<SimDuration>,
        label: impl Into<String>,
    ) -> Self {
        BootPhase {
            start: start.into(),
            duration: duration.into(),
            label: label.into(),
        }
    }

    /// When the phase starts.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// How long the phase runs.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// When the phase ends.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// Start in seconds (compatibility accessor for the old field).
    pub fn start_s(&self) -> f64 {
        self.start.as_secs_f64()
    }

    /// Duration in seconds (compatibility accessor for the old field).
    pub fn duration_s(&self) -> f64 {
        self.duration.as_secs_f64()
    }

    /// End in seconds (compatibility accessor).
    pub fn end_s(&self) -> f64 {
        self.end().as_secs_f64()
    }
}

/// An append-only timeline of phases.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    phases: Vec<BootPhase>,
}

impl Timeline {
    pub fn new() -> Self {
        Self::default()
    }

    /// A timeline built from recorded trace spans: every
    /// `TraceKind::Span` event becomes a phase at its recorded start;
    /// marks and counters are skipped. Spans recorded through
    /// `xcbc_sim::SpanRecorder` reproduce exactly the timeline the old
    /// `push`/`push_parallel` calls would have built.
    pub fn from_spans<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> Self {
        let phases = events
            .into_iter()
            .filter_map(|e| match e.kind {
                TraceKind::Span { dur } => Some(BootPhase {
                    start: e.t,
                    duration: dur,
                    label: e.label.clone(),
                }),
                _ => None,
            })
            .collect();
        Timeline { phases }
    }

    /// The recorded spans rendered back out as trace events with the
    /// given `source` — the inverse of [`Timeline::from_spans`].
    pub fn to_spans(&self, source: &str) -> Vec<TraceEvent> {
        self.phases
            .iter()
            .map(|p| TraceEvent::span(p.start, source, p.label.clone(), p.duration))
            .collect()
    }

    /// Append a phase starting when the previous one ended. Accepts
    /// `SimDuration` or float seconds.
    pub fn push(
        &mut self,
        label: impl Into<String>,
        duration: impl Into<SimDuration>,
    ) -> &mut Self {
        let start = self.end_time();
        self.phases.push(BootPhase {
            start,
            duration: duration.into(),
            label: label.into(),
        });
        self
    }

    /// Append a phase that runs concurrently with the previous one
    /// (starts at the same time; the timeline end extends only if it
    /// finishes later).
    pub fn push_parallel(
        &mut self,
        label: impl Into<String>,
        duration: impl Into<SimDuration>,
    ) -> &mut Self {
        let start = self.phases.last().map(|p| p.start).unwrap_or(SimTime::ZERO);
        self.phases.push(BootPhase {
            start,
            duration: duration.into(),
            label: label.into(),
        });
        self
    }

    /// Append a retry-backoff phase (labelled with [`BACKOFF_PREFIX`]).
    /// Zero or negative durations are dropped so clean runs leave no
    /// backoff phases behind.
    pub fn push_backoff(
        &mut self,
        what: impl AsRef<str>,
        duration: impl Into<SimDuration>,
    ) -> &mut Self {
        let duration = duration.into();
        if !duration.is_zero() {
            self.push(format!("{BACKOFF_PREFIX}{}", what.as_ref()), duration);
        }
        self
    }

    /// Total seconds spent in backoff phases.
    pub fn backoff_seconds(&self) -> f64 {
        self.backoff_time().as_secs_f64()
    }

    /// Total time spent in backoff phases.
    pub fn backoff_time(&self) -> SimDuration {
        self.phases
            .iter()
            .filter(|p| p.label.starts_with(BACKOFF_PREFIX))
            .map(|p| p.duration)
            .sum()
    }

    pub fn phases(&self) -> &[BootPhase] {
        &self.phases
    }

    pub fn len(&self) -> usize {
        self.phases.len()
    }

    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Wall-clock end of the timeline.
    pub fn end_time(&self) -> SimTime {
        self.phases
            .iter()
            .map(BootPhase::end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Wall-clock end of the timeline in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.end_time().as_secs_f64()
    }

    /// Merge another timeline onto the end of this one. Extending from
    /// an empty timeline applies a zero offset; extending *with* an
    /// empty timeline is a no-op.
    pub fn extend_sequential(&mut self, other: &Timeline) {
        let offset = self.end_time().since(SimTime::ZERO);
        for p in &other.phases {
            self.phases.push(BootPhase {
                start: p.start + offset,
                duration: p.duration,
                label: p.label.clone(),
            });
        }
    }

    /// Per-phase share of total wall-clock time, `(label, fraction)`
    /// in phase order. An empty timeline yields no rows; a timeline of
    /// only zero-duration phases yields zero fractions (the total is
    /// clamped to avoid dividing by zero, matching [`Timeline::render`]).
    pub fn percent_breakdown(&self) -> Vec<(String, f64)> {
        let total = self.total_seconds().max(1.0);
        self.phases
            .iter()
            .map(|p| (p.label.clone(), p.duration_s() / total))
            .collect()
    }

    /// Render as a simple text Gantt.
    pub fn render(&self) -> String {
        let total = self.total_seconds().max(1.0);
        let mut out = String::new();
        for p in &self.phases {
            let lead = ((p.start_s() / total) * 50.0).round() as usize;
            let bar = (((p.duration_s() / total) * 50.0).round() as usize).max(1);
            out.push_str(&format!(
                "{:>8.0}s {}{} {} ({:.0}s)\n",
                p.start_s(),
                " ".repeat(lead),
                "#".repeat(bar),
                p.label,
                p.duration_s()
            ));
        }
        out
    }
}

/// Rebuilding a timeline from a `SpanRecorder`'s events must be
/// lossless; this free function is the one place that pairing is
/// spelled out, and the proptests in `tests/` hold it to that.
pub fn timeline_from_recorder(recorder: &SpanRecorder) -> Timeline {
    Timeline::from_spans(recorder.events())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_phases_accumulate() {
        let mut t = Timeline::new();
        t.push("bios", 30.0)
            .push("pxe", 10.0)
            .push("install", 600.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_seconds(), 640.0);
        assert_eq!(t.phases()[2].start_s(), 40.0);
    }

    #[test]
    fn parallel_phase_shares_start() {
        let mut t = Timeline::new();
        t.push("frontend install", 1800.0);
        t.push("compute-0-0 install", 600.0);
        t.push_parallel("compute-0-1 install", 700.0);
        assert_eq!(t.phases()[2].start_s(), 1800.0);
        assert_eq!(t.total_seconds(), 2500.0);
    }

    #[test]
    fn parallel_on_empty_starts_at_zero() {
        let mut t = Timeline::new();
        t.push_parallel("x", 5.0);
        assert_eq!(t.phases()[0].start_s(), 0.0);
        assert_eq!(t.total_seconds(), 5.0);
    }

    #[test]
    fn extend_sequential_offsets() {
        let mut a = Timeline::new();
        a.push("one", 10.0);
        let mut b = Timeline::new();
        b.push("two", 5.0);
        a.extend_sequential(&b);
        assert_eq!(a.phases()[1].start_s(), 10.0);
        assert_eq!(a.total_seconds(), 15.0);
    }

    #[test]
    fn extend_sequential_from_empty_applies_zero_offset() {
        let mut a = Timeline::new();
        let mut b = Timeline::new();
        b.push("bios", 30.0).push("pxe", 10.0);
        a.extend_sequential(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.phases()[0].start_s(), 0.0);
        assert_eq!(a.phases()[1].start_s(), 30.0);
        assert_eq!(a.total_seconds(), 40.0);
    }

    #[test]
    fn extend_sequential_with_empty_is_noop() {
        let mut a = Timeline::new();
        a.push("one", 10.0);
        let before = a.clone();
        a.extend_sequential(&Timeline::new());
        assert_eq!(a, before);
        // and empty-onto-empty stays empty
        let mut e = Timeline::new();
        e.extend_sequential(&Timeline::new());
        assert!(e.is_empty());
        assert_eq!(e.total_seconds(), 0.0);
    }

    #[test]
    fn extend_sequential_offsets_by_max_end_not_last_phase() {
        // a parallel tail phase that ends *before* the timeline's max
        // end must not shrink the offset
        let mut a = Timeline::new();
        a.push("long", 100.0);
        a.push_parallel("short overlap", 10.0);
        let mut b = Timeline::new();
        b.push("next", 5.0);
        a.extend_sequential(&b);
        assert_eq!(a.phases()[2].start_s(), 100.0);
        assert_eq!(a.total_seconds(), 105.0);
    }

    #[test]
    fn zero_duration_phases_render_without_panic() {
        let mut t = Timeline::new();
        t.push("instant", 0.0);
        t.push("also instant", 0.0);
        // total is 0; render clamps to avoid dividing by zero
        let r = t.render();
        assert!(r.contains("instant"));
        assert_eq!(t.total_seconds(), 0.0);
        // zero-duration phases don't advance the cursor
        t.push("real", 10.0);
        assert_eq!(t.phases()[2].start_s(), 0.0);
        assert_eq!(t.total_seconds(), 10.0);
    }

    #[test]
    fn percent_breakdown_edge_cases() {
        assert!(Timeline::new().percent_breakdown().is_empty());
        let mut zeros = Timeline::new();
        zeros.push("a", 0.0).push("b", 0.0);
        for (_, share) in zeros.percent_breakdown() {
            assert_eq!(share, 0.0);
        }
        let mut t = Timeline::new();
        t.push("one", 25.0).push("three", 75.0);
        let shares = t.percent_breakdown();
        assert_eq!(shares[0], ("one".to_string(), 0.25));
        assert_eq!(shares[1], ("three".to_string(), 0.75));
    }

    #[test]
    fn render_contains_labels() {
        let mut t = Timeline::new();
        t.push("bios", 30.0).push("kickstart", 300.0);
        let r = t.render();
        assert!(r.contains("bios"));
        assert!(r.contains("kickstart"));
        assert!(r.contains('#'));
    }

    #[test]
    fn render_empty_is_empty() {
        assert_eq!(Timeline::new().render(), "");
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new();
        assert!(t.is_empty());
        assert_eq!(t.total_seconds(), 0.0);
    }

    #[test]
    fn backoff_phases_tracked_separately() {
        let mut t = Timeline::new();
        t.push("frontend install", 600.0);
        t.push_backoff("mirror.fetch retry", 6.0);
        t.push("compute install", 300.0);
        t.push_backoff("dhcp.discover retry", 4.0);
        assert_eq!(t.backoff_seconds(), 10.0);
        assert_eq!(t.total_seconds(), 910.0);
        assert!(t.render().contains("backoff: mirror.fetch retry"));
    }

    #[test]
    fn zero_backoff_leaves_no_phase() {
        let mut t = Timeline::new();
        t.push("install", 100.0);
        t.push_backoff("nothing", 0.0);
        t.push_backoff("negative", -3.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.backoff_seconds(), 0.0);
    }

    #[test]
    fn accepts_sim_durations_directly() {
        let mut t = Timeline::new();
        t.push("bios", SimDuration::from_secs(30));
        t.push("pxe", SimDuration::from_millis(10_000));
        assert_eq!(t.total_seconds(), 40.0);
    }

    #[test]
    fn from_spans_mirrors_recorder() {
        let mut r = SpanRecorder::new("cluster.boot");
        r.record("bios", 30.0)
            .record("pxe", 10.0)
            .record("install", 600.0);
        r.record_parallel("install (peer)", 700.0);
        r.record_backoff("dhcp retry", 4.0);
        let t = timeline_from_recorder(&r);
        let mut classic = Timeline::new();
        classic
            .push("bios", 30.0)
            .push("pxe", 10.0)
            .push("install", 600.0);
        classic.push_parallel("install (peer)", 700.0);
        classic.push_backoff("dhcp retry", 4.0);
        assert_eq!(t, classic);
        assert_eq!(t.total_seconds(), classic.total_seconds());
    }

    #[test]
    fn from_spans_skips_marks_and_counters() {
        let events = vec![
            TraceEvent::span(0.0, "x", "work", 10.0),
            TraceEvent::mark(5.0, "x", "checkpoint"),
            TraceEvent::counter(10.0, "x", "queued", 3),
        ];
        let t = Timeline::from_spans(&events);
        assert_eq!(t.len(), 1);
        assert_eq!(t.total_seconds(), 10.0);
    }

    #[test]
    fn to_spans_round_trips() {
        let mut t = Timeline::new();
        t.push("bios", 30.0).push_parallel("probe", 40.0);
        let spans = t.to_spans("cluster.boot");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].source, "cluster.boot");
        assert_eq!(Timeline::from_spans(&spans), t);
    }
}
