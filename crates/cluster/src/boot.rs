//! Boot/provisioning timelines.
//!
//! A [`Timeline`] is an ordered list of timestamped phases; the Rocks
//! installer (`xcbc-rocks`) and the deployment comparisons in
//! `xcbc-core::deploy` build them to quantify "how long does each path
//! take and how many steps does it have".

use serde::{Deserialize, Serialize};

/// A named phase with a start time and duration (seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootPhase {
    pub start_s: f64,
    pub duration_s: f64,
    pub label: String,
}

impl BootPhase {
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }
}

/// An append-only timeline of phases.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    phases: Vec<BootPhase>,
}

/// Label prefix that marks a phase as retry backoff, so timelines can
/// account for time lost to the resilience layer separately from real
/// install work.
pub const BACKOFF_PREFIX: &str = "backoff: ";

impl Timeline {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a phase starting when the previous one ended.
    pub fn push(&mut self, label: impl Into<String>, duration_s: f64) -> &mut Self {
        let start_s = self.total_seconds();
        self.phases.push(BootPhase { start_s, duration_s, label: label.into() });
        self
    }

    /// Append a phase that runs concurrently with the previous one
    /// (starts at the same time; the timeline end extends only if it
    /// finishes later).
    pub fn push_parallel(&mut self, label: impl Into<String>, duration_s: f64) -> &mut Self {
        let start_s = self.phases.last().map(|p| p.start_s).unwrap_or(0.0);
        self.phases.push(BootPhase { start_s, duration_s, label: label.into() });
        self
    }

    /// Append a retry-backoff phase (labelled with [`BACKOFF_PREFIX`]).
    /// Zero or negative durations are dropped so clean runs leave no
    /// backoff phases behind.
    pub fn push_backoff(&mut self, what: impl AsRef<str>, duration_s: f64) -> &mut Self {
        if duration_s > 0.0 {
            self.push(format!("{BACKOFF_PREFIX}{}", what.as_ref()), duration_s);
        }
        self
    }

    /// Total seconds spent in backoff phases.
    pub fn backoff_seconds(&self) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.label.starts_with(BACKOFF_PREFIX))
            .map(|p| p.duration_s)
            .sum()
    }

    pub fn phases(&self) -> &[BootPhase] {
        &self.phases
    }

    pub fn len(&self) -> usize {
        self.phases.len()
    }

    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Wall-clock end of the timeline.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(BootPhase::end_s).fold(0.0, f64::max)
    }

    /// Merge another timeline onto the end of this one.
    pub fn extend_sequential(&mut self, other: &Timeline) {
        let offset = self.total_seconds();
        for p in &other.phases {
            self.phases.push(BootPhase {
                start_s: p.start_s + offset,
                duration_s: p.duration_s,
                label: p.label.clone(),
            });
        }
    }

    /// Render as a simple text Gantt.
    pub fn render(&self) -> String {
        let total = self.total_seconds().max(1.0);
        let mut out = String::new();
        for p in &self.phases {
            let lead = ((p.start_s / total) * 50.0).round() as usize;
            let bar = (((p.duration_s / total) * 50.0).round() as usize).max(1);
            out.push_str(&format!(
                "{:>8.0}s {}{} {} ({:.0}s)\n",
                p.start_s,
                " ".repeat(lead),
                "#".repeat(bar),
                p.label,
                p.duration_s
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_phases_accumulate() {
        let mut t = Timeline::new();
        t.push("bios", 30.0).push("pxe", 10.0).push("install", 600.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_seconds(), 640.0);
        assert_eq!(t.phases()[2].start_s, 40.0);
    }

    #[test]
    fn parallel_phase_shares_start() {
        let mut t = Timeline::new();
        t.push("frontend install", 1800.0);
        t.push("compute-0-0 install", 600.0);
        t.push_parallel("compute-0-1 install", 700.0);
        assert_eq!(t.phases()[2].start_s, 1800.0);
        assert_eq!(t.total_seconds(), 2500.0);
    }

    #[test]
    fn parallel_on_empty_starts_at_zero() {
        let mut t = Timeline::new();
        t.push_parallel("x", 5.0);
        assert_eq!(t.phases()[0].start_s, 0.0);
        assert_eq!(t.total_seconds(), 5.0);
    }

    #[test]
    fn extend_sequential_offsets() {
        let mut a = Timeline::new();
        a.push("one", 10.0);
        let mut b = Timeline::new();
        b.push("two", 5.0);
        a.extend_sequential(&b);
        assert_eq!(a.phases()[1].start_s, 10.0);
        assert_eq!(a.total_seconds(), 15.0);
    }

    #[test]
    fn render_contains_labels() {
        let mut t = Timeline::new();
        t.push("bios", 30.0).push("kickstart", 300.0);
        let r = t.render();
        assert!(r.contains("bios"));
        assert!(r.contains("kickstart"));
        assert!(r.contains('#'));
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new();
        assert!(t.is_empty());
        assert_eq!(t.total_seconds(), 0.0);
    }

    #[test]
    fn backoff_phases_tracked_separately() {
        let mut t = Timeline::new();
        t.push("frontend install", 600.0);
        t.push_backoff("mirror.fetch retry", 6.0);
        t.push("compute install", 300.0);
        t.push_backoff("dhcp.discover retry", 4.0);
        assert_eq!(t.backoff_seconds(), 10.0);
        assert_eq!(t.total_seconds(), 910.0);
        assert!(t.render().contains("backoff: mirror.fetch retry"));
    }

    #[test]
    fn zero_backoff_leaves_no_phase() {
        let mut t = Timeline::new();
        t.push("install", 100.0);
        t.push_backoff("nothing", 0.0);
        t.push_backoff("negative", -3.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.backoff_seconds(), 0.0);
    }
}
