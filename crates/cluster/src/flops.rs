//! Theoretical peak (Rpeak) arithmetic.
//!
//! `Rpeak = cores × clock × FLOPs-per-cycle`, the standard TOP500
//! convention the paper's Tables 3 and 5 use. GPU peaks (for the
//! Marshall cluster's 3584 CUDA cores) use `cuda_cores × clock ×
//! flops-per-core`.

use crate::hw::CpuModel;

/// Peak GFLOPS for one CPU package.
pub fn rpeak_gflops_cpu(cpu: &CpuModel) -> f64 {
    cpu.cores as f64 * cpu.clock_ghz * cpu.flops_per_cycle as f64
}

/// Peak GFLOPS for a GPU given CUDA core count, clock and per-core FLOPs
/// per cycle (2 for FMA single precision on Fermi/Kepler).
pub fn gpu_peak_gflops(cuda_cores: u32, clock_ghz: f64, flops_per_core: u32) -> f64 {
    cuda_cores as f64 * clock_ghz * flops_per_core as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw;

    #[test]
    fn celeron_rpeak() {
        // 2 cores × 2.8 GHz × 16 = 89.6 GF; ×6 nodes = 537.6 (Table 5)
        let one = rpeak_gflops_cpu(&hw::CELERON_G1840);
        assert!((one - 89.6).abs() < 1e-9);
        assert!((one * 6.0 - 537.6).abs() < 1e-9);
    }

    #[test]
    fn i7_rpeak() {
        // 4 cores × 3.1 GHz × 16 = 198.4 GF; ×4 nodes = 793.6 (Table 5)
        let one = rpeak_gflops_cpu(&hw::I7_4770S);
        assert!((one - 198.4).abs() < 1e-9);
        assert!((one * 4.0 - 793.6).abs() < 1e-9);
    }

    #[test]
    fn atom_rpeak_tiny() {
        // 2 × 1.66 × 2 = 6.64 GF per node — why the original LittleFe was
        // a teaching machine, not a research one.
        let one = rpeak_gflops_cpu(&hw::ATOM_D510);
        assert!((one - 6.64).abs() < 1e-9);
    }

    #[test]
    fn gpu_peak() {
        // Marshall: 3584 CUDA cores (8 × GTX 480-class, 448 each),
        // ~1.4 GHz shader clock, 2 flops → ~10 TF single precision
        let gf = gpu_peak_gflops(3584, 1.4, 2);
        assert!((gf - 10035.2).abs() < 0.1);
    }
}
