//! Causal trace analysis: critical paths, span trees, and flame views
//! over a recorded [`TraceEvent`] log.
//!
//! Every run in the workspace — a fleet deploy, a rolling campaign, an
//! elastic scale cycle, a scheduler soak — leaves behind a
//! byte-deterministic trace. This module answers the operator's two
//! questions about any of them:
//!
//! 1. **"What bounded the makespan?"** — [`analyze`] reconstructs the
//!    *critical path*: the chain of spans that ends at the last span
//!    end, where each link is the latest-finishing span that completed
//!    before the next one started. Gaps between links are attributed as
//!    *blocked* time, so the chain's `Σ (blocked + busy)` telescopes to
//!    exactly the span makespan — an identity the `xcbc-check` suite
//!    enforces on every soak seed.
//! 2. **"Where did the time go?"** — spans are grouped into *lanes*
//!    keyed by `(source, node)` and nested into trees by containment,
//!    rendered as an ASCII flame view ([`Analysis::flame`]), as
//!    folded-stack lines for standard flamegraph tooling
//!    ([`Analysis::folded`]), and as a top-self-time table
//!    ([`Analysis::top`]).
//!
//! Reconstruction rules (also documented in `DESIGN.md`):
//!
//! * Only `Span` events participate; marks and counters are ignored
//!   except for the event count.
//! * A span's lane is `(source, node)` where `node` is the span's
//!   `"node"` string field, or `"host:x"`-prefixed label, or `""`.
//! * Within a lane, spans sort by `(start asc, end desc, emission
//!   index asc)` and nest by containment against a stack: a span is a
//!   child of the top of the stack iff it starts and ends within it.
//! * Critical-path links only consider spans with `dur > 0`; the
//!   predecessor of a span starting at `t` is the span with the
//!   maximum `(end, start, emission index)` among those with
//!   `end ≤ t`. Strictly decreasing ends guarantee termination.
//!
//! Everything here is a pure function of the event slice — analysing a
//! trace twice, or on a different thread count, is byte-identical.

use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceKind};
use std::fmt::Write as _;

/// Width of the proportional bars in the flame view, in characters.
const FLAME_BAR_WIDTH: u64 = 24;

/// Trace source used for marks emitted by the analyser itself (so
/// telemetry can observe analysis summaries like any other layer).
pub const ANALYZE_TRACE_SOURCE: &str = "trace.analyze";

/// One link of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// Index of the span in the analysed event slice.
    pub event_index: usize,
    /// Emitting source (`"rocks.install"`, `"sched"`, …).
    pub source: String,
    /// Node the span ran on, or `""` when the span names none.
    pub node: String,
    /// The span's label.
    pub label: String,
    /// When the span started.
    pub start: SimTime,
    /// How long the span ran.
    pub dur: SimDuration,
    /// Idle gap between the previous link's end (or `t=0` for the
    /// first link) and this span's start.
    pub blocked: SimDuration,
}

/// The chain of spans bounding a run's span makespan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CriticalPath {
    /// Links in time order, earliest first.
    pub segments: Vec<PathSegment>,
}

impl CriticalPath {
    /// Total busy time along the path.
    pub fn busy(&self) -> SimDuration {
        self.segments
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.dur)
    }

    /// Total blocked time along the path.
    pub fn blocked(&self) -> SimDuration {
        self.segments
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.blocked)
    }

    /// `busy + blocked` — telescopes to exactly the span makespan.
    pub fn total(&self) -> SimDuration {
        self.busy() + self.blocked()
    }
}

/// One frame of a lane's span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Index of the span in the analysed event slice.
    pub event_index: usize,
    /// The span's label.
    pub label: String,
    /// When the span started.
    pub start: SimTime,
    /// How long the span ran.
    pub dur: SimDuration,
    /// Nesting depth within the lane (roots are depth 0).
    pub depth: usize,
    /// `dur` minus the summed durations of direct children, clamped
    /// at zero (overlapping children can oversubscribe a parent).
    pub self_time: SimDuration,
}

/// All spans of one `(source, node)` pair, nested by containment.
#[derive(Debug, Clone, PartialEq)]
pub struct Lane {
    /// Emitting source.
    pub source: String,
    /// Node, or `""` when the lane's spans name none.
    pub node: String,
    /// Frames in `(start asc, end desc, emission index asc)` order —
    /// i.e. depth-first over the containment forest.
    pub frames: Vec<Frame>,
    /// Total busy time of root frames (nested time counted once).
    pub busy: SimDuration,
}

impl Lane {
    /// `source (node)` or just `source` for node-less lanes.
    pub fn key(&self) -> String {
        if self.node.is_empty() {
            self.source.clone()
        } else {
            format!("{} ({})", self.source, self.node)
        }
    }
}

/// The full analysis of one trace: critical path plus per-lane trees.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Analysis {
    /// How many events the trace held.
    pub events: usize,
    /// How many of them were spans.
    pub spans: usize,
    /// Last span end — the span makespan the critical path telescopes
    /// to. Zero for traces with no spans.
    pub makespan: SimDuration,
    /// Last end over *all* events (a trailing mark can outlive the
    /// last span).
    pub trace_end: SimTime,
    /// The critical path (empty for traces with no positive spans).
    pub path: CriticalPath,
    /// Lanes in `(source, node)` order.
    pub lanes: Vec<Lane>,
}

fn span_node(ev: &TraceEvent) -> String {
    for (k, v) in &ev.fields {
        if k == "node" {
            if let crate::trace::FieldValue::Str(s) = v {
                return s.clone();
            }
        }
    }
    if let Some(rest) = ev.label.strip_prefix("host:") {
        return rest.split_whitespace().next().unwrap_or("").to_string();
    }
    String::new()
}

/// Format a duration as seconds with millisecond precision —
/// deterministic (integer-ns ÷ 1e9 through one IEEE division).
pub fn fmt_secs(d: SimDuration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Analyse a recorded trace. Pure and deterministic: same events in,
/// byte-identical [`Analysis`] out, at any thread count. The pass
/// itself is timed into the engine self-profiler
/// (section [`SECTION_TRACE_ANALYZE`](crate::SECTION_TRACE_ANALYZE)).
pub fn analyze(events: &[TraceEvent]) -> Analysis {
    crate::self_profiler().time(crate::SECTION_TRACE_ANALYZE, || {
        analyze_uninstrumented(events)
    })
}

fn analyze_uninstrumented(events: &[TraceEvent]) -> Analysis {
    // indices of span events, in emission order
    let span_idx: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.kind, TraceKind::Span { .. }))
        .map(|(i, _)| i)
        .collect();

    let makespan = span_idx
        .iter()
        .map(|&i| events[i].end())
        .max()
        .unwrap_or(SimTime::ZERO);
    let trace_end = events
        .iter()
        .map(|e| e.end())
        .max()
        .unwrap_or(SimTime::ZERO);

    Analysis {
        events: events.len(),
        spans: span_idx.len(),
        makespan: makespan.since(SimTime::ZERO),
        trace_end,
        path: critical_path(events, &span_idx),
        lanes: build_lanes(events, &span_idx),
    }
}

/// Pick, among positive-duration spans whose end is ≤ `limit`, the one
/// maximising `(end, start, emission index)`.
fn best_pred(events: &[TraceEvent], span_idx: &[usize], limit: SimTime) -> Option<usize> {
    let mut best: Option<usize> = None;
    for &i in span_idx {
        let ev = &events[i];
        if ev.duration() == SimDuration::ZERO || ev.end() > limit {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => {
                let bv = &events[b];
                (ev.end(), ev.t, i) > (bv.end(), bv.t, b)
            }
        };
        if better {
            best = Some(i);
        }
    }
    best
}

fn critical_path(events: &[TraceEvent], span_idx: &[usize]) -> CriticalPath {
    // terminal link: the latest-ending positive span
    let Some(mut cur) = best_pred(events, span_idx, SimTime::from_nanos(u64::MAX)) else {
        return CriticalPath::default();
    };
    let mut rev: Vec<usize> = vec![cur];
    // each predecessor ends ≤ cur.t < cur.end, so ends strictly
    // decrease and the walk terminates
    while let Some(pred) = best_pred(events, span_idx, events[cur].t) {
        rev.push(pred);
        cur = pred;
    }
    rev.reverse();
    let mut segments = Vec::with_capacity(rev.len());
    let mut prev_end = SimTime::ZERO;
    for i in rev {
        let ev = &events[i];
        segments.push(PathSegment {
            event_index: i,
            source: ev.source.clone(),
            node: span_node(ev),
            label: ev.label.clone(),
            start: ev.t,
            dur: ev.duration(),
            blocked: ev.t.since(prev_end),
        });
        prev_end = ev.end();
    }
    CriticalPath { segments }
}

fn build_lanes(events: &[TraceEvent], span_idx: &[usize]) -> Vec<Lane> {
    // group span indices by (source, node)
    let mut by_lane: std::collections::BTreeMap<(String, String), Vec<usize>> =
        std::collections::BTreeMap::new();
    for &i in span_idx {
        let ev = &events[i];
        by_lane
            .entry((ev.source.clone(), span_node(ev)))
            .or_default()
            .push(i);
    }
    let mut lanes = Vec::with_capacity(by_lane.len());
    for ((source, node), mut idxs) in by_lane {
        idxs.sort_by_key(|&i| {
            let ev = &events[i];
            (ev.t, std::cmp::Reverse(ev.end()), i)
        });
        // containment nesting against a stack of (end, frame slot)
        let mut frames: Vec<Frame> = Vec::with_capacity(idxs.len());
        let mut stack: Vec<usize> = Vec::new(); // indices into `frames`
        let mut busy = SimDuration::ZERO;
        for i in idxs {
            let ev = &events[i];
            while let Some(&top) = stack.last() {
                let top_start = frames[top].start;
                let top_end = frames[top].start + frames[top].dur;
                if ev.t >= top_start && ev.end() <= top_end {
                    break;
                }
                stack.pop();
            }
            let depth = stack.len();
            if let Some(&parent) = stack.last() {
                frames[parent].self_time = frames[parent].self_time.saturating_sub(ev.duration());
            } else {
                busy += ev.duration();
            }
            frames.push(Frame {
                event_index: i,
                label: ev.label.clone(),
                start: ev.t,
                dur: ev.duration(),
                depth,
                self_time: ev.duration(),
            });
            stack.push(frames.len() - 1);
        }
        lanes.push(Lane {
            source,
            node,
            frames,
            busy,
        });
    }
    lanes
}

impl Analysis {
    /// The critical-path report: one row per link plus the telescoped
    /// total, byte-deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace analysis: {} events, {} spans, makespan {}s",
            self.events,
            self.spans,
            fmt_secs(self.makespan)
        );
        if self.path.segments.is_empty() {
            let _ = writeln!(out, "critical path: (no spans)");
            return out;
        }
        let _ = writeln!(
            out,
            "critical path ({} segments, busy {}s + blocked {}s):",
            self.path.segments.len(),
            fmt_secs(self.path.busy()),
            fmt_secs(self.path.blocked())
        );
        for seg in &self.path.segments {
            let lane = if seg.node.is_empty() {
                seg.source.clone()
            } else {
                format!("{} ({})", seg.source, seg.node)
            };
            let _ = writeln!(
                out,
                "  t={:>10}s +{:>8}s blocked  {:<28} {:<36} {:>10}s",
                fmt_secs(seg.start.since(SimTime::ZERO)),
                fmt_secs(seg.blocked),
                lane,
                seg.label,
                fmt_secs(seg.dur)
            );
        }
        let _ = writeln!(
            out,
            "  total {}s = makespan {}s",
            fmt_secs(self.path.total()),
            fmt_secs(self.makespan)
        );
        out
    }

    /// The ASCII flame view: one block per lane, frames indented by
    /// depth with bars proportional to duration over the lane's busy
    /// window. Byte-deterministic (integer bar arithmetic).
    pub fn flame(&self) -> String {
        let mut out = String::new();
        for lane in &self.lanes {
            let _ = writeln!(
                out,
                "-- {} busy {}s, {} span(s) --",
                lane.key(),
                fmt_secs(lane.busy),
                lane.frames.len()
            );
            let window = lane.busy.as_nanos().max(1);
            for f in &lane.frames {
                let filled = ((f.dur.as_nanos().saturating_mul(FLAME_BAR_WIDTH)) / window)
                    .min(FLAME_BAR_WIDTH);
                let mut bar = String::with_capacity(FLAME_BAR_WIDTH as usize);
                for i in 0..FLAME_BAR_WIDTH {
                    bar.push(if i < filled { '#' } else { ' ' });
                }
                let indent = "  ".repeat(f.depth);
                let name = format!("{indent}{}", f.label);
                let _ = writeln!(
                    out,
                    "  {name:<40} |{bar}| {:>10}s (self {}s)",
                    fmt_secs(f.dur),
                    fmt_secs(f.self_time)
                );
            }
        }
        out
    }

    /// Folded-stack lines (`lane;frame;…;frame <self-µs>`), sorted —
    /// directly consumable by standard flamegraph tooling.
    pub fn folded(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for lane in &self.lanes {
            let lane_key = if lane.node.is_empty() {
                lane.source.clone()
            } else {
                format!("{}/{}", lane.source, lane.node)
            };
            // running ancestor chain, rebuilt from depths
            let mut chain: Vec<String> = Vec::new();
            for f in &lane.frames {
                chain.truncate(f.depth);
                chain.push(f.label.replace([';', ' '], "_"));
                let micros = f.self_time.as_nanos() / 1_000;
                if micros > 0 {
                    lines.push(format!("{lane_key};{} {micros}", chain.join(";")));
                }
            }
        }
        lines.sort();
        let mut out = String::new();
        for l in &lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// The `n` frames with the largest self time, as a table. Ties
    /// break by lane key then label then start.
    pub fn top(&self, n: usize) -> String {
        let mut rows: Vec<(SimDuration, String, String, SimTime)> = Vec::new();
        for lane in &self.lanes {
            for f in &lane.frames {
                rows.push((f.self_time, lane.key(), f.label.clone(), f.start));
            }
        }
        rows.sort_by(|a, b| {
            b.0.cmp(&a.0)
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
                .then_with(|| a.3.cmp(&b.3))
        });
        rows.truncate(n);
        let mut out = String::new();
        let _ = writeln!(out, "top {} frames by self time:", rows.len());
        for (self_time, lane, label, start) in &rows {
            let _ = writeln!(
                out,
                "  {:>10}s  {:<28} {:<36} t={}s",
                fmt_secs(*self_time),
                lane,
                label,
                fmt_secs(start.since(SimTime::ZERO))
            );
        }
        out
    }

    /// Deterministic summary marks on the [`ANALYZE_TRACE_SOURCE`]
    /// source, so telemetry pipelines can observe analysis results as
    /// ordinary trace events.
    pub fn analysis_marks(&self) -> Vec<TraceEvent> {
        let mut marks = Vec::new();
        let t = SimTime::ZERO + self.makespan;
        let mut summary = TraceEvent::mark(t, ANALYZE_TRACE_SOURCE, "critical-path")
            .with_field("segments", self.path.segments.len())
            .with_field("busy_s", self.path.busy().as_secs_f64())
            .with_field("blocked_s", self.path.blocked().as_secs_f64())
            .with_field("makespan_s", self.makespan.as_secs_f64());
        if let Some(last) = self.path.segments.last() {
            summary = summary.with_field("terminal", last.label.clone());
            if !last.node.is_empty() {
                summary = summary.with_field("node", last.node.clone());
            }
        }
        marks.push(summary);
        for lane in &self.lanes {
            let mut m = TraceEvent::mark(t, ANALYZE_TRACE_SOURCE, format!("lane {}", lane.key()))
                .with_field("busy_s", lane.busy.as_secs_f64())
                .with_field("frames", lane.frames.len());
            if !lane.node.is_empty() {
                m = m.with_field("node", lane.node.clone());
            }
            marks.push(m);
        }
        marks
    }

    /// Register the analysis summary as deterministic gauges/counters
    /// (`xcbc_analysis_*`), for the `xcbc mon` registry.
    pub fn register_into(&self, registry: &mut crate::metrics::MetricRegistry) {
        registry.set_gauge(
            "xcbc_analysis_makespan_seconds",
            "Span makespan the critical path telescopes to",
            &[],
            self.makespan.as_secs_f64(),
        );
        registry.set_gauge(
            "xcbc_analysis_critical_busy_seconds",
            "Busy time along the critical path",
            &[],
            self.path.busy().as_secs_f64(),
        );
        registry.set_gauge(
            "xcbc_analysis_critical_blocked_seconds",
            "Blocked time along the critical path",
            &[],
            self.path.blocked().as_secs_f64(),
        );
        registry.set_counter(
            "xcbc_analysis_critical_segments",
            "Number of links in the critical path",
            &[],
            self.path.segments.len() as u64,
        );
        registry.set_counter(
            "xcbc_analysis_spans_total",
            "Spans the analysed trace held",
            &[],
            self.spans as u64,
        );
        for lane in &self.lanes {
            registry.set_gauge(
                "xcbc_analysis_lane_busy_seconds",
                "Root-frame busy time per (source,node) lane",
                &[("source", &lane.source), ("node", &lane.node)],
                lane.busy.as_secs_f64(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, source: &str, label: &str, dur: f64) -> TraceEvent {
        TraceEvent::span(t, source, label, dur)
    }

    #[test]
    fn empty_trace_analyzes_clean() {
        let a = analyze(&[]);
        assert_eq!(a.spans, 0);
        assert_eq!(a.makespan, SimDuration::ZERO);
        assert!(a.path.segments.is_empty());
        assert!(a.render().contains("no spans"));
    }

    #[test]
    fn critical_path_telescopes_to_makespan() {
        let events = vec![
            ev(0.0, "yum.mirror", "fetch", 10.0),
            ev(12.0, "rocks.install", "frontend", 30.0), // 2s blocked after fetch
            ev(5.0, "sched", "early job", 4.0),          // off the path
            ev(45.0, "sched", "late job", 20.0),         // 3s blocked after frontend
        ];
        let a = analyze(&events);
        assert_eq!(a.makespan, SimDuration::from_secs(65));
        let labels: Vec<&str> = a.path.segments.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["fetch", "frontend", "late job"]);
        assert_eq!(a.path.total(), a.makespan);
        assert_eq!(a.path.blocked(), SimDuration::from_secs(5));
        assert_eq!(a.path.busy(), SimDuration::from_secs(60));
    }

    #[test]
    fn first_segment_blocked_from_time_zero() {
        let a = analyze(&[ev(7.0, "x", "only", 3.0)]);
        assert_eq!(a.path.segments[0].blocked, SimDuration::from_secs(7));
        assert_eq!(a.path.total(), SimDuration::from_secs(10));
    }

    #[test]
    fn zero_duration_spans_never_join_the_path() {
        let events = vec![ev(0.0, "x", "real", 5.0), ev(5.0, "x", "instant", 0.0)];
        let a = analyze(&events);
        assert_eq!(a.path.segments.len(), 1);
        assert_eq!(a.path.segments[0].label, "real");
        // but they still count as spans and set the makespan
        assert_eq!(a.spans, 2);
        assert_eq!(a.makespan, SimDuration::from_secs(5));
    }

    #[test]
    fn ties_break_by_emission_index() {
        let events = vec![
            ev(0.0, "a", "first", 10.0),
            ev(0.0, "a", "second", 10.0), // same (end, t); higher index wins
            ev(15.0, "a", "tail", 1.0),
        ];
        let a = analyze(&events);
        assert_eq!(a.path.segments[0].label, "second");
    }

    #[test]
    fn lanes_nest_by_containment() {
        let events = vec![
            ev(0.0, "rocks.install", "install os", 100.0).with_field("node", "compute-0-0"),
            ev(10.0, "rocks.install", "format disk", 20.0).with_field("node", "compute-0-0"),
            ev(40.0, "rocks.install", "packages", 50.0).with_field("node", "compute-0-0"),
            ev(0.0, "rocks.install", "install os", 80.0).with_field("node", "compute-0-1"),
        ];
        let a = analyze(&events);
        assert_eq!(a.lanes.len(), 2);
        let l0 = &a.lanes[0];
        assert_eq!(l0.node, "compute-0-0");
        let depths: Vec<usize> = l0.frames.iter().map(|f| f.depth).collect();
        assert_eq!(depths, [0, 1, 1]);
        // self time of the root excludes the two children
        assert_eq!(l0.frames[0].self_time, SimDuration::from_secs(30));
        assert_eq!(l0.busy, SimDuration::from_secs(100));
    }

    #[test]
    fn host_prefix_labels_resolve_to_node() {
        let events = vec![ev(0.0, "cluster.boot", "host:compute-0-0 pxe", 5.0)];
        let a = analyze(&events);
        assert_eq!(a.lanes[0].node, "compute-0-0");
    }

    #[test]
    fn renders_are_deterministic_and_folded_sorted() {
        let events = vec![
            ev(0.0, "a", "outer", 10.0),
            ev(1.0, "a", "inner", 2.0),
            ev(12.0, "b", "other", 3.0).with_field("node", "n1"),
        ];
        let a = analyze(&events);
        let b = analyze(&events);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.flame(), b.flame());
        assert_eq!(a.folded(), b.folded());
        assert_eq!(a.top(5), b.top(5));
        let folded = a.folded();
        let lines: Vec<&str> = folded.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
        assert!(folded.contains("a;outer;inner 2000000"));
        assert!(folded.contains("a;outer 8000000"));
        assert!(folded.contains("b/n1;other 3000000"));
    }

    #[test]
    fn analysis_marks_summarize_path() {
        let a = analyze(&[ev(0.0, "x", "work", 5.0)]);
        let marks = a.analysis_marks();
        assert_eq!(marks[0].source, ANALYZE_TRACE_SOURCE);
        assert_eq!(marks[0].label, "critical-path");
        let mut reg = crate::metrics::MetricRegistry::new();
        a.register_into(&mut reg);
        assert_eq!(
            reg.gauge_value("xcbc_analysis_makespan_seconds", &[]),
            Some(5.0)
        );
        assert_eq!(
            reg.counter_value("xcbc_analysis_critical_segments", &[]),
            Some(1)
        );
    }
}
