//! Integer-nanosecond simulation time.
//!
//! Every layer of the stack used to keep its own `f64` seconds — the
//! boot [`Timeline`](https://docs.rs) in `xcbc-cluster`, the scheduler's
//! event heap in `xcbc-sched`, mirror latency math in `xcbc-yum`.
//! [`SimTime`] and [`SimDuration`] replace all of them with one
//! integer-nanosecond representation: exact addition, a total order
//! with no NaN corner, and byte-stable serialization for replayable
//! event logs. `From<f64>` conversions (interpreting the float as
//! seconds) keep call sites as terse as the old APIs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Nanoseconds per second, the fixed tick of the simulation clock.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// Convert (non-negative) seconds to nanoseconds, rounding to the
/// nearest tick. Negative and NaN inputs clamp to zero: virtual time
/// never runs backwards, and a "negative duration" from float math is
/// always a bookkeeping artifact.
fn secs_to_nanos(s: f64) -> u64 {
    if s.is_nan() || s <= 0.0 {
        return 0;
    }
    (s * NANOS_PER_SEC as f64).round() as u64
}

/// An instant on the simulation timeline: nanoseconds since the
/// simulation epoch (t = 0, when the scenario starts).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// An instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> SimTime {
        SimTime(nanos)
    }

    /// An instant from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// An instant from (possibly fractional) seconds since the epoch,
    /// rounded to the nearest nanosecond. Negative inputs clamp to the
    /// epoch.
    pub fn from_secs_f64(secs: f64) -> SimTime {
        SimTime(secs_to_nanos(secs))
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for rendering and for the
    /// legacy `f64` APIs kept as compatibility shims).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration since `earlier`, saturating to zero if `earlier` is
    /// actually later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl From<f64> for SimTime {
    fn from(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A span of simulation time in nanoseconds. Always non-negative.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> SimDuration {
        SimDuration(nanos)
    }

    /// A duration of whole seconds.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// A duration of whole milliseconds.
    pub const fn from_millis(millis: u64) -> SimDuration {
        SimDuration(millis * (NANOS_PER_SEC / 1000))
    }

    /// A duration from (possibly fractional) seconds, rounded to the
    /// nearest nanosecond. Negative and NaN inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        SimDuration(secs_to_nanos(secs))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Is this the empty duration?
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Difference to another duration, saturating at zero.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl From<f64> for SimDuration {
    fn from(secs: f64) -> SimDuration {
        SimDuration::from_secs_f64(secs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u32> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u32) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs as u64))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_trip_exactly_for_decimal_inputs() {
        for s in [0.0, 0.5, 1.0, 90.0, 640.0, 1234.125] {
            assert_eq!(SimTime::from_secs_f64(s).as_secs_f64(), s);
            assert_eq!(SimDuration::from_secs_f64(s).as_secs_f64(), s);
        }
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_is_exact() {
        let t = SimTime::from_secs_f64(1.0) + SimDuration::from_secs_f64(99.0);
        assert_eq!(t, SimTime::from_secs(100));
        assert_eq!(t.since(SimTime::from_secs(40)), SimDuration::from_secs(60));
        // saturating: earlier.since(later) is zero, not underflow
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum_and_scale() {
        let total: SimDuration = [1.5, 2.5, 6.0]
            .into_iter()
            .map(SimDuration::from_secs_f64)
            .sum();
        assert_eq!(total, SimDuration::from_secs(10));
        assert_eq!(SimDuration::from_secs(3) * 4, SimDuration::from_secs(12));
    }

    #[test]
    fn ordering_is_total() {
        let mut ts = [
            SimTime::from_secs(5),
            SimTime::ZERO,
            SimTime::from_secs_f64(2.25),
        ];
        ts.sort();
        assert_eq!(ts[0], SimTime::ZERO);
        assert_eq!(ts[2], SimTime::from_secs(5));
    }

    #[test]
    fn display_renders_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.5).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }
}
