//! Structured trace events and the bus that distributes them.
//!
//! Every layer of the stack — scheduler, boot, Rocks install, mirror
//! fetches, the resilience machinery — reports what it did as
//! [`TraceEvent`]s on an [`EventBus`]. The bus keeps a canonical
//! in-order log and fans events out to pluggable [`TraceSink`]s: a
//! bounded ring buffer, a JSONL writer, an aggregate-metrics counter.
//! Because all timestamps are integer [`SimTime`] nanoseconds and the
//! log order is emission order, serializing a log is byte-deterministic
//! for a fixed scenario seed.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

/// A typed field value attached to a trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// A string field.
    Str(String),
    /// An unsigned integer field.
    U64(u64),
    /// A floating-point field (rates, fractions).
    F64(f64),
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> FieldValue {
        FieldValue::Str(s.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(s: String) -> FieldValue {
        FieldValue::Str(s)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

/// What kind of occurrence a [`TraceEvent`] records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Work that occupied `[t, t + dur]` on the shared timeline.
    Span {
        /// How long the work ran.
        dur: SimDuration,
    },
    /// An instantaneous occurrence (a submit, a fault firing).
    Mark,
    /// A named quantity sampled at `t`.
    Counter {
        /// The sampled value.
        value: u64,
    },
}

/// One structured, timestamped record on the unified timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the event occurred (span start for [`TraceKind::Span`]).
    pub t: SimTime,
    /// Which layer emitted it, dotted-path style (`"rocks.install"`,
    /// `"sched"`, `"yum.mirror"`, `"cluster.boot"`).
    pub source: String,
    /// Human-readable label (phase name, job name, mirror URL).
    pub label: String,
    /// Span, mark, or counter.
    pub kind: TraceKind,
    /// Extra key/value context, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    /// A span of `dur` starting at `t`.
    pub fn span(
        t: impl Into<SimTime>,
        source: impl Into<String>,
        label: impl Into<String>,
        dur: impl Into<SimDuration>,
    ) -> TraceEvent {
        TraceEvent {
            t: t.into(),
            source: source.into(),
            label: label.into(),
            kind: TraceKind::Span { dur: dur.into() },
            fields: Vec::new(),
        }
    }

    /// An instantaneous mark at `t`.
    pub fn mark(
        t: impl Into<SimTime>,
        source: impl Into<String>,
        label: impl Into<String>,
    ) -> TraceEvent {
        TraceEvent {
            t: t.into(),
            source: source.into(),
            label: label.into(),
            kind: TraceKind::Mark,
            fields: Vec::new(),
        }
    }

    /// A counter sample at `t`.
    pub fn counter(
        t: impl Into<SimTime>,
        source: impl Into<String>,
        label: impl Into<String>,
        value: u64,
    ) -> TraceEvent {
        TraceEvent {
            t: t.into(),
            source: source.into(),
            label: label.into(),
            kind: TraceKind::Counter { value },
            fields: Vec::new(),
        }
    }

    /// Attach a field (builder style).
    pub fn with_field(
        mut self,
        key: impl Into<String>,
        value: impl Into<FieldValue>,
    ) -> TraceEvent {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// The instant the event ends: `t + dur` for spans, `t` otherwise.
    pub fn end(&self) -> SimTime {
        match self.kind {
            TraceKind::Span { dur } => self.t + dur,
            _ => self.t,
        }
    }

    /// The span duration, or zero for marks and counters.
    pub fn duration(&self) -> SimDuration {
        match self.kind {
            TraceKind::Span { dur } => dur,
            _ => SimDuration::ZERO,
        }
    }

    /// The same event translated `offset` later on the timeline —
    /// used to compose independently-recorded scenario logs onto one
    /// shared timebase.
    pub fn shifted(&self, offset: SimDuration) -> TraceEvent {
        let mut ev = self.clone();
        ev.t += offset;
        ev
    }

    /// One JSONL line: fixed key order, integer-nanosecond timestamps,
    /// no floating-point formatting in the hot keys — byte-stable for
    /// identical inputs.
    pub fn to_jsonl(&self) -> String {
        let mut line = String::with_capacity(96);
        line.push_str("{\"t_ns\":");
        line.push_str(&self.t.as_nanos().to_string());
        line.push_str(",\"source\":");
        push_json_str(&mut line, &self.source);
        line.push_str(",\"kind\":");
        match &self.kind {
            TraceKind::Span { dur } => {
                line.push_str("\"span\",\"dur_ns\":");
                line.push_str(&dur.as_nanos().to_string());
            }
            TraceKind::Mark => line.push_str("\"mark\""),
            TraceKind::Counter { value } => {
                line.push_str("\"counter\",\"value\":");
                line.push_str(&value.to_string());
            }
        }
        line.push_str(",\"label\":");
        push_json_str(&mut line, &self.label);
        if !self.fields.is_empty() {
            line.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                push_json_str(&mut line, k);
                line.push(':');
                match v {
                    FieldValue::Str(s) => push_json_str(&mut line, s),
                    FieldValue::U64(n) => line.push_str(&n.to_string()),
                    FieldValue::F64(x) => line.push_str(&format_json_f64(*x)),
                }
            }
            line.push('}');
        }
        line.push('}');
        line
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn format_json_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // bare integers like `3` are valid JSON numbers, but keep the
        // fractional marker so readers can't confuse them with counters
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in
        "null".to_string()
    }
}

/// Render a whole event log as JSONL, one event per line. The whole
/// render is timed into the engine self-profiler (section
/// [`SECTION_TRACE_RENDER`](crate::SECTION_TRACE_RENDER)) — one timer
/// per log, not per event.
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    crate::self_profiler().time(crate::SECTION_TRACE_RENDER, || {
        let mut out = String::new();
        for ev in events {
            out.push_str(&ev.to_jsonl());
            out.push('\n');
        }
        out
    })
}

/// A destination for trace events.
pub trait TraceSink {
    /// Observe one event. Called in emission order.
    fn record(&mut self, event: &TraceEvent);

    /// Observe a contiguous batch of events, in emission order.
    ///
    /// The default forwards to [`record`](TraceSink::record) one event
    /// at a time, so every sink works unchanged; sinks with per-call
    /// overhead (a lock to take, a map entry to look up) override this
    /// to amortize it across the whole batch. Implementations must be
    /// observationally identical to the per-event loop.
    fn accept_batch(&mut self, events: &[TraceEvent]) {
        for event in events {
            self.record(event);
        }
    }

    /// A short name for diagnostics.
    fn name(&self) -> &str;
}

/// Keeps only the most recent `capacity` events — the "flight
/// recorder" sink for long scenarios. Evictions are counted, never
/// silent: [`dropped`](RingBufferSink::dropped) says how many events
/// the ring let go.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    seen: u64,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (capacity 0 keeps none).
    pub fn new(capacity: usize) -> RingBufferSink {
        RingBufferSink {
            capacity,
            buf: VecDeque::new(),
            seen: 0,
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// How many events are currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events the ring has observed in total.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// How many observed events were evicted (or refused outright by a
    /// zero-capacity ring). `seen - dropped == len`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: &TraceEvent) {
        self.seen += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event.clone());
    }

    fn accept_batch(&mut self, events: &[TraceEvent]) {
        self.seen += events.len() as u64;
        if self.capacity == 0 {
            self.dropped += events.len() as u64;
            return;
        }
        // only the tail of the batch can survive; drop the rest without
        // ever cloning them through the ring
        let keep = events.len().min(self.capacity);
        let skipped = events.len() - keep;
        self.dropped += skipped as u64;
        let evict = (self.buf.len() + keep).saturating_sub(self.capacity);
        for _ in 0..evict {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.extend(events[skipped..].iter().cloned());
    }

    fn name(&self) -> &str {
        "ring"
    }
}

/// A bounded last-N-events recorder for post-mortems: wraps a
/// [`RingBufferSink`] and knows how to render its tail for crash and
/// abort reports, and how to surface its overflow counters through a
/// [`MetricRegistry`](crate::MetricRegistry) so truncation is visible
/// on the `xcbc mon` endpoint rather than silent.
///
/// Attach one to a bus (or replay a finished log through
/// [`from_events`](FlightRecorder::from_events)) and, when a run
/// faults or aborts, [`tail_jsonl`](FlightRecorder::tail_jsonl) /
/// [`render_tail`](FlightRecorder::render_tail) dump the last moments
/// before the failure.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: RingBufferSink,
}

/// Default number of events a [`FlightRecorder`] retains.
pub const FLIGHT_RECORDER_CAPACITY: usize = 32;

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FLIGHT_RECORDER_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: RingBufferSink::new(capacity),
        }
    }

    /// Replay a finished log through a fresh recorder — the cheap way
    /// to get "the last N events before the end" from any trace.
    pub fn from_events(capacity: usize, events: &[TraceEvent]) -> FlightRecorder {
        let mut fr = FlightRecorder::new(capacity);
        fr.accept_batch(events);
        fr
    }

    /// The retained tail, oldest first.
    pub fn tail(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.events()
    }

    /// How many events the recorder has observed in total.
    pub fn seen(&self) -> u64 {
        self.ring.seen()
    }

    /// How many observed events fell out of the ring.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// How many events are currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Is the tail empty?
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The retained tail as byte-deterministic JSONL.
    pub fn tail_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.ring.events() {
            out.push_str(&ev.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// A human-readable tail block for post-mortem and abort reports:
    /// a header stating retention/truncation, then one indented JSONL
    /// line per retained event.
    pub fn render_tail(&self) -> String {
        let mut out = format!(
            "flight recorder     : last {} of {} event(s) ({} dropped)\n",
            self.ring.len(),
            self.ring.seen(),
            self.ring.dropped()
        );
        for ev in self.ring.events() {
            out.push_str("  | ");
            out.push_str(&ev.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Surface the overflow counters as the `xcbc_flightrecorder_*`
    /// families.
    pub fn register_into(&self, registry: &mut crate::MetricRegistry) {
        registry.set_counter(
            "xcbc_flightrecorder_seen_total",
            "Events the flight recorder observed",
            &[],
            self.ring.seen(),
        );
        registry.set_counter(
            "xcbc_flightrecorder_dropped_total",
            "Events evicted from the flight-recorder ring",
            &[],
            self.ring.dropped(),
        );
        registry.set_gauge(
            "xcbc_flightrecorder_retained",
            "Events currently retained in the flight-recorder ring",
            &[],
            self.ring.len() as f64,
        );
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, event: &TraceEvent) {
        self.ring.record(event);
    }

    fn accept_batch(&mut self, events: &[TraceEvent]) {
        self.ring.accept_batch(events);
    }

    fn name(&self) -> &str {
        "flight"
    }
}

/// Accumulates the byte-deterministic JSONL rendering of every event.
#[derive(Debug, Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    /// An empty JSONL accumulator.
    pub fn new() -> JsonlSink {
        JsonlSink::default()
    }

    /// The JSONL text so far, one event per line.
    pub fn contents(&self) -> &str {
        &self.out
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, event: &TraceEvent) {
        self.out.push_str(&event.to_jsonl());
        self.out.push('\n');
    }

    fn name(&self) -> &str {
        "jsonl"
    }
}

/// Aggregate per-source metrics: event counts and total span time.
#[derive(Debug, Default)]
pub struct MetricsSink {
    counts: BTreeMap<String, u64>,
    span_time: BTreeMap<String, SimDuration>,
}

impl MetricsSink {
    /// An empty aggregator.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }

    /// How many events `source` emitted.
    pub fn count(&self, source: &str) -> u64 {
        self.counts.get(source).copied().unwrap_or(0)
    }

    /// Total span time attributed to `source`.
    pub fn span_time(&self, source: &str) -> SimDuration {
        self.span_time
            .get(source)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// `(source, count, span_time)` rows in source order.
    pub fn rows(&self) -> Vec<(String, u64, SimDuration)> {
        self.counts
            .iter()
            .map(|(src, &n)| (src.clone(), n, self.span_time(src)))
            .collect()
    }
}

impl TraceSink for MetricsSink {
    fn record(&mut self, event: &TraceEvent) {
        *self.counts.entry(event.source.clone()).or_insert(0) += 1;
        if let TraceKind::Span { dur } = event.kind {
            *self
                .span_time
                .entry(event.source.clone())
                .or_insert(SimDuration::ZERO) += dur;
        }
    }

    fn name(&self) -> &str {
        "metrics"
    }
}

/// A `Send + Sync` handle around any [`TraceSink`], so concurrent
/// producers (e.g. the worker threads of a fleet deploy) can record
/// into one shared sink.
///
/// `SharedSink` clones cheaply — every clone locks the same underlying
/// sink — and itself implements [`TraceSink`], so a handle can be
/// attached to an `EventBus` while other handles live on other threads.
/// When the producers are done, [`SharedSink::into_inner`] recovers the
/// wrapped sink for inspection.
///
/// Per-event locking serializes writers; with deterministic producers
/// that each buffer locally and merge in a fixed order (the fleet
/// pattern), contention stays off the hot path.
#[derive(Debug)]
pub struct SharedSink<S: TraceSink> {
    name: String,
    inner: std::sync::Arc<std::sync::Mutex<S>>,
}

impl<S: TraceSink> SharedSink<S> {
    /// Wrap `sink` for cross-thread sharing. The diagnostic name is
    /// captured now (the wrapped sink is behind a lock afterwards).
    pub fn new(sink: S) -> SharedSink<S> {
        let name = format!("shared:{}", sink.name());
        SharedSink {
            name,
            inner: std::sync::Arc::new(std::sync::Mutex::new(sink)),
        }
    }

    /// Run `f` against the wrapped sink under the lock.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    /// Recover the wrapped sink. Panics if other handles are still
    /// alive — call after every producer thread has finished.
    pub fn into_inner(self) -> S {
        std::sync::Arc::try_unwrap(self.inner)
            .unwrap_or_else(|_| panic!("SharedSink::into_inner with live handles"))
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl<S: TraceSink> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink {
            name: self.name.clone(),
            inner: std::sync::Arc::clone(&self.inner),
        }
    }
}

impl<S: TraceSink> TraceSink for SharedSink<S> {
    fn record(&mut self, event: &TraceEvent) {
        self.with(|sink| sink.record(event));
    }

    fn accept_batch(&mut self, events: &[TraceEvent]) {
        // one lock acquisition for the whole batch
        self.with(|sink| sink.accept_batch(events));
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The hub: layers emit events here; the bus keeps the canonical log
/// and forwards every event to the attached sinks in order.
#[derive(Default)]
pub struct EventBus {
    log: Vec<TraceEvent>,
    sinks: Vec<Box<dyn TraceSink>>,
}

impl EventBus {
    /// A bus with no sinks attached (the in-memory log always records).
    pub fn new() -> EventBus {
        EventBus::default()
    }

    /// Attach a sink; it observes every event emitted from now on.
    pub fn attach(&mut self, sink: Box<dyn TraceSink>) {
        self.sinks.push(sink);
    }

    /// Emit one event: append to the log, fan out to sinks.
    pub fn emit(&mut self, event: TraceEvent) {
        for sink in &mut self.sinks {
            sink.record(&event);
        }
        self.log.push(event);
    }

    /// Emit a batch of events: one
    /// [`accept_batch`](TraceSink::accept_batch) call per sink instead
    /// of one dynamic dispatch per event per sink, then append the
    /// batch to the log. Observationally identical to emitting the
    /// events one by one.
    pub fn emit_batch(&mut self, events: Vec<TraceEvent>) {
        for sink in &mut self.sinks {
            sink.accept_batch(&events);
        }
        self.log.extend(events);
    }

    /// Convenience: emit a span.
    pub fn span(
        &mut self,
        t: impl Into<SimTime>,
        source: &str,
        label: impl Into<String>,
        dur: impl Into<SimDuration>,
    ) {
        self.emit(TraceEvent::span(t, source, label, dur));
    }

    /// Convenience: emit a mark.
    pub fn mark(&mut self, t: impl Into<SimTime>, source: &str, label: impl Into<String>) {
        self.emit(TraceEvent::mark(t, source, label));
    }

    /// Convenience: emit a counter sample.
    pub fn counter(
        &mut self,
        t: impl Into<SimTime>,
        source: &str,
        label: impl Into<String>,
        value: u64,
    ) {
        self.emit(TraceEvent::counter(t, source, label, value));
    }

    /// The canonical log, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.log
    }

    /// Consume the bus, returning the log.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.log
    }

    /// The whole log as byte-deterministic JSONL.
    pub fn to_jsonl(&self) -> String {
        events_to_jsonl(&self.log)
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Has nothing been emitted yet?
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }
}

impl fmt::Debug for EventBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventBus")
            .field("events", &self.log.len())
            .field(
                "sinks",
                &self.sinks.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_sink_is_send_sync_and_aggregates() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedSink<MetricsSink>>();

        let shared = SharedSink::new(MetricsSink::new());
        std::thread::scope(|scope| {
            for i in 0..4 {
                let mut handle = shared.clone();
                scope.spawn(move || {
                    handle.record(&TraceEvent::mark(i as f64, "fleet.site", "deployed"));
                });
            }
        });
        assert_eq!(shared.with(|m| m.count("fleet.site")), 4);
        let recovered = shared.into_inner();
        assert_eq!(recovered.count("fleet.site"), 4);
    }

    #[test]
    fn shared_sink_names_after_wrapped() {
        let shared = SharedSink::new(JsonlSink::new());
        assert_eq!(shared.name(), "shared:jsonl");
    }

    #[test]
    fn shared_sink_attaches_to_bus_while_handle_observes() {
        let shared = SharedSink::new(RingBufferSink::new(8));
        let observer = shared.clone();
        let mut bus = EventBus::new();
        bus.attach(Box::new(shared));
        bus.mark(1.0, "test", "hello");
        assert_eq!(observer.with(|r| r.len()), 1);
    }

    #[test]
    fn jsonl_is_stable_and_escaped() {
        let ev = TraceEvent::span(1.5, "rocks.install", "frontend \"screens\"", 600.0)
            .with_field("node", "compute-0-0")
            .with_field("attempts", 3u64)
            .with_field("rate", 0.25);
        let line = ev.to_jsonl();
        assert_eq!(
            line,
            "{\"t_ns\":1500000000,\"source\":\"rocks.install\",\"kind\":\"span\",\"dur_ns\":600000000000,\"label\":\"frontend \\\"screens\\\"\",\"fields\":{\"node\":\"compute-0-0\",\"attempts\":3,\"rate\":0.25}}"
        );
        // rendering twice is byte-identical
        assert_eq!(line, ev.to_jsonl());
    }

    #[test]
    fn mark_and_counter_render() {
        let m = TraceEvent::mark(0.0, "sched", "submit job-1");
        assert_eq!(
            m.to_jsonl(),
            "{\"t_ns\":0,\"source\":\"sched\",\"kind\":\"mark\",\"label\":\"submit job-1\"}"
        );
        let c = TraceEvent::counter(2.0, "sched", "queued", 7);
        assert!(c.to_jsonl().contains("\"kind\":\"counter\",\"value\":7"));
    }

    #[test]
    fn whole_f64_fields_keep_fraction_marker() {
        let ev = TraceEvent::mark(0.0, "x", "y").with_field("rate", 3.0);
        assert!(ev.to_jsonl().contains("\"rate\":3.0"));
    }

    #[test]
    fn bus_fans_out_to_sinks_and_keeps_log() {
        let mut bus = EventBus::new();
        bus.attach(Box::new(RingBufferSink::new(2)));
        bus.attach(Box::new(JsonlSink::new()));
        bus.span(0.0, "a", "one", 1.0);
        bus.span(1.0, "a", "two", 1.0);
        bus.mark(2.0, "b", "three");
        assert_eq!(bus.len(), 3);
        assert_eq!(bus.to_jsonl().lines().count(), 3);
        let dbg = format!("{bus:?}");
        assert!(dbg.contains("ring") && dbg.contains("jsonl"));
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let mut ring = RingBufferSink::new(2);
        for i in 0..5u64 {
            ring.record(&TraceEvent::counter(i as f64, "c", "tick", i));
        }
        let kept: Vec<_> = ring
            .events()
            .map(|e| match e.kind {
                TraceKind::Counter { value } => value,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, [3, 4]);
    }

    #[test]
    fn ring_counts_drops_and_batches_match_loop() {
        let events: Vec<TraceEvent> = (0..10u64)
            .map(|i| TraceEvent::counter(i as f64, "c", "tick", i))
            .collect();

        let mut looped = RingBufferSink::new(3);
        for e in &events {
            looped.record(e);
        }
        let mut batched = RingBufferSink::new(3);
        batched.accept_batch(&events);

        assert_eq!(looped.seen(), 10);
        assert_eq!(looped.dropped(), 7);
        assert_eq!(batched.seen(), looped.seen());
        assert_eq!(batched.dropped(), looped.dropped());
        let a: Vec<_> = looped.events().cloned().collect();
        let b: Vec<_> = batched.events().cloned().collect();
        assert_eq!(a, b);

        let mut zero = RingBufferSink::new(0);
        zero.accept_batch(&events);
        assert_eq!(zero.dropped(), 10);
        assert!(zero.is_empty());
    }

    #[test]
    fn ring_batch_partial_eviction() {
        let events: Vec<TraceEvent> = (0..3u64)
            .map(|i| TraceEvent::counter(i as f64, "c", "tick", i))
            .collect();
        let mut ring = RingBufferSink::new(4);
        ring.accept_batch(&events); // 3 of 4 filled
        ring.accept_batch(&events[..2]); // evicts 1
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.seen(), 5);
        assert_eq!(ring.dropped(), 1);
        let first = ring.events().next().unwrap();
        assert!(matches!(first.kind, TraceKind::Counter { value: 1 }));
    }

    #[test]
    fn emit_batch_matches_per_event_emission() {
        let events: Vec<TraceEvent> = (0..5u64)
            .map(|i| TraceEvent::span(i as f64, "a", format!("e{i}"), 1.0))
            .collect();

        let mut one = EventBus::new();
        one.attach(Box::new(JsonlSink::new()));
        for e in events.clone() {
            one.emit(e);
        }
        let mut batch = EventBus::new();
        batch.attach(Box::new(JsonlSink::new()));
        batch.emit_batch(events);

        assert_eq!(one.to_jsonl(), batch.to_jsonl());
        assert_eq!(one.len(), batch.len());
    }

    #[test]
    fn flight_recorder_tail_and_registry() {
        let events: Vec<TraceEvent> = (0..6u64)
            .map(|i| TraceEvent::mark(i as f64, "x", format!("m{i}")))
            .collect();
        let fr = FlightRecorder::from_events(4, &events);
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.seen(), 6);
        assert_eq!(fr.dropped(), 2);
        let tail = fr.render_tail();
        assert!(tail.starts_with("flight recorder     : last 4 of 6 event(s) (2 dropped)"));
        assert!(tail.contains("m5"));
        assert!(!tail.contains("m1"));
        assert_eq!(fr.tail_jsonl().lines().count(), 4);

        let mut reg = crate::MetricRegistry::new();
        fr.register_into(&mut reg);
        assert_eq!(
            reg.counter_value("xcbc_flightrecorder_dropped_total", &[]),
            Some(2)
        );
        assert_eq!(
            reg.counter_value("xcbc_flightrecorder_seen_total", &[]),
            Some(6)
        );
        assert_eq!(
            reg.gauge_value("xcbc_flightrecorder_retained", &[]),
            Some(4.0)
        );
    }

    #[test]
    fn metrics_aggregate_per_source() {
        let mut m = MetricsSink::new();
        m.record(&TraceEvent::span(0.0, "rocks.install", "a", 10.0));
        m.record(&TraceEvent::span(10.0, "rocks.install", "b", 5.0));
        m.record(&TraceEvent::mark(0.0, "sched", "submit"));
        assert_eq!(m.count("rocks.install"), 2);
        assert_eq!(m.span_time("rocks.install"), SimDuration::from_secs(15));
        assert_eq!(m.count("sched"), 1);
        assert_eq!(m.span_time("sched"), SimDuration::ZERO);
    }

    #[test]
    fn shifted_translates_start_only() {
        let ev = TraceEvent::span(2.0, "x", "y", 3.0);
        let s = ev.shifted(SimDuration::from_secs(10));
        assert_eq!(s.t, SimTime::from_secs(12));
        assert_eq!(s.duration(), SimDuration::from_secs(3));
        assert_eq!(s.end(), SimTime::from_secs(15));
    }
}
