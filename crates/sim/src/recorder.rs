//! Span recording with the same placement discipline as the classic
//! boot `Timeline`.

use crate::time::{SimDuration, SimTime};
use crate::trace::{EventBus, TraceEvent, TraceKind};

/// Label prefix marking a span as retry backoff, so traces can account
/// for time lost to the resilience layer separately from real work.
/// (`cluster::boot` re-exports this so existing imports keep working.)
pub const BACKOFF_PREFIX: &str = "backoff: ";

/// Records spans with the classic `Timeline` placement rules:
///
/// * [`record`](SpanRecorder::record) starts a span when all previous
///   work has finished (the max end over recorded spans);
/// * [`record_parallel`](SpanRecorder::record_parallel) starts a span
///   together with the previously recorded one;
/// * [`record_backoff`](SpanRecorder::record_backoff) is `record` with
///   the [`BACKOFF_PREFIX`] label, dropping zero durations so clean
///   runs leave no backoff spans behind.
///
/// A `Timeline` built from the recorded events (see
/// `Timeline::from_spans` in `xcbc-cluster`) is phase-for-phase
/// identical to one built with the old `push`/`push_parallel` calls —
/// that is what lets the boot timeline become a pure view over the
/// trace log without changing a single rendered report.
#[derive(Debug)]
pub struct SpanRecorder {
    source: String,
    events: Vec<TraceEvent>,
}

impl SpanRecorder {
    /// A recorder whose spans carry `source` (e.g. `"rocks.install"`).
    pub fn new(source: impl Into<String>) -> SpanRecorder {
        SpanRecorder {
            source: source.into(),
            events: Vec::new(),
        }
    }

    /// The instant all recorded work has finished — where the next
    /// sequential span starts.
    pub fn cursor(&self) -> SimTime {
        self.events
            .iter()
            .map(TraceEvent::end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Record a span starting when all previous work has finished.
    pub fn record(&mut self, label: impl Into<String>, dur: impl Into<SimDuration>) -> &mut Self {
        let start = self.cursor();
        self.events
            .push(TraceEvent::span(start, self.source.clone(), label, dur));
        self
    }

    /// Record a span that runs concurrently with the previously
    /// recorded one (same start; extends the cursor only if it
    /// finishes later). With nothing recorded yet it starts at zero.
    pub fn record_parallel(
        &mut self,
        label: impl Into<String>,
        dur: impl Into<SimDuration>,
    ) -> &mut Self {
        let start = self.events.last().map(|e| e.t).unwrap_or(SimTime::ZERO);
        self.events
            .push(TraceEvent::span(start, self.source.clone(), label, dur));
        self
    }

    /// Record a retry-backoff span ([`BACKOFF_PREFIX`]-labelled).
    /// Zero durations are dropped.
    pub fn record_backoff(
        &mut self,
        what: impl AsRef<str>,
        dur: impl Into<SimDuration>,
    ) -> &mut Self {
        let dur = dur.into();
        if !dur.is_zero() {
            self.record(format!("{BACKOFF_PREFIX}{}", what.as_ref()), dur);
        }
        self
    }

    /// Append an event verbatim — for marks/counters interleaved with
    /// recorded spans, or spans placed by some other rule.
    pub fn record_event(&mut self, event: TraceEvent) -> &mut Self {
        self.events.push(event);
        self
    }

    /// Attach a structured field to the most recently recorded event
    /// (e.g. the node a span ran on, or the bytes it transferred).
    /// No-op when nothing has been recorded yet.
    pub fn with_field(
        &mut self,
        key: impl Into<String>,
        value: impl Into<crate::trace::FieldValue>,
    ) -> &mut Self {
        if let Some(last) = self.events.last_mut() {
            last.fields.push((key.into(), value.into()));
        }
        self
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consume the recorder, returning its events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Total span time lost to backoff.
    pub fn backoff_time(&self) -> SimDuration {
        self.events
            .iter()
            .filter(|e| {
                matches!(e.kind, TraceKind::Span { .. }) && e.label.starts_with(BACKOFF_PREFIX)
            })
            .map(TraceEvent::duration)
            .sum()
    }

    /// Emit every recorded event onto `bus`, in order.
    pub fn flush_to(&self, bus: &mut EventBus) {
        for ev in &self.events {
            bus.emit(ev.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_spans_accumulate_like_timeline_push() {
        let mut r = SpanRecorder::new("test");
        r.record("bios", 30.0)
            .record("pxe", 10.0)
            .record("install", 600.0);
        assert_eq!(r.events()[2].t, SimTime::from_secs(40));
        assert_eq!(r.cursor(), SimTime::from_secs(640));
    }

    #[test]
    fn parallel_spans_share_start_like_push_parallel() {
        let mut r = SpanRecorder::new("test");
        r.record("frontend install", 1800.0);
        r.record("compute-0-0 install", 600.0);
        r.record_parallel("compute-0-1 install", 700.0);
        assert_eq!(r.events()[2].t, SimTime::from_secs(1800));
        assert_eq!(r.cursor(), SimTime::from_secs(2500));
    }

    #[test]
    fn parallel_on_empty_starts_at_zero() {
        let mut r = SpanRecorder::new("test");
        r.record_parallel("x", 5.0);
        assert_eq!(r.events()[0].t, SimTime::ZERO);
        assert_eq!(r.cursor(), SimTime::from_secs(5));
    }

    #[test]
    fn zero_backoff_leaves_no_span() {
        let mut r = SpanRecorder::new("test");
        r.record("install", 100.0);
        r.record_backoff("nothing", 0.0);
        r.record_backoff("negative", -3.0);
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.backoff_time(), SimDuration::ZERO);
    }

    #[test]
    fn backoff_spans_are_labelled_and_totalled() {
        let mut r = SpanRecorder::new("test");
        r.record("frontend install", 600.0);
        r.record_backoff("mirror.fetch retry", 6.0);
        r.record_backoff("dhcp.discover retry", 4.0);
        assert_eq!(r.backoff_time(), SimDuration::from_secs(10));
        assert!(r.events()[1].label.starts_with(BACKOFF_PREFIX));
        assert_eq!(r.cursor(), SimTime::from_secs(610));
    }

    #[test]
    fn flush_forwards_in_order() {
        let mut r = SpanRecorder::new("test");
        r.record("a", 1.0).record("b", 2.0);
        let mut bus = EventBus::new();
        r.flush_to(&mut bus);
        assert_eq!(bus.events().len(), 2);
        assert_eq!(bus.events()[1].label, "b");
    }
}
