//! The discrete-event queue shared by the simulation layers.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled occurrence popped from an [`EventQueue`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub t: SimTime,
    /// Insertion sequence number; unique per queue, and the FIFO
    /// tie-breaker for events scheduled at the same instant.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

// Min-heap entry: earliest time first, then insertion order. The
// payload deliberately never participates in ordering — two events at
// the same instant pop in the order they were scheduled, exactly the
// discipline the scheduler's old hand-rolled heap used (its seq field
// was unique, so the payload comparison behind it was dead).
struct Entry<E> {
    t: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want the earliest out
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

/// A binary-heap discrete-event queue ordered by `(time, insertion
/// sequence)`.
///
/// Determinism contract: for equal timestamps, events pop in insertion
/// order, regardless of payload. That makes runs byte-replayable — the
/// only inputs are the schedule calls themselves.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at `t`; returns its sequence number.
    pub fn schedule(&mut self, t: impl Into<SimTime>, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            t: t.into(),
            seq,
            event,
        });
        seq
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|e| Scheduled {
            t: e.t,
            seq: e.seq,
            event: e.event,
        })
    }

    /// When the earliest event fires, without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), "c");
        q.schedule(SimTime::from_secs(10), "a");
        q.schedule(SimTime::from_secs(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_reports_earliest_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(7.5, ());
        q.schedule(2.5, ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(2.5)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn f64_seconds_convert_at_the_boundary() {
        let mut q = EventQueue::new();
        q.schedule(1.5, "later");
        q.schedule(0.5, "sooner");
        assert_eq!(q.pop().unwrap().event, "sooner");
    }
}
