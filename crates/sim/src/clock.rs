//! The virtual clock every layer reads.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A monotonic virtual clock.
///
/// The clock only moves when the owning event loop advances it — there
/// is no wall-clock coupling anywhere, which is what makes whole-stack
/// runs deterministic and replayable. Attempts to move it backwards are
/// ignored rather than panicking: out-of-order advance requests are a
/// scheduling bug upstream, but a frozen clock is easier to debug than
/// a crashed simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock at the simulation epoch.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// A clock already advanced to `t` (resuming from a checkpoint).
    pub fn starting_at(t: SimTime) -> SimClock {
        SimClock { now: t }
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance to `t` if it is in the future; returns the (possibly
    /// unchanged) current time.
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            self.now = t;
        }
        self.now
    }

    /// Advance by `d` and return the new current time.
    pub fn advance_by(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_to(SimTime::from_secs(10));
        // moving backwards is a no-op
        c.advance_to(SimTime::from_secs(3));
        assert_eq!(c.now(), SimTime::from_secs(10));
        c.advance_by(SimDuration::from_secs(5));
        assert_eq!(c.now(), SimTime::from_secs(15));
    }

    #[test]
    fn resume_from_checkpointed_instant() {
        let c = SimClock::starting_at(SimTime::from_secs(42));
        assert_eq!(c.now(), SimTime::from_secs(42));
    }
}
