//! The metric spine: a registry every layer exports into, plus span
//! latency histograms fed straight off the trace bus.
//!
//! Ganglia keeps gmond/gmetad state as RRD files and serves them as XML;
//! modern stacks scrape a Prometheus text endpoint. [`MetricRegistry`]
//! is the neutral middle: gmetad node gauges, the scheduler's
//! `SimMetrics`-style summary numbers, the depsolve
//! cache's hit/miss counters, and per-source span latency histograms all
//! register here, and one writer renders the whole registry as
//! byte-deterministic Prometheus exposition text.
//!
//! Determinism rules: families and series live in `BTreeMap`s (name
//! order, then label order), histogram buckets are fixed log-spaced
//! boundaries shared by every histogram, and float formatting goes
//! through one formatter. Two runs that register the same values render
//! byte-identical text at any thread count.

use crate::time::SimDuration;
use crate::trace::{TraceEvent, TraceKind, TraceSink};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fixed log-spaced histogram bucket upper bounds, in seconds: three
/// buckets per decade from 1 ms to 10⁶ s (≈ 11.6 simulated days), which
/// covers everything from a DHCP exchange to a fleet campaign.
pub const HISTOGRAM_BUCKETS_S: [f64; 28] = [
    0.001,
    0.00215,
    0.00464,
    0.01,
    0.0215,
    0.0464,
    0.1,
    0.215,
    0.464,
    1.0,
    2.15,
    4.64,
    10.0,
    21.5,
    46.4,
    100.0,
    215.0,
    464.0,
    1_000.0,
    2_150.0,
    4_640.0,
    10_000.0,
    21_500.0,
    46_400.0,
    100_000.0,
    215_000.0,
    464_000.0,
    1_000_000.0,
];

/// A latency histogram over the fixed [`HISTOGRAM_BUCKETS_S`] bounds
/// (plus an implicit `+Inf` overflow bucket).
///
/// Quantile estimates are conservative: [`quantile`](Self::quantile)
/// returns the upper bound of the first bucket whose cumulative count
/// reaches the requested rank, so the answer is always an integer
/// bucket edge — exactly reproducible, never interpolated from floats.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: [u64; HISTOGRAM_BUCKETS_S.len() + 1],
    total: u64,
    sum_ns: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; HISTOGRAM_BUCKETS_S.len() + 1],
            total: 0,
            sum_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one duration.
    pub fn observe(&mut self, d: SimDuration) {
        let secs = d.as_secs_f64();
        let idx = HISTOGRAM_BUCKETS_S
            .iter()
            .position(|&ub| secs <= ub)
            .unwrap_or(HISTOGRAM_BUCKETS_S.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_ns += d.as_nanos() as u128;
    }

    /// How many durations were observed.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observed durations in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_ns as f64 / 1e9
    }

    /// Cumulative counts per bucket, `+Inf` last.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// The upper bucket bound (seconds) containing the `q`-quantile
    /// (0 < q ≤ 1), or `None` on an empty histogram. The `+Inf` bucket
    /// reports as `f64::INFINITY`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Some(HISTOGRAM_BUCKETS_S.get(i).copied().unwrap_or(f64::INFINITY));
            }
        }
        None
    }

    /// Median bucket bound.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile bucket bound.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile bucket bound.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one (bucket-wise).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
    }
}

/// A [`TraceSink`] that feeds every span's duration into a per-source
/// [`LatencyHistogram`] — the p50/p95/p99 view of what each layer spent
/// its time on. Marks and counters are ignored.
#[derive(Debug, Default)]
pub struct HistogramSink {
    by_source: BTreeMap<String, LatencyHistogram>,
}

impl HistogramSink {
    /// An empty per-source histogram collection.
    pub fn new() -> HistogramSink {
        HistogramSink::default()
    }

    /// The histogram for one trace source, if any spans were seen.
    pub fn source(&self, source: &str) -> Option<&LatencyHistogram> {
        self.by_source.get(source)
    }

    /// `(source, histogram)` pairs in source order.
    pub fn sources(&self) -> impl Iterator<Item = (&str, &LatencyHistogram)> {
        self.by_source.iter().map(|(s, h)| (s.as_str(), h))
    }

    /// Is the collection empty?
    pub fn is_empty(&self) -> bool {
        self.by_source.is_empty()
    }

    /// Register every per-source histogram into `registry` as the
    /// `xcbc_span_seconds` family, labelled by source.
    pub fn register_into(&self, registry: &mut MetricRegistry) {
        for (source, hist) in &self.by_source {
            registry.set_histogram(
                "xcbc_span_seconds",
                "Span latency per trace source",
                &[("source", source)],
                hist,
            );
        }
    }
}

impl TraceSink for HistogramSink {
    fn record(&mut self, event: &TraceEvent) {
        if let TraceKind::Span { dur } = event.kind {
            self.by_source
                .entry(event.source.clone())
                .or_default()
                .observe(dur);
        }
    }

    fn name(&self) -> &str {
        "histogram"
    }
}

/// One registered series value.
#[derive(Debug, Clone, PartialEq)]
enum SeriesValue {
    Counter(u64),
    Gauge(f64),
    // boxed: a histogram's fixed bucket array dwarfs the scalar variants
    Histogram(Box<LatencyHistogram>),
}

/// One metric family: help text, type, and its series keyed by the
/// rendered label set.
#[derive(Debug, Clone)]
struct Family {
    help: String,
    kind: &'static str,
    series: BTreeMap<String, SeriesValue>,
}

/// The shared metric registry.
///
/// Everything that wants to show up on the `xcbc mon` endpoint —
/// gmetad node gauges, scheduler summary metrics, solve-cache counters,
/// span histograms, alert totals — registers here under a family name
/// plus a label set, and [`render_prometheus`](Self::render_prometheus)
/// writes the whole registry as deterministic exposition text.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    families: BTreeMap<String, Family>,
}

/// Render a label set as `{k="v",…}` (empty string for no labels).
/// Label order is the caller's order, so call sites must pass labels in
/// a fixed order — every exporter in the workspace does.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out.push('}');
    out
}

/// Format a float the way the exposition writer does everywhere:
/// shortest-round-trip `{}` formatting, with infinities spelled
/// `+Inf`/`-Inf` per the Prometheus text format.
pub fn format_prom_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{x}")
    }
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> MetricRegistry {
        MetricRegistry::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: &'static str) -> &mut Family {
        self.families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                kind,
                series: BTreeMap::new(),
            })
    }

    /// Register (or overwrite) a counter series.
    pub fn set_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.family(name, help, "counter")
            .series
            .insert(render_labels(labels), SeriesValue::Counter(value));
    }

    /// Register (or overwrite) a gauge series.
    pub fn set_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.family(name, help, "gauge")
            .series
            .insert(render_labels(labels), SeriesValue::Gauge(value));
    }

    /// Register (or overwrite) a histogram series.
    pub fn set_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &LatencyHistogram,
    ) {
        self.family(name, help, "histogram").series.insert(
            render_labels(labels),
            SeriesValue::Histogram(Box::new(hist.clone())),
        );
    }

    /// Add `delta` to a counter series (registering it at zero first if
    /// absent).
    pub fn add_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], delta: u64) {
        let family = self.family(name, help, "counter");
        let entry = family
            .series
            .entry(render_labels(labels))
            .or_insert(SeriesValue::Counter(0));
        if let SeriesValue::Counter(v) = entry {
            *v += delta;
        }
    }

    /// Number of registered families.
    pub fn family_count(&self) -> usize {
        self.families.len()
    }

    /// Total number of registered series across families.
    pub fn series_count(&self) -> usize {
        self.families.values().map(|f| f.series.len()).sum()
    }

    /// Look up a counter value (exact label set, caller's label order).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self
            .families
            .get(name)?
            .series
            .get(&render_labels(labels))?
        {
            SeriesValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Look up a gauge value (exact label set, caller's label order).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self
            .families
            .get(name)?
            .series
            .get(&render_labels(labels))?
        {
            SeriesValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Render the registry as Prometheus text exposition: families in
    /// name order, series in label order, one `# HELP`/`# TYPE` pair per
    /// family. Byte-deterministic for identical registered values.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind);
            for (labels, value) in &family.series {
                match value {
                    SeriesValue::Counter(v) => {
                        let _ = writeln!(out, "{name}{labels} {v}");
                    }
                    SeriesValue::Gauge(v) => {
                        let _ = writeln!(out, "{name}{labels} {}", format_prom_f64(*v));
                    }
                    SeriesValue::Histogram(h) => {
                        render_prom_histogram(&mut out, name, labels, h);
                    }
                }
            }
        }
        out
    }
}

fn render_prom_histogram(out: &mut String, name: &str, labels: &str, h: &LatencyHistogram) {
    // splice `le` into the existing label set
    let bucket_labels = |le: &str| -> String {
        if labels.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
        }
    };
    let cumulative = h.cumulative();
    for (i, ub) in HISTOGRAM_BUCKETS_S.iter().enumerate() {
        let _ = writeln!(
            out,
            "{name}_bucket{} {}",
            bucket_labels(&format_prom_f64(*ub)),
            cumulative[i]
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        bucket_labels("+Inf"),
        cumulative[HISTOGRAM_BUCKETS_S.len()]
    );
    let _ = writeln!(
        out,
        "{name}_sum{labels} {}",
        format_prom_f64(h.sum_seconds())
    );
    let _ = writeln!(out, "{name}_count{labels} {}", h.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::new();
        for secs in [0.5, 0.5, 0.5, 5.0, 50.0, 500.0] {
            h.observe(SimDuration::from_secs_f64(secs));
        }
        assert_eq!(h.count(), 6);
        // 0.5 s lands in the (0.464, 1.0] bucket
        assert_eq!(h.p50(), Some(1.0));
        assert_eq!(h.p95(), Some(1_000.0));
        assert_eq!(h.quantile(1.0), Some(1_000.0));
        assert!((h.sum_seconds() - 556.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_and_overflow() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.p50(), None);
        h.observe(SimDuration::from_secs(10_000_000));
        assert_eq!(h.p50(), Some(f64::INFINITY));
        assert_eq!(h.cumulative().last(), Some(&1));
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.observe(SimDuration::from_secs(1));
        b.observe(SimDuration::from_secs(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.quantile(1.0), Some(100.0));
    }

    #[test]
    fn histogram_sink_groups_by_source() {
        let mut sink = HistogramSink::new();
        sink.record(&TraceEvent::span(0.0, "rocks.install", "fe", 600.0));
        sink.record(&TraceEvent::span(0.0, "sched", "job", 60.0));
        sink.record(&TraceEvent::mark(0.0, "sched", "submit"));
        assert_eq!(sink.source("rocks.install").unwrap().count(), 1);
        assert_eq!(sink.source("sched").unwrap().count(), 1, "marks ignored");
        let sources: Vec<&str> = sink.sources().map(|(s, _)| s).collect();
        assert_eq!(sources, ["rocks.install", "sched"]);
    }

    #[test]
    fn registry_renders_deterministically() {
        let build = || {
            let mut reg = MetricRegistry::new();
            reg.set_gauge(
                "xcbc_node_load_one",
                "1-minute load",
                &[("host", "compute-0-0")],
                1.5,
            );
            reg.set_counter("xcbc_solvecache_hits_total", "cache hits", &[], 7);
            let mut h = LatencyHistogram::new();
            h.observe(SimDuration::from_secs(3));
            reg.set_histogram(
                "xcbc_span_seconds",
                "span latency",
                &[("source", "sched")],
                &h,
            );
            reg.render_prometheus()
        };
        let text = build();
        assert_eq!(text, build(), "byte-deterministic");
        assert!(text.contains("# TYPE xcbc_node_load_one gauge"));
        assert!(text.contains("xcbc_node_load_one{host=\"compute-0-0\"} 1.5"));
        assert!(text.contains("xcbc_solvecache_hits_total 7"));
        assert!(text.contains("xcbc_span_seconds_bucket{source=\"sched\",le=\"4.64\"} 1"));
        assert!(text.contains("xcbc_span_seconds_bucket{source=\"sched\",le=\"+Inf\"} 1"));
        assert!(text.contains("xcbc_span_seconds_count{source=\"sched\"} 1"));
    }

    #[test]
    fn registry_families_sorted_and_counted() {
        let mut reg = MetricRegistry::new();
        reg.set_gauge("zzz", "last", &[], 1.0);
        reg.set_gauge("aaa", "first", &[], 2.0);
        reg.add_counter("mid_total", "counts", &[("k", "v")], 2);
        reg.add_counter("mid_total", "counts", &[("k", "v")], 3);
        let text = reg.render_prometheus();
        assert!(text.find("aaa").unwrap() < text.find("mid_total").unwrap());
        assert!(text.find("mid_total").unwrap() < text.find("zzz").unwrap());
        assert_eq!(reg.counter_value("mid_total", &[("k", "v")]), Some(5));
        assert_eq!(reg.gauge_value("aaa", &[]), Some(2.0));
        assert_eq!(reg.family_count(), 3);
        assert_eq!(reg.series_count(), 3);
    }

    #[test]
    fn label_values_are_escaped() {
        let mut reg = MetricRegistry::new();
        reg.set_gauge("g", "h", &[("k", "a\"b\\c")], 1.0);
        assert!(reg.render_prometheus().contains("g{k=\"a\\\"b\\\\c\"} 1"));
    }
}
