//! `xcbc-sim` — the unified simulation substrate for the XCBC/XNIT
//! reproduction.
//!
//! Before this crate, every layer kept a private notion of time: the
//! boot `Timeline`'s `f64` seconds in `xcbc-cluster`, the scheduler's
//! hand-rolled event heap in `xcbc-sched`, mirror latency/bandwidth
//! float math in `xcbc-yum`, and the install phase durations scattered
//! through `xcbc-rocks`. This crate gives them one substrate:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond instants and
//!   durations, exact and totally ordered, with `From<f64>` (seconds)
//!   conversions that keep existing call sites terse;
//! * [`SimClock`] — the monotonic virtual clock an event loop drives;
//! * [`EventQueue`] — a binary-heap discrete-event queue with strict
//!   `(time, insertion-order)` determinism;
//! * [`TraceEvent`] / [`EventBus`] — structured, timestamped spans,
//!   marks, and counters fanned out to pluggable [`TraceSink`]s
//!   ([`RingBufferSink`], [`JsonlSink`], [`MetricsSink`]);
//! * [`SpanRecorder`] — span recording with the classic boot-timeline
//!   placement rules, so `cluster::Timeline` can become a pure view
//!   over the trace log;
//! * [`MetricRegistry`] / [`LatencyHistogram`] / [`HistogramSink`] —
//!   the observability spine: per-source span latency histograms with
//!   fixed log-spaced buckets and a registry that gmetad, the scheduler
//!   metrics, and the depsolve cache all export into, rendered as
//!   byte-deterministic Prometheus exposition text.
//!
//! Everything is deterministic by construction: no wall clock, no
//! hash-order iteration, FIFO tie-breaking at equal timestamps. Two
//! runs of the same scenario with the same fault seed serialize to
//! byte-identical JSONL.

#![deny(missing_docs)]

pub mod analyze;
mod clock;
mod metrics;
mod queue;
mod recorder;
mod selfprof;
mod time;
mod trace;

pub use analyze::{
    analyze, Analysis, CriticalPath, Frame, Lane, PathSegment, ANALYZE_TRACE_SOURCE,
};
pub use clock::SimClock;
pub use metrics::{
    format_prom_f64, HistogramSink, LatencyHistogram, MetricRegistry, HISTOGRAM_BUCKETS_S,
};
pub use queue::{EventQueue, Scheduled};
pub use recorder::{SpanRecorder, BACKOFF_PREFIX};
pub use selfprof::{
    self_profiler, SelfProfiler, SECTION_DEPSOLVE, SECTION_SCHED_RUN, SECTION_SVC_SERVE,
    SECTION_TRACE_ANALYZE, SECTION_TRACE_RENDER,
};
pub use time::{SimDuration, SimTime, NANOS_PER_SEC};
pub use trace::{
    events_to_jsonl, EventBus, FieldValue, FlightRecorder, JsonlSink, MetricsSink, RingBufferSink,
    SharedSink, TraceEvent, TraceKind, TraceSink, FLIGHT_RECORDER_CAPACITY,
};
