//! Engine self-profiling: wall-clock timers around the engines that
//! *produce* the deterministic simulation, feeding the same
//! [`LatencyHistogram`] machinery the simulation exports.
//!
//! Everything else in this crate measures *simulated* time. This
//! module measures the **host** — how long the depsolver, the
//! scheduler event loop, trace rendering, and trace analysis actually
//! take on the machine running them — so ROADMAP's performance work
//! is observable from inside the system (`xcbc mon --self`) instead
//! of only from external benches.
//!
//! Because the readings are wall-clock they are *not* deterministic,
//! so they live in a process-global profiler that is kept **out** of
//! every golden-tested rendering: callers opt in by registering a
//! snapshot into their own [`MetricRegistry`]. Timer overhead is two
//! `Instant` reads plus one mutex lock per *section invocation* —
//! instrumented call sites are coarse (a whole depsolve, a whole
//! scheduler drain), never per simulated event.

use crate::metrics::{LatencyHistogram, MetricRegistry};
use crate::time::SimDuration;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Section name for whole-depsolve timings.
pub const SECTION_DEPSOLVE: &str = "yum.depsolve";
/// Section name for scheduler `run_to_completion` drains.
pub const SECTION_SCHED_RUN: &str = "sched.run";
/// Section name for whole-log JSONL rendering.
pub const SECTION_TRACE_RENDER: &str = "trace.render";
/// Section name for trace analysis passes.
pub const SECTION_TRACE_ANALYZE: &str = "trace.analyze";
/// Section name for whole-stream multi-tenant service runs (admission
/// through the last worker response).
pub const SECTION_SVC_SERVE: &str = "svc.serve";

/// The process-global self-profiler: named sections, each a wall-clock
/// [`LatencyHistogram`].
#[derive(Debug, Default)]
pub struct SelfProfiler {
    sections: Mutex<BTreeMap<&'static str, LatencyHistogram>>,
}

/// The global profiler every instrumented engine reports into.
pub fn self_profiler() -> &'static SelfProfiler {
    static GLOBAL: OnceLock<SelfProfiler> = OnceLock::new();
    GLOBAL.get_or_init(SelfProfiler::default)
}

impl SelfProfiler {
    /// Run `f`, recording its wall-clock elapsed time under `section`.
    pub fn time<R>(&self, section: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.observe(section, start.elapsed());
        out
    }

    /// Record one wall-clock duration under `section`.
    pub fn observe(&self, section: &'static str, elapsed: std::time::Duration) {
        let d = SimDuration::from_nanos(elapsed.as_nanos().min(u64::MAX as u128) as u64);
        let mut sections = self.sections.lock().unwrap_or_else(|e| e.into_inner());
        sections.entry(section).or_default().observe(d);
    }

    /// A snapshot of every section's histogram, in section order.
    pub fn snapshot(&self) -> BTreeMap<&'static str, LatencyHistogram> {
        self.sections
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Forget all recorded sections (tests; fresh CLI invocations
    /// don't need this — the profiler dies with the process).
    pub fn reset(&self) {
        self.sections
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Register every section as the `xcbc_selfprof_seconds` histogram
    /// family, labelled by section. Wall-clock values — keep out of
    /// golden-tested registries.
    pub fn register_into(&self, registry: &mut MetricRegistry) {
        for (section, hist) in self.snapshot() {
            registry.set_histogram(
                "xcbc_selfprof_seconds",
                "Wall-clock engine hot-path latency",
                &[("section", section)],
                &hist,
            );
        }
    }

    /// A human-readable table: one row per section with count, total,
    /// and conservative p50/p95 bucket edges.
    pub fn render_table(&self) -> String {
        let snapshot = self.snapshot();
        let mut out = String::from(
            "engine self-profile (host wall-clock)\n\
             section              count     total      p50       p95\n",
        );
        if snapshot.is_empty() {
            out.push_str("  (no instrumented sections ran)\n");
            return out;
        }
        for (section, hist) in &snapshot {
            let fmt_edge = |q: Option<f64>| match q {
                Some(v) if v.is_finite() => format!("{v}s"),
                Some(_) => ">1e6s".to_string(),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<20} {:>6} {:>9.3}s {:>9} {:>9}",
                section,
                hist.count(),
                hist.sum_seconds(),
                fmt_edge(hist.p50()),
                fmt_edge(hist.p95()),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_and_returns() {
        let prof = SelfProfiler::default();
        let answer = prof.time("test.section", || 41 + 1);
        assert_eq!(answer, 42);
        let snap = prof.snapshot();
        assert_eq!(snap["test.section"].count(), 1);
    }

    #[test]
    fn registry_and_table_render_sections() {
        let prof = SelfProfiler::default();
        prof.observe("b.section", std::time::Duration::from_millis(5));
        prof.observe("a.section", std::time::Duration::from_millis(1));
        let mut reg = MetricRegistry::new();
        prof.register_into(&mut reg);
        let text = reg.render_prometheus();
        assert!(text.contains("xcbc_selfprof_seconds_count{section=\"a.section\"} 1"));
        let table = prof.render_table();
        let a = table.find("a.section").unwrap();
        let b = table.find("b.section").unwrap();
        assert!(a < b, "sections sorted");
        prof.reset();
        assert!(prof.render_table().contains("no instrumented sections"));
    }

    #[test]
    fn global_profiler_is_shared() {
        // don't reset here: other tests may be racing on the global
        self_profiler().observe("selfprof.test", std::time::Duration::from_micros(10));
        assert!(self_profiler().snapshot()["selfprof.test"].count() >= 1);
    }
}
