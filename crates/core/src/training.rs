//! The §6 training curriculum: "Building and administering a
//! Beowulf-style cluster with LittleFe and the XSEDE-compatible Basic
//! Cluster build".
//!
//! A [`Curriculum`] is an ordered list of lessons; a [`LabSession`]
//! executes them against the simulated substrates, grading each step by
//! actually performing it (bare-metal install, insert-ethers, job
//! submission, compatibility verification) — "bare-metal installations
//! can be done as part of the curriculum, meaning students experience
//! installing clusters and software and monitoring."

use crate::compat::check_compatibility;
use crate::deploy::deploy_from_scratch;
use serde::Serialize;
use xcbc_cluster::{ClusterMonitor, ClusterSpec, MetricKind};
use xcbc_sched::{JobRequest, ResourceManager, TorqueServer};

/// One lesson step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum LessonStep {
    /// Assemble the hardware and verify power/thermal budgets.
    AssembleHardware,
    /// Bare-metal frontend + compute install with the XSEDE roll.
    InstallXcbc,
    /// Discover nodes with insert-ethers (validated during install).
    DiscoverNodes,
    /// Start Ganglia-style monitoring and publish node metrics.
    StartMonitoring,
    /// Submit and run an MPI job through the scheduler.
    SubmitJob,
    /// Verify XSEDE run-alike compatibility.
    VerifyCompatibility,
}

impl LessonStep {
    pub fn title(self) -> &'static str {
        match self {
            LessonStep::AssembleHardware => "Assemble and validate the LittleFe hardware",
            LessonStep::InstallXcbc => "Install Rocks + the XSEDE roll from bare metal",
            LessonStep::DiscoverNodes => "Discover compute nodes with insert-ethers",
            LessonStep::StartMonitoring => "Bring up cluster monitoring",
            LessonStep::SubmitJob => "Submit an MPI job with qsub",
            LessonStep::VerifyCompatibility => "Verify XSEDE compatibility",
        }
    }
}

/// The published module's step sequence.
pub fn littlefe_curriculum() -> Curriculum {
    Curriculum {
        title: "Building and administering a Beowulf-style cluster with LittleFe and the XCBC"
            .to_string(),
        steps: vec![
            LessonStep::AssembleHardware,
            LessonStep::InstallXcbc,
            LessonStep::DiscoverNodes,
            LessonStep::StartMonitoring,
            LessonStep::SubmitJob,
            LessonStep::VerifyCompatibility,
        ],
    }
}

/// An ordered set of lesson steps.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Curriculum {
    pub title: String,
    pub steps: Vec<LessonStep>,
}

/// Result of one step.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StepOutcome {
    pub step: LessonStep,
    pub passed: bool,
    pub detail: String,
}

/// A lab session: one student working through the curriculum on one
/// (simulated) cluster.
#[derive(Debug)]
pub struct LabSession {
    pub student: String,
    cluster: ClusterSpec,
    outcomes: Vec<StepOutcome>,
    // state threaded between steps
    node_dbs: Option<std::collections::BTreeMap<String, xcbc_rpm::RpmDb>>,
    discovered_nodes: usize,
}

impl LabSession {
    pub fn new(student: &str, cluster: ClusterSpec) -> Self {
        LabSession {
            student: student.to_string(),
            cluster,
            outcomes: Vec::new(),
            node_dbs: None,
            discovered_nodes: 0,
        }
    }

    pub fn outcomes(&self) -> &[StepOutcome] {
        &self.outcomes
    }

    /// Fraction of executed steps passed.
    pub fn grade(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.passed).count() as f64 / self.outcomes.len() as f64
    }

    /// Execute every step of a curriculum in order. Later steps still run
    /// after a failure (students see the consequences).
    pub fn run(&mut self, curriculum: &Curriculum) {
        for &step in &curriculum.steps {
            let outcome = self.run_step(step);
            self.outcomes.push(outcome);
        }
    }

    fn run_step(&mut self, step: LessonStep) -> StepOutcome {
        match step {
            LessonStep::AssembleHardware => {
                let power_ok = self.cluster.power_budget_ok();
                let thermal_ok = self.cluster.nodes.iter().all(|n| {
                    xcbc_cluster::check_node_thermals(
                        n,
                        xcbc_cluster::thermal::LITTLEFE_BAY_CLEARANCE_MM,
                    )
                    .is_empty()
                });
                StepOutcome {
                    step,
                    passed: power_ok && thermal_ok,
                    detail: format!("power budget ok: {power_ok}; thermals ok: {thermal_ok}"),
                }
            }
            LessonStep::InstallXcbc => match deploy_from_scratch(&self.cluster) {
                Ok(report) => {
                    self.discovered_nodes = report.node_dbs.len().saturating_sub(1);
                    self.node_dbs = Some(report.node_dbs);
                    StepOutcome {
                        step,
                        passed: true,
                        detail: format!(
                            "installed in {:.0} simulated seconds",
                            report.timeline.total_seconds()
                        ),
                    }
                }
                Err(e) => StepOutcome {
                    step,
                    passed: false,
                    detail: e.to_string(),
                },
            },
            LessonStep::DiscoverNodes => {
                let expected = self.cluster.node_count() - 1;
                let passed = self.discovered_nodes == expected;
                StepOutcome {
                    step,
                    passed,
                    detail: format!(
                        "{}/{} compute nodes discovered",
                        self.discovered_nodes, expected
                    ),
                }
            }
            LessonStep::StartMonitoring => {
                let monitor = ClusterMonitor::new(16);
                for n in &self.cluster.nodes {
                    monitor.publish(&n.hostname, MetricKind::LoadOne, 0.0, 0.1);
                }
                let passed = monitor.node_count() == self.cluster.node_count();
                StepOutcome {
                    step,
                    passed,
                    detail: format!("{} gmond daemons reporting", monitor.node_count()),
                }
            }
            LessonStep::SubmitJob => {
                let computes = self.cluster.compute_nodes().count();
                let ppn = self
                    .cluster
                    .compute_nodes()
                    .map(|n| n.cores())
                    .min()
                    .unwrap_or(1);
                let mut torque = TorqueServer::with_maui(&self.cluster.name, computes, ppn);
                let id = torque.qsub(JobRequest::new(
                    "mpi-hello",
                    computes as u32,
                    ppn,
                    120.0,
                    60.0,
                ));
                torque.drain();
                let metrics = torque.metrics();
                StepOutcome {
                    step,
                    passed: metrics.jobs_finished == 1,
                    detail: format!(
                        "job {id} finished; utilization {:.0}%",
                        metrics.utilization * 100.0
                    ),
                }
            }
            LessonStep::VerifyCompatibility => match &self.node_dbs {
                Some(dbs) => {
                    let db = dbs.values().next().expect("nodes exist");
                    let report = check_compatibility(db);
                    StepOutcome {
                        step,
                        passed: report.is_compatible(),
                        detail: format!("compatibility {:.1}%", report.score * 100.0),
                    }
                }
                None => StepOutcome {
                    step,
                    passed: false,
                    detail: "no installed cluster to verify (install step failed?)".to_string(),
                },
            },
        }
    }

    /// Render the grade sheet.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Lab session: {} — grade {:.0}%\n",
            self.student,
            self.grade() * 100.0
        );
        for o in &self.outcomes {
            out.push_str(&format!(
                "  [{}] {} — {}\n",
                if o.passed { "PASS" } else { "FAIL" },
                o.step.title(),
                o.detail
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_cluster::specs::{limulus_hpc200, littlefe_modified, littlefe_v4};

    #[test]
    fn full_lab_on_modified_littlefe_passes() {
        let mut lab = LabSession::new("student-a", littlefe_modified());
        lab.run(&littlefe_curriculum());
        assert_eq!(lab.grade(), 1.0, "{}", lab.render());
        assert_eq!(lab.outcomes().len(), 6);
    }

    #[test]
    fn lab_on_v4_littlefe_fails_install_and_verify() {
        // the unmodified (diskless, Atom) LittleFe cannot host XCBC —
        // the motivation for the §5.1 hardware modification
        let mut lab = LabSession::new("student-b", littlefe_v4());
        lab.run(&littlefe_curriculum());
        assert!(lab.grade() < 1.0);
        let by_step = |s: LessonStep| lab.outcomes().iter().find(|o| o.step == s).unwrap();
        assert!(!by_step(LessonStep::InstallXcbc).passed);
        assert!(!by_step(LessonStep::VerifyCompatibility).passed);
        // but hardware assembly and monitoring still teach something
        assert!(by_step(LessonStep::AssembleHardware).passed);
        assert!(by_step(LessonStep::StartMonitoring).passed);
    }

    #[test]
    fn lab_on_limulus_fails_rocks_path() {
        let mut lab = LabSession::new("student-c", limulus_hpc200());
        lab.run(&littlefe_curriculum());
        let install = lab
            .outcomes()
            .iter()
            .find(|o| o.step == LessonStep::InstallXcbc)
            .unwrap();
        assert!(!install.passed);
        assert!(install.detail.contains("diskless"));
    }

    #[test]
    fn grade_sheet_renders() {
        let mut lab = LabSession::new("student-d", littlefe_modified());
        lab.run(&littlefe_curriculum());
        let sheet = lab.render();
        assert!(sheet.contains("student-d"));
        assert!(sheet.contains("PASS"));
        assert!(sheet.contains("insert-ethers"));
    }

    #[test]
    fn curriculum_covers_admin_lifecycle() {
        let c = littlefe_curriculum();
        assert_eq!(c.steps.len(), 6);
        assert_eq!(c.steps[0], LessonStep::AssembleHardware);
        assert_eq!(*c.steps.last().unwrap(), LessonStep::VerifyCompatibility);
        for s in &c.steps {
            assert!(!s.title().is_empty());
        }
    }

    #[test]
    fn empty_session_grades_zero() {
        let lab = LabSession::new("s", littlefe_modified());
        assert_eq!(lab.grade(), 0.0);
    }
}
