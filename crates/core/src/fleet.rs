//! Fleet-scale deployment: N sites, one orchestrator.
//!
//! Table 3 is not one cluster — it is a *fleet* of campus clusters
//! (Kansas, Montana State, Marshall, Hawai‘i, the two IU desksides)
//! adopting XCBC/XNIT. [`Fleet`] deploys many site configurations
//! concurrently on a worker pool, each site on its own deterministic
//! seed and simulation clock, and merges the per-site traces into one
//! fleet-level JSONL report.
//!
//! Two properties the design guarantees:
//!
//! 1. **Determinism survives parallelism.** A site's deployment is a
//!    pure function of its [`FleetSite`] spec — its own fault-plan seed,
//!    its own clock starting at zero. Worker threads only decide *when*
//!    a site runs, never *what* it computes, and results are slotted by
//!    site index, so per-site traces are byte-identical whether the
//!    fleet runs on 1 thread or 8 (property-tested in
//!    `tests/fleet_determinism.rs`).
//! 2. **Shared solves, not shared state.** XNIT overlay sites route
//!    their depsolves through one fleet-wide
//!    [`SolveCache`]: near-identical sites hit the
//!    memoized solution instead of re-walking the closure. Cache
//!    hit/miss counters are *fleet-level* telemetry (they depend on
//!    scheduling) and are reported beside — never inside — the per-site
//!    traces.

use crate::deploy::{deploy_from_scratch_resilient, deploy_xnit_overlay_with, DeploymentReport};
use crate::xnit::XnitSetupMethod;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use xcbc_cluster::{
    default_alert_rules, Alert, ClusterMonitor, ClusterSpec, MetricKind, RrdConfig,
    TelemetryConfig, TelemetrySink,
};
use xcbc_fault::{FaultPlan, InstallCheckpoint};
use xcbc_rocks::{InstallError, ResilienceConfig};
use xcbc_rpm::RpmDb;
use xcbc_sim::{MetricRegistry, SimTime, TraceEvent, TraceSink};
use xcbc_yum::{CacheStats, SolveCache};

/// How one fleet site gets deployed.
#[derive(Debug, Clone)]
pub enum SitePlan {
    /// Bare-metal Rocks + XSEDE roll install, run resiliently under the
    /// site's fault plan (the plan's seed is the site's seed).
    FromScratch {
        /// The hardware to install onto.
        cluster: ClusterSpec,
        /// The site's deterministic fault scenario.
        faults: FaultPlan,
    },
    /// XNIT overlay onto an existing, operating cluster. Depsolves go
    /// through the fleet's shared solve cache.
    XnitOverlay {
        /// Per-node package databases of the running cluster.
        existing: BTreeMap<String, RpmDb>,
        /// Which of §3's two setup methods the site uses.
        method: XnitSetupMethod,
    },
}

/// One site configuration in a fleet.
#[derive(Debug, Clone)]
pub struct FleetSite {
    /// Site name (used to address per-site traces in the report).
    pub name: String,
    /// How the site deploys.
    pub plan: SitePlan,
}

impl FleetSite {
    /// A from-scratch site with a clean fault plan seeded at `seed`.
    pub fn from_scratch(name: impl Into<String>, cluster: ClusterSpec, seed: u64) -> FleetSite {
        FleetSite {
            name: name.into(),
            plan: SitePlan::FromScratch {
                cluster,
                faults: FaultPlan::new(seed),
            },
        }
    }

    /// A from-scratch site deploying under an explicit fault plan.
    pub fn from_scratch_with_faults(
        name: impl Into<String>,
        cluster: ClusterSpec,
        faults: FaultPlan,
    ) -> FleetSite {
        FleetSite {
            name: name.into(),
            plan: SitePlan::FromScratch { cluster, faults },
        }
    }

    /// An XNIT overlay site over `existing` node databases.
    pub fn overlay(
        name: impl Into<String>,
        existing: BTreeMap<String, RpmDb>,
        method: XnitSetupMethod,
    ) -> FleetSite {
        FleetSite {
            name: name.into(),
            plan: SitePlan::XnitOverlay { existing, method },
        }
    }
}

/// Why one site's deployment failed (the fleet keeps going; per-site
/// failures land in that site's [`SiteOutcome`]).
#[derive(Debug)]
#[non_exhaustive]
pub enum FleetError {
    /// The overlay path could not resolve its package set.
    Solve(xcbc_yum::SolveError),
    /// The from-scratch path aborted.
    Install(InstallError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Solve(e) => write!(f, "site depsolve failed: {e}"),
            FleetError::Install(e) => write!(f, "site install failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// One site's result inside a [`FleetReport`].
#[derive(Debug)]
pub struct SiteOutcome {
    /// The site's name, copied from its [`FleetSite`].
    pub name: String,
    /// The deployment report, or why the site failed.
    pub result: Result<DeploymentReport, FleetError>,
}

impl SiteOutcome {
    /// Did this site deploy successfully?
    pub fn succeeded(&self) -> bool {
        self.result.is_ok()
    }
}

/// The fleet-level deployment report: per-site outcomes in site order,
/// plus the shared solve-cache counters.
#[derive(Debug)]
pub struct FleetReport {
    /// One outcome per site, in the order sites were added (independent
    /// of which worker finished first).
    pub sites: Vec<SiteOutcome>,
    /// How many worker threads the deploy ran on.
    pub threads: usize,
    /// Solve-cache counters at the end of the run. Scheduling-dependent
    /// (which site misses first is a race), so fleet-level only.
    pub cache: CacheStats,
}

impl FleetReport {
    /// Did every site deploy successfully?
    pub fn all_succeeded(&self) -> bool {
        self.sites.iter().all(SiteOutcome::succeeded)
    }

    /// Look up one site's outcome by its *post-dedup* name — the name
    /// the report actually carries after [`Fleet::add_site`]'s duplicate
    /// renaming (`tech-u`, `tech-u-2`, ...). This is the canonical
    /// lookup; an exact match on the renamed name is required, so the
    /// second `tech-u` site is only addressable as `tech-u-2`.
    pub fn find(&self, name: &str) -> Option<&SiteOutcome> {
        self.sites.iter().find(|s| s.name == name)
    }

    /// Alias for [`FleetReport::find`].
    pub fn site(&self, name: &str) -> Option<&SiteOutcome> {
        self.find(name)
    }

    /// Number of sites in the report.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the fleet had no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// One site's trace as byte-deterministic JSONL — identical at any
    /// worker-thread count.
    pub fn site_trace_jsonl(&self, name: &str) -> Option<String> {
        self.site(name)
            .and_then(|s| s.result.as_ref().ok())
            .map(DeploymentReport::trace_jsonl)
    }

    /// The merged fleet trace: every successful site's events, each
    /// line tagged with a `site` field, ordered by site then by each
    /// site's own emission order. Deterministic at any thread count.
    pub fn merged_jsonl(&self) -> String {
        let mut out = String::new();
        for site in &self.sites {
            if let Ok(report) = &site.result {
                for ev in &report.trace {
                    let tagged = ev.clone().with_field("site", site.name.as_str());
                    out.push_str(&tagged.to_jsonl());
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Sum of per-site deployment wall estimates (the sequential cost
    /// the fleet's parallelism amortizes). A zero-site fleet (or one
    /// where every site failed) sums to exactly `0.0`.
    pub fn total_site_seconds(&self) -> f64 {
        self.sites
            .iter()
            .filter_map(|s| s.result.as_ref().ok())
            .map(|r| r.timeline.total_seconds())
            .sum()
    }

    /// The fleet's simulated makespan: sites assigned in order to the
    /// least-loaded of the run's workers, makespan = the busiest
    /// worker's total simulated seconds. Wall-clock speedup depends on
    /// host cores, but this models what N parallel site crews buy on
    /// the simulation clock (8 equal sites on 4 workers → 2 sites per
    /// worker → a 4× shorter campaign). Deterministic: assignment uses
    /// site order and breaks ties by lowest worker index. A zero-site
    /// fleet has a makespan of exactly `0.0` (never `NaN`), whatever
    /// the worker count.
    pub fn makespan_seconds(&self) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        let workers = self.threads.max(1);
        let mut loads = vec![0.0f64; workers];
        for site in &self.sites {
            let secs = site
                .result
                .as_ref()
                .map(|r| r.timeline.total_seconds())
                .unwrap_or(0.0);
            let mut lightest = 0;
            for (i, load) in loads.iter().enumerate().skip(1) {
                if *load < loads[lightest] {
                    lightest = i;
                }
            }
            loads[lightest] += secs;
        }
        loads.into_iter().fold(0.0, f64::max)
    }

    /// Render the fleet table: one row per site plus a summary line
    /// with the solve-cache hit rate.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for site in &self.sites {
            match &site.result {
                Ok(report) => {
                    out.push_str(&format!("{:<24} {}\n", site.name, report.render_row()));
                }
                Err(e) => {
                    out.push_str(&format!("{:<24} FAILED: {e}\n", site.name));
                }
            }
        }
        out.push_str(&format!(
            "fleet: {}/{} sites ok on {} thread(s), {:.0} site-seconds ({:.0}s makespan); solve cache {} hits / {} misses ({:.0}% hit rate, {} entries)\n",
            self.sites.iter().filter(|s| s.succeeded()).count(),
            self.sites.len(),
            self.threads,
            self.total_site_seconds(),
            self.makespan_seconds(),
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.entries,
        ));
        out
    }
}

/// The fleet orchestrator: a list of site configurations, a worker
/// count, and a shared solve cache.
///
/// ```
/// use xcbc_core::deploy::limulus_factory_image;
/// use xcbc_core::fleet::{Fleet, FleetSite};
/// use xcbc_core::XnitSetupMethod;
/// use xcbc_cluster::specs::limulus_hpc200;
///
/// let dbs = |_| limulus_hpc200().nodes.iter()
///     .map(|n| (n.hostname.clone(), limulus_factory_image()))
///     .collect();
/// let fleet = Fleet::new()
///     .add_site(FleetSite::overlay("marshall", dbs(0), XnitSetupMethod::RepoRpm))
///     .add_site(FleetSite::overlay("hawaii", dbs(1), XnitSetupMethod::RepoRpm))
///     .with_threads(2);
/// let report = fleet.deploy();
/// assert!(report.all_succeeded());
/// assert!(report.cache.hits > 0, "second site reuses the first's solves");
/// ```
#[derive(Debug)]
pub struct Fleet {
    sites: Vec<FleetSite>,
    threads: usize,
    cache: Arc<SolveCache>,
}

impl Default for Fleet {
    fn default() -> Self {
        Fleet::new()
    }
}

impl Fleet {
    /// An empty fleet: no sites, 1 worker thread, a fresh solve cache.
    pub fn new() -> Fleet {
        Fleet {
            sites: Vec::new(),
            threads: 1,
            cache: Arc::new(SolveCache::new()),
        }
    }

    /// Append a site (builder style). Sites deploy independently; order
    /// only determines report order.
    ///
    /// Site names address per-site traces in the report, so a duplicate
    /// name is deterministically renamed by appending the lowest free
    /// `-2`, `-3`, ... suffix (two "tech-u" sites become "tech-u" and
    /// "tech-u-2", regardless of add order elsewhere).
    pub fn add_site(mut self, mut site: FleetSite) -> Fleet {
        if self.sites.iter().any(|s| s.name == site.name) {
            let base = site.name.clone();
            let mut k = 2usize;
            while self.sites.iter().any(|s| s.name == format!("{base}-{k}")) {
                k += 1;
            }
            site.name = format!("{base}-{k}");
        }
        self.sites.push(site);
        self
    }

    /// Deploy on `threads` workers (clamped to at least 1; more workers
    /// than sites is allowed, the extras just exit).
    pub fn with_threads(mut self, threads: usize) -> Fleet {
        self.threads = threads.max(1);
        self
    }

    /// Share a caller-provided solve cache (e.g. one cache across
    /// several fleet runs). A fresh fleet already has its own.
    pub fn with_solve_cache(mut self, cache: Arc<SolveCache>) -> Fleet {
        self.cache = cache;
        self
    }

    /// The configured sites.
    pub fn sites(&self) -> &[FleetSite] {
        &self.sites
    }

    /// Number of configured sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when no sites have been added.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The shared solve cache.
    pub fn solve_cache(&self) -> &Arc<SolveCache> {
        &self.cache
    }

    /// Deploy every site and collect the fleet report.
    ///
    /// Workers pull the next undeployed site off a shared counter; the
    /// outcome lands in the slot of the site's index, so report order
    /// is site order no matter which worker finishes when.
    pub fn deploy(&self) -> FleetReport {
        let n = self.sites.len();
        let workers = self.threads.min(n.max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<SiteOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = self.deploy_site(&self.sites[i]);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                });
            }
        });

        let sites = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every site slot filled before scope exit")
            })
            .collect();
        FleetReport {
            sites,
            threads: workers,
            cache: self.cache.stats(),
        }
    }

    fn deploy_site(&self, site: &FleetSite) -> SiteOutcome {
        let result = match &site.plan {
            SitePlan::FromScratch { cluster, faults } => deploy_from_scratch_resilient(
                cluster,
                faults,
                &ResilienceConfig::default(),
                InstallCheckpoint::new(),
            )
            .map_err(FleetError::Install),
            SitePlan::XnitOverlay { existing, method } => {
                deploy_xnit_overlay_with(existing, *method, Some(Arc::clone(&self.cache)))
                    .map_err(FleetError::Solve)
            }
        };
        SiteOutcome {
            name: site.name.clone(),
            result,
        }
    }
}

/// Fleet-wide telemetry rollup: one gmetad per site, aggregated upward
/// into a meta-gmetad the way production Ganglia federates gmetads.
///
/// Each site's monitor is built by replaying that site's own
/// deterministic trace through a
/// [`TelemetrySink`] — and because
/// per-site traces are byte-identical at any worker-thread count, so is
/// everything derived here, including the Prometheus exposition
/// (property-tested in `tests/fleet_determinism.rs`). The only
/// scheduling-dependent values (the solve cache's hit/miss *split*) are
/// deliberately excluded; the deterministic totals (lookups, entries)
/// are registered instead.
#[derive(Debug)]
pub struct FleetTelemetry {
    /// Per-site gmetads, keyed by site name.
    pub sites: BTreeMap<String, ClusterMonitor>,
    /// The meta-gmetad: every node of every site, namespaced
    /// `site/host`, carrying each node's latest sample per metric.
    pub meta: ClusterMonitor,
    /// Heartbeat/quarantine/threshold alerts across all sites, in site
    /// order then firing order.
    pub alerts: Vec<Alert>,
    /// The fleet registry: per-site node gauges (labelled `site`,
    /// `host`), per-site alert totals, and the deterministic
    /// solve-cache totals.
    pub registry: MetricRegistry,
}

impl FleetTelemetry {
    /// Build the rollup from a finished fleet deployment.
    pub fn from_report(report: &FleetReport) -> FleetTelemetry {
        let mut sites = BTreeMap::new();
        let meta = ClusterMonitor::with_config(RrdConfig::default());
        let mut alerts = Vec::new();
        let mut registry = MetricRegistry::new();

        for site in &report.sites {
            let Ok(dep) = &site.result else { continue };
            let mut hosts: Vec<String> = dep.node_dbs.keys().cloned().collect();
            if let Some(pm) = &dep.post_mortem {
                for (node, _) in &pm.quarantined {
                    if !hosts.contains(node) {
                        hosts.push(node.clone());
                    }
                }
            }
            // the frontend is the non-compute host (BTreeMap order makes
            // this stable); single-role sites fall back to the first host
            let frontend = hosts
                .iter()
                .find(|h| !h.starts_with("compute-"))
                .or_else(|| hosts.first())
                .cloned()
                .unwrap_or_else(|| site.name.clone());
            let end = dep
                .trace
                .iter()
                .map(TraceEvent::end)
                .max()
                .unwrap_or(SimTime::ZERO);

            let monitor = ClusterMonitor::with_config(RrdConfig::default());
            let mut sink = TelemetrySink::new(
                monitor.clone(),
                TelemetryConfig::new(frontend, hosts),
                default_alert_rules(),
            );
            for event in &dep.trace {
                sink.record(event);
            }
            if let Some(pm) = &dep.post_mortem {
                for (node, _) in &pm.quarantined {
                    sink.note_quarantined(end, node);
                }
            }
            sink.finish(end);
            let (_, engine) = sink.into_parts();

            let base: &[(&str, &str)] = &[("site", &site.name)];
            monitor.register_into(&mut registry, base);
            engine.register_into(&mut registry, base);

            // aggregate upward: the meta-gmetad keeps each node's
            // latest sample per metric, namespaced by site
            for host in monitor.hosts() {
                let fleet_host = format!("{}/{host}", site.name);
                meta.register(&fleet_host);
                monitor.with_node(&host, |n| {
                    for kind in MetricKind::ALL {
                        if let Some(s) = n.ring(kind).latest() {
                            meta.publish(&fleet_host, kind, s.time, s.value);
                        }
                    }
                });
            }

            alerts.extend(engine.into_alerts());
            sites.insert(site.name.clone(), monitor);
        }

        // fleet-level solve-cache telemetry: only the
        // scheduling-independent totals (see module docs)
        registry.set_counter(
            "xcbc_solvecache_lookups_total",
            "Depsolve lookups against the fleet-shared cache",
            &[],
            report.cache.hits + report.cache.misses,
        );
        registry.set_gauge(
            "xcbc_solvecache_entries",
            "Distinct solutions stored in the fleet-shared cache",
            &[],
            report.cache.entries as f64,
        );

        FleetTelemetry {
            sites,
            meta,
            alerts,
            registry,
        }
    }

    /// Prometheus text exposition of the fleet registry —
    /// byte-identical at any worker-thread count.
    pub fn prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// The meta-gmetad's Ganglia XML dump (`site/host` node names),
    /// stamped at the latest sample the fleet saw.
    pub fn ganglia_xml(&self) -> String {
        let now = self
            .sites
            .values()
            .flat_map(|m| {
                m.hosts()
                    .into_iter()
                    .filter_map(|h| m.with_node(&h, |n| n.last_seen()).flatten())
                    .collect::<Vec<_>>()
            })
            .max()
            .unwrap_or(SimTime::ZERO);
        self.meta.ganglia_xml("fleet", now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::limulus_factory_image;
    use xcbc_cluster::specs::{limulus_hpc200, littlefe_modified};

    fn limulus_dbs() -> BTreeMap<String, RpmDb> {
        limulus_hpc200()
            .nodes
            .iter()
            .map(|n| (n.hostname.clone(), limulus_factory_image()))
            .collect()
    }

    fn mixed_fleet(threads: usize) -> Fleet {
        Fleet::new()
            .add_site(FleetSite::overlay(
                "montana-state",
                limulus_dbs(),
                XnitSetupMethod::RepoRpm,
            ))
            .add_site(FleetSite::from_scratch("marshall", littlefe_modified(), 7))
            .add_site(FleetSite::overlay(
                "hawaii-hilo",
                limulus_dbs(),
                XnitSetupMethod::ManualRepoFile,
            ))
            .add_site(FleetSite::overlay(
                "iu-limulus",
                limulus_dbs(),
                XnitSetupMethod::RepoRpm,
            ))
            .with_threads(threads)
    }

    #[test]
    fn fleet_types_are_sendable_across_workers() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Fleet>();
        assert_send_sync::<FleetSite>();
        fn assert_send<T: Send>() {}
        assert_send::<SiteOutcome>();
        assert_send::<FleetReport>();
    }

    #[test]
    fn fleet_deploys_all_sites_in_order() {
        let report = mixed_fleet(2).deploy();
        assert!(report.all_succeeded(), "{}", report.render());
        let names: Vec<_> = report.sites.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["montana-state", "marshall", "hawaii-hilo", "iu-limulus"],
            "report order is site order, not completion order"
        );
        assert_eq!(report.threads, 2);
    }

    #[test]
    fn identical_overlay_sites_hit_the_cache() {
        let report = mixed_fleet(1).deploy();
        // three limulus overlays share factory images: the second and
        // third reuse the first's depsolves
        assert!(report.cache.hits > 0, "{:?}", report.cache);
        assert!(report.cache.hit_rate() > 0.0);
    }

    #[test]
    fn site_trace_is_thread_count_invariant() {
        let sequential = mixed_fleet(1).deploy();
        let parallel = mixed_fleet(8).deploy();
        for site in ["montana-state", "marshall", "hawaii-hilo", "iu-limulus"] {
            assert_eq!(
                sequential.site_trace_jsonl(site),
                parallel.site_trace_jsonl(site),
                "trace for {site} must not depend on worker count"
            );
        }
    }

    #[test]
    fn merged_jsonl_tags_site_and_is_deterministic() {
        let a = mixed_fleet(1).deploy().merged_jsonl();
        let b = mixed_fleet(4).deploy().merged_jsonl();
        assert_eq!(a, b, "merged fleet trace is deterministic");
        assert!(a.lines().all(|l| l.contains("\"site\":")));
        assert!(a.lines().any(|l| l.contains("marshall")));
    }

    #[test]
    fn failed_site_does_not_sink_the_fleet() {
        // from-scratch on diskless Limulus blades cannot work — the
        // paper's reason that site uses XNIT
        let fleet = Fleet::new()
            .add_site(FleetSite::from_scratch("doomed", limulus_hpc200(), 3))
            .add_site(FleetSite::overlay(
                "fine",
                limulus_dbs(),
                XnitSetupMethod::RepoRpm,
            ))
            .with_threads(2);
        let report = fleet.deploy();
        assert!(!report.all_succeeded());
        assert!(!report.site("doomed").unwrap().succeeded());
        assert!(report.site("fine").unwrap().succeeded());
        let rendered = report.render();
        assert!(rendered.contains("FAILED"), "{rendered}");
        assert!(rendered.contains("1/2 sites ok"), "{rendered}");
    }

    #[test]
    fn shared_cache_spans_fleet_runs() {
        let cache = Arc::new(SolveCache::new());
        let first = Fleet::new()
            .add_site(FleetSite::overlay(
                "a",
                limulus_dbs(),
                XnitSetupMethod::RepoRpm,
            ))
            .with_solve_cache(Arc::clone(&cache))
            .deploy();
        let second = Fleet::new()
            .add_site(FleetSite::overlay(
                "b",
                limulus_dbs(),
                XnitSetupMethod::RepoRpm,
            ))
            .with_solve_cache(Arc::clone(&cache))
            .deploy();
        assert!(second.cache.hits > first.cache.hits, "run 2 reuses run 1");
        let mut registry = xcbc_sim::MetricRegistry::new();
        cache.register_metrics(&mut registry);
        assert!(
            registry
                .counter_value("xcbc_solvecache_hits_total", &[])
                .unwrap()
                > 0,
            "shared counters export through the registry"
        );
    }

    #[test]
    fn fleet_telemetry_rolls_up_per_site_gmetads() {
        let telemetry = FleetTelemetry::from_report(&mixed_fleet(2).deploy());
        assert_eq!(telemetry.sites.len(), 4);
        // the meta-gmetad namespaces every site's nodes
        let meta_hosts = telemetry.meta.hosts();
        assert!(
            meta_hosts.iter().any(|h| h.starts_with("marshall/")),
            "{meta_hosts:?}"
        );
        assert!(meta_hosts.iter().any(|h| h == "montana-state/limulus"));
        let prom = telemetry.prometheus();
        assert!(prom.contains("site=\"hawaii-hilo\""), "{prom}");
        assert!(prom.contains("xcbc_solvecache_lookups_total"));
        let xml = telemetry.ganglia_xml();
        assert!(xml.contains("CLUSTER NAME=\"fleet\""), "{xml}");
    }

    #[test]
    fn cache_does_not_change_what_gets_installed() {
        let cached = mixed_fleet(1).deploy();
        let uncached =
            deploy_xnit_overlay_with(&limulus_dbs(), XnitSetupMethod::RepoRpm, None).unwrap();
        let via_fleet = cached.site("montana-state").unwrap();
        let report = via_fleet.result.as_ref().unwrap();
        assert_eq!(report.node_dbs, uncached.node_dbs);
        assert_eq!(report.trace_jsonl(), uncached.trace_jsonl());
    }

    #[test]
    fn empty_fleet_deploys_to_a_zeroed_report() {
        assert!(Fleet::new().is_empty());
        assert_eq!(Fleet::new().len(), 0);
        let report = Fleet::new().with_threads(8).deploy();
        assert!(report.is_empty());
        assert_eq!(report.len(), 0);
        assert!(report.all_succeeded(), "vacuously true: no site failed");
        assert_eq!(report.total_site_seconds(), 0.0);
        assert_eq!(report.makespan_seconds(), 0.0);
        assert!(
            report.makespan_seconds().is_finite(),
            "empty fleet must never yield NaN"
        );
        let rendered = report.render();
        assert!(rendered.contains("0/0 sites ok"), "{rendered}");
        assert_eq!(report.merged_jsonl(), "");
    }

    #[test]
    fn duplicate_site_names_are_deterministically_renamed() {
        let fleet = Fleet::new()
            .add_site(FleetSite::overlay(
                "tech-u",
                limulus_dbs(),
                XnitSetupMethod::RepoRpm,
            ))
            .add_site(FleetSite::overlay(
                "tech-u",
                limulus_dbs(),
                XnitSetupMethod::ManualRepoFile,
            ))
            .add_site(FleetSite::overlay(
                "tech-u",
                limulus_dbs(),
                XnitSetupMethod::RepoRpm,
            ));
        let names: Vec<_> = fleet.sites().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["tech-u", "tech-u-2", "tech-u-3"]);
        assert_eq!(fleet.len(), 3);
        assert!(!fleet.is_empty());

        // renames survive into the report, so every site stays addressable
        let report = fleet.with_threads(2).deploy();
        assert!(report.all_succeeded(), "{}", report.render());
        assert_eq!(report.len(), 3);
        assert!(!report.is_empty());
        assert!(report.find("tech-u").is_some());
        assert!(report.find("tech-u-2").is_some());
        assert!(report.site("tech-u-3").is_some());
        assert!(
            report.find("tech-u-4").is_none(),
            "find is exact on post-dedup names"
        );
        assert!(report.site_trace_jsonl("tech-u-2").is_some());
    }

    #[test]
    fn rename_skips_suffixes_already_taken() {
        let fleet = Fleet::new()
            .add_site(FleetSite::overlay(
                "lab",
                limulus_dbs(),
                XnitSetupMethod::RepoRpm,
            ))
            .add_site(FleetSite::overlay(
                "lab-2",
                limulus_dbs(),
                XnitSetupMethod::RepoRpm,
            ))
            .add_site(FleetSite::overlay(
                "lab",
                limulus_dbs(),
                XnitSetupMethod::RepoRpm,
            ));
        let names: Vec<_> = fleet.sites().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["lab", "lab-2", "lab-3"]);
    }
}
