//! Dynamic fleet membership: elastic self-scaling sites, cloud-burst
//! overlays, and a power-aware autoscaler.
//!
//! This module turns the [`Fleet`](crate::fleet::Fleet) idea — a batch of
//! sites constructed, deployed once, and reported on — into a *live
//! membership engine* on the shared simulation clock:
//!
//! * [`FleetMembership`] records every site/node join, drain, leave, and
//!   re-join as a [`MEMBERSHIP_TRACE_SOURCE`] event, so `xcbc mon` can
//!   show who was in the fleet when.
//! * [`Autoscaler`] watches metrics the fleet already exports — the
//!   scheduler's queue depth and per-node busy/idle state, the same
//!   numbers the Ganglia rollups aggregate — and decides power
//!   transitions with hysteresis so a one-tick blip never flaps nodes.
//!   Decisions are a *pure function* of the sampled metrics
//!   ([`Autoscaler::replay`]), which is what lets the soak harness audit
//!   a recorded run after the fact.
//! * [`PowerSequencer`] charges Limulus-style
//!   power-up latency on the clock: a scaled-up node boots for
//!   `boot_s` before the scheduler may place work on it, and every
//!   transition lands in the `cluster.power` trace.
//! * **Burst sites** join a *running* fleet mid-simulation: their XNIT
//!   overlay is applied on arrival through the fleet-shared
//!   [`SolveCache`], in a worker pool whose results merge in site order
//!   so the merged trace is byte-identical at any thread count.
//!
//! Fault handling mirrors [`campaign`](crate::campaign): an
//! `elastic.scale-up` fault aborts the engine *between* ticks — before
//! any tick work or simulator advancement — handing back an
//! [`ElasticCheckpoint`] plus the trace-so-far, so a resumed run replays
//! the remaining ticks byte-identically. An `elastic.burst-join` fault
//! fails that site's join; the fleet continues without it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use xcbc_cluster::PowerSequencer;
use xcbc_fault::{ElasticCheckpoint, FaultPlan, InjectionPoint};
use xcbc_rpm::RpmDb;
use xcbc_sched::{JobRequest, ResourceManager};
use xcbc_sim::{SimDuration, SimTime, TraceEvent};
use xcbc_yum::{Fnv64, SolveCache, SolveError};

use crate::deploy::{deploy_xnit_overlay_with, DeploymentReport};
use crate::xnit::XnitSetupMethod;

/// Trace source for autoscaler decisions and queue/capacity counters.
pub const ELASTIC_TRACE_SOURCE: &str = "elastic";

/// Trace source for membership events (join / drain / leave / rejoin).
/// Owned by the telemetry layer so `xcbc mon` treats joins as
/// heartbeats (see `xcbc_cluster::telemetry`).
pub use xcbc_cluster::MEMBERSHIP_TRACE_SOURCE;

/// Lifecycle state of one fleet member (a compute node or a burst site).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// In the fleet and eligible for work.
    Active,
    /// Being drained ahead of a scale-down; no new work placed.
    Draining,
    /// Out of the fleet. A later join is recorded as a re-join.
    Left,
}

/// The live membership ledger. State transitions return the
/// [`MEMBERSHIP_TRACE_SOURCE`] event describing them; the caller pushes
/// it onto the run's trace so membership history and resume suffixes
/// stay byte-stable.
#[derive(Debug, Clone, Default)]
pub struct FleetMembership {
    members: BTreeMap<String, MemberState>,
}

impl FleetMembership {
    /// An empty ledger.
    pub fn new() -> FleetMembership {
        FleetMembership::default()
    }

    /// Record `name` joining (or re-joining) the fleet at `t`. `kind` is
    /// a label for the member class (`"node"`, `"burst-site"`, ...).
    pub fn join(&mut self, t: impl Into<SimTime>, name: &str, kind: &str) -> TraceEvent {
        let verb = match self.members.get(name) {
            Some(MemberState::Left) => "rejoin",
            _ => "join",
        };
        self.members.insert(name.to_string(), MemberState::Active);
        TraceEvent::mark(t, MEMBERSHIP_TRACE_SOURCE, format!("{verb} {name}"))
            .with_field("kind", kind)
    }

    /// Record `name` starting its drain at `t`.
    pub fn drain(&mut self, t: impl Into<SimTime>, name: &str, kind: &str) -> TraceEvent {
        self.members.insert(name.to_string(), MemberState::Draining);
        TraceEvent::mark(t, MEMBERSHIP_TRACE_SOURCE, format!("drain {name}"))
            .with_field("kind", kind)
    }

    /// Record `name` leaving the fleet at `t`.
    pub fn leave(&mut self, t: impl Into<SimTime>, name: &str, kind: &str) -> TraceEvent {
        self.members.insert(name.to_string(), MemberState::Left);
        TraceEvent::mark(t, MEMBERSHIP_TRACE_SOURCE, format!("leave {name}"))
            .with_field("kind", kind)
    }

    /// Current state of a member, if it was ever seen.
    pub fn state(&self, name: &str) -> Option<MemberState> {
        self.members.get(name).copied()
    }

    /// Is `name` currently active?
    pub fn is_active(&self, name: &str) -> bool {
        self.state(name) == Some(MemberState::Active)
    }

    /// Members currently active.
    pub fn active_count(&self) -> usize {
        self.members
            .values()
            .filter(|s| **s == MemberState::Active)
            .count()
    }

    /// All members ever seen, with their current state, in name order.
    pub fn members(&self) -> impl Iterator<Item = (&str, MemberState)> {
        self.members.iter().map(|(n, s)| (n.as_str(), *s))
    }

    /// Number of members ever seen.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no member was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// What the autoscaler decided after one tick's metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// No change.
    Hold,
    /// Power on this many additional nodes.
    Up(usize),
    /// Drain and power off this many nodes.
    Down(usize),
}

impl ScaleDecision {
    /// Short render for tick logs (`hold`, `up 2`, `down 1`).
    pub fn render(&self) -> String {
        match self {
            ScaleDecision::Hold => "hold".to_string(),
            ScaleDecision::Up(n) => format!("up {n}"),
            ScaleDecision::Down(n) => format!("down {n}"),
        }
    }
}

/// The autoscaler's fixed shape: fleet size bounds, hysteresis streaks,
/// and step size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalerPolicy {
    /// The fleet never shrinks below this many schedulable nodes.
    pub min_nodes: usize,
    /// The fleet never grows beyond this many provisioned nodes.
    pub max_nodes: usize,
    /// Consecutive ticks of queue pressure required before a scale-up.
    pub up_streak: usize,
    /// Consecutive idle ticks required before a scale-down.
    pub down_streak: usize,
    /// Nodes added or removed per decision.
    pub step: usize,
}

/// One tick's worth of the metrics the autoscaler watches: scheduler
/// queue depth plus the busy/idle rollup the telemetry layer exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricSample {
    /// Jobs queued (not held) and waiting for capacity.
    pub queue_depth: usize,
    /// Schedulable nodes currently running work.
    pub busy_nodes: usize,
    /// Schedulable nodes (online, not retired).
    pub capacity: usize,
    /// Nodes powered on but still booting (not yet schedulable).
    pub booting: usize,
}

/// Hysteresis-damped scaling decisions from sim-clock metrics only.
///
/// The decision stream is a pure function of the policy and the sample
/// stream: [`Autoscaler::replay`] recomputes it, which the soak
/// harness uses to prove a recorded run never sat on demand it was
/// obliged to serve.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    policy: ScalerPolicy,
    pressure_run: usize,
    idle_run: usize,
    pending: ScaleDecision,
}

impl Autoscaler {
    /// A fresh autoscaler with zeroed streaks and no pending decision.
    pub fn new(policy: ScalerPolicy) -> Autoscaler {
        Autoscaler {
            policy,
            pressure_run: 0,
            idle_run: 0,
            pending: ScaleDecision::Hold,
        }
    }

    /// The policy this scaler runs.
    pub fn policy(&self) -> ScalerPolicy {
        self.policy
    }

    /// Feed one tick's metrics; returns (and stores as pending) the
    /// decision, which the engine executes at the *next* tick start.
    pub fn observe(&mut self, sample: MetricSample) -> ScaleDecision {
        let d = decide(
            &self.policy,
            &mut self.pressure_run,
            &mut self.idle_run,
            sample,
        );
        self.pending = d;
        d
    }

    /// The decision waiting to execute at the next tick start.
    pub fn pending(&self) -> ScaleDecision {
        self.pending
    }

    /// Take the pending decision, leaving [`ScaleDecision::Hold`].
    pub fn take_pending(&mut self) -> ScaleDecision {
        std::mem::replace(&mut self.pending, ScaleDecision::Hold)
    }

    fn clear_pending(&mut self) {
        self.pending = ScaleDecision::Hold;
    }

    /// Recompute the decision stream for a recorded sample stream —
    /// the audit the `elastic converges` soak invariant runs.
    pub fn replay(
        policy: ScalerPolicy,
        samples: impl IntoIterator<Item = MetricSample>,
    ) -> Vec<ScaleDecision> {
        let mut s = Autoscaler::new(policy);
        samples.into_iter().map(|x| s.observe(x)).collect()
    }
}

/// The decision function proper. Queue pressure must persist for
/// `up_streak` ticks before nodes power on; the fleet must idle for
/// `down_streak` ticks before nodes power off. A fully-busy, empty-queue
/// fleet resets both streaks (steady state).
fn decide(
    p: &ScalerPolicy,
    pressure_run: &mut usize,
    idle_run: &mut usize,
    s: MetricSample,
) -> ScaleDecision {
    let provisioned = s.capacity + s.booting;
    if s.queue_depth > 0 {
        *idle_run = 0;
        *pressure_run += 1;
        if *pressure_run >= p.up_streak && provisioned < p.max_nodes {
            *pressure_run = 0;
            return ScaleDecision::Up(p.step.min(p.max_nodes - provisioned));
        }
    } else if s.busy_nodes < s.capacity {
        *pressure_run = 0;
        *idle_run += 1;
        if *idle_run >= p.down_streak && provisioned > p.min_nodes {
            *idle_run = 0;
            let idle = s.capacity - s.busy_nodes;
            let room = provisioned - p.min_nodes;
            return ScaleDecision::Down(p.step.min(idle).min(room));
        }
    } else {
        *pressure_run = 0;
        *idle_run = 0;
    }
    ScaleDecision::Hold
}

/// A cloud-burst site that joins the running fleet at `join_tick`,
/// getting the XNIT overlay applied on arrival, and optionally leaves
/// again at `leave_tick`.
#[derive(Debug, Clone)]
pub struct BurstSite {
    /// Fleet-unique site name.
    pub name: String,
    /// Tick at whose start the site joins.
    pub join_tick: usize,
    /// Tick at whose start the site leaves, if it ever does.
    pub leave_tick: Option<usize>,
    /// XNIT setup method used for the arrival overlay.
    pub method: XnitSetupMethod,
    /// The site's pre-existing per-node package databases.
    pub existing: BTreeMap<String, RpmDb>,
}

impl BurstSite {
    /// A burst site that joins at `join_tick` and stays.
    pub fn new(
        name: &str,
        join_tick: usize,
        existing: BTreeMap<String, RpmDb>,
        method: XnitSetupMethod,
    ) -> BurstSite {
        BurstSite {
            name: name.to_string(),
            join_tick,
            leave_tick: None,
            method,
            existing,
        }
    }

    /// Schedule the site to leave at `tick`.
    pub fn leaving_at(mut self, tick: usize) -> BurstSite {
        self.leave_tick = Some(tick);
        self
    }
}

/// Everything that *happens to* the fleet over the run: the bursty
/// workload and the burst sites with their arrival/departure schedule.
#[derive(Debug, Clone, Default)]
pub struct ElasticWorld {
    /// `(tick, job)` — submitted when that tick starts, in listed order.
    pub workload: Vec<(usize, JobRequest)>,
    /// Sites joining (and possibly leaving) mid-run.
    pub burst_sites: Vec<BurstSite>,
}

impl ElasticWorld {
    /// Bucket an open-loop `(arrival_s, request)` stream — e.g. from
    /// `xcbc_sched::WorkloadSpec::stream` — onto autoscaler ticks: each
    /// arrival lands on the tick containing its arrival time, clamped
    /// to the workload horizon so late arrivals still run before the
    /// settle phase. This is how generated workloads drive the fleet.
    pub fn from_stream(
        jobs: impl IntoIterator<Item = (f64, JobRequest)>,
        tick_s: f64,
        horizon_ticks: usize,
    ) -> ElasticWorld {
        assert!(tick_s > 0.0 && horizon_ticks > 0);
        let mut world = ElasticWorld::default();
        for (t, req) in jobs {
            let tick = ((t.max(0.0) / tick_s) as usize).min(horizon_ticks - 1);
            world.workload.push((tick, req));
        }
        world
    }
}

/// Test-only behavioral mutations, used by the soak harness to prove
/// the elastic invariants can actually fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticMutation {
    /// Cancel (lose) jobs evicted by a scale-down drain instead of
    /// requeueing them.
    DropJobOnScaleDown,
    /// Suppress scale-up decisions the policy was obliged to make.
    SkipScaleUp,
}

/// Engine shape and safety knobs.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Fleet floor: the always-on node count the run starts with.
    pub min_nodes: usize,
    /// Fleet ceiling: the autoscaler never provisions beyond this.
    pub max_nodes: usize,
    /// Length of one autoscaler tick in sim seconds.
    pub tick_s: f64,
    /// Workload horizon in ticks; after it the engine settles.
    pub ticks: usize,
    /// Consecutive pressure ticks before a scale-up.
    pub up_streak: usize,
    /// Consecutive idle ticks before a scale-down.
    pub down_streak: usize,
    /// Nodes per scale decision.
    pub step: usize,
    /// Boot latency charged on the clock for each powered-on node.
    pub boot_s: f64,
    /// Grace window a draining node gets before leftovers are requeued.
    /// Must not exceed `tick_s`.
    pub drain_grace_s: f64,
    /// Post-horizon ticks allowed for the fleet to drain and shrink
    /// back to the floor before the engine gives up.
    pub max_settle_ticks: usize,
    /// Worker threads for burst-site overlay deploys.
    pub threads: usize,
    /// Soak-harness mutation hook; `None` in production.
    pub mutation: Option<ElasticMutation>,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            min_nodes: 2,
            max_nodes: 8,
            tick_s: 600.0,
            ticks: 24,
            up_streak: 2,
            down_streak: 3,
            step: 2,
            boot_s: 120.0,
            drain_grace_s: 300.0,
            max_settle_ticks: 200,
            threads: 1,
            mutation: None,
        }
    }
}

impl ElasticConfig {
    /// The scaling policy slice of the config.
    pub fn policy(&self) -> ScalerPolicy {
        ScalerPolicy {
            min_nodes: self.min_nodes,
            max_nodes: self.max_nodes,
            up_streak: self.up_streak,
            down_streak: self.down_streak,
            step: self.step,
        }
    }
}

/// Caller-owned live state. Like the campaign's scheduler and package
/// databases, this survives an [`ElasticError::Aborted`] in the caller's
/// hands so a resumed run continues from exactly where the abort left
/// the fleet; only the [`ElasticCheckpoint`] round-trips through text.
#[derive(Debug, Clone)]
pub struct ElasticState {
    /// Per-node power control (boot latency on the clock).
    pub seq: PowerSequencer,
    /// The hysteresis-damped decision maker, including its pending
    /// decision and streaks.
    pub scaler: Autoscaler,
    /// The membership ledger.
    pub membership: FleetMembership,
    /// Burst sites that joined, with their post-overlay node databases.
    pub joined: BTreeMap<String, BTreeMap<String, RpmDb>>,
    /// Powered-on nodes whose boot has not completed: `(ready, index)`.
    pub boots_in_flight: Vec<(SimTime, usize)>,
}

impl ElasticState {
    /// Fresh state for a fleet starting at `config.min_nodes` nodes,
    /// all already powered (the day-zero fleet was racked and booted).
    pub fn new(config: &ElasticConfig) -> ElasticState {
        ElasticState {
            seq: PowerSequencer::powered(config.min_nodes, config.boot_s),
            scaler: Autoscaler::new(config.policy()),
            membership: FleetMembership::new(),
            joined: BTreeMap::new(),
            boots_in_flight: Vec::new(),
        }
    }
}

/// One tick's record: the metrics sampled at its end, the decision they
/// produced, and the power picture. The stream is all an auditor needs
/// to recompute the decision stream ([`Autoscaler::replay`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickStat {
    /// Tick index (monotone across resumes).
    pub tick: usize,
    /// Sim-seconds at the tick's start.
    pub t_ms: u64,
    /// Metrics sampled at the tick's end.
    pub sample: MetricSample,
    /// Decision derived from `sample` (executes next tick).
    pub decision: ScaleDecision,
    /// Nodes powered (on or booting) at sample time.
    pub powered: usize,
}

/// How the run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticVerdict {
    /// Every submitted job was served and the fleet drained back down.
    Satisfied,
    /// Demand was still unserved when the engine ran out of room or
    /// settle horizon; `queued` jobs were waiting.
    AtMaxSize {
        /// Jobs still queued at the end.
        queued: usize,
    },
}

/// Full result of an elastic run (or resumed run).
#[derive(Debug, Clone)]
pub struct ElasticReport {
    /// Per-tick log for the ticks *this* run executed.
    pub ticks: Vec<TickStat>,
    /// How the run ended.
    pub verdict: ElasticVerdict,
    /// Final checkpoint — persist it to resume after an abort.
    pub checkpoint: ElasticCheckpoint,
    /// Elastic/membership/power trace events emitted by *this* run (a
    /// resumed run carries only its own suffix).
    pub trace: Vec<TraceEvent>,
    /// Tick this run started from (`> 0` after a resume).
    pub resumed_from_tick: usize,
    /// The policy the decisions were made under, for replay audits.
    pub policy: ScalerPolicy,
    /// Nodes powered on by scale-ups.
    pub scale_ups: usize,
    /// Nodes drained, retired, and powered off by scale-downs.
    pub scale_downs: usize,
    /// Jobs requeued losslessly off scale-down drains.
    pub requeued_jobs: usize,
    /// Burst sites that joined, in join order.
    pub burst_joined: Vec<String>,
    /// `(site, reason)` for burst sites whose join failed.
    pub burst_failed: Vec<(String, String)>,
    /// Largest schedulable-node count observed.
    pub peak_nodes: usize,
    /// Schedulable-node count at the end of the run.
    pub final_nodes: usize,
}

impl ElasticReport {
    /// The elastic trace as byte-stable JSONL.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.trace {
            out.push_str(&ev.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Human summary: one line per tick plus the verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in &self.ticks {
            out.push_str(&format!(
                "tick {:>3} t={:>7}s queue={:<3} busy={}/{} booting={} powered={} -> {}\n",
                t.tick,
                t.t_ms / 1000,
                t.sample.queue_depth,
                t.sample.busy_nodes,
                t.sample.capacity,
                t.sample.booting,
                t.powered,
                t.decision.render(),
            ));
        }
        for name in &self.burst_joined {
            out.push_str(&format!("burst site joined: {name}\n"));
        }
        for (name, why) in &self.burst_failed {
            out.push_str(&format!("burst site FAILED to join: {name}: {why}\n"));
        }
        out.push_str(&format!(
            "elastic run: {} powered on, {} retired, {} jobs requeued, peak {} nodes, final {}\n",
            self.scale_ups, self.scale_downs, self.requeued_jobs, self.peak_nodes, self.final_nodes,
        ));
        match self.verdict {
            ElasticVerdict::Satisfied => out.push_str("verdict: demand satisfied\n"),
            ElasticVerdict::AtMaxSize { queued } => {
                out.push_str(&format!("verdict: AT MAX SIZE with {queued} jobs queued\n"))
            }
        }
        out
    }
}

/// Why an elastic run could not produce an [`ElasticReport`].
#[derive(Debug)]
pub enum ElasticError {
    /// An `elastic.scale-up` fault fired between ticks. The checkpoint
    /// and trace-so-far come back so the caller can persist them and
    /// resume; no tick-`tick` work happened and the simulator did not
    /// advance, so a resume replays the remainder exactly.
    Aborted {
        /// The tick that was about to start.
        tick: usize,
        /// Progress checkpoint to resume from.
        checkpoint: ElasticCheckpoint,
        /// Trace events emitted before the abort.
        trace: Vec<TraceEvent>,
        /// Tick stats recorded before the abort — the prefix of the
        /// decision stream a completing resume extends, so auditors can
        /// replay the whole run's samples through a fresh autoscaler.
        ticks: Vec<TickStat>,
    },
    /// The resume checkpoint was recorded for a different run.
    CheckpointMismatch {
        /// Digest of this (world, config).
        expected: String,
        /// Digest found in the checkpoint.
        found: String,
    },
    /// Nonsensical shape (zero floor, ceiling below floor, job wider
    /// than the floor, grace longer than a tick...).
    BadConfig(String),
}

impl std::fmt::Display for ElasticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElasticError::Aborted { tick, .. } => {
                write!(f, "elastic run aborted before tick {tick} (scale-up fault)")
            }
            ElasticError::CheckpointMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different elastic run (expected digest {expected}, found {found})"
            ),
            ElasticError::BadConfig(msg) => write!(f, "bad elastic config: {msg}"),
        }
    }
}

impl std::error::Error for ElasticError {}

/// Digest binding a checkpoint to one elastic run: fleet bounds, tick
/// shape, workload, and burst schedule.
pub fn elastic_digest(world: &ElasticWorld, config: &ElasticConfig) -> String {
    let mut h = Fnv64::new();
    h.write_u64(config.min_nodes as u64)
        .write_u64(config.max_nodes as u64)
        .write_u64(config.ticks as u64)
        .write_u64(config.step as u64)
        .write_u64(config.up_streak as u64)
        .write_u64(config.down_streak as u64)
        .write_u64(config.tick_s.to_bits())
        .write_u64(config.boot_s.to_bits())
        .write_u64(config.drain_grace_s.to_bits());
    for (tick, job) in &world.workload {
        h.write_u64(*tick as u64)
            .write_str(&job.name)
            .write_u64(job.nodes as u64)
            .write_u64(job.ppn as u64)
            .write_u64(job.walltime_s.to_bits())
            .write_u64(job.runtime_s.to_bits());
    }
    for b in &world.burst_sites {
        h.write_str(&b.name).write_u64(b.join_tick as u64);
        h.write_u64(match b.leave_tick {
            Some(t) => t as u64 + 1,
            None => 0,
        });
    }
    format!("{:016x}", h.finish())
}

/// The name node `i` carries in the membership ledger — the stock
/// Rocks compute naming, so the telemetry pipeline maps the power
/// sequencer's per-node boot spans onto the same hosts.
pub fn node_name(i: usize) -> String {
    format!("compute-0-{i}")
}

fn validate(
    world: &ElasticWorld,
    state: &ElasticState,
    rm: &dyn ResourceManager,
    config: &ElasticConfig,
) -> Result<(), ElasticError> {
    if config.min_nodes == 0 {
        return Err(ElasticError::BadConfig("min_nodes must be >= 1".into()));
    }
    if config.max_nodes < config.min_nodes {
        return Err(ElasticError::BadConfig(format!(
            "max_nodes {} below min_nodes {}",
            config.max_nodes, config.min_nodes
        )));
    }
    if config.tick_s <= 0.0 {
        return Err(ElasticError::BadConfig("tick_s must be positive".into()));
    }
    if config.drain_grace_s > config.tick_s {
        return Err(ElasticError::BadConfig(format!(
            "drain_grace_s {} exceeds tick_s {}",
            config.drain_grace_s, config.tick_s
        )));
    }
    if config.step == 0 || config.up_streak == 0 || config.down_streak == 0 {
        return Err(ElasticError::BadConfig(
            "step, up_streak, and down_streak must be >= 1".into(),
        ));
    }
    for (_, job) in &world.workload {
        if job.nodes as usize > config.min_nodes {
            return Err(ElasticError::BadConfig(format!(
                "job '{}' needs {} nodes but the floor is {}: the fleet could scale below its demand",
                job.name, job.nodes, config.min_nodes
            )));
        }
    }
    for b in &world.burst_sites {
        if let Some(leave) = b.leave_tick {
            if leave <= b.join_tick {
                return Err(ElasticError::BadConfig(format!(
                    "burst site '{}' leaves at tick {} but joins at tick {}",
                    b.name, leave, b.join_tick
                )));
            }
        }
    }
    // Every sequencer slot is either a scheduler node or a boot still in
    // flight (a resume can land mid-boot).
    if rm.sim().node_count() + state.boots_in_flight.len() != state.seq.len() {
        return Err(ElasticError::BadConfig(format!(
            "resource manager has {} nodes (+{} booting) but the power sequencer tracks {}",
            rm.sim().node_count(),
            state.boots_in_flight.len(),
            state.seq.len()
        )));
    }
    Ok(())
}

/// Indices of schedulable nodes: online and never retired.
fn in_service(rm: &dyn ResourceManager) -> Vec<usize> {
    (0..rm.sim().node_count())
        .filter(|&i| !rm.sim().is_offline(i))
        .collect()
}

fn busy_count(rm: &dyn ResourceManager) -> usize {
    in_service(rm).iter().filter(|&&i| !rm.node_idle(i)).count()
}

/// Run (or resume) the elastic membership engine against a live fleet.
///
/// * `state` — caller-owned live state ([`ElasticState::new`]); it
///   survives an abort so a resume continues the same fleet.
/// * `rm` — the live scheduler frontend, constructed with
///   `config.min_nodes` nodes; its simulator keeps running jobs
///   through every scale event.
/// * `faults` — `elastic.scale-up` aborts between ticks,
///   `elastic.burst-join` fails a site's join.
/// * `resume_from` — a checkpoint from a previous
///   [`ElasticError::Aborted`]; completed ticks are skipped and the
///   abort oracle is not re-consulted for the first resumed tick.
#[allow(clippy::too_many_arguments)]
pub fn run_elastic(
    world: &ElasticWorld,
    state: &mut ElasticState,
    rm: &mut dyn ResourceManager,
    faults: &FaultPlan,
    cache: &Arc<SolveCache>,
    config: &ElasticConfig,
    resume_from: Option<&ElasticCheckpoint>,
) -> Result<ElasticReport, ElasticError> {
    validate(world, state, rm, config)?;
    let digest = elastic_digest(world, config);
    let mut checkpoint = match resume_from {
        Some(cp) => {
            if cp.digest() != digest {
                return Err(ElasticError::CheckpointMismatch {
                    expected: digest,
                    found: cp.digest().to_string(),
                });
            }
            cp.clone()
        }
        None => ElasticCheckpoint::new(&digest),
    };
    let start_tick = checkpoint.ticks_completed();

    let mut trace: Vec<TraceEvent> = Vec::new();
    let mut ticks_out: Vec<TickStat> = Vec::new();
    let mut injector = faults.injector();
    let mut scale_ups = 0usize;
    let mut scale_downs = 0usize;
    let mut requeued_jobs = 0usize;
    let mut burst_joined: Vec<String> = Vec::new();
    let mut burst_failed: Vec<(String, String)> = Vec::new();
    let mut peak_nodes = in_service(rm).len();

    // Day-zero membership: the floor nodes join at the start of a fresh
    // run. A resumed run's ledger already has them.
    if resume_from.is_none() {
        let t0 = SimTime::from_secs_f64(rm.sim().now());
        for i in 0..config.min_nodes {
            trace.push(state.membership.join(t0, &node_name(i), "node"));
        }
    }

    let horizon = config.ticks + config.max_settle_ticks;
    let mut k = start_tick;
    loop {
        if k >= config.ticks {
            let quiet = rm.queue_depth() == 0
                && busy_count(rm) == 0
                && state.boots_in_flight.is_empty()
                && state.scaler.pending() == ScaleDecision::Hold;
            if (quiet && in_service(rm).len() <= config.min_nodes) || k >= horizon {
                break;
            }
        }

        // Between-ticks abort oracle: consulted before ANY tick-k work
        // or simulator advancement so the resumed run's trace is the
        // exact suffix of the uninterrupted one. Skipped for the first
        // resumed tick: the fault that aborted us already "happened".
        let resuming_this_tick = resume_from.is_some() && k == start_tick;
        if !resuming_this_tick
            && injector
                .should_fault(InjectionPoint::ScaleUp, &format!("tick-{k}"))
                .is_some()
        {
            return Err(ElasticError::Aborted {
                tick: k,
                checkpoint,
                trace,
                ticks: ticks_out,
            });
        }

        let t0 = rm.sim().now();
        let t0_sim = SimTime::from_secs_f64(t0);

        // 1. Booted nodes enter service: the scheduler only sees a node
        //    once its boot latency has elapsed on the clock.
        while let Some(&(ready, idx)) = state.boots_in_flight.first() {
            if ready > t0_sim {
                break;
            }
            state.boots_in_flight.remove(0);
            let new_idx = rm.add_node();
            debug_assert_eq!(new_idx, idx, "scheduler and sequencer indices diverged");
            trace.push(state.membership.join(t0_sim, &node_name(idx), "node"));
        }

        // 2. Execute the decision made from the previous tick's metrics.
        match state.scaler.take_pending() {
            ScaleDecision::Hold => {}
            ScaleDecision::Up(n) => {
                trace.push(
                    TraceEvent::mark(t0_sim, ELASTIC_TRACE_SOURCE, format!("scale-up {n} nodes"))
                        .with_field("nodes", n as u64),
                );
                for _ in 0..n {
                    let idx = state.seq.len();
                    state.seq.grow(1);
                    let ready = state.seq.power_on(t0_sim, idx);
                    state.boots_in_flight.push((ready, idx));
                }
                trace.extend(state.seq.take_trace());
                scale_ups += n;
            }
            ScaleDecision::Down(n) => {
                let active = in_service(rm);
                let n = n.min(active.len().saturating_sub(config.min_nodes));
                if n > 0 {
                    trace.push(
                        TraceEvent::mark(
                            t0_sim,
                            ELASTIC_TRACE_SOURCE,
                            format!("scale-down {n} nodes"),
                        )
                        .with_field("nodes", n as u64),
                    );
                    let victims: Vec<usize> = active[active.len() - n..].to_vec();
                    for &idx in &victims {
                        trace.push(state.membership.drain(t0_sim, &node_name(idx), "node"));
                        rm.offline_node(idx);
                    }
                    rm.advance_to(t0 + config.drain_grace_s);
                    let td_sim = SimTime::from_secs_f64(rm.sim().now());
                    for &idx in &victims {
                        if !rm.node_idle(idx) {
                            let evicted = rm.requeue_node(idx);
                            requeued_jobs += evicted.len();
                            if config.mutation == Some(ElasticMutation::DropJobOnScaleDown) {
                                for id in evicted {
                                    rm.sim_mut().kill(id);
                                }
                            }
                        }
                        let retired = rm.retire_node(idx);
                        debug_assert!(retired, "drained node must retire cleanly");
                        state.seq.power_off(td_sim, idx);
                        trace.push(state.membership.leave(td_sim, &node_name(idx), "node"));
                    }
                    trace.extend(state.seq.take_trace());
                    scale_downs += n;
                }
            }
        }

        // 3. Burst departures scheduled for this tick.
        for b in &world.burst_sites {
            if b.leave_tick == Some(k) && state.membership.is_active(&b.name) {
                state.joined.remove(&b.name);
                trace.push(state.membership.leave(t0_sim, &b.name, "burst-site"));
            }
        }

        // 4. Burst arrivals: overlay applied on arrival through the
        //    fleet-shared solve cache, worker results merged in site
        //    order so the trace is thread-count invariant.
        let joiners: Vec<&BurstSite> = world
            .burst_sites
            .iter()
            .filter(|b| b.join_tick == k)
            .collect();
        let mut deploying: Vec<&BurstSite> = Vec::new();
        for b in joiners {
            if let Some(kind) = injector.should_fault(InjectionPoint::BurstJoin, &b.name) {
                trace.push(
                    TraceEvent::mark(
                        t0_sim,
                        ELASTIC_TRACE_SOURCE,
                        format!("burst-join-failed {}", b.name),
                    )
                    .with_field("error", kind.as_str()),
                );
                burst_failed.push((b.name.clone(), kind.as_str().to_string()));
            } else {
                deploying.push(b);
            }
        }
        if !deploying.is_empty() {
            let results: Vec<Result<DeploymentReport, SolveError>> = {
                let slots: Vec<Mutex<Option<Result<DeploymentReport, SolveError>>>> =
                    deploying.iter().map(|_| Mutex::new(None)).collect();
                let next = AtomicUsize::new(0);
                let workers = config.threads.clamp(1, deploying.len());
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= deploying.len() {
                                break;
                            }
                            let b = deploying[i];
                            let r = deploy_xnit_overlay_with(
                                &b.existing,
                                b.method,
                                Some(Arc::clone(cache)),
                            );
                            *slots[i].lock().unwrap() = Some(r);
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
                    .collect()
            };
            let offset = SimDuration::from_secs_f64(t0);
            for (b, result) in deploying.iter().zip(results) {
                match result {
                    Ok(rep) => {
                        for ev in &rep.trace {
                            trace.push(ev.shifted(offset).with_field("site", b.name.as_str()));
                        }
                        trace.push(state.membership.join(t0_sim, &b.name, "burst-site"));
                        state.joined.insert(b.name.clone(), rep.node_dbs);
                        burst_joined.push(b.name.clone());
                    }
                    Err(e) => {
                        let why = format!("solve: {e}");
                        trace.push(
                            TraceEvent::mark(
                                t0_sim,
                                ELASTIC_TRACE_SOURCE,
                                format!("burst-join-failed {}", b.name),
                            )
                            .with_field("error", why.as_str()),
                        );
                        burst_failed.push((b.name.clone(), why));
                    }
                }
            }
        }

        // 5. This tick's workload lands on the queue.
        for (tick, job) in &world.workload {
            if *tick == k {
                rm.submit(job.clone());
            }
        }

        // 6. Advance the tick on the clock, then sample the metrics the
        //    fleet already exports: queue depth and the busy/idle rollup.
        rm.advance_to(t0 + config.tick_s);
        let te_sim = SimTime::from_secs_f64(rm.sim().now());
        let capacity = in_service(rm).len();
        peak_nodes = peak_nodes.max(capacity);
        let sample = MetricSample {
            queue_depth: rm.queue_depth(),
            busy_nodes: busy_count(rm),
            capacity,
            booting: state.boots_in_flight.len(),
        };
        let mut decided = state.scaler.observe(sample);
        if config.mutation == Some(ElasticMutation::SkipScaleUp)
            && matches!(decided, ScaleDecision::Up(_))
        {
            state.scaler.clear_pending();
            decided = ScaleDecision::Hold;
        }
        trace.push(TraceEvent::counter(
            te_sim,
            ELASTIC_TRACE_SOURCE,
            "queue-depth",
            sample.queue_depth as u64,
        ));
        trace.push(TraceEvent::counter(
            te_sim,
            ELASTIC_TRACE_SOURCE,
            "nodes-active",
            capacity as u64,
        ));
        ticks_out.push(TickStat {
            tick: k,
            t_ms: (t0 * 1000.0).round() as u64,
            sample,
            decision: decided,
            powered: state.seq.powered_count(),
        });
        checkpoint.mark_tick_completed(k);
        k += 1;
    }

    let queued = rm.queue_depth();
    let final_nodes = in_service(rm).len();
    let verdict = if queued == 0 && busy_count(rm) == 0 {
        ElasticVerdict::Satisfied
    } else {
        ElasticVerdict::AtMaxSize { queued }
    };
    Ok(ElasticReport {
        ticks: ticks_out,
        verdict,
        checkpoint,
        trace,
        resumed_from_tick: start_tick,
        policy: config.policy(),
        scale_ups,
        scale_downs,
        requeued_jobs,
        burst_joined,
        burst_failed,
        peak_nodes,
        final_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_sched::TorqueServer;

    fn limulus_dbs(nodes: usize) -> BTreeMap<String, RpmDb> {
        (0..nodes)
            .map(|i| {
                (
                    format!("burst-n{i}"),
                    crate::deploy::limulus_factory_image(),
                )
            })
            .collect()
    }

    fn bursty_world(ticks: usize) -> ElasticWorld {
        // a burst of narrow jobs early, then silence: queue pressure
        // forces a scale-up, the idle tail forces the scale-down.
        let mut world = ElasticWorld::default();
        for i in 0..6 {
            world.workload.push((
                0,
                JobRequest::new(&format!("burst-{i}"), 1, 2, 900.0, 700.0),
            ));
        }
        let _ = ticks;
        world
    }

    fn config() -> ElasticConfig {
        ElasticConfig {
            min_nodes: 1,
            max_nodes: 4,
            tick_s: 300.0,
            ticks: 12,
            up_streak: 2,
            down_streak: 2,
            step: 1,
            boot_s: 60.0,
            drain_grace_s: 120.0,
            max_settle_ticks: 60,
            threads: 1,
            mutation: None,
        }
    }

    fn run_once(
        world: &ElasticWorld,
        faults: &FaultPlan,
        config: &ElasticConfig,
    ) -> (
        Result<ElasticReport, ElasticError>,
        ElasticState,
        TorqueServer,
    ) {
        let mut state = ElasticState::new(config);
        let mut rm = TorqueServer::with_maui("head", config.min_nodes, 2);
        let cache = Arc::new(SolveCache::new());
        let r = run_elastic(world, &mut state, &mut rm, faults, &cache, config, None);
        (r, state, rm)
    }

    #[test]
    fn scales_up_on_pressure_and_back_down_when_idle() {
        let config = config();
        let (r, state, mut rm) = run_once(&bursty_world(12), &FaultPlan::new(1), &config);
        let report = r.unwrap();
        assert!(report.scale_ups > 0, "{}", report.render());
        assert!(report.scale_downs > 0, "{}", report.render());
        assert!(report.peak_nodes > config.min_nodes, "{}", report.render());
        assert_eq!(report.final_nodes, config.min_nodes, "{}", report.render());
        assert_eq!(report.verdict, ElasticVerdict::Satisfied);
        // every decision the report recorded is what the pure policy
        // replay derives from the recorded samples
        let replayed = Autoscaler::replay(report.policy, report.ticks.iter().map(|t| t.sample));
        let recorded: Vec<ScaleDecision> = report.ticks.iter().map(|t| t.decision).collect();
        assert_eq!(replayed, recorded);
        // no job was lost to the scale-down drains
        rm.drain();
        assert_eq!(rm.metrics().jobs_finished, 6);
        // power ledger agrees with the scheduler
        assert_eq!(state.seq.powered_count(), report.final_nodes);
        assert!(state.membership.active_count() == report.final_nodes);
    }

    #[test]
    fn generated_stream_drives_the_autoscaler() {
        let config = config();
        // A teaching-lab stream bucketed onto ticks. Width draws clamp
        // to the 1-node shape passed to the generator, so every job
        // stays satisfiable even after a full scale-down.
        let jobs = xcbc_sched::WorkloadSpec::teaching_lab().generate(11, 1, 2, 12);
        let n = jobs.len();
        let world = ElasticWorld::from_stream(jobs, config.tick_s, config.ticks);
        assert_eq!(world.workload.len(), n);
        assert!(world.workload.iter().all(|(tick, _)| *tick < config.ticks));
        let (r, _state, mut rm) = run_once(&world, &FaultPlan::new(3), &config);
        let report = r.unwrap();
        assert_eq!(
            report.verdict,
            ElasticVerdict::Satisfied,
            "{}",
            report.render()
        );
        rm.drain();
        assert_eq!(rm.metrics().jobs_finished, n, "no generated job lost");
    }

    #[test]
    fn membership_records_rejoin() {
        let mut m = FleetMembership::new();
        let j = m.join(0.0, "cloud-a", "burst-site");
        assert!(j.to_jsonl().contains("join cloud-a"));
        let l = m.leave(5.0, "cloud-a", "burst-site");
        assert!(l.to_jsonl().contains("leave cloud-a"));
        assert_eq!(m.state("cloud-a"), Some(MemberState::Left));
        let r = m.join(9.0, "cloud-a", "burst-site");
        assert!(r.to_jsonl().contains("rejoin cloud-a"), "{}", r.to_jsonl());
        assert!(m.is_active("cloud-a"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let policy = ScalerPolicy {
            min_nodes: 1,
            max_nodes: 8,
            up_streak: 2,
            down_streak: 2,
            step: 1,
        };
        // queue pressure alternates on/off every tick: neither streak
        // ever completes, so the scaler holds throughout.
        let samples = (0..10).map(|i| MetricSample {
            queue_depth: i % 2,
            busy_nodes: 1,
            capacity: 2,
            booting: 0,
        });
        let decisions = Autoscaler::replay(policy, samples);
        assert!(decisions.iter().all(|d| *d == ScaleDecision::Hold));
    }

    #[test]
    fn burst_sites_join_through_shared_cache_and_leave() {
        let mut world = bursty_world(12);
        world.burst_sites.push(
            BurstSite::new("cloud-a", 1, limulus_dbs(2), XnitSetupMethod::RepoRpm).leaving_at(6),
        );
        let (r, state, _) = run_once(&world, &FaultPlan::new(2), &config());
        let report = r.unwrap();
        assert_eq!(report.burst_joined, vec!["cloud-a".to_string()]);
        assert!(report.burst_failed.is_empty());
        // overlay ran on arrival: the joined dbs carry XNIT packages
        assert!(state.joined.is_empty(), "site left again");
        assert_eq!(state.membership.state("cloud-a"), Some(MemberState::Left));
        let jsonl = report.trace_jsonl();
        assert!(jsonl.contains("join cloud-a"), "{jsonl}");
        assert!(jsonl.contains("leave cloud-a"), "{jsonl}");
    }

    #[test]
    fn burst_join_fault_skips_the_site_without_aborting() {
        let mut world = bursty_world(12);
        world.burst_sites.push(BurstSite::new(
            "cloud-a",
            1,
            limulus_dbs(1),
            XnitSetupMethod::RepoRpm,
        ));
        let faults = FaultPlan::parse("seed=4; elastic.burst-join key=cloud-a").unwrap();
        let (r, state, _) = run_once(&world, &faults, &config());
        let report = r.unwrap();
        assert!(report.burst_joined.is_empty());
        assert_eq!(report.burst_failed.len(), 1);
        assert!(!state.membership.is_active("cloud-a"));
        assert_eq!(report.verdict, ElasticVerdict::Satisfied);
    }

    #[test]
    fn trace_identical_at_any_thread_count() {
        let mut world = bursty_world(12);
        for (i, tick) in [1usize, 1, 2].iter().enumerate() {
            world.burst_sites.push(BurstSite::new(
                &format!("cloud-{i}"),
                *tick,
                limulus_dbs(2),
                XnitSetupMethod::RepoRpm,
            ));
        }
        let mut traces = Vec::new();
        for threads in [1usize, 4] {
            let config = ElasticConfig {
                threads,
                ..config()
            };
            let (r, _, _) = run_once(&world, &FaultPlan::new(3), &config);
            traces.push(r.unwrap().trace_jsonl());
        }
        assert_eq!(traces[0], traces[1]);
    }

    #[test]
    fn abort_and_resume_matches_uninterrupted_run() {
        let config = config();
        let world = bursty_world(12);
        let cache = Arc::new(SolveCache::new());

        // Uninterrupted baseline.
        let mut state_a = ElasticState::new(&config);
        let mut rm_a = TorqueServer::with_maui("head", config.min_nodes, 2);
        let full = run_elastic(
            &world,
            &mut state_a,
            &mut rm_a,
            &FaultPlan::new(11),
            &cache,
            &config,
            None,
        )
        .unwrap();

        // Faulted run: power dies before tick 3.
        let faults = FaultPlan::parse("seed=11; elastic.scale-up key=tick-3").unwrap();
        let mut state_b = ElasticState::new(&config);
        let mut rm_b = TorqueServer::with_maui("head", config.min_nodes, 2);
        let err = run_elastic(
            &world,
            &mut state_b,
            &mut rm_b,
            &faults,
            &cache,
            &config,
            None,
        )
        .unwrap_err();
        let ElasticError::Aborted {
            tick,
            checkpoint,
            trace,
            ticks: pre_ticks,
        } = err
        else {
            panic!("expected abort");
        };
        assert_eq!(tick, 3);

        // Persist + reload the checkpoint, then resume the same fleet.
        let reloaded = ElasticCheckpoint::parse(&checkpoint.to_text()).unwrap();
        let resumed = run_elastic(
            &world,
            &mut state_b,
            &mut rm_b,
            &faults,
            &cache,
            &config,
            Some(&reloaded),
        )
        .unwrap();
        assert_eq!(resumed.resumed_from_tick, 3);
        assert_eq!(resumed.verdict, full.verdict);

        // Pre-abort trace + resumed trace is byte-identical to the
        // uninterrupted trace, and the fleets converged identically.
        let mut stitched = String::new();
        for ev in trace.iter().chain(resumed.trace.iter()) {
            stitched.push_str(&ev.to_jsonl());
            stitched.push('\n');
        }
        assert_eq!(stitched, full.trace_jsonl());
        let mut all_ticks = pre_ticks.clone();
        all_ticks.extend(resumed.ticks.iter().copied());
        assert_eq!(all_ticks, full.ticks);
        assert_eq!(resumed.final_nodes, full.final_nodes);
        assert_eq!(state_a.seq.powered_count(), state_b.seq.powered_count());
    }

    #[test]
    fn resume_rejects_foreign_checkpoint() {
        let config = config();
        let mut state = ElasticState::new(&config);
        let mut rm = TorqueServer::with_maui("head", config.min_nodes, 2);
        let cache = Arc::new(SolveCache::new());
        let foreign = ElasticCheckpoint::new("deadbeefdeadbeef");
        let err = run_elastic(
            &bursty_world(12),
            &mut state,
            &mut rm,
            &FaultPlan::new(0),
            &cache,
            &config,
            Some(&foreign),
        )
        .unwrap_err();
        assert!(matches!(err, ElasticError::CheckpointMismatch { .. }));
    }

    #[test]
    fn bad_shapes_are_typed_errors() {
        let cache = Arc::new(SolveCache::new());
        let mut base = config();
        base.min_nodes = 1;
        // a job wider than the floor could starve forever after a
        // scale-down; the engine refuses it up front
        let mut world = ElasticWorld::default();
        world
            .workload
            .push((0, JobRequest::new("wide", 3, 2, 100.0, 50.0)));
        let mut state = ElasticState::new(&base);
        let mut rm = TorqueServer::with_maui("head", 1, 2);
        let err = run_elastic(
            &world,
            &mut state,
            &mut rm,
            &FaultPlan::new(0),
            &cache,
            &base,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, ElasticError::BadConfig(_)), "{err}");

        let mut bad = config();
        bad.max_nodes = 0;
        let mut state = ElasticState::new(&bad);
        let mut rm = TorqueServer::with_maui("head", 1, 2);
        let err = run_elastic(
            &ElasticWorld::default(),
            &mut state,
            &mut rm,
            &FaultPlan::new(0),
            &cache,
            &bad,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, ElasticError::BadConfig(_)));

        let mut bad = config();
        bad.drain_grace_s = bad.tick_s + 1.0;
        let mut state = ElasticState::new(&bad);
        let mut rm = TorqueServer::with_maui("head", 1, 2);
        let err = run_elastic(
            &ElasticWorld::default(),
            &mut state,
            &mut rm,
            &FaultPlan::new(0),
            &cache,
            &bad,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, ElasticError::BadConfig(_)));
    }

    #[test]
    fn drop_job_mutation_loses_jobs() {
        let mut config = config();
        config.mutation = Some(ElasticMutation::DropJobOnScaleDown);
        config.down_streak = 2;
        // a blocker pins the floor node, shorts force the scale-up, and
        // one long job lands on a scaled-up node — still running when
        // the idle scale-down drains it, so the drain must requeue
        // (here: drop) it
        let mut world = ElasticWorld::default();
        world
            .workload
            .push((0, JobRequest::new("blocker", 1, 2, 3000.0, 2500.0)));
        world
            .workload
            .push((0, JobRequest::new("long", 1, 2, 9000.0, 8500.0)));
        for i in 0..3 {
            world.workload.push((
                0,
                JobRequest::new(&format!("short-{i}"), 1, 2, 800.0, 700.0),
            ));
        }
        let (r, _, mut rm) = run_once(&world, &FaultPlan::new(6), &config);
        let report = r.unwrap();
        assert!(report.requeued_jobs > 0, "{}", report.render());
        rm.drain();
        use xcbc_sched::JobState;
        let served = rm
            .sim()
            .jobs()
            .filter(|j| matches!(j.state, JobState::Completed { .. }))
            .count();
        let lost = rm
            .sim()
            .jobs()
            .filter(|j| j.state == JobState::Cancelled)
            .count();
        assert!(
            served < 5 && lost > 0,
            "mutation should have lost the long job: {served} served, {lost} lost, report:\n{}",
            report.render()
        );
    }

    #[test]
    fn skip_scale_up_mutation_diverges_from_policy_replay() {
        let mut config = config();
        config.mutation = Some(ElasticMutation::SkipScaleUp);
        let (r, _, _) = run_once(&bursty_world(12), &FaultPlan::new(7), &config);
        let report = r.unwrap();
        assert_eq!(report.scale_ups, 0);
        let replayed = Autoscaler::replay(report.policy, report.ticks.iter().map(|t| t.sample));
        let recorded: Vec<ScaleDecision> = report.ticks.iter().map(|t| t.decision).collect();
        assert_ne!(
            replayed, recorded,
            "the recorded decisions must betray the suppressed scale-up"
        );
    }
}
