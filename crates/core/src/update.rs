//! Keeping a cluster current — the paper's §3 update-strategy
//! discussion, quantified.
//!
//! The Rocks path: "to maintain the package levels, you can enable the
//! XSEDE Yum repository, then follow the Rocks instructions or use the
//! preferred method and create an update roll ... neither method will
//! seem easy to a novice administrator." The yum path: automatic
//! updates "may cause unexpected behavior in a production environment";
//! a notification script with staged testing "might be the more prudent
//! action."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use xcbc_rpm::{PackageBuilder, RpmDb};
use xcbc_yum::{Repository, UpdateNotifier, UpdatePolicy, Yum, YumConfig};

/// How a site keeps XCBC software current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStrategy {
    /// Rocks: build an update roll and reinstall nodes (the "preferred
    /// method" in Rocks documentation).
    UpdateRoll,
    /// Cron-driven `yum update` applied straight to production.
    AutomaticYum,
    /// Notification script; admin reviews, then applies by hand.
    NotifyOnly,
    /// Notify plus staged testing on non-production nodes first.
    StagedTest,
}

impl UpdateStrategy {
    /// Administrator effort per update cycle, in discrete steps (the
    /// "will not seem easy to a novice" axis).
    pub fn admin_steps(&self) -> u32 {
        match self {
            // build roll, add roll, rebuild distribution, reinstall nodes
            UpdateStrategy::UpdateRoll => 6,
            UpdateStrategy::AutomaticYum => 0,
            UpdateStrategy::NotifyOnly => 2,
            UpdateStrategy::StagedTest => 4,
        }
    }

    /// Days of staleness a cluster accumulates per cycle: automatic is
    /// immediate; review-based paths lag.
    pub fn staleness_days(&self) -> f64 {
        match self {
            UpdateStrategy::UpdateRoll => 30.0,
            UpdateStrategy::AutomaticYum => 0.0,
            UpdateStrategy::NotifyOnly => 7.0,
            UpdateStrategy::StagedTest => 3.0,
        }
    }

    /// Does an update that breaks something reach production untested?
    pub fn unvetted_in_production(&self) -> bool {
        matches!(self, UpdateStrategy::AutomaticYum)
    }

    /// Requires per-node reinstalls?
    pub fn reinstalls_nodes(&self) -> bool {
        matches!(self, UpdateStrategy::UpdateRoll)
    }
}

/// Outcome of simulating many update cycles under one strategy.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct UpdateRisk {
    pub strategy_label: String,
    pub cycles: u32,
    /// Breaking updates that reached production.
    pub production_incidents: u32,
    /// Breaking updates caught on test nodes first.
    pub caught_in_staging: u32,
    /// Total admin steps spent.
    pub admin_steps_total: u32,
    /// Mean staleness in days.
    pub mean_staleness_days: f64,
}

/// Simulate `cycles` update cycles. Each cycle publishes one package
/// update; with probability `break_prob` the update misbehaves (a
/// service-restarting scriptlet gone wrong).
pub fn simulate_updates(
    strategy: UpdateStrategy,
    cycles: u32,
    break_prob: f64,
    seed: u64,
) -> UpdateRisk {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut production_incidents = 0;
    let mut caught_in_staging = 0;

    // a small production db tracking one service package
    let mut prod = RpmDb::new();
    prod.install(PackageBuilder::new("torque", "4.2.0", "1.el6").build());
    let mut test = RpmDb::new();
    test.install(PackageBuilder::new("torque", "4.2.0", "1.el6").build());

    for cycle in 0..cycles {
        let breaking = rng.gen_bool(break_prob);
        let version = format!("4.2.{}", cycle + 1);
        let mut repo = Repository::new("xsede", "XSEDE repo");
        repo.add_package(PackageBuilder::new("torque", &version, "1.el6").build());
        let mut yum = Yum::new(YumConfig::default());
        yum.add_repository(repo);

        match strategy {
            UpdateStrategy::AutomaticYum => {
                let notifier = UpdateNotifier::new(UpdatePolicy::Automatic);
                notifier
                    .run_check(&mut yum, &mut prod, None)
                    .expect("update applies");
                if breaking {
                    production_incidents += 1;
                }
            }
            UpdateStrategy::NotifyOnly => {
                let notifier = UpdateNotifier::new(UpdatePolicy::NotifyOnly);
                notifier
                    .run_check(&mut yum, &mut prod, None)
                    .expect("check runs");
                // admin reviews the mail and applies by hand; review
                // catches breakage half the time
                let caught = breaking && rng.gen_bool(0.5);
                yum.update(&mut prod, None).expect("manual apply");
                if breaking && !caught {
                    production_incidents += 1;
                } else if caught {
                    caught_in_staging += 1;
                }
            }
            UpdateStrategy::StagedTest => {
                let notifier = UpdateNotifier::new(UpdatePolicy::StagedTest);
                notifier
                    .run_check(&mut yum, &mut prod, Some(&mut test))
                    .expect("staged apply");
                if breaking {
                    // the test node exhibits the problem; production never
                    // sees the broken build
                    caught_in_staging += 1;
                    // test node is rolled back (reinstalled from prod image)
                    test = prod.clone();
                } else {
                    yum.update(&mut prod, None).expect("promote to production");
                }
            }
            UpdateStrategy::UpdateRoll => {
                // the admin builds an update roll and reinstalls: breakage
                // shows up during the post-reinstall burn-in, still before
                // users, but the effort is large
                if breaking {
                    caught_in_staging += 1;
                } else {
                    yum.update(&mut prod, None).expect("roll rebuild applies");
                }
            }
        }
    }

    UpdateRisk {
        strategy_label: format!("{strategy:?}"),
        cycles,
        production_incidents,
        caught_in_staging,
        admin_steps_total: strategy.admin_steps() * cycles,
        mean_staleness_days: strategy.staleness_days(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CYCLES: u32 = 200;
    const BREAK_PROB: f64 = 0.1;

    #[test]
    fn automatic_updates_hit_production() {
        let r = simulate_updates(UpdateStrategy::AutomaticYum, CYCLES, BREAK_PROB, 1);
        // ~10% of 200 cycles break, all in production
        assert!(r.production_incidents >= 10, "{r:?}");
        assert_eq!(r.caught_in_staging, 0);
        assert_eq!(r.admin_steps_total, 0);
        assert_eq!(r.mean_staleness_days, 0.0);
    }

    #[test]
    fn staged_testing_protects_production() {
        // "packages may be reviewed and tested on non-production nodes
        // ... the more prudent action"
        let r = simulate_updates(UpdateStrategy::StagedTest, CYCLES, BREAK_PROB, 1);
        assert_eq!(r.production_incidents, 0, "{r:?}");
        assert!(r.caught_in_staging >= 10);
    }

    #[test]
    fn notify_only_is_in_between() {
        let auto = simulate_updates(UpdateStrategy::AutomaticYum, CYCLES, BREAK_PROB, 2);
        let notify = simulate_updates(UpdateStrategy::NotifyOnly, CYCLES, BREAK_PROB, 2);
        let staged = simulate_updates(UpdateStrategy::StagedTest, CYCLES, BREAK_PROB, 2);
        assert!(notify.production_incidents < auto.production_incidents);
        assert!(staged.production_incidents <= notify.production_incidents);
    }

    #[test]
    fn update_roll_is_safe_but_laborious() {
        let roll = simulate_updates(UpdateStrategy::UpdateRoll, CYCLES, BREAK_PROB, 3);
        assert_eq!(roll.production_incidents, 0);
        assert!(
            roll.admin_steps_total
                > simulate_updates(UpdateStrategy::StagedTest, CYCLES, BREAK_PROB, 3)
                    .admin_steps_total
        );
        assert!(UpdateStrategy::UpdateRoll.reinstalls_nodes());
        assert!(roll.mean_staleness_days > 7.0, "roll rebuilds lag the repo");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate_updates(UpdateStrategy::NotifyOnly, 50, 0.2, 9);
        let b = simulate_updates(UpdateStrategy::NotifyOnly, 50, 0.2, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn strategy_axes() {
        assert!(UpdateStrategy::AutomaticYum.unvetted_in_production());
        assert!(!UpdateStrategy::StagedTest.unvetted_in_production());
        assert_eq!(UpdateStrategy::AutomaticYum.admin_steps(), 0);
        assert!(
            UpdateStrategy::UpdateRoll.admin_steps() > UpdateStrategy::StagedTest.admin_steps()
        );
    }

    #[test]
    fn zero_break_prob_no_incidents_anywhere() {
        for s in [
            UpdateStrategy::AutomaticYum,
            UpdateStrategy::NotifyOnly,
            UpdateStrategy::StagedTest,
            UpdateStrategy::UpdateRoll,
        ] {
            let r = simulate_updates(s, 50, 0.0, 4);
            assert_eq!(r.production_incidents, 0, "{s:?}");
            assert_eq!(r.caught_in_staging, 0, "{s:?}");
        }
    }
}
