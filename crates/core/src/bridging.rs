//! Campus-bridging data movement: Globus Connect Server and the GFFS.
//!
//! The XSEDE Tools row of Table 2 exists so that "a researcher \[can\]
//! move from an XCBC- or XNIT-based campus cluster to an XSEDE-supported
//! resource". The concrete mechanism is a Globus endpoint on the campus
//! cluster plus the Global Federated File System. This module models
//! endpoint setup (which requires the packages to be installed), a
//! transfer with per-file integrity verification and fault retry, and a
//! GFFS mount namespace.

use serde::Serialize;
use xcbc_rpm::RpmDb;

/// A Globus endpoint bound to one cluster.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Endpoint {
    pub name: String,
    /// Effective WAN bandwidth, MB/s.
    pub wan_mb_s: f64,
}

/// Why endpoint setup failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum SetupError {
    /// `globus-connect-server` is not installed on the host.
    MissingPackage(String),
}

impl std::fmt::Display for SetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetupError::MissingPackage(p) => {
                write!(
                    f,
                    "endpoint setup requires the {p} package (install it from XNIT)"
                )
            }
        }
    }
}

/// `globus-connect-server-setup`: requires the package from the XSEDE
/// tools row.
pub fn setup_endpoint(name: &str, db: &RpmDb, wan_mb_s: f64) -> Result<Endpoint, SetupError> {
    if !db.is_installed("globus-connect-server") {
        return Err(SetupError::MissingPackage(
            "globus-connect-server".to_string(),
        ));
    }
    Ok(Endpoint {
        name: name.to_string(),
        wan_mb_s,
    })
}

/// One file in a transfer.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TransferFile {
    pub path: String,
    pub bytes: u64,
}

/// A completed transfer's report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TransferReport {
    pub source: String,
    pub destination: String,
    pub files: usize,
    pub bytes: u64,
    pub seconds: f64,
    /// Files that needed integrity-retry (fault injection).
    pub retried: Vec<String>,
    pub verified: bool,
}

/// Transfer files between endpoints. `corrupted` lists paths whose first
/// attempt fails checksum verification and is retried (Globus semantics:
/// per-file checksums, automatic retry).
pub fn transfer(
    source: &Endpoint,
    destination: &Endpoint,
    files: &[TransferFile],
    corrupted: &[&str],
) -> TransferReport {
    let link_mb_s = source.wan_mb_s.min(destination.wan_mb_s);
    let total_bytes: u64 = files.iter().map(|f| f.bytes).sum();
    let retry_bytes: u64 = files
        .iter()
        .filter(|f| corrupted.contains(&f.path.as_str()))
        .map(|f| f.bytes)
        .sum();
    let seconds = (total_bytes + retry_bytes) as f64 / (link_mb_s * 1024.0 * 1024.0);
    TransferReport {
        source: source.name.clone(),
        destination: destination.name.clone(),
        files: files.len(),
        bytes: total_bytes,
        seconds,
        retried: corrupted.iter().map(|s| s.to_string()).collect(),
        verified: true, // retry loop runs until checksums match
    }
}

/// A GFFS namespace: global paths mapped to (endpoint, local path).
#[derive(Debug, Default)]
pub struct GffsNamespace {
    mounts: Vec<(String, String, String)>, // (global prefix, endpoint, local path)
}

impl GffsNamespace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Export a local directory at a global path.
    pub fn export(&mut self, global: &str, endpoint: &str, local: &str) {
        self.mounts
            .push((global.to_string(), endpoint.to_string(), local.to_string()));
    }

    /// Resolve a global path to (endpoint, local path).
    pub fn resolve(&self, global: &str) -> Option<(String, String)> {
        // longest-prefix match, the way mounts resolve
        self.mounts
            .iter()
            .filter(|(prefix, _, _)| global.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _, _)| prefix.len())
            .map(|(prefix, ep, local)| (ep.clone(), format!("{local}{}", &global[prefix.len()..])))
    }

    pub fn mount_count(&self) -> usize {
        self.mounts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xnit::{enable_xnit, XnitSetupMethod};
    use xcbc_yum::{Yum, YumConfig};

    fn cluster_with_globus() -> RpmDb {
        let mut db = RpmDb::new();
        let mut yum = Yum::new(YumConfig::default());
        enable_xnit(&mut yum, &mut db, XnitSetupMethod::RepoRpm).unwrap();
        yum.install(&mut db, &["globus-connect-server"]).unwrap();
        db
    }

    #[test]
    fn endpoint_needs_the_xnit_package() {
        let bare = RpmDb::new();
        let err = setup_endpoint("campus#littlefe", &bare, 100.0).unwrap_err();
        assert!(err.to_string().contains("globus-connect-server"));

        let db = cluster_with_globus();
        let ep = setup_endpoint("campus#littlefe", &db, 100.0).unwrap();
        assert_eq!(ep.name, "campus#littlefe");
    }

    #[test]
    fn transfer_time_is_bottleneck_bound() {
        let campus = Endpoint {
            name: "campus#littlefe".into(),
            wan_mb_s: 50.0,
        };
        let stampede = Endpoint {
            name: "xsede#stampede".into(),
            wan_mb_s: 1000.0,
        };
        let files = vec![TransferFile {
            path: "/data/run1.nc".into(),
            bytes: 500 << 20,
        }];
        let report = transfer(&campus, &stampede, &files, &[]);
        assert!(
            (report.seconds - 10.0).abs() < 1e-9,
            "500MB at 50MB/s: {}",
            report.seconds
        );
        assert!(report.verified);
        assert!(report.retried.is_empty());
    }

    #[test]
    fn corrupted_files_retried_and_verified() {
        let a = Endpoint {
            name: "a".into(),
            wan_mb_s: 100.0,
        };
        let b = Endpoint {
            name: "b".into(),
            wan_mb_s: 100.0,
        };
        let files = vec![
            TransferFile {
                path: "/data/x".into(),
                bytes: 100 << 20,
            },
            TransferFile {
                path: "/data/y".into(),
                bytes: 100 << 20,
            },
        ];
        let clean = transfer(&a, &b, &files, &[]);
        let faulty = transfer(&a, &b, &files, &["/data/y"]);
        assert!(faulty.seconds > clean.seconds, "retry costs a re-send");
        assert_eq!(faulty.retried, vec!["/data/y"]);
        assert!(faulty.verified);
    }

    #[test]
    fn gffs_longest_prefix_resolution() {
        let mut ns = GffsNamespace::new();
        ns.export("/xsede/campus/iu", "campus#littlefe", "/export/data");
        ns.export(
            "/xsede/campus/iu/scratch",
            "campus#littlefe-scratch",
            "/scratch",
        );
        let (ep, local) = ns.resolve("/xsede/campus/iu/results/run1.nc").unwrap();
        assert_eq!(ep, "campus#littlefe");
        assert_eq!(local, "/export/data/results/run1.nc");
        let (ep, local) = ns.resolve("/xsede/campus/iu/scratch/tmp.bin").unwrap();
        assert_eq!(ep, "campus#littlefe-scratch");
        assert_eq!(local, "/scratch/tmp.bin");
        assert!(ns.resolve("/unmapped/path").is_none());
        assert_eq!(ns.mount_count(), 2);
    }

    #[test]
    fn end_to_end_campus_to_xsede() {
        // the paper's migration story: set up the endpoint with XNIT
        // software, export via GFFS, move the data
        let db = cluster_with_globus();
        let campus = setup_endpoint("campus#littlefe", &db, 80.0).unwrap();
        let xsede = Endpoint {
            name: "xsede#stampede".into(),
            wan_mb_s: 800.0,
        };
        let mut ns = GffsNamespace::new();
        ns.export("/xsede/campus/iu", &campus.name, "/export/data");
        let (ep, _) = ns.resolve("/xsede/campus/iu/thesis").unwrap();
        assert_eq!(ep, campus.name);
        let report = transfer(
            &campus,
            &xsede,
            &[TransferFile {
                path: "/export/data/thesis".into(),
                bytes: 2 << 30,
            }],
            &[],
        );
        assert!(report.verified);
        assert!(report.seconds > 0.0);
    }
}
