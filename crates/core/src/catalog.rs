//! The XCBC 0.9 software catalog — Tables 1 and 2 of the paper as data.
//!
//! Table 2's point is *run-alike compatibility*: "libraries are in the
//! same place as on XSEDE clusters, versions are the same, and commands
//! work as they do on XSEDE-supported clusters" (Stampede being the
//! reference). Each entry therefore records the reference version and
//! the reference install paths; the [`crate::compat`] checker compares a
//! cluster against exactly this profile.

use xcbc_rpm::{Package, PackageBuilder, PackageGroup};

/// One catalog row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    pub name: &'static str,
    /// The Stampede-matched version.
    pub version: &'static str,
    pub group: PackageGroup,
    /// Names of other catalog packages this one requires.
    pub requires: &'static [&'static str],
    /// Key install paths (the XSEDE path convention).
    pub paths: &'static [&'static str],
    pub summary: &'static str,
}

const fn e(
    name: &'static str,
    version: &'static str,
    group: PackageGroup,
    requires: &'static [&'static str],
    paths: &'static [&'static str],
    summary: &'static str,
) -> CatalogEntry {
    CatalogEntry {
        name,
        version,
        group,
        requires,
        paths,
        summary,
    }
}

use PackageGroup::{
    CompilersLibraries as CL, MiscellaneousTools as MT, SchedulerResourceManager as SR,
    ScientificApplications as SA, XsedeTools as XT,
};

/// The full Table 2 catalog (plus the scheduler row and XSEDE tools).
pub static CATALOG: &[CatalogEntry] = &[
    // --- Compilers, libraries, and programming (Table 2, row 1) ---
    e("gcc", "4.4.7", CL, &[], &["/usr/bin/gcc"], "GNU C compiler"),
    e(
        "gcc-gfortran",
        "4.4.7",
        CL,
        &["gcc", "libgfortran"],
        &["/usr/bin/gfortran"],
        "GNU Fortran",
    ),
    e(
        "compat-gcc-34-g77",
        "3.4.6",
        CL,
        &[],
        &["/usr/bin/g77"],
        "Legacy g77 compiler",
    ),
    e(
        "charm",
        "6.5.1",
        CL,
        &["openmpi"],
        &["/usr/local/charm/bin/charmc"],
        "Charm++ parallel runtime",
    ),
    e(
        "fftw2",
        "2.1.5",
        CL,
        &[],
        &["/usr/lib64/libfftw.so.2"],
        "FFTW 2 fast Fourier transforms",
    ),
    e(
        "fftw",
        "3.3.3",
        CL,
        &[],
        &["/usr/lib64/libfftw3.so.3"],
        "FFTW 3 fast Fourier transforms",
    ),
    e(
        "gmp",
        "4.3.1",
        CL,
        &[],
        &["/usr/lib64/libgmp.so.3"],
        "GNU multiple precision arithmetic",
    ),
    e(
        "mpfr",
        "2.4.1",
        CL,
        &["gmp"],
        &["/usr/lib64/libmpfr.so.1"],
        "Multiple-precision floats",
    ),
    e(
        "hdf5",
        "1.8.9",
        CL,
        &[],
        &["/usr/lib64/libhdf5.so", "/usr/bin/h5dump"],
        "HDF5 data model",
    ),
    e(
        "java-1.7.0-openjdk",
        "1.7.0.51",
        CL,
        &["tzdata-java", "jpackage-utils"],
        &["/usr/bin/java"],
        "OpenJDK 7",
    ),
    e(
        "libRmath",
        "3.0.2",
        CL,
        &["R-core"],
        &["/usr/lib64/libRmath.so"],
        "Standalone R math library",
    ),
    e(
        "libRmath-devel",
        "3.0.2",
        CL,
        &["libRmath"],
        &["/usr/include/Rmath.h"],
        "R math headers",
    ),
    e(
        "mpich2",
        "1.4.1p1",
        CL,
        &[],
        &["/usr/lib64/mpich2/bin/mpirun"],
        "MPICH2 MPI implementation",
    ),
    e(
        "openmpi",
        "1.6.5",
        CL,
        &["librdmacm", "libibverbs"],
        &["/usr/lib64/openmpi/bin/mpirun"],
        "Open MPI",
    ),
    e(
        "mpi4py-common",
        "1.3.1",
        CL,
        &["python"],
        &["/usr/lib64/python2.7/site-packages/mpi4py"],
        "Python MPI bindings (common)",
    ),
    e(
        "mpi4py-openmpi",
        "1.3.1",
        CL,
        &["mpi4py-common", "openmpi"],
        &["/usr/lib64/python2.7/site-packages/mpi4py/openmpi"],
        "Python MPI bindings (Open MPI)",
    ),
    e(
        "mpi4py-tools",
        "1.3.1",
        CL,
        &["mpi4py-common"],
        &["/usr/bin/mpi4py-tools"],
        "Python MPI tools",
    ),
    e(
        "psm",
        "3.3",
        CL,
        &[],
        &["/usr/lib64/libpsm_infinipath.so.1"],
        "Intel PSM API",
    ),
    e(
        "numactl",
        "2.0.7",
        CL,
        &[],
        &["/usr/bin/numactl"],
        "NUMA policy control",
    ),
    e(
        "librdmacm",
        "1.0.17",
        CL,
        &[],
        &["/usr/lib64/librdmacm.so.1"],
        "RDMA connection manager",
    ),
    e(
        "libibverbs",
        "1.1.7",
        CL,
        &[],
        &["/usr/lib64/libibverbs.so.1"],
        "InfiniBand verbs",
    ),
    e(
        "papi",
        "5.1.1",
        CL,
        &[],
        &["/usr/bin/papi_avail"],
        "Performance counter API",
    ),
    e(
        "python",
        "2.7.5",
        CL,
        &[],
        &["/usr/bin/python2.7"],
        "Python interpreter",
    ),
    e(
        "tcl",
        "8.5.7",
        CL,
        &[],
        &["/usr/bin/tclsh"],
        "Tcl scripting",
    ),
    e(
        "R",
        "3.0.2",
        CL,
        &["R-core", "R-devel"],
        &["/usr/bin/R"],
        "R metapackage",
    ),
    e(
        "R-core",
        "3.0.2",
        CL,
        &[],
        &["/usr/lib64/R/bin/R"],
        "R interpreter core",
    ),
    e(
        "R-core-devel",
        "3.0.2",
        CL,
        &["R-core"],
        &["/usr/include/R/R.h"],
        "R core headers",
    ),
    e(
        "R-devel",
        "3.0.2",
        CL,
        &["R-core-devel"],
        &["/usr/bin/R-devel"],
        "R development meta",
    ),
    e(
        "R-java",
        "3.0.2",
        CL,
        &["R-core", "java-1.7.0-openjdk"],
        &["/usr/lib64/R/java"],
        "R Java integration",
    ),
    e(
        "R-java-devel",
        "3.0.2",
        CL,
        &["R-java"],
        &["/usr/lib64/R/java/devel"],
        "R Java dev",
    ),
    // --- Scientific applications (Table 2, row 2) ---
    e(
        "bedtools",
        "2.17.0",
        SA,
        &[],
        &["/usr/bin/bedtools"],
        "Genome arithmetic",
    ),
    e(
        "GotoBLAS2",
        "1.13",
        SA,
        &["gcc-gfortran"],
        &["/usr/lib64/libgoto2.so"],
        "GotoBLAS2 optimized BLAS",
    ),
    e(
        "plapack",
        "3.0",
        SA,
        &["openmpi", "GotoBLAS2"],
        &["/usr/lib64/libPLAPACK.so"],
        "Parallel linear algebra",
    ),
    e(
        "pnetcdf",
        "1.4.1",
        SA,
        &["openmpi"],
        &["/usr/lib64/libpnetcdf.so"],
        "Parallel NetCDF",
    ),
    e(
        "abyss",
        "1.3.7",
        SA,
        &["openmpi", "boost", "sparsehash-devel"],
        &["/usr/bin/ABYSS"],
        "Parallel genome assembler",
    ),
    e(
        "arpack",
        "3.1.3",
        SA,
        &["gcc-gfortran"],
        &["/usr/lib64/libarpack.so.2"],
        "Large eigenproblem solver",
    ),
    e(
        "atlas",
        "3.8.4",
        SA,
        &[],
        &["/usr/lib64/atlas/libatlas.so.3"],
        "ATLAS tuned BLAS",
    ),
    e(
        "autodocksuite",
        "4.2.5.1",
        SA,
        &[],
        &["/usr/bin/autodock4"],
        "Molecular docking",
    ),
    e(
        "boost",
        "1.41.0",
        SA,
        &[],
        &["/usr/lib64/libboost_system.so"],
        "Boost C++ libraries",
    ),
    e(
        "bowtie",
        "1.0.0",
        SA,
        &[],
        &["/usr/bin/bowtie"],
        "Short-read aligner",
    ),
    e(
        "bwa",
        "0.7.5a",
        SA,
        &[],
        &["/usr/bin/bwa"],
        "Burrows-Wheeler aligner",
    ),
    e(
        "darshan-runtime-mpich",
        "2.2.8",
        SA,
        &["mpich2"],
        &["/usr/lib64/mpich2/lib/libdarshan.so"],
        "I/O characterization (MPICH)",
    ),
    e(
        "darshan-runtime-openmpi",
        "2.2.8",
        SA,
        &["openmpi"],
        &["/usr/lib64/openmpi/lib/libdarshan.so"],
        "I/O characterization (Open MPI)",
    ),
    e(
        "darshan-util",
        "2.2.8",
        SA,
        &[],
        &["/usr/bin/darshan-parser"],
        "Darshan log tools",
    ),
    e(
        "libgfortran",
        "4.4.7",
        SA,
        &[],
        &["/usr/lib64/libgfortran.so.3"],
        "Fortran runtime",
    ),
    e(
        "libgomp",
        "4.4.7",
        SA,
        &[],
        &["/usr/lib64/libgomp.so.1"],
        "OpenMP runtime",
    ),
    e(
        "elemental",
        "0.81",
        SA,
        &["openmpi"],
        &["/usr/lib64/libelemental.so"],
        "Distributed dense linear algebra",
    ),
    e(
        "espresso-ab",
        "5.0.3",
        SA,
        &["openmpi", "fftw"],
        &["/usr/bin/pw.x"],
        "Quantum ESPRESSO",
    ),
    e(
        "gatk",
        "2.8.1",
        SA,
        &["java-1.7.0-openjdk"],
        &["/usr/share/java/gatk/GenomeAnalysisTK.jar"],
        "Genome Analysis Toolkit",
    ),
    e(
        "glpk",
        "4.40",
        SA,
        &[],
        &["/usr/lib64/libglpk.so.0"],
        "Linear programming kit",
    ),
    e(
        "gnuplot",
        "4.6.4",
        SA,
        &["gnuplot-common", "gd"],
        &["/usr/bin/gnuplot"],
        "Plotting",
    ),
    e(
        "gnuplot-common",
        "4.6.4",
        SA,
        &[],
        &["/usr/share/gnuplot"],
        "Gnuplot data files",
    ),
    e(
        "libXpm",
        "3.5.10",
        SA,
        &[],
        &["/usr/lib64/libXpm.so.4"],
        "X pixmap library",
    ),
    e(
        "gd",
        "2.0.35",
        SA,
        &["libXpm"],
        &["/usr/lib64/libgd.so.2"],
        "Graphics drawing",
    ),
    e(
        "gromacs",
        "4.6.5",
        SA,
        &["openmpi", "fftw", "gromacs-libs", "gromacs-common"],
        &["/usr/bin/mdrun", "/usr/bin/grompp"],
        "GROMACS molecular dynamics",
    ),
    e(
        "gromacs-common",
        "4.6.5",
        SA,
        &[],
        &["/usr/share/gromacs"],
        "GROMACS shared data",
    ),
    e(
        "gromacs-libs",
        "4.6.5",
        SA,
        &[],
        &["/usr/lib64/libgmx.so.8"],
        "GROMACS libraries",
    ),
    e(
        "hmmer",
        "3.1b1",
        SA,
        &[],
        &["/usr/bin/hmmsearch"],
        "Profile HMM search",
    ),
    e(
        "lammps",
        "2014.06.28",
        SA,
        &["openmpi", "fftw", "lammps-common"],
        &["/usr/bin/lmp_openmpi"],
        "LAMMPS molecular dynamics",
    ),
    e(
        "lammps-common",
        "2014.06.28",
        SA,
        &[],
        &["/usr/share/lammps"],
        "LAMMPS potentials",
    ),
    e(
        "libgtextutils",
        "0.6.1",
        SA,
        &[],
        &["/usr/lib64/libgtextutils.so.0"],
        "Text utilities library",
    ),
    e(
        "lua",
        "5.1.4",
        SA,
        &[],
        &["/usr/bin/lua"],
        "Lua interpreter",
    ),
    e(
        "meep",
        "1.2.1",
        SA,
        &["hdf5"],
        &["/usr/bin/meep"],
        "FDTD electromagnetics",
    ),
    e(
        "mpiblast",
        "1.6.0",
        SA,
        &["openmpi", "ncbi-blast"],
        &["/usr/bin/mpiblast"],
        "Parallel BLAST",
    ),
    e(
        "mrbayes",
        "3.2.2",
        SA,
        &["openmpi"],
        &["/usr/bin/mb"],
        "Bayesian phylogenetics",
    ),
    e(
        "ncbi-blast",
        "2.2.29",
        SA,
        &[],
        &["/usr/bin/blastn"],
        "NCBI BLAST+",
    ),
    e(
        "ncl",
        "6.1.2",
        SA,
        &["ncl-common", "netcdf"],
        &["/usr/bin/ncl"],
        "NCAR Command Language",
    ),
    e(
        "ncl-common",
        "6.1.2",
        SA,
        &[],
        &["/usr/share/ncl"],
        "NCL data",
    ),
    e(
        "nco",
        "4.4.2",
        SA,
        &["netcdf"],
        &["/usr/bin/ncks"],
        "NetCDF operators",
    ),
    e(
        "netcdf",
        "4.3.0",
        SA,
        &["hdf5"],
        &["/usr/lib64/libnetcdf.so.7"],
        "NetCDF data format",
    ),
    e(
        "numpy",
        "1.7.1",
        SA,
        &["python", "atlas"],
        &["/usr/lib64/python2.7/site-packages/numpy"],
        "NumPy",
    ),
    e(
        "octave",
        "3.4.3",
        SA,
        &["fftw", "atlas"],
        &["/usr/bin/octave"],
        "GNU Octave",
    ),
    e(
        "petsc",
        "3.4.3",
        SA,
        &["openmpi", "atlas"],
        &["/usr/lib64/openmpi/lib/libpetsc.so"],
        "PETSc solvers",
    ),
    e(
        "picard-tools",
        "1.107",
        SA,
        &["java-1.7.0-openjdk"],
        &["/usr/share/java/picard.jar"],
        "SAM/BAM tools",
    ),
    e(
        "plplot",
        "5.9.7",
        SA,
        &[],
        &["/usr/lib64/libplplotd.so.11"],
        "Scientific plotting",
    ),
    e(
        "libtool-ltdl",
        "2.2.6",
        SA,
        &[],
        &["/usr/lib64/libltdl.so.7"],
        "Libtool dlopen wrapper",
    ),
    e(
        "saga",
        "2.1.0",
        SA,
        &["boost"],
        &["/usr/bin/saga_cmd"],
        "SAGA GIS",
    ),
    e(
        "libmspack",
        "0.4",
        SA,
        &[],
        &["/usr/lib64/libmspack.so.0"],
        "Microsoft compression formats",
    ),
    e(
        "wxBase3",
        "3.0.0",
        SA,
        &[],
        &["/usr/lib64/libwx_baseu-3.0.so.0"],
        "wxWidgets base 3",
    ),
    e(
        "wxGTK3",
        "3.0.0",
        SA,
        &["wxBase3"],
        &["/usr/lib64/libwx_gtk2u_core-3.0.so.0"],
        "wxWidgets GTK 3",
    ),
    e(
        "samtools",
        "0.1.19",
        SA,
        &[],
        &["/usr/bin/samtools"],
        "SAM/BAM manipulation",
    ),
    e(
        "scalapack-common",
        "2.0.2",
        SA,
        &["openmpi"],
        &["/usr/lib64/openmpi/lib/libscalapack.so"],
        "ScaLAPACK",
    ),
    e(
        "shrimp",
        "2.2.3",
        SA,
        &[],
        &["/usr/bin/gmapper"],
        "SHRiMP short-read mapper",
    ),
    e(
        "slepc",
        "3.4.3",
        SA,
        &["petsc"],
        &["/usr/lib64/openmpi/lib/libslepc.so"],
        "SLEPc eigensolvers",
    ),
    e(
        "sparsehash-devel",
        "1.12",
        SA,
        &[],
        &["/usr/include/google/sparse_hash_map"],
        "Sparse hash containers",
    ),
    e(
        "sprng",
        "2.0",
        SA,
        &[],
        &["/usr/lib64/libsprng.so"],
        "Scalable parallel RNG",
    ),
    e(
        "sratoolkit",
        "2.3.4",
        SA,
        &[],
        &["/usr/bin/fastq-dump"],
        "SRA toolkit",
    ),
    e(
        "sundials",
        "2.5.0",
        SA,
        &[],
        &["/usr/lib64/libsundials_cvode.so.1"],
        "ODE/DAE solvers",
    ),
    e(
        "trinity",
        "r20131110",
        SA,
        &["bowtie", "samtools", "java-1.7.0-openjdk"],
        &["/usr/bin/Trinity"],
        "TrinityRNASeq assembler",
    ),
    e(
        "valgrind",
        "3.8.1",
        SA,
        &[],
        &["/usr/bin/valgrind"],
        "Dynamic analysis",
    ),
    // --- Miscellaneous tools (Table 2, row 3) ---
    e(
        "ant",
        "1.7.1",
        MT,
        &["java-1.7.0-openjdk"],
        &["/usr/bin/ant"],
        "Apache Ant",
    ),
    e(
        "scons",
        "2.0.1",
        MT,
        &["python"],
        &["/usr/bin/scons"],
        "SCons build system",
    ),
    e(
        "giflib",
        "4.1.6",
        MT,
        &[],
        &["/usr/lib64/libgif.so.4"],
        "GIF library",
    ),
    e(
        "libesmtp",
        "1.0.4",
        MT,
        &[],
        &["/usr/lib64/libesmtp.so.5"],
        "SMTP client library",
    ),
    e(
        "libicu",
        "4.2.1",
        MT,
        &[],
        &["/usr/lib64/libicuuc.so.42"],
        "Unicode support",
    ),
    e(
        "pulseaudio-libs",
        "0.9.21",
        MT,
        &["libsndfile", "libasyncns"],
        &["/usr/lib64/libpulse.so.0"],
        "PulseAudio client",
    ),
    e(
        "libasyncns",
        "0.8",
        MT,
        &[],
        &["/usr/lib64/libasyncns.so.0"],
        "Async name service",
    ),
    e(
        "libsndfile",
        "1.0.20",
        MT,
        &["libvorbis", "flac"],
        &["/usr/lib64/libsndfile.so.1"],
        "Sound file I/O",
    ),
    e(
        "libvorbis",
        "1.2.3",
        MT,
        &["libogg"],
        &["/usr/lib64/libvorbis.so.0"],
        "Vorbis codec",
    ),
    e(
        "flac",
        "1.2.1",
        MT,
        &["libogg"],
        &["/usr/lib64/libFLAC.so.8"],
        "FLAC codec",
    ),
    e(
        "libogg",
        "1.1.4",
        MT,
        &[],
        &["/usr/lib64/libogg.so.0"],
        "Ogg container",
    ),
    e(
        "libXtst",
        "1.2.1",
        MT,
        &[],
        &["/usr/lib64/libXtst.so.6"],
        "X test extension",
    ),
    e(
        "rhino",
        "1.7",
        MT,
        &["java-1.7.0-openjdk"],
        &["/usr/bin/rhino"],
        "JavaScript for Java",
    ),
    e(
        "jpackage-utils",
        "1.7.5",
        MT,
        &[],
        &["/usr/bin/build-classpath"],
        "Java packaging utilities",
    ),
    e(
        "jline",
        "0.9.94",
        MT,
        &["java-1.7.0-openjdk"],
        &["/usr/share/java/jline.jar"],
        "Java line editing",
    ),
    e(
        "tzdata-java",
        "2014b",
        MT,
        &[],
        &["/usr/share/javazi"],
        "Java timezone data",
    ),
    e(
        "wxBase",
        "2.8.12",
        MT,
        &[],
        &["/usr/lib64/libwx_baseu-2.8.so.0"],
        "wxWidgets base 2.8",
    ),
    e(
        "wxGTK",
        "2.8.12",
        MT,
        &["wxBase"],
        &["/usr/lib64/libwx_gtk2u_core-2.8.so.0"],
        "wxWidgets GTK 2.8",
    ),
    e(
        "wxGTK-devel",
        "2.8.12",
        MT,
        &["wxGTK"],
        &["/usr/include/wx-2.8/wx/wx.h"],
        "wxWidgets headers",
    ),
    e(
        "xorg-x11-fonts-Type1",
        "7.2",
        MT,
        &["xorg-x11-fonts-utils"],
        &["/usr/share/X11/fonts/Type1"],
        "Type1 fonts",
    ),
    e(
        "xorg-x11-fonts-utils",
        "7.2",
        MT,
        &[],
        &["/usr/bin/mkfontdir"],
        "Font utilities",
    ),
    // --- Scheduler and resource manager (Table 2, row 4) ---
    e(
        "torque",
        "4.2.6",
        SR,
        &[],
        &["/usr/bin/qsub", "/usr/sbin/pbs_server"],
        "Torque resource manager",
    ),
    e(
        "maui",
        "3.3.1",
        SR,
        &["torque"],
        &["/usr/sbin/maui"],
        "Maui scheduler",
    ),
    e(
        "slurm",
        "2.6.5",
        SR,
        &[],
        &["/usr/bin/sbatch", "/usr/sbin/slurmctld"],
        "SLURM workload manager",
    ),
    e(
        "gridengine",
        "2011.11",
        SR,
        &[],
        &["/usr/bin/qsub-sge"],
        "Open Grid Scheduler",
    ),
    // --- XSEDE tools (Table 2, row 5) ---
    e(
        "globus-connect-server",
        "2.0.63",
        XT,
        &[],
        &["/usr/bin/globus-connect-server-setup"],
        "Globus Connect Server",
    ),
    e(
        "genesis2",
        "2.7.1",
        XT,
        &["java-1.7.0-openjdk"],
        &["/opt/genesis2/bin/grid"],
        "Genesis II GFFS client",
    ),
    e(
        "gffs",
        "2.7.1",
        XT,
        &["genesis2"],
        &["/opt/genesis2/gffs"],
        "Global Federated File System",
    ),
];

/// Deterministic size for a package (1–160 MB, stable per name).
fn size_mb_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    1 + h % 160
}

/// Build the full catalog as installable [`Package`]s (release `1.el6`,
/// the XCBC 0.9 build).
pub fn xcbc_catalog() -> Vec<Package> {
    CATALOG
        .iter()
        .map(|entry| {
            let mut b = PackageBuilder::new(entry.name, entry.version, "1.el6")
                .group(entry.group)
                .summary(entry.summary)
                .size_mb(size_mb_for(entry.name));
            for req in entry.requires {
                b = b.requires_simple(req);
            }
            b = b.files(entry.paths.iter().copied());
            b.build()
        })
        .collect()
}

/// Entries by category — the row structure of Table 2.
pub fn entries_in(group: PackageGroup) -> Vec<&'static CatalogEntry> {
    CATALOG.iter().filter(|e| e.group == group).collect()
}

/// The XSEDE (Stampede) reference profile: what versions and paths an
/// XSEDE-compatible cluster must expose. This is the catalog minus the
/// non-default scheduler alternatives — Table 2's scheduler row is
/// "maui, torque"; SLURM and SGE are Table 1's "choose one" options and
/// their absence does not break run-alike compatibility.
pub fn xsede_reference() -> Vec<CatalogEntry> {
    CATALOG
        .iter()
        .filter(|e| e.name != "slurm" && e.name != "gridengine")
        .copied()
        .collect()
}

/// Look an entry up by name.
pub fn entry(name: &str) -> Option<&'static CatalogEntry> {
    CATALOG.iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_is_substantial() {
        assert!(
            CATALOG.len() >= 110,
            "Tables 1+2 list well over 100 packages: {}",
            CATALOG.len()
        );
    }

    #[test]
    fn no_duplicate_names() {
        let mut seen = HashSet::new();
        for e in CATALOG {
            assert!(seen.insert(e.name), "duplicate catalog entry {}", e.name);
        }
    }

    #[test]
    fn all_requires_resolve_within_catalog() {
        let names: HashSet<&str> = CATALOG.iter().map(|e| e.name).collect();
        for e in CATALOG {
            for r in e.requires {
                assert!(
                    names.contains(r),
                    "{} requires {} which is not in the catalog",
                    e.name,
                    r
                );
            }
        }
    }

    #[test]
    fn every_entry_has_paths_and_summary() {
        for e in CATALOG {
            assert!(!e.paths.is_empty(), "{} has no install paths", e.name);
            assert!(!e.summary.is_empty(), "{} has no summary", e.name);
            assert!(!e.version.is_empty());
        }
    }

    #[test]
    fn table2_categories_all_populated() {
        use PackageGroup::*;
        assert!(entries_in(CompilersLibraries).len() >= 25, "Table 2 row 1");
        assert!(
            entries_in(ScientificApplications).len() >= 55,
            "Table 2 row 2"
        );
        assert!(entries_in(MiscellaneousTools).len() >= 20, "Table 2 row 3");
        assert!(
            entries_in(SchedulerResourceManager).len() >= 2,
            "Table 2 row 4: maui, torque"
        );
        assert_eq!(entries_in(XsedeTools).len(), 3, "Globus, Genesis II, GFFS");
    }

    #[test]
    fn headline_packages_present_with_paper_versions() {
        // packages the paper names explicitly
        for name in [
            "gromacs",
            "mpiblast",
            "gatk",
            "trinity",
            "R",
            "torque",
            "maui",
            "globus-connect-server",
            "genesis2",
            "gffs",
            "lammps",
            "openmpi",
        ] {
            assert!(entry(name).is_some(), "paper names {name} explicitly");
        }
        assert_eq!(entry("R").unwrap().version, "3.0.2");
    }

    #[test]
    fn built_packages_satisfy_own_dep_closure() {
        let pkgs = xcbc_catalog();
        let mut db = xcbc_rpm::RpmDb::new();
        let mut tx = xcbc_rpm::TransactionSet::new();
        for p in pkgs {
            tx.add_install(p);
        }
        assert!(tx.check(&db).is_empty(), "{:?}", tx.check(&db));
        tx.run(&mut db).unwrap();
        assert!(db.verify().is_empty());
        assert_eq!(db.len(), CATALOG.len());
    }

    #[test]
    fn xsede_paths_follow_convention() {
        // libraries under /usr/lib64, binaries under /usr/bin or /opt —
        // "libraries are in the same place as on XSEDE clusters"
        for e in CATALOG {
            for p in e.paths {
                assert!(
                    p.starts_with("/usr/") || p.starts_with("/opt/"),
                    "{}: unconventional path {}",
                    e.name,
                    p
                );
            }
        }
    }

    #[test]
    fn sizes_deterministic() {
        assert_eq!(size_mb_for("gromacs"), size_mb_for("gromacs"));
        let a = xcbc_catalog();
        let b = xcbc_catalog();
        assert_eq!(a, b);
    }
}
