//! Renderers that regenerate the paper's tables and figures.
//!
//! Each `render_tableN` function produces a text table whose rows come
//! from the *implemented system* (the catalog, the cluster specs, the
//! HPL model, the site registry) rather than hard-coded strings, so the
//! EXPERIMENTS.md paper-vs-measured comparison is honest.

use crate::catalog::entries_in;
use crate::sites::{deployed_sites, fleet_totals, AdoptionPath};
use xcbc_cluster::cost::{limulus_hpc200_bom, littlefe_modified_bom};
use xcbc_cluster::specs::{limulus_hpc200, littlefe_modified};
use xcbc_hpl::{EfficiencyModel, PAPER_LITTLEFE_RMAX_EST_GF};
use xcbc_rocks::standard_rolls;
use xcbc_rpm::PackageGroup;

/// Table 1 — XCBC build part 1: general cluster setup (Rocks rolls).
pub fn render_table1() -> String {
    let mut out = String::from(
        "Table 1. Components of current XCBC build Part 1 - General cluster setup\n\n",
    );
    out.push_str(&format!(
        "{:<14} {}\n",
        "Basics", "Rocks 6.1.1, CentOS 6.5, modules, apache-ant, gmake, scons"
    ));
    out.push_str(&format!(
        "{:<14} {}\n\n",
        "Job Management", "Torque, SLURM, sge (choose one)"
    ));
    out.push_str("Rocks optional rolls:\n");
    for roll in standard_rolls() {
        if !roll.required {
            out.push_str(&format!("{:<14} {}\n", roll.name, roll.description));
        }
    }
    out
}

/// Table 2 — XCBC build part 2: XSEDE run-alike components, from the
/// catalog.
pub fn render_table2() -> String {
    let mut out = String::from(
        "Table 2. Components of current XCBC build Part 2 - XSEDE run-alike compatibility\n\n",
    );
    let rows = [
        PackageGroup::CompilersLibraries,
        PackageGroup::ScientificApplications,
        PackageGroup::MiscellaneousTools,
        PackageGroup::SchedulerResourceManager,
        PackageGroup::XsedeTools,
    ];
    for group in rows {
        let names: Vec<&str> = entries_in(group).iter().map(|e| e.name).collect();
        out.push_str(&format!(
            "{} ({} packages):\n  {}\n\n",
            group.label(),
            names.len(),
            names.join(", ")
        ));
    }
    out
}

/// Table 3 — deployed XCBC clusters with the totals row.
pub fn render_table3() -> String {
    let mut out = String::from(
        "Table 3. Deployed XCBC Clusters that had XSEDE Campus Bridging team involvement.\n\n",
    );
    out.push_str(&format!(
        "{:<46} {:>6} {:>6} {:>8}  {:<12} {}\n",
        "Site", "Nodes", "Cores", "Rpeak", "Path", "Other Info"
    ));
    for s in deployed_sites() {
        out.push_str(&format!(
            "{:<46} {:>6} {:>6} {:>8.2}  {:<12} {}\n",
            truncate(s.name, 46),
            s.nodes,
            s.cores,
            s.rpeak_tflops,
            match s.path {
                AdoptionPath::XcbcFromScratch => "XCBC",
                AdoptionPath::XnitRepository => "XNIT",
            },
            s.other_info
        ));
    }
    let t = fleet_totals();
    out.push_str(&format!(
        "{:<46} {:>6} {:>6} {:>8.2}\n",
        "Total", t.nodes, t.cores, t.rpeak_tflops
    ));
    out
}

/// Table 4 — basic characteristics of the two deskside clusters, derived
/// from the hardware blueprints.
pub fn render_table4() -> String {
    let mut out = String::from(
        "Table 4. Basic characteristics of a Limulus HPC200 cluster and a LittleFe cluster\n\n",
    );
    out.push_str(&format!(
        "{:<18} {:>6} {:>12} {:>6} {:>6}\n",
        "Cluster", "Nodes", "CPU clock", "CPUs", "Cores"
    ));
    for spec in [littlefe_modified(), limulus_hpc200()] {
        out.push_str(&format!(
            "{:<18} {:>6} {:>9.1} GHz {:>6} {:>6}\n",
            truncate(&spec.name, 18),
            spec.node_count(),
            spec.nodes[0].cpu.clock_ghz,
            spec.cpu_count(),
            spec.compute_cores()
        ));
    }
    out
}

/// Table 5 — performance and price/performance, Rpeak from hardware,
/// Rmax from the calibrated efficiency model (LittleFe additionally
/// reported at the paper's 75 % estimate).
pub fn render_table5() -> String {
    let model = EfficiencyModel::gigabit_deskside();
    let lf = littlefe_modified();
    let lm = limulus_hpc200();
    let lf_bom = littlefe_modified_bom();
    let lm_bom = limulus_hpc200_bom();

    // Problem sizes from per-system memory at ~50% fill — matching the
    // N used in Basement Supercomputing's published Limulus HPL run.
    let lf_n = EfficiencyModel::memory_bound_n(
        (lf.nodes.iter().map(|n| n.ram_gb as u64).sum::<u64>()) << 30,
        0.5,
    );
    let lm_n = EfficiencyModel::memory_bound_n(
        (lm.nodes.iter().map(|n| n.ram_gb as u64).sum::<u64>()) << 30,
        0.5,
    );

    let lf_rmax_model = model.rmax_gflops(lf.rpeak_gflops(), lf.node_count() as u32, lf_n);
    let lm_rmax_model = model.rmax_gflops(lm.rpeak_gflops(), lm.node_count() as u32, lm_n);

    let mut out = String::from(
        "Table 5. Performance and price/performance for LittleFe and Limulus HPC200.\n\n",
    );
    out.push_str(&format!(
        "{:<18} {:>8} {:>8} {:>8} {:>14} {:>14}\n",
        "System", "Rpeak", "Rmax", "Cost", "Rpeak $/GF", "Rmax $/GF"
    ));
    out.push_str(&format!(
        "{:<18} {:>8.1} {:>8.1} {:>8.0} {:>13}/GF {:>13}/GF   (paper est. Rmax {:.1}*)\n",
        "LittleFe",
        lf.rpeak_gflops(),
        lf_rmax_model,
        lf_bom.total_usd(),
        format!("${}", lf_bom.usd_per_gflops_rounded(lf.rpeak_gflops())),
        format!("${}", lf_bom.usd_per_gflops_rounded(lf_rmax_model)),
        PAPER_LITTLEFE_RMAX_EST_GF,
    ));
    out.push_str(&format!(
        "{:<18} {:>8.1} {:>8.1} {:>8.0} {:>13}/GF {:>13}/GF\n",
        "Limulus HPC200",
        lm.rpeak_gflops(),
        lm_rmax_model,
        lm_bom.total_usd(),
        format!("${}", lm_bom.usd_per_gflops_rounded(lm.rpeak_gflops())),
        format!("${}", lm_bom.usd_per_gflops_rounded(lm_rmax_model)),
    ));
    out.push_str("* LittleFe Rmax was estimated at 75% of Rpeak in the paper (hardware failure prior to Linpack).\n");
    out
}

/// Figures 1–3 — chassis renderings from the hardware model.
pub fn render_figures() -> String {
    let lf = littlefe_modified();
    let lm = limulus_hpc200();
    format!(
        "Figure 1 (substitute).\n{}\nFigure 2 (substitute).\n{}\nFigure 3 (substitute).\n{}",
        xcbc_cluster::render_littlefe_rear(&lf),
        xcbc_cluster::render_littlefe_front(&lf),
        xcbc_cluster::render_limulus(&lm),
    )
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_optional_rolls() {
        let t = render_table1();
        for roll in [
            "area51",
            "bio",
            "ganglia",
            "hpc",
            "kvm",
            "perl",
            "python",
            "zfs-linux",
        ] {
            assert!(t.contains(roll), "table 1 missing {roll}");
        }
        assert!(t.contains("choose one"));
    }

    #[test]
    fn table2_has_all_five_rows() {
        let t = render_table2();
        assert!(t.contains("Compilers, libraries, and programming"));
        assert!(t.contains("Scientific Applications"));
        assert!(t.contains("Miscellaneous Tools"));
        assert!(t.contains("Scheduler and Resource Manager"));
        assert!(t.contains("XSEDE Tools"));
        assert!(t.contains("gromacs"));
        assert!(t.contains("globus-connect-server"));
    }

    #[test]
    fn table3_totals_row() {
        let t = render_table3();
        assert!(t.contains("304"));
        assert!(t.contains("2708"));
        assert!(t.contains("49.61"));
        assert!(t.contains("Marshall"));
    }

    #[test]
    fn table4_rows_match_paper() {
        let t = render_table4();
        assert!(t.contains("2.8 GHz"));
        assert!(t.contains("3.1 GHz"));
        assert!(t.contains("12"));
        assert!(t.contains("16"));
    }

    #[test]
    fn table5_reproduces_shape() {
        let t = render_table5();
        // Rpeak values exact
        assert!(t.contains("537.6"));
        assert!(t.contains("793.6"));
        // price-performance ordering: LittleFe $7 Rpeak vs Limulus $8
        assert!(t.contains("$7/GF"));
        assert!(t.contains("$8/GF"));
        assert!(t.contains("403.2"), "paper estimate cited");
        // the conclusion's ordering: LittleFe wins price-performance on
        // both axes ($11 vs $12 on modeled Rmax; paper: $9 vs $12)
        assert!(t.contains("$11/GF"));
        assert!(t.contains("$12/GF"));
    }

    #[test]
    fn figures_render() {
        let f = render_figures();
        assert!(f.contains("Figure 1"));
        assert!(f.contains("Figure 3"));
        assert!(f.contains("BLADE"));
    }
}
