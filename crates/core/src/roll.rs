//! The XSEDE Rocks Roll — XCBC's from-scratch delivery vehicle.
//!
//! §2: "There have been two major XSEDE Rocks Rolls released since the
//! 2014 report. Version 0.0.8 saw a major OS release update from Centos
//! 6.3 to 6.5 and 27 scientific and supporting packages have been added,
//! including GenomeAnalysisTK, gromacs, mpiblast, and others. The 0.0.9
//! release from November 2014 saw 41 additions, including TrinityRNASeq,
//! R, significant Java updates ..."

use crate::catalog::{xcbc_catalog, CATALOG};
use xcbc_rocks::{GraphNode, Roll};

/// One release of the XSEDE roll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollRelease {
    pub version: &'static str,
    pub date: &'static str,
    pub base_os: &'static str,
    /// Packages newly added in this release (subset of the catalog).
    pub additions: &'static [&'static str],
    pub notes: &'static str,
}

/// The release history the paper describes.
pub static XSEDE_ROLL_RELEASES: &[RollRelease] = &[
    RollRelease {
        version: "0.0.7",
        date: "2014-03",
        base_os: "CentOS 6.3",
        additions: &[
            "gcc",
            "gcc-gfortran",
            "openmpi",
            "mpich2",
            "torque",
            "maui",
            "python",
            "tcl",
            "fftw",
            "fftw2",
            "hdf5",
            "atlas",
            "boost",
            "netcdf",
            "numpy",
            "valgrind",
            "globus-connect-server",
            "genesis2",
            "gffs",
        ],
        notes: "baseline XCBC roll (XSEDE14 report)",
    },
    RollRelease {
        version: "0.0.8",
        date: "2014-07",
        base_os: "CentOS 6.5",
        additions: &[
            // "27 scientific and supporting packages have been added,
            // including GenomeAnalysisTK, gromacs, mpiblast, and others"
            "gatk",
            "gromacs",
            "gromacs-common",
            "gromacs-libs",
            "mpiblast",
            "ncbi-blast",
            "lammps",
            "lammps-common",
            "bedtools",
            "bowtie",
            "bwa",
            "samtools",
            "hmmer",
            "abyss",
            "sparsehash-devel",
            "libgtextutils",
            "shrimp",
            "sratoolkit",
            "arpack",
            "glpk",
            "gnuplot",
            "gnuplot-common",
            "gd",
            "libXpm",
            "octave",
            "petsc",
            "slepc",
        ],
        notes: "major OS update Centos 6.3 -> 6.5; 27 additions",
    },
    RollRelease {
        version: "0.0.9",
        date: "2014-11",
        base_os: "CentOS 6.5",
        additions: &[
            // "41 additions, including TrinityRNASeq, R, significant
            // Java updates, and other scientific and supporting packages"
            "trinity",
            "R",
            "R-core",
            "R-core-devel",
            "R-devel",
            "R-java",
            "R-java-devel",
            "libRmath",
            "libRmath-devel",
            "java-1.7.0-openjdk",
            "tzdata-java",
            "jpackage-utils",
            "jline",
            "rhino",
            "ant",
            "picard-tools",
            "autodocksuite",
            "mrbayes",
            "meep",
            "espresso-ab",
            "elemental",
            "plapack",
            "pnetcdf",
            "GotoBLAS2",
            "scalapack-common",
            "darshan-runtime-mpich",
            "darshan-runtime-openmpi",
            "darshan-util",
            "ncl",
            "ncl-common",
            "nco",
            "plplot",
            "saga",
            "sundials",
            "sprng",
            "lua",
            "libmspack",
            "wxBase3",
            "wxGTK3",
            "papi",
            "numactl",
        ],
        notes: "November 2014; 41 additions",
    },
];

/// Build the current (0.9) XSEDE roll: the full catalog as packages,
/// with kickstart-graph nodes wiring every category onto frontend and
/// compute appliances.
pub fn xsede_roll() -> Roll {
    let packages = xcbc_catalog();
    let mut sci = GraphNode::new("xsede-scientific");
    let mut compilers = GraphNode::new("xsede-compilers");
    let mut misc = GraphNode::new("xsede-misc");
    let mut sched = GraphNode::new("xsede-scheduler");
    let mut tools = GraphNode::new("xsede-tools");
    for entry in CATALOG {
        use xcbc_rpm::PackageGroup::*;
        let node = match entry.group {
            ScientificApplications => &mut sci,
            CompilersLibraries => &mut compilers,
            MiscellaneousTools => &mut misc,
            SchedulerResourceManager => {
                // XCBC: "Torque, SLURM, sge (choose one)" — the roll
                // defaults to torque+maui; slurm/sge stay in the repo.
                if entry.name == "torque" || entry.name == "maui" {
                    &mut sched
                } else {
                    continue;
                }
            }
            XsedeTools => &mut tools,
            _ => continue,
        };
        node.packages.push(entry.name.to_string());
    }
    sched
        .post_scripts
        .push("configure pbs_server + maui on frontend".to_string());
    tools
        .post_scripts
        .push("run globus-connect-server-setup".to_string());

    Roll::new("xsede", "0.9", false, "XSEDE-compatible basic cluster roll")
        .with_packages(packages)
        .with_graph_nodes(vec![sci, compilers, misc, sched, tools])
}

impl RollRelease {
    /// Number of packages added in this release.
    pub fn addition_count(&self) -> usize {
        self.additions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::entry;
    use xcbc_rocks::{Appliance, ClusterInstall};

    #[test]
    fn release_history_matches_paper_counts() {
        let v8 = &XSEDE_ROLL_RELEASES[1];
        assert_eq!(v8.version, "0.0.8");
        assert_eq!(v8.addition_count(), 27, "paper: 27 packages added in 0.0.8");
        assert_eq!(v8.base_os, "CentOS 6.5");
        let v9 = &XSEDE_ROLL_RELEASES[2];
        assert_eq!(v9.version, "0.0.9");
        assert_eq!(v9.addition_count(), 41, "paper: 41 additions in 0.0.9");
        assert_eq!(v9.date, "2014-11");
    }

    #[test]
    fn paper_named_additions_in_right_release() {
        let v8 = &XSEDE_ROLL_RELEASES[1];
        for name in ["gatk", "gromacs", "mpiblast"] {
            assert!(v8.additions.contains(&name), "{name} arrived in 0.0.8");
        }
        let v9 = &XSEDE_ROLL_RELEASES[2];
        for name in ["trinity", "R", "java-1.7.0-openjdk"] {
            assert!(v9.additions.contains(&name), "{name} arrived in 0.0.9");
        }
    }

    #[test]
    fn all_additions_exist_in_catalog() {
        for rel in XSEDE_ROLL_RELEASES {
            for name in rel.additions {
                assert!(
                    entry(name).is_some(),
                    "release {} adds unknown {name}",
                    rel.version
                );
            }
        }
    }

    #[test]
    fn no_package_added_twice_across_releases() {
        let mut seen = std::collections::HashSet::new();
        for rel in XSEDE_ROLL_RELEASES {
            for name in rel.additions {
                assert!(seen.insert(*name), "{name} added in two releases");
            }
        }
    }

    #[test]
    fn roll_carries_full_catalog() {
        let roll = xsede_roll();
        assert_eq!(roll.name, "xsede");
        assert_eq!(roll.packages.len(), CATALOG.len());
        assert_eq!(roll.graph_nodes.len(), 5);
    }

    #[test]
    fn roll_installs_onto_littlefe() {
        // the paper's headline workflow: Rocks + XSEDE roll on the
        // modified LittleFe
        let mut rolls = xcbc_rocks::standard_rolls();
        rolls.push(xsede_roll());
        let install = ClusterInstall::new(xcbc_cluster::specs::littlefe_modified(), rolls);
        let report = install.run().unwrap();
        for host in ["littlefe", "compute-0-0", "compute-0-4"] {
            let db = &report.node_dbs[host];
            assert!(db.is_installed("gromacs"), "{host} gets gromacs");
            assert!(db.is_installed("torque"), "{host} gets torque");
            assert!(
                db.is_installed("globus-connect-server"),
                "{host} gets globus"
            );
            assert!(db.verify().is_empty(), "{host} verifies clean");
        }
    }

    #[test]
    fn roll_graph_attaches_to_both_appliances() {
        let mut graph = xcbc_rocks::KickstartGraph::standard();
        graph
            .merge_roll_nodes(
                &xsede_roll().graph_nodes,
                &[Appliance::Frontend, Appliance::Compute],
            )
            .unwrap();
        let fe = graph.packages_for(Appliance::Frontend).unwrap();
        let co = graph.packages_for(Appliance::Compute).unwrap();
        for p in ["gromacs", "maui", "gffs"] {
            assert!(fe.contains(&p.to_string()));
            assert!(co.contains(&p.to_string()));
        }
    }

    #[test]
    fn slurm_and_sge_not_in_default_graph() {
        let roll = xsede_roll();
        let sched_node = roll
            .graph_nodes
            .iter()
            .find(|n| n.name == "xsede-scheduler")
            .unwrap();
        assert!(sched_node.packages.contains(&"torque".to_string()));
        assert!(
            !sched_node.packages.contains(&"slurm".to_string()),
            "choose-one default"
        );
        // but slurm IS in the roll's package payload for swapping later
        assert!(roll.packages.iter().any(|p| p.name() == "slurm"));
    }
}
